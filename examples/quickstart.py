#!/usr/bin/env python
"""Quickstart: describe an ad hoc format, parse it, handle its errors.

This walks the core PADS workflow on a tiny made-up format::

    <id>|<temperature>|<station>;<reading>,<reading>,...

covering the pieces every description uses: base types, structs with
literals and constraints, arrays with separators/terminators, parse
descriptors, masks, write-back, verification and random data generation.

Run:  python examples/quickstart.py
"""

from repro import (
    Mask,
    P_CheckAndSet,
    P_Set,
    compile_description,
)
from repro.core.masks import MaskFlag

DESCRIPTION = r"""
    Ptypedef Pint16 temp_t : temp_t t => { -80 <= t && t < 140 };

    Parray readings_t {
        Puint16[] : Psep(',') && Pterm(Peor);
    } Pwhere {
        Pforall (i Pin [0..length-2] : elts[i] <= elts[i+1])
    };

    Precord Pstruct sample_t {
              Puint32 id;
        '|';  temp_t fahrenheit;
        '|';  Pstring(:';':) station;
        ';';  readings_t readings;
    };
"""

DATA = b"""\
1001|72|yakima;10,20,30
1002|-300|tacoma;5,6
1003|55|spokane;9,2,7
1004|18|walla walla;40,41
"""


def main() -> None:
    weather = compile_description(DESCRIPTION)

    print("== record-at-a-time parsing ==")
    for rep, pd in weather.records(DATA, "sample_t"):
        if pd.nerr == 0:
            print(f"ok   id={rep.id} {rep.station:12} {rep.fahrenheit:>5}F "
                  f"readings={rep.readings}")
        else:
            # The parse descriptor says what went wrong and where; the rep
            # still holds everything that could be parsed.
            print(f"BAD  id={rep.id} -> {pd.summary()}")

    print("\n== masks: pay only for the checks you need ==")
    # P_Set materialises values without running semantic checks: the
    # -300F record sails through, the unsorted readings do too.
    mask = Mask(P_Set | MaskFlag.SYN_CHECK)
    bad = sum(pd.nerr for _, pd in weather.records(DATA, "sample_t", mask))
    print(f"with semantic checks masked off: {bad} errors "
          f"(vs 2 under P_CheckAndSet)")

    print("\n== write-back and verification ==")
    rep, pd = next(iter(weather.records(DATA, "sample_t")))
    print("round-trip bytes:", weather.write(rep, "sample_t"))
    rep.fahrenheit = 200  # corrupt the in-memory value
    print("verify after bad edit:", weather.verify(rep, "sample_t"))

    print("\n== generating conforming random data ==")
    import random
    rng = random.Random(7)
    for _ in range(3):
        print(weather.generate_bytes("sample_t", rng).decode().rstrip())


if __name__ == "__main__":
    main()
