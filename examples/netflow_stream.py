#!/usr/bin/env python
"""Netflow: data-dependent binary records, streamed packet by packet.

Figure 1 lists netflow — "data-dependent number of fixed-width binary
records" at over a gigabit per second — among the sources PADS handles.
The description (gallery/netflow.pads) uses a parameterised array whose
size comes from the packet header's ``count`` field.

This example streams packets one at a time (the multiple-entry-point
style from Section 4: "sequence calls to parsing functions that read
manageable portions of the file"), tolerates corrupted packets, and
profiles protocols and top talkers.

Run:  python examples/netflow_stream.py
"""

import random
from collections import Counter

from repro import gallery
from repro.core.io import NoRecords, Source

N_PACKETS = 300
PROTOCOLS = {1: "icmp", 6: "tcp", 17: "udp"}


def synth_stream(rng: random.Random, netflow) -> bytes:
    chunks = []
    for i in range(N_PACKETS):
        pkt = netflow.generate("nf_packet_t", rng)
        raw = bytearray(netflow.write(pkt, "nf_packet_t"))
        if i % 97 == 0:  # a corrupted export now and then (missed packets)
            raw[0] = 0xFF
        chunks.append(bytes(raw))
    return b"".join(chunks)


def main() -> None:
    netflow = gallery.load_netflow()
    rng = random.Random(5)
    stream = synth_stream(rng, netflow)
    print(f"== streaming {len(stream)} bytes of netflow exports ==")

    src = Source.from_bytes(stream, NoRecords())
    node = netflow.node("nf_packet_t")

    packets = flows = bad = 0
    octets_by_proto = Counter()
    talkers = Counter()
    from repro import Mask, P_CheckAndSet
    mask = Mask(P_CheckAndSet)
    while not src.at_eof():
        before = src.pos
        pkt, pd = node.parse(src, mask, netflow.env)
        packets += 1
        if pd.nerr:
            bad += 1
            # A bad header makes the flow count untrustworthy: resynchronise
            # by skipping the rest of this export's bytes heuristically.
            if src.pos == before:
                src.skip(1)
            continue
        flows += len(pkt.flows)
        for flow in pkt.flows:
            octets_by_proto[PROTOCOLS.get(flow.prot, str(flow.prot))] += flow.octets
            talkers[flow.srcaddr] += flow.octets

    print(f"packets: {packets} ({bad} corrupted), flows: {flows}")

    print("\ntraffic by protocol:")
    for proto, octets in octets_by_proto.most_common(5):
        print(f"    {proto:>6}: {octets:>14,} octets")

    print("\ntop talkers:")
    for addr, octets in talkers.most_common(3):
        dotted = ".".join(str((addr >> s) & 0xFF) for s in (24, 16, 8, 0))
        print(f"    {dotted:>15}: {octets:>14,} octets")


if __name__ == "__main__":
    main()
