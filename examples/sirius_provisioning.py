#!/usr/bin/env python
"""Sirius provisioning: the paper's Figure 7 program plus Section 5.4 queries.

Reproduces the paper's running example end to end on synthetic data:

1. **Vet and normalise** (Figure 7): read records with a mask that checks
   everything *except* the timestamp sort order, echo error records to an
   error file and cleaned ones to a clean file, converting the two
   representations of missing phone numbers (omitted, and the value 0)
   into one (``cnvPhoneNumbers``), verifying afterwards.
2. **Query** (Section 5.4): run the paper's XQuery — orders starting
   within a time window — plus the analyst's other two queries, over the
   data API node tree.

Run:  python examples/sirius_provisioning.py
"""

import random

from repro import Mask, P_CheckAndSet, P_Set, gallery
from repro.tools.dataapi import node_new
from repro.tools.datagen import sirius_workload
from repro.tools.query import query

N_ORDERS = 2000
PHONE_FIELDS = ("service_tn", "billing_tn", "nlp_service_tn", "nlp_billing_tn")


def cnv_phone_numbers(entry) -> None:
    """The paper's cnvPhoneNumbers: unify `0` with the omitted (None)
    representation of a missing phone number."""
    for field in PHONE_FIELDS:
        if getattr(entry.header, field) == 0:
            setattr(entry.header, field, None)


def main() -> None:
    sirius = gallery.load_sirius()
    data = sirius_workload(N_ORDERS, random.Random(2004))

    # -- Figure 7: filter and normalise --------------------------------------
    # "sets the mask to check all conditions in the Sirius description
    # except the sorting of the timestamps"
    mask = Mask(P_CheckAndSet)
    events_mask = Mask(P_CheckAndSet)
    events_mask.compound_level = P_Set
    mask.fields["events"] = events_mask

    header, hpd = sirius.parse(data, "summary_header_t")
    print(f"summary header: week of timestamp {header.tstamp}")

    body = data.split(b"\n", 1)[1]
    clean_file, err_file = [], []
    converted = 0
    for entry, pd in sirius.records(body, "entry_t", mask):
        if pd.nerr > 0:
            err_file.append(sirius.write(entry, "entry_t"))
            continue
        before = [getattr(entry.header, f) for f in PHONE_FIELDS]
        cnv_phone_numbers(entry)
        converted += sum(1 for f, b in zip(PHONE_FIELDS, before)
                         if b == 0 and getattr(entry.header, f) is None)
        if sirius.verify(entry, "entry_t"):
            clean_file.append(sirius.write(entry, "entry_t"))
        else:
            # Figure 7 calls error(2, "Data transform failed.") here.  The
            # workload contains one record whose timestamps are unsorted —
            # invisible to the masked parse but caught by the full verify —
            # so we route it to the error file rather than halting.
            err_file.append(sirius.write(entry, "entry_t"))

    print(f"vetted {N_ORDERS} orders: {len(clean_file)} clean, "
          f"{len(err_file)} errors "
          f"(the sort check was masked off, as in Figure 7)")
    print(f"normalised {converted} zero phone numbers to the "
          "missing representation")

    # -- Section 5.4: queries over the raw data ------------------------------
    rep, pd = sirius.parse(data)
    root = node_new(sirius, rep, pd, None, name="sirius")

    window = query(
        '$sirius/es/entry[events/event[1]'
        '[tstamp >= xs:date("2001-09-01") and'
        ' tstamp <= xs:date("2002-05-25")]]', root)
    print(f"\norders starting within the window: {len(window)}")

    through = query(
        'count($sirius/es/entry[events/event/state = "LOC_CRTE"])', root)
    print(f"orders passing through LOC_CRTE: {through[0]}")

    avg = query(
        'avg(for $o in $sirius/es/entry'
        '    let $a := $o/events/event[state = "ST100"]/tstamp,'
        '        $b := $o/events/event[state = "ST200"]/tstamp'
        '    where exists($a) and exists($b)'
        '    return $b - $a)', root)
    if avg:
        print(f"average ST100 -> ST200 time: {avg[0] / 3600.0:.1f} hours")
    else:
        print("no order passed through both ST100 and ST200 this week")

    errors = query('count($sirius/es/entry[pd/nerr >= 1])', root)
    print(f"orders whose parse descriptor records errors: {errors[0]}")


if __name__ == "__main__":
    main()
