#!/usr/bin/env python
"""Web-log analysis: the paper's Section 5.2 accumulator story, end to end.

1. Generate a synthetic Common Log Format workload (the real AT&T logs are
   proprietary) in which ~6.666% of records store '-' instead of the byte
   count — the undocumented server behaviour the paper's accumulator run
   discovered.
2. Profile it with an accumulator program built from just the record type
   name, and print the paper-layout report for the ``length`` field.
3. Show the error log (the records the profile flagged).
4. Reproduce Figure 8: the formatted records with delimiter "|" and date
   format "%D:%T".

Run:  python examples/weblog_analysis.py
"""

import random

from repro import gallery
from repro.tools.accum import accumulate_records
from repro.tools.datagen import clf_workload
from repro.tools.fmt import format_records

N_RECORDS = 5000


def main() -> None:
    clf = gallery.load_clf()
    data = clf_workload(N_RECORDS, random.Random(1997), dash_rate=0.06666)

    print(f"== profiling {N_RECORDS} CLF records ==\n")
    acc, _, count = accumulate_records(clf, data, "entry_t")

    length = acc.field("length")
    print(length.report())

    print("\n== what the 'bad' values are ==")
    print("A glance at the error log reveals servers storing '-' instead of")
    print("the number of bytes returned (paper, Section 5.2):\n")
    shown = 0
    for line, (rep, pd) in zip(data.decode().splitlines(),
                               clf.records(data, "entry_t")):
        if pd.nerr and shown < 3:
            print("   ", line)
            shown += 1

    print("\n== client kinds (union tag distribution) ==")
    client = acc.field("client").self_acc
    for tag, n in sorted(client.values.items(), key=lambda kv: -kv[1]):
        print(f"    {tag}: {n}")

    print("\n== methods ==")
    for meth, n in acc.field("request.meth").self_acc.top(5):
        print(f"    {meth}: {n}")

    print("\n== Figure 8: formatted records ==")
    for line in format_records(clf, gallery.CLF_SAMPLE, "entry_t",
                               delims=["|"], date_format="%D:%T"):
        print("   ", line)


if __name__ == "__main__":
    main()
