#!/usr/bin/env python
"""Cobol billing feeds: copybook translation and automatic profiling.

The paper's Altair project receives ~4000 Cobol files per day — too many
to inspect by hand — so "accumulator profiles can be used to
automatically determine which [files] have high percentages of errors",
fed by "a tool that automatically translates Cobol copybooks into PADS
descriptions" (Section 5.2).  This example runs that pipeline:

1. translate a billing copybook into a PADS description,
2. generate a synthetic EBCDIC day-file, injecting corruption into a few
   records,
3. profile it with an accumulator program and flag the file if the error
   rate is unusual.

Run:  python examples/cobol_billing.py
"""

import importlib.resources as resources
import random

from repro.tools.accum import Accumulator
from repro.tools.cobol import translate
from repro.tools.datagen import ErrorInjector, garble_byte

N_RECORDS = 1500
ALERT_THRESHOLD = 0.01  # flag files with >1% bad records
INJECTION_RATE = 0.06   # corruptions hitting free-text bytes are invisible,
                        # so detected errors run well below the injected rate


def main() -> None:
    copybook = (resources.files("repro.gallery") / "billing.cpy").read_text()
    print("== copybook -> PADS description ==\n")
    translation = translate(copybook, "billing.cpy")
    print(translation.pads_source)
    print(f"(record type {translation.record_type}, "
          f"{translation.record_width} bytes per record)\n")

    billing = translation.compile()
    rng = random.Random(4000)

    # A synthetic day-file with a few corrupted records.
    injector = ErrorInjector(INJECTION_RATE, mutators=[garble_byte])
    records = []
    for _ in range(N_RECORDS):
        rep = billing.generate(translation.record_type, rng)
        raw = billing.write(rep, translation.record_type)
        records.append(injector.maybe_corrupt(raw, rng))
    data = b"".join(records)

    print(f"== profiling {N_RECORDS} records "
          f"({len(data)} bytes of EBCDIC/packed decimal) ==\n")
    acc = Accumulator(billing.node(translation.record_type))
    total = bad = 0
    for rep, pd in billing.records(data, translation.record_type):
        acc.add(rep, pd)
        total += 1
        bad += 1 if pd.nerr else 0

    amount = acc.field("bill_amount").self_acc
    print(acc.field("bill_amount").report(5))
    print()
    print(acc.field("service_class").report(5))

    rate = bad / total
    print(f"\nfile error rate: {bad}/{total} = {rate:.2%} "
          f"(injected {injector.injected} corruptions)")
    if rate > ALERT_THRESHOLD:
        print(f"ALERT: error rate above {ALERT_THRESHOLD:.0%} — "
              "route this feed for inspection")
    else:
        print("file looks healthy")

    # The other half of the Altair check: compare today's profile against
    # yesterday's to catch silent drift (a hijacked field, a new service
    # class) even when nothing is syntactically wrong.
    from repro.tools.drift import profile_and_compare
    yesterday = b"".join(
        billing.write(billing.generate(translation.record_type, rng),
                      translation.record_type)
        for _ in range(N_RECORDS))
    print("\n== drift vs yesterday's profile ==")
    report = profile_and_compare(billing, translation.record_type,
                                 yesterday, data)
    print(report.render())


if __name__ == "__main__":
    main()
