"""``repro.batch`` — the vectorized batch engine for column-regular data.

The cursor engines parse one record at a time: position a cursor,
consume fields, close the record scope.  For the paper's headline
workloads (call-detail streams, Cobol/EBCDIC layouts, fixed-field card
formats) every record has the *same* shape, so almost all of that
per-record work is redundant.  This module exploits the plan IR's width
analysis: when a record's layout is provably static — fixed columns at
fixed offsets — and the record discipline gives records a constant
pitch (``FixedWidthRecords``, or ``NewlineRecords`` over a fixed-width
payload), thousands of records parse per call through a *batch kernel*
(:func:`repro.plan.fastpath.compile_batch`):

* all fixed columns of every record in the batch split in one C-level
  ``struct.Struct.iter_unpack`` over a ``memoryview`` of the grid;
* literal and terminator columns verified for the whole batch at once
  with strided-slice compares;
* only unhoistable per-record work (non-native conversions, semantic
  constraints, rep construction) runs in the Python loop.

**Fallback contract.** The kernel marks any record it cannot prove
clean as ``None``; the driver re-parses exactly those records — plus
any stretch of input where the grid assumption fails (a torn record, a
truncated tail, CRLF terminators) — with the ordinary cursor engine at
the same absolute offsets and record indices.  Values, parse
descriptors, accumulators and deterministic metrics (modulo the
``batch.*`` counters) are therefore byte-identical to the serial
reference; the batch engine is an optimisation, never a semantic fork.

Entry points (also exposed as ``records_batch`` / ``accumulate_batch``
/ ``count_records_batch`` methods on both compiled-description
engines)::

    from repro import gallery
    cd = gallery.load_call_detail()
    for rep, pd in cd.records_batch(DATA, "call_t"):
        ...

Eligibility rules, the engine-selection matrix and the fallback
semantics are documented in ``docs/BATCH.md``.
"""

from __future__ import annotations

import os
from itertools import chain, repeat
from time import perf_counter
from typing import Iterable, Iterator, Optional, Tuple

from . import observe
from .core.errors import ErrCode, ErrorTally, PadsError, Pd
from .core.io import FixedWidthRecords, NewlineRecords, Source
from .core.masks import Mask, P_CheckAndSet
from .plan.ir import Verdict
from .tools.accum import DEFAULT_TRACKED, Accumulator

__all__ = [
    "BATCH_BYTES", "MAX_BATCH_RECORDS", "batch_verdict",
    "records_batch", "accumulate_batch", "count_records_batch",
]

#: Feeder span size: how much record-aligned input one grid pass covers.
BATCH_BYTES = 1 << 20
#: Records per kernel call (bounds the per-call rep list).
MAX_BATCH_RECORDS = 1 << 13


# -- eligibility ---------------------------------------------------------------


def _kernel_for(description, type_name: str):
    """``(width, kernel)`` when the engine carries a batch kernel for
    ``type_name``; a :class:`Verdict` explaining why not otherwise."""
    get = getattr(description, "batch_kernel", None)
    if get is None:
        return Verdict(False, "engine has no batch kernel support")
    info = get(type_name)
    if info is not None:
        return info
    plan = getattr(description, "plan", None)
    if plan is not None and type_name in plan.decls:
        dp = plan.decls[type_name]
        if not dp.batch_verdict.eligible:
            return dp.batch_verdict
        return Verdict(False, "batch kernels disabled (fastpath=False)")
    return Verdict(False, f"no batch kernel for {type_name!r}")


def _geometry(discipline, width: int):
    """``(stride, terminator)`` for a grid of ``width``-byte records
    under ``discipline``; a :class:`Verdict` when the discipline cannot
    give records a constant pitch."""
    if isinstance(discipline, FixedWidthRecords):
        if discipline.width != width:
            return Verdict(
                False, f"static record width {width} != fixed-width "
                f"discipline {discipline.width}")
        return width, b""
    if isinstance(discipline, NewlineRecords):
        return width + 1, b"\n"
    return Verdict(
        False, f"{type(discipline).__name__} records have no constant pitch")


def batch_verdict(description, type_name: str) -> Verdict:
    """The full engine-level verdict: plan layout × compiled kernel ×
    record-discipline geometry.  ``padsc plan`` shows the plan half;
    this is what ``--engine batch`` enforces."""
    info = _kernel_for(description, type_name)
    if isinstance(info, Verdict):
        return info
    width, _fn = info
    geo = _geometry(description.discipline, width)
    if isinstance(geo, Verdict):
        return geo
    stride, _term = geo
    return Verdict(True, f"{width}-byte columns at {stride}-byte pitch")


def _runtime_gate(description, mask: Optional[Mask]) -> Optional[str]:
    """Per-call conditions that force the cursor engine even for an
    eligible description (mirrors the record fast-path gate)."""
    if getattr(description, "limits", None) is not None:
        return "parse limits attached (budgets are accounted per-cursor)"
    obs = observe.CURRENT
    if obs is not None and obs.tracer is not None:
        return "active tracer (the event stream needs the cursor engine)"
    m = mask if mask is not None else Mask(P_CheckAndSet)
    if not ((m.bits & 1) and not m.fields and m.compound_level is None
            and m.elts is None):
        return "non-uniform or non-materialising mask"
    return None


# -- input feeding -------------------------------------------------------------


def _feed(data, discipline, chunk_bytes: int):
    """Record-aligned ``(bytes, absolute offset)`` spans for ``data``,
    or None when the input cannot be fed to the grid driver (an already
    open Source keeps the cursor path)."""
    if isinstance(data, (bytes, bytearray)):
        return iter([(bytes(data), 0)])
    if isinstance(data, str):
        return iter([(data.encode("latin-1"), 0)])
    if isinstance(data, Source):
        return None
    from .parallel import _binary_stream, _stream_chunks
    try:
        stream, owns = _binary_stream(data)
    except PadsError:
        return None

    def spans():
        try:
            yield from _stream_chunks(stream, discipline, chunk_bytes)
        finally:
            if owns:
                stream.close()

    return spans()


def _serial_input(description, data):
    if isinstance(data, os.PathLike):
        return description.open_file(os.fspath(data))
    return data


# -- the grid driver -----------------------------------------------------------


def _cursor_one(description, buf: bytes, pos: int, end: int, base: int,
                rec_idx: int, type_name: str, mask) -> Tuple[object, Pd, int]:
    """Cursor-parse exactly one record at ``pos`` (absolute ``base +
    pos``), rebasing its pd to the global record index.  Returns
    ``(rep, pd, consumed bytes)``."""
    from .parallel import _rebase_pd
    src = Source(buf[pos:end], discipline=description.discipline,
                 start=base + pos)
    rep, pd = description.parse(src, type_name, mask)
    _rebase_pd(pd, rec_idx, {})
    return rep, pd, src.pos - (base + pos)


def _drive(description, feed, type_name: str, mask, width: int, stride: int,
           term: bytes, kernel) -> Iterator[Iterable[Tuple[object, Pd]]]:
    """Yield *windows* — iterables of ``(rep, pd)`` pairs — so the common
    all-clean case streams through C-level ``zip``/``chain`` iteration
    with zero per-record Python bytecode in the driver.

    Clean records in an unmetered window share one flyweight clean
    ``Pd`` (content-identical to a fresh descriptor — treat it as
    read-only); fallback records and metered windows get real
    per-record descriptors.
    """
    obs = observe.CURRENT
    use_mask = mask if mask is not None else Mask(P_CheckAndSet)
    dosem = bool(use_mask.bits & 4)
    clean = Pd()
    rec_idx = 0
    for buf, base in feed:
        n_buf = len(buf)
        pos = 0
        while pos < n_buf:
            avail = n_buf - pos
            m = min(avail // stride, MAX_BATCH_RECORDS)
            k = m
            if m and term:
                # Grid verification for the whole window at once: the
                # terminator column must be all-terminator AND the window
                # must contain exactly one terminator per record — together
                # these prove every record is exactly ``width`` wide.
                hi = pos + m * stride
                if not (buf[pos + width:hi:stride] == term * m
                        and buf.count(term, pos, hi) == m):
                    # Misaligned somewhere: batch the aligned prefix, then
                    # let the cursor take one record at the tear.
                    k = 0
                    cur = pos
                    while k < m:
                        nxt = buf.find(term, cur, hi)
                        if nxt != cur + width:
                            break
                        cur = nxt + 1
                        k += 1
            if k:
                nbytes = k * stride
                grid = memoryview(buf)[pos:pos + nbytes]
                t0 = perf_counter()
                reps, miss = kernel(grid, k, stride, dosem)
                dt = (perf_counter() - t0) / k
                if obs is None and not miss:
                    # Hot path: whole window clean, metering off.
                    yield zip(reps, repeat(clean, k))
                    rec_idx += k
                else:
                    out = []
                    emit = out.append
                    fallbacks = 0
                    for i, rep in enumerate(reps):
                        off = pos + i * stride
                        if rep is None:
                            rep, pd, _ = _cursor_one(
                                description, buf, off, off + stride, base,
                                rec_idx, type_name, use_mask)
                            fallbacks += 1
                        else:
                            pd = Pd()
                            if obs is not None:
                                obs.record_parsed(type_name, pd, stride, dt,
                                                  start=base + off,
                                                  record=rec_idx)
                        emit((rep, pd))
                        rec_idx += 1
                    if obs is not None:
                        observe.count("batch.batches")
                        observe.count("batch.records", n=k - fallbacks)
                        observe.count("batch.bytes", n=nbytes)
                        if fallbacks:
                            observe.count("batch.fallback_records",
                                          n=fallbacks)
                    yield out
                pos += nbytes
                if k == m:
                    continue
            # A tail shorter than one grid pitch, or a record that broke
            # the grid: one cursor step, then try the grid again.
            if term:
                nxt = buf.find(term, pos)
                end = n_buf if nxt < 0 else nxt + len(term)
            else:
                end = min(pos + stride, n_buf)
            rep, pd, consumed = _cursor_one(description, buf, pos, end, base,
                                            rec_idx, type_name, use_mask)
            if consumed <= 0 or pd.err_code == ErrCode.AT_EOF:
                break
            if obs is not None:
                observe.count("batch.fallback_records")
            yield ((rep, pd),)
            rec_idx += 1
            pos += consumed


# -- worker-side window entry points -------------------------------------------
#
# ``repro.parallel`` workers and the streaming loop hand record-aligned
# windows here; a None return means "not batch-eligible, keep your
# cursor path", so callers never need to duplicate the eligibility
# logic.


class _RangeReader:
    """A bounded ``read``-only view of an open binary file (for feeding
    a worker's ``("file", path, start, end)`` window to the grid driver
    in record-aligned pieces)."""

    def __init__(self, handle, remaining: int):
        self._handle = handle
        self._remaining = remaining

    def read(self, size: int = -1) -> bytes:
        if self._remaining <= 0:
            return b""
        if size is None or size < 0 or size > self._remaining:
            size = self._remaining
        data = self._handle.read(size)
        self._remaining -= len(data)
        return data


def _window_feed(window, discipline, chunk_bytes: int):
    """Record-aligned ``(bytes, absolute offset)`` spans for one
    parallel worker window, or None for window shapes the grid driver
    cannot feed."""
    if window[0] == "bytes":
        _tag, chunk, offset = window
        return iter([(bytes(chunk), offset)])
    if window[0] == "file":
        _tag, path, start, end = window
        from .parallel import _stream_chunks

        def spans():
            with open(path, "rb") as handle:
                handle.seek(start)
                reader = _RangeReader(handle, end - start)
                for buf, off in _stream_chunks(reader, discipline,
                                               chunk_bytes):
                    yield buf, start + off

        return spans()
    return None


def window_records(description, window, type_name: str, mask=None, *,
                   chunk_bytes: int = BATCH_BYTES
                   ) -> Optional[Iterator[Tuple[object, Pd]]]:
    """Batch twin of one parallel worker window: the ``(rep, pd)``
    stream with *chunk-local* record indices (the parent reduce rebases
    them, exactly as for cursor workers) and absolute byte offsets.
    Returns None when the description, mask or window shape must stay
    on the cursor path."""
    verdict = batch_verdict(description, type_name)
    if not verdict.eligible or _runtime_gate(description, mask) is not None:
        return None
    feed = _window_feed(window, description.discipline, chunk_bytes)
    if feed is None:
        return None
    width, kernel = _kernel_for(description, type_name)
    stride, term = _geometry(description.discipline, width)
    return chain.from_iterable(
        _drive(description, feed, type_name, mask, width, stride, term,
               kernel))


def window_count(description, window) -> Optional[int]:
    """Batch twin of one worker's record count: pure discipline
    arithmetic over the window, or None to keep the cursor path."""
    disc = description.discipline
    if getattr(description, "limits", None) is not None:
        return None
    if isinstance(disc, FixedWidthRecords):
        width = disc.width
        if window[0] == "bytes":
            return -(-len(window[1]) // width)
        if window[0] == "file":
            _tag, _path, start, end = window
            return -(-(end - start) // width)
        return None
    if not isinstance(disc, NewlineRecords):
        return None
    if window[0] == "bytes":
        buf = window[1]
    elif window[0] == "file":
        _tag, path, start, end = window
        with open(path, "rb") as handle:
            handle.seek(start)
            buf = handle.read(end - start)
    else:
        return None
    if not buf:
        return 0
    total = buf.count(b"\n")
    if buf[-1] != 0x0A:
        total += 1  # unterminated final record
    return total


# -- public entry points -------------------------------------------------------


def records_batch(description, data, type_name: str, mask=None, *,
                  strict: bool = False,
                  chunk_bytes: int = BATCH_BYTES
                  ) -> Iterator[Tuple[object, Pd]]:
    """Batch twin of ``description.records``: yields the identical
    ``(rep, pd)`` stream, parsing eligible input grid-at-a-time.

    Falls back to the cursor engine — silently, like the parallel entry
    points — when the description, discipline, mask or input shape is
    outside the batch subset; ``strict=True`` raises
    :class:`~repro.core.errors.PadsError` instead (the ``--engine
    batch`` contract), at call time.
    """
    verdict = batch_verdict(description, type_name)
    reason = None if verdict.eligible else verdict.reason
    if reason is None:
        reason = _runtime_gate(description, mask)
    feed = None
    if reason is None:
        feed = _feed(data, description.discipline, chunk_bytes)
        if feed is None:
            reason = (f"cannot feed {type(data).__name__!r} to the grid "
                      "driver (need bytes, a path or a readable stream)")
    if reason is not None:
        if strict:
            raise PadsError(f"batch engine: {type_name}: {reason}")
        return description.records(_serial_input(description, data),
                                   type_name, mask)
    width, kernel = _kernel_for(description, type_name)
    stride, term = _geometry(description.discipline, width)
    # Flattening windows with ``chain`` keeps per-record iteration at C
    # speed; a ``yield from`` here would put a Python-level generator
    # frame back on every record.
    return chain.from_iterable(
        _drive(description, feed, type_name, mask, width, stride, term,
               kernel))


def accumulate_batch(description, data, record_type: str, mask=None, *,
                     tracked: int = DEFAULT_TRACKED,
                     summaries: bool = False,
                     strict: bool = False,
                     chunk_bytes: int = BATCH_BYTES
                     ) -> Tuple[Accumulator, ErrorTally]:
    """Batch twin of serial accumulation: folds every record into an
    :class:`~repro.tools.accum.Accumulator` and an
    :class:`~repro.core.errors.ErrorTally` (``tally.records`` is the
    record count), parsing grid-at-a-time when eligible."""
    acc = Accumulator(description.node(record_type), "<top>", tracked)
    if summaries:
        from .tools.summaries import attach_summaries
        attach_summaries(acc)
    tally = ErrorTally()
    for rep, pd in records_batch(description, data, record_type, mask,
                                 strict=strict, chunk_bytes=chunk_bytes):
        acc.add(rep, pd)
        tally.add(pd)
    return acc, tally


def count_records_batch(description, data, *, strict: bool = False,
                        chunk_bytes: int = BATCH_BYTES) -> int:
    """Batch twin of ``count_records``: pure discipline arithmetic —
    terminator counting (newline records) or size division (fixed-width
    records) over record-aligned spans, no field parsing at all."""
    disc = description.discipline
    reason = None
    if getattr(description, "limits", None) is not None:
        reason = "parse limits attached (budgets are accounted per-cursor)"
    elif not isinstance(disc, (FixedWidthRecords, NewlineRecords)):
        reason = f"{type(disc).__name__} records have no constant pitch"
    feed = None
    if reason is None:
        feed = _feed(data, disc, chunk_bytes)
        if feed is None:
            reason = (f"cannot feed {type(data).__name__!r} to the grid "
                      "driver (need bytes, a path or a readable stream)")
    if reason is not None:
        if strict:
            raise PadsError(f"batch engine: count_records: {reason}")
        return description.count_records(_serial_input(description, data))
    obs = observe.CURRENT
    total = 0
    if isinstance(disc, FixedWidthRecords):
        width = disc.width
        for buf, _ in feed:
            # Interior spans are record-aligned; only the final span may
            # end mid-record, which counts as one (short) record.
            total += -(-len(buf) // width)
            if obs is not None:
                observe.count("batch.bytes", n=len(buf))
        return total
    last = 0x0A
    seen = False
    for buf, _ in feed:
        if buf:
            total += buf.count(b"\n")
            last = buf[-1]
            seen = True
            if obs is not None:
                observe.count("batch.bytes", n=len(buf))
    if seen and last != 0x0A:
        total += 1  # unterminated final record
    return total
