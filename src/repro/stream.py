"""``repro.stream`` — bounded-memory incremental parsing.

The paper's generated libraries expose *record-at-a-time* entry points
precisely so that multi-gigabyte feeds (the 2.2 GB Sirius stream, web
logs) never have to fit in memory.  This module is that regime's front
door: it parses from **pipes, sockets and growing files** through a
sliding window (:class:`repro.core.io.StreamSource`), keeping O(window)
bytes resident regardless of input size, and — for chunkable record
disciplines — can pipeline a live stream into the parallel engine
without waiting for EOF (:func:`repro.parallel.parallel_records_stream`).

Entry points (also exposed as ``records_stream`` / ``accumulate_stream``
methods on both compiled-description engines)::

    import sys
    from repro import compile_description
    from repro.stream import records_stream

    clf = compile_description(CLF)
    for rep, pd in records_stream(clf, sys.stdin.buffer, "entry_t"):
        ...                       # one record resident at a time

    # tail -f a growing log, giving up after 5 idle seconds
    for rep, pd in clf.records_stream("/var/log/access.log", "entry_t",
                                      follow=True, idle_timeout=5.0):
        ...

Memory model, window sizing and the follow discipline are documented in
``docs/STREAMING.md``; the ``stream.*`` observability counters in
``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

import os
import pathlib as _pathlib
from typing import Iterator, Optional, Tuple

from .core.errors import ErrorTally, PadsError, Pd
from .core.io import (
    DEFAULT_STREAM_WINDOW,
    RecordDiscipline,
    Source,
    StreamSource,
)
from .core.limits import ParseLimits
from .tools.accum import DEFAULT_TRACKED, Accumulator

__all__ = [
    "DEFAULT_STREAM_WINDOW", "StreamSource", "open_stream",
    "records_stream", "accumulate_stream", "count_records_stream",
]


def open_stream(data, discipline: Optional[RecordDiscipline] = None, *,
                window: Optional[int] = None,
                follow: bool = False,
                poll_interval: float = 0.05,
                idle_timeout: Optional[float] = None,
                limits: Optional[ParseLimits] = None) -> StreamSource:
    """Build a :class:`StreamSource` from whatever the caller has.

    ``data`` may be a path (opened and owned), an integer file
    descriptor, a socket (read through ``makefile("rb")``), any object
    with a ``read`` method (pipes, ``sys.stdin.buffer``), or an
    already-open :class:`StreamSource` (passed through unchanged —
    the per-call options are ignored in that case).
    """
    if isinstance(data, StreamSource):
        return data
    kwargs = dict(window=window if window is not None else DEFAULT_STREAM_WINDOW,
                  follow=follow, poll_interval=poll_interval,
                  idle_timeout=idle_timeout, limits=limits)
    if isinstance(data, (str, os.PathLike)):
        return StreamSource(open(os.fspath(data), "rb"), discipline,
                            owns_stream=True, **kwargs)
    if isinstance(data, int) and not isinstance(data, bool):
        return StreamSource(os.fdopen(data, "rb"), discipline,
                            owns_stream=True, **kwargs)
    if hasattr(data, "makefile"):  # socket.socket
        return StreamSource(data.makefile("rb"), discipline,
                            owns_stream=True, **kwargs)
    if hasattr(data, "read"):
        return StreamSource(data, discipline, **kwargs)
    raise PadsError(f"cannot stream from {type(data).__name__!r}: need a "
                    "path, fd, socket, or a readable binary object")


def _index_sink_for(data, follow: bool, index):
    """The ``(IndexBuilder, path)`` a streaming pass should feed as a
    side effect, or ``(None, None)``.

    Only real, seekable files get an index (pipes/sockets/fds have no
    stable offsets to bind to) and only complete passes (``follow``
    tails never see EOF, so they could never seal a footer).  ``index``
    is False, True (default sampling interval) or an int interval.
    """
    if not index or follow:
        return None, None
    if not isinstance(data, (str, os.PathLike)) \
            or not os.path.isfile(os.fspath(data)):
        return None, None
    from .durable import DEFAULT_INDEX_INTERVAL, IndexBuilder
    interval = index if isinstance(index, int) and not isinstance(index, bool) \
        else DEFAULT_INDEX_INTERVAL
    return IndexBuilder(interval), os.fspath(data)


def _publish_index(builder, path: str, discipline) -> None:
    from .durable import write_index
    write_index(path, builder, discipline)


def records_stream(description, data, type_name: str, mask=None, *,
                   window: Optional[int] = None,
                   follow: bool = False,
                   poll_interval: float = 0.05,
                   idle_timeout: Optional[float] = None,
                   index=False,
                   ) -> Iterator[Tuple[object, Pd]]:
    """Bounded-memory twin of ``description.records``.

    Yields ``(rep, pd)`` pairs exactly as the slurped path would (the
    differential sweep in ``tests/test_stream.py`` pins them
    byte-identical), but reads through a sliding window, so a feed of
    any size — or an endless one under ``follow=True`` — parses in
    O(window) memory.  The source is closed when the iterator is
    exhausted or dropped.

    Batch-eligible descriptions (:mod:`repro.batch`) hand the feed to
    the grid driver instead, record-aligned chunk by chunk — still
    bounded memory, but without the sliding-window bookkeeping (so the
    ``stream.*`` metrics stay at zero on that path).  ``follow=True``
    and already-open :class:`StreamSource` inputs always take the
    cursor path.
    """
    builder, index_path = _index_sink_for(data, follow, index)
    if (builder is None and not follow and not isinstance(data, StreamSource)
            and not isinstance(data, (bytes, bytearray))):
        from .batch import (
            BATCH_BYTES, _runtime_gate, batch_verdict, records_batch)
        if (batch_verdict(description, type_name).eligible
                and _runtime_gate(description, mask) is None):
            # A str names a *path* here (open_stream semantics), while
            # the batch feeder would read it as literal data.
            feed = _pathlib.Path(data) if isinstance(data, str) else data
            chunk = (max(1, min(window, BATCH_BYTES)) if window
                     else BATCH_BYTES)
            yield from records_batch(description, feed, type_name, mask,
                                     chunk_bytes=chunk)
            return
    src = open_stream(data, description.discipline, window=window,
                      follow=follow, poll_interval=poll_interval,
                      idle_timeout=idle_timeout,
                      limits=getattr(description, "limits", None))
    if builder is not None:
        src.index_sink = builder
    try:
        yield from description.records(src, type_name, mask)
        # Reaching here means a clean EOF: every boundary was seen, so
        # the index can be sealed.  An abandoned iterator publishes
        # nothing (a partial footer would under-report the file).
        if builder is not None:
            _publish_index(builder, index_path, description.discipline)
    finally:
        src.close()


def accumulate_stream(description, data, record_type: str, mask=None, *,
                      tracked: int = DEFAULT_TRACKED,
                      summaries: bool = False,
                      window: Optional[int] = None,
                      follow: bool = False,
                      poll_interval: float = 0.05,
                      idle_timeout: Optional[float] = None,
                      index=False,
                      ) -> Tuple[Accumulator, ErrorTally]:
    """Bounded-memory accumulation: fold every record of a stream into
    an :class:`~repro.tools.accum.Accumulator` and an
    :class:`~repro.core.errors.ErrorTally` (``tally.records`` is the
    record count).  The accumulator is O(tracked values), the parse is
    O(window): profiling a feed never needs the feed in memory."""
    acc = Accumulator(description.node(record_type), "<top>", tracked)
    if summaries:
        from .tools.summaries import attach_summaries
        attach_summaries(acc)
    tally = ErrorTally()
    for rep, pd in records_stream(description, data, record_type, mask,
                                  window=window, follow=follow,
                                  poll_interval=poll_interval,
                                  idle_timeout=idle_timeout, index=index):
        acc.add(rep, pd)
        tally.add(pd)
    return acc, tally


def count_records_stream(description, data, *,
                         window: Optional[int] = None,
                         follow: bool = False,
                         poll_interval: float = 0.05,
                         idle_timeout: Optional[float] = None,
                         index=False) -> int:
    """Bounded-memory record count (record discipline only, no field
    parsing) — the paper's record-counting floor over a live stream.
    Constant-pitch disciplines count by arithmetic over record-aligned
    chunks (:func:`repro.batch.count_records_batch`) when the feed is
    finite."""
    builder, index_path = _index_sink_for(data, follow, index)
    if (builder is None and not follow and not isinstance(data, StreamSource)
            and not isinstance(data, (bytes, bytearray))
            and getattr(description, "limits", None) is None):
        from .batch import count_records_batch
        from .core.io import FixedWidthRecords, NewlineRecords
        if isinstance(description.discipline,
                      (FixedWidthRecords, NewlineRecords)):
            feed = _pathlib.Path(data) if isinstance(data, str) else data
            return count_records_batch(description, feed)
    src = open_stream(data, description.discipline, window=window,
                      follow=follow, poll_interval=poll_interval,
                      idle_timeout=idle_timeout,
                      limits=getattr(description, "limits", None))
    if builder is not None:
        src.index_sink = builder
    count = 0
    with src:
        while src.begin_record():
            src.end_record()
            count += 1
    if builder is not None:
        _publish_index(builder, index_path, description.discipline)
    return count
