"""``repro.durable`` — crash-safe checkpoint/resume and the persistent
record-boundary index.

The paper's headline workloads are long passes over archival feeds (the
2.2 GB Sirius dataset); a killed process used to throw away every parsed
byte, and every run re-discovered record boundaries from scratch.  This
module makes long runs *durable*:

* **Record-boundary index** (``<data>.padsidx``).  Sealed-record start
  offsets sampled every ``index_interval`` records, written as a cheap
  side effect of any full pass (one attribute test per record in
  :meth:`repro.core.io.Source.end_record`).  The file binds itself to
  its source (size, mtime, content-prefix CRC) and every line carries a
  CRC32, so a stale, torn or truncated index is *rejected* — the caller
  falls back to a full scan, never to wrong answers.  A valid index
  gives O(1) seek to record N (:func:`seek_record` /
  :func:`open_at_record`) and scan-free parallel chunk planning
  (:func:`plan_chunks_indexed`) — including for record disciplines that
  cannot be split by scanning at all (length-prefixed records).

* **Checkpointed runs** (``<data>.padsckpt``).  The durable entry
  points (:func:`records_durable`, :func:`accumulate_durable`,
  :func:`count_records_durable`) periodically persist an atomic
  checkpoint — tmp file + fsync + rename — holding the resume offset,
  the serialized mergeable accumulator/tally/metrics state and the pd
  error accounting.  After a crash (SIGKILL included; see the
  kill-resume scenario in :mod:`repro.faults`) the same call with
  ``resume=True`` continues mid-file and produces final reports,
  error totals and observe metrics identical to an uninterrupted run.
  A checkpoint that fails its CRC or no longer matches the source file
  is rejected (``checkpoint.rejected``) and the run simply starts over.

Formats, invalidation rules and resume semantics are documented in
``docs/ROBUSTNESS.md``; the ``checkpoint.*`` / ``index.*`` metrics in
``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

import json
import os
import pickle
import zlib
from bisect import bisect_left
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Tuple

from . import observe
from .core.errors import ErrorTally, PadsError, Pd
from .core.io import (
    DEFAULT_STREAM_WINDOW,
    MIN_CHUNK_BYTES,
    RecordDiscipline,
    Source,
    StreamSource,
)
from .observe.metrics import MetricsRegistry
from .tools.accum import DEFAULT_TRACKED, Accumulator

__all__ = [
    "DEFAULT_INDEX_INTERVAL", "DEFAULT_CHECKPOINT_INTERVAL",
    "INDEX_SUFFIX", "CHECKPOINT_SUFFIX",
    "BoundaryIndex", "IndexBuilder",
    "index_path_for", "checkpoint_path_for",
    "build_index", "load_index", "write_index",
    "seek_record", "open_at_record", "plan_chunks_indexed",
    "indexed_file_chunks",
    "records_durable", "accumulate_durable", "count_records_durable",
]

#: Sample a record-start offset every this many records.  ~8 bytes of
#: JSON per sample: the paper's 11.8M-record file indexes in ~100 KB.
DEFAULT_INDEX_INTERVAL = 1000

#: Persist a checkpoint every this many records (serial/stream paths;
#: the parallel path checkpoints after every reduced chunk).  Chosen so
#: checkpoint cost stays well under 5% of parse throughput
#: (``benchmarks/bench_durable.py`` gates this).
DEFAULT_CHECKPOINT_INTERVAL = 10_000

INDEX_SUFFIX = ".padsidx"
CHECKPOINT_SUFFIX = ".padsckpt"

#: Bytes of the source file hashed into the binding.  A prefix (not the
#: whole file) keeps binding O(1); size+mtime changes catch appends.
_PREFIX_LEN = 1 << 16

_INDEX_MAGIC = "padsidx"
_INDEX_VERSION = 1
_CKPT_MAGIC = b"PADSCKPT1\n"
_CKPT_VERSION = 1

#: Test hook: raise :class:`_InjectedCrash` once this many records (or,
#: on the parallel path, chunks) have been processed — *after* any
#: checkpoint due at that point was written.  Simulates a hard kill
#: deterministically; the real-SIGKILL scenario lives in
#: :mod:`repro.faults`.
_CRASH_AFTER: Optional[int] = None


class _InjectedCrash(BaseException):
    """Simulated hard crash (BaseException so no handler under test can
    absorb it the way a real SIGKILL cannot be absorbed)."""


# -- source binding -----------------------------------------------------------


def _crc(data: bytes) -> int:
    return zlib.crc32(data) & 0xFFFFFFFF


def source_binding(path: str) -> dict:
    """Fingerprint ``path`` so durable artifacts can prove they still
    describe it: size, mtime and a CRC of the leading bytes."""
    st = os.stat(path)
    with open(path, "rb") as handle:
        prefix = handle.read(_PREFIX_LEN)
    return {
        "size": st.st_size,
        "mtime_ns": st.st_mtime_ns,
        "prefix_len": len(prefix),
        "prefix_crc32": _crc(prefix),
    }


def _binding_matches(binding: dict, path: str) -> bool:
    try:
        current = source_binding(path)
    except OSError:
        return False
    return current == binding


def _discipline_sig(discipline: RecordDiscipline) -> dict:
    """The discipline parameters a boundary offset depends on.  An index
    built under a different discipline yields offsets that are not
    boundaries at all, so it must be rejected."""
    sig: dict = {"kind": type(discipline).__name__}
    for attr in ("width", "prefix", "byteorder", "inclusive"):
        if hasattr(discipline, attr):
            sig[attr] = getattr(discipline, attr)
    return sig


def _atomic_write(path: str, data: bytes) -> None:
    """tmp file + fsync + rename: a reader sees the old artifact or the
    complete new one, never a torn write."""
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "wb") as handle:
        handle.write(data)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)


# -- the record-boundary index -------------------------------------------------


def index_path_for(path: str) -> str:
    return os.fspath(path) + INDEX_SUFFIX


def checkpoint_path_for(path: str) -> str:
    return os.fspath(path) + CHECKPOINT_SUFFIX


@dataclass
class BoundaryIndex:
    """A loaded, validated ``.padsidx``.

    ``offsets[k]`` is the byte offset where record ``k * interval``
    begins; ``offsets[0]`` is always 0.  ``records`` and ``size`` come
    from the footer, written only after a clean full pass.
    """

    interval: int
    discipline: dict
    binding: dict
    offsets: List[int]
    records: int
    size: int


class IndexBuilder:
    """Samples record boundaries during a pass; install as a
    :class:`~repro.core.io.Source`'s ``index_sink``.

    ``note(record_idx, next_start)`` is called at sealed-byte retirement
    (``end_record``) — the only per-record cost of building the index is
    one modulo.  ``state()``/``restore()`` round-trip the builder through
    a checkpoint so a crash-resumed run still finishes its index.
    """

    __slots__ = ("interval", "offsets", "records", "end")

    def __init__(self, interval: int = DEFAULT_INDEX_INTERVAL):
        self.interval = max(1, interval)
        self.offsets: List[int] = [0]
        self.records = 0
        self.end = 0

    def note(self, record_idx: int, next_start: int) -> None:
        n = record_idx + 1  # records sealed so far
        self.records = n
        self.end = next_start
        if n % self.interval == 0:
            self.offsets.append(next_start)
            observe.count("index.samples")

    def state(self) -> dict:
        return {"interval": self.interval, "offsets": list(self.offsets),
                "records": self.records, "end": self.end}

    @classmethod
    def restore(cls, state: dict) -> "IndexBuilder":
        builder = cls(state["interval"])
        builder.offsets = list(state["offsets"])
        builder.records = state["records"]
        builder.end = state["end"]
        return builder


def _index_lines(builder: IndexBuilder, discipline: RecordDiscipline,
                 binding: dict) -> List[dict]:
    return [
        {"magic": _INDEX_MAGIC, "version": _INDEX_VERSION,
         "interval": builder.interval,
         "discipline": _discipline_sig(discipline), "source": binding},
        {"offsets": builder.offsets},
        {"eof": True, "records": builder.records, "size": binding["size"]},
    ]


def write_index(path: str, builder: IndexBuilder,
                discipline: RecordDiscipline, *,
                out: Optional[str] = None) -> str:
    """Write ``builder``'s samples as ``<path>.padsidx`` (atomic).

    Each line is compact JSON + TAB + its own CRC32, so truncation or a
    flipped bit anywhere invalidates the artifact instead of skewing
    offsets."""
    binding = source_binding(path)
    lines = []
    for obj in _index_lines(builder, discipline, binding):
        body = json.dumps(obj, sort_keys=True, separators=(",", ":"))
        lines.append(f"{body}\t{_crc(body.encode('ascii')):08x}\n")
    target = out or index_path_for(path)
    _atomic_write(target, "".join(lines).encode("ascii"))
    observe.count("index.built")
    return target


def _reject_index(reason: str) -> None:
    observe.count("index.rejected")
    observe.count("index.rejected_reason", reason)


def load_index(path: str, discipline: Optional[RecordDiscipline] = None,
               *, index_path: Optional[str] = None) -> Optional[BoundaryIndex]:
    """Load and validate ``<path>.padsidx``.

    Returns None when no index exists (silently) or when one exists but
    fails any integrity or binding check (counted in ``index.rejected``):
    bad/missing CRC on any line, missing footer (torn write), version or
    magic mismatch, discipline mismatch, or a source file whose size,
    mtime or content prefix no longer match the binding.  Rejection is
    always safe — callers fall back to a full scan.
    """
    idx_file = index_path or index_path_for(path)
    try:
        with open(idx_file, "r", encoding="ascii") as handle:
            raw_lines = handle.read().splitlines()
    except (OSError, UnicodeDecodeError):
        if os.path.exists(idx_file):
            _reject_index("unreadable")
            return None
        return None
    parsed = []
    for raw in raw_lines:
        body, tab, crc_hex = raw.rpartition("\t")
        if not tab:
            _reject_index("format")
            return None
        try:
            if int(crc_hex, 16) != _crc(body.encode("ascii")):
                _reject_index("crc")
                return None
            parsed.append(json.loads(body))
        except (ValueError, UnicodeEncodeError):
            _reject_index("crc")
            return None
    if len(parsed) != 3 or not parsed[-1].get("eof"):
        _reject_index("torn")
        return None
    header, offsets_line, footer = parsed
    if header.get("magic") != _INDEX_MAGIC \
            or header.get("version") != _INDEX_VERSION:
        _reject_index("version")
        return None
    if discipline is not None \
            and header.get("discipline") != _discipline_sig(discipline):
        _reject_index("discipline")
        return None
    binding = header.get("source") or {}
    if not _binding_matches(binding, path):
        _reject_index("stale")
        return None
    offsets = offsets_line.get("offsets")
    if not isinstance(offsets, list) or not offsets or offsets[0] != 0 \
            or any(b < a for a, b in zip(offsets, offsets[1:])):
        _reject_index("offsets")
        return None
    return BoundaryIndex(interval=header["interval"],
                         discipline=header.get("discipline", {}),
                         binding=binding, offsets=offsets,
                         records=footer["records"], size=footer["size"])


def build_index(description, path: str, *,
                interval: int = DEFAULT_INDEX_INTERVAL,
                out: Optional[str] = None) -> Tuple[BoundaryIndex, str]:
    """Build an index with a record-discipline-only pass (no field
    parsing — the record-counting floor's cost).  Returns the loaded
    index and the path it was written to."""
    builder = IndexBuilder(interval)
    src = Source.from_file(os.fspath(path), description.discipline)
    src.index_sink = builder
    with src:
        while src.begin_record():
            src.end_record()
    target = write_index(os.fspath(path), builder, description.discipline,
                         out=out)
    idx = load_index(os.fspath(path), description.discipline,
                     index_path=target)
    assert idx is not None, "freshly written index failed validation"
    return idx, target


# -- index consumers: seek and chunk planning ----------------------------------


def seek_record(index: BoundaryIndex, n: int) -> Tuple[int, int]:
    """``(byte_offset, base_record)`` of the nearest sampled boundary at
    or before record ``n`` — at most ``interval - 1`` records of forward
    scan remain."""
    if n < 0:
        raise ValueError("record index must be >= 0")
    k = min(n // index.interval, len(index.offsets) - 1)
    return index.offsets[k], k * index.interval


def open_at_record(description, path: str, n: int,
                   index: Optional[BoundaryIndex] = None) -> Optional[Source]:
    """A :class:`Source` positioned exactly at record ``n`` via the
    index (O(1) seek + bounded scan), or None when no valid index exists
    or ``n`` is past the end.  ``record_idx`` is rebased so locations
    match a scan from the start."""
    idx = index or load_index(os.fspath(path), description.discipline)
    if idx is None or n >= idx.records:
        return None
    offset, base = seek_record(idx, n)
    src = Source.from_file(os.fspath(path), description.discipline,
                           limits=getattr(description, "limits", None),
                           start=offset)
    src.record_idx = base - 1
    for _ in range(n - base):
        if not src.begin_record():
            src.close()
            return None
        src.end_record()
    observe.count("index.hits")
    return src


def plan_chunks_indexed(index: BoundaryIndex, n_chunks: int,
                        min_chunk: int = MIN_CHUNK_BYTES,
                        start: int = 0) -> Optional[List[Tuple[int, int]]]:
    """Record-aligned ``(start, end)`` ranges tiling ``[start, size)``
    from sampled boundaries alone — no file IO.  Mirrors
    :func:`repro.core.io.plan_chunks` semantics (None when splitting is
    not worthwhile); cuts land on sampled boundaries, which is an
    equally valid record-aligned tiling."""
    size = index.binding["size"]
    span = size - start
    if span <= 0 or n_chunks <= 1:
        return None
    n_chunks = min(n_chunks, max(1, span // max(1, min_chunk)))
    if n_chunks <= 1:
        return None
    boundaries = index.offsets
    cuts = [start]
    for i in range(1, n_chunks):
        target = start + span * i // n_chunks
        j = bisect_left(boundaries, target)
        boundary = boundaries[j] if j < len(boundaries) else size
        if cuts[-1] < boundary < size:
            cuts.append(boundary)
    cuts.append(size)
    if len(cuts) <= 2:
        return None
    return list(zip(cuts, cuts[1:]))


def indexed_file_chunks(path: str, discipline: RecordDiscipline,
                        n_chunks: int, min_chunk: int = MIN_CHUNK_BYTES,
                        start: int = 0) -> Optional[List[Tuple[int, int]]]:
    """Chunk plan for ``path`` from its persistent index, or None (no
    index, invalid index, or not worth splitting).  This is what lets
    the parallel engine skip boundary re-discovery — and split record
    disciplines that have no scannable boundaries at all."""
    index = load_index(path, discipline)
    if index is None:
        return None
    plan = plan_chunks_indexed(index, n_chunks, min_chunk, start)
    if plan is not None:
        observe.count("index.hits")
    return plan


# -- checkpoints ---------------------------------------------------------------


def _write_checkpoint(path: str, payload: dict) -> None:
    blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    frame = b"".join([_CKPT_MAGIC, _crc(blob).to_bytes(4, "big"),
                      len(blob).to_bytes(8, "big"), blob])
    observe.count("checkpoint.writes")
    _atomic_write(path, frame)


def _reject_checkpoint(reason: str) -> None:
    observe.count("checkpoint.rejected")
    observe.count("checkpoint.rejected_reason", reason)


def _load_checkpoint(path: str) -> Optional[dict]:
    try:
        with open(path, "rb") as handle:
            frame = handle.read()
    except OSError:
        return None
    head = len(_CKPT_MAGIC)
    if not frame.startswith(_CKPT_MAGIC) or len(frame) < head + 12:
        _reject_checkpoint("format")
        return None
    crc = int.from_bytes(frame[head:head + 4], "big")
    length = int.from_bytes(frame[head + 4:head + 12], "big")
    blob = frame[head + 12:]
    if len(blob) != length or _crc(blob) != crc:
        _reject_checkpoint("crc")
        return None
    try:
        payload = pickle.loads(blob)
    except Exception:
        _reject_checkpoint("unpicklable")
        return None
    if not isinstance(payload, dict) or payload.get("version") != _CKPT_VERSION:
        _reject_checkpoint("version")
        return None
    return payload


# -- durable run state ---------------------------------------------------------


@dataclass
class _RunState:
    """Everything a durable run persists between crashes."""

    mode: str                    # 'records' | 'accumulate' | 'count'
    record_type: Optional[str]
    binding: dict
    interval: int
    offset: int = 0              # serial/stream resume offset
    records_done: int = 0
    total_errors: int = 0        # Source.total_errors (max_errors budget)
    count: int = 0               # count mode
    tally: Optional[ErrorTally] = None
    acc: Optional[Accumulator] = None
    metrics: Optional[MetricsRegistry] = None
    windows: Optional[list] = None   # parallel chunk plan (pinned on resume)
    chunks_done: int = 0
    index_builder: Optional[dict] = None
    resumed: bool = False

    def payload(self) -> dict:
        return {
            "version": _CKPT_VERSION, "mode": self.mode,
            "record_type": self.record_type, "binding": self.binding,
            "interval": self.interval, "offset": self.offset,
            "records_done": self.records_done,
            "total_errors": self.total_errors, "count": self.count,
            "tally": self.tally, "acc": self.acc, "metrics": self.metrics,
            "windows": self.windows, "chunks_done": self.chunks_done,
            "index_builder": self.index_builder,
        }


def _resume_state(ckpt_path: str, path: str, mode: str,
                  record_type: Optional[str], interval: int,
                  binding: dict) -> Optional[_RunState]:
    """The checkpointed state to continue from, or None (no checkpoint,
    or one that failed validation — the run starts over either way)."""
    payload = _load_checkpoint(ckpt_path)
    if payload is None:
        return None
    if payload.get("mode") != mode or payload.get("record_type") != record_type:
        _reject_checkpoint("mode")
        return None
    if payload.get("binding") != binding:
        _reject_checkpoint("stale")
        return None
    state = _RunState(mode=mode, record_type=record_type, binding=binding,
                      interval=payload["interval"],
                      offset=payload["offset"],
                      records_done=payload["records_done"],
                      total_errors=payload["total_errors"],
                      count=payload["count"], tally=payload["tally"],
                      acc=payload["acc"], metrics=payload["metrics"],
                      windows=payload["windows"],
                      chunks_done=payload["chunks_done"],
                      index_builder=payload["index_builder"], resumed=True)
    observe.count("checkpoint.resumes")
    observe.count("checkpoint.records_skipped", n=state.records_done)
    return state


@contextmanager
def _metered(restored: Optional[MetricsRegistry]):
    """Run the durable loop under its own child registry so metric state
    can be checkpointed; merge into the enclosing observer at clean
    completion.  No observer active -> no metering (yields None)."""
    parent = observe.CURRENT
    if parent is None:
        yield None
        return
    with observe.observed(metrics=restored or MetricsRegistry()) as obs:
        yield obs
    parent.metrics.merge(obs.metrics)


def _open_resume_source(description, path: str, offset: int,
                        engine: str, window: Optional[int]) -> Source:
    limits = getattr(description, "limits", None)
    if engine == "stream":
        handle = open(path, "rb")
        handle.seek(offset)
        src = StreamSource(handle, description.discipline,
                           window=window or DEFAULT_STREAM_WINDOW,
                           limits=limits, owns_stream=True)
        # StreamSource has no ``start``: rebase the absolute cursor onto
        # the pre-seeked handle (the buffer is still empty here).
        src._base = src.pos = offset
        src.rec_start = src.rec_end = src.rec_next = offset
        return src
    return Source.from_file(path, description.discipline, start=offset,
                            limits=limits)


def _fresh_accumulator(description, record_type: str, tracked: int,
                       summaries: bool) -> Accumulator:
    acc = Accumulator(description.node(record_type), "<top>", tracked)
    if summaries:
        from .tools.summaries import attach_summaries
        attach_summaries(acc)
    return acc


def _maybe_crash(done: int) -> None:
    if _CRASH_AFTER is not None and done >= _CRASH_AFTER:
        raise _InjectedCrash(f"injected crash after {done}")


def _finish(ckpt_path: Optional[str], state: _RunState, path: str,
            discipline: RecordDiscipline) -> None:
    """Clean completion: publish the side-effect index, drop the
    checkpoint."""
    if state.index_builder is not None:
        builder = IndexBuilder.restore(state.index_builder)
        write_index(path, builder, discipline)
    if ckpt_path is not None:
        try:
            os.unlink(ckpt_path)
        except OSError:
            pass


class _DurableRun:
    """Shared scaffolding for the three durable entry points: state
    load/init, checkpoint cadence, index side-effects, completion."""

    def __init__(self, description, path, mode: str,
                 record_type: Optional[str], *,
                 checkpoint, interval: int, resume: bool,
                 jobs: Optional[int], engine: str, window: Optional[int],
                 build_index: bool, index_interval: int):
        self.description = description
        self.path = os.fspath(path)
        if not os.path.isfile(self.path):
            raise PadsError(f"durable runs need a seekable file, "
                            f"not {self.path!r}")
        if engine not in ("serial", "stream"):
            raise PadsError(f"unknown durable engine {engine!r} "
                            "(use 'serial' or 'stream')")
        self.mode = mode
        self.record_type = record_type
        self.engine = engine
        self.window = window
        self.jobs = jobs if jobs is not None else 1
        cur = observe.CURRENT
        if cur is not None and cur.tracer is not None:
            self.jobs = 1  # tracing pins the serial path (complete stream)
        self.interval = max(1, interval)
        self.binding = source_binding(self.path)
        if checkpoint is None and resume:
            checkpoint = True
        self.ckpt_path: Optional[str] = None
        if checkpoint:
            self.ckpt_path = checkpoint if isinstance(checkpoint, str) \
                else checkpoint_path_for(self.path)
        self.state: Optional[_RunState] = None
        if resume and self.ckpt_path is not None:
            self.state = _resume_state(self.ckpt_path, self.path, mode,
                                       record_type, self.interval,
                                       self.binding)
        if self.state is None:
            self.state = _RunState(mode=mode, record_type=record_type,
                                   binding=self.binding,
                                   interval=self.interval)
        # Side-effect index: built when asked for, unless a valid one
        # already exists.  A resumed run continues its builder from the
        # checkpoint; a resumed run whose checkpoint predates the flag
        # (builder is None but records were done) cannot sample the
        # skipped prefix and skips building.
        self.index = load_index(self.path, description.discipline)
        if build_index and self.index is None \
                and not (self.state.resumed and self.state.index_builder is None):
            if self.state.index_builder is None:
                self.state.index_builder = IndexBuilder(index_interval).state()

    # -- pieces ------------------------------------------------------------

    def _sink(self) -> Optional[IndexBuilder]:
        if self.state.index_builder is None:
            return None
        return IndexBuilder.restore(self.state.index_builder)

    def _checkpoint(self, src: Optional[Source],
                    obs, builder: Optional[IndexBuilder]) -> None:
        state = self.state
        if src is not None:
            state.offset = src.pos
            state.total_errors = src.total_errors
        if builder is not None:
            state.index_builder = builder.state()
        state.metrics = obs.metrics if obs is not None else None
        if self.ckpt_path is not None:
            _write_checkpoint(self.ckpt_path, state.payload())

    def _serial_source(self) -> Source:
        src = _open_resume_source(self.description, self.path,
                                  self.state.offset, self.engine, self.window)
        # Rebase so record indices in locations and metrics continue the
        # pre-crash numbering.
        src.record_idx = self.state.records_done - 1
        src.total_errors = self.state.total_errors
        builder = self._sink()
        if builder is not None:
            src.index_sink = builder
        return src

    def _plan(self) -> Optional[list]:
        """The (resume-pinned) parallel window list, or None for the
        serial path.  Planning prefers the persistent index; the plan is
        stored in the checkpoint so a resumed run re-reduces the exact
        same chunks."""
        if self.jobs <= 1 or self.engine == "stream":
            return None
        if self.state.windows is not None:
            return self.state.windows
        if self.state.records_done:
            return None  # resumed mid-serial-pass: stay serial
        from . import parallel as _parallel
        plan = _parallel._plan_windows(self.description,
                                       _PathData(self.path), self.jobs)
        if plan is None:
            return None
        windows, self.jobs = plan
        self.state.windows = windows
        # Chunked workers sample no boundaries; the index side effect is
        # the serial/stream passes' job.
        self.state.index_builder = None
        return windows

    def finish(self) -> None:
        _finish(self.ckpt_path, self.state, self.path,
                self.description.discipline)


class _PathData(os.PathLike):
    """Minimal PathLike so durable avoids importing pathlib for one call."""

    def __init__(self, path: str):
        self._path = path

    def __fspath__(self) -> str:
        return self._path


# -- durable entry points ------------------------------------------------------


def accumulate_durable(description, path, record_type: str, mask=None, *,
                       checkpoint=True,
                       interval: int = DEFAULT_CHECKPOINT_INTERVAL,
                       resume: bool = False,
                       jobs: Optional[int] = None,
                       engine: str = "serial",
                       window: Optional[int] = None,
                       tracked: int = DEFAULT_TRACKED,
                       summaries: bool = False,
                       build_index: bool = True,
                       index_interval: int = DEFAULT_INDEX_INTERVAL,
                       ) -> Tuple[Accumulator, ErrorTally]:
    """Checkpointed accumulation over a file: ``(acc, tally)``, where
    ``tally.records`` is the record count.

    ``checkpoint`` is True (default path: ``<path>.padsckpt``), a path,
    or None to run the same loop without persistence.  ``resume=True``
    continues from a valid checkpoint — final reports, error accounting
    and observe parse metrics are identical to an uninterrupted run
    (``tests/test_durable.py`` pins this per gallery description; the
    same caveats as the parallel engine apply to ``summaries`` and
    value tables past ``tracked``).  A missing/corrupt/stale checkpoint
    is counted in ``checkpoint.rejected`` and the run starts over.
    ``mask`` is not checkpointed: pass the same mask when resuming.
    """
    run = _DurableRun(description, path, "accumulate", record_type,
                      checkpoint=checkpoint, interval=interval, resume=resume,
                      jobs=jobs, engine=engine, window=window,
                      build_index=build_index, index_interval=index_interval)
    state = run.state
    acc = _fresh_accumulator(description, record_type, tracked, summaries)
    if state.acc is not None:
        acc.merge(state.acc)
    tally = state.tally if state.tally is not None else ErrorTally()
    state.acc, state.tally = acc, tally

    with _metered(state.metrics) as obs:
        windows = run._plan()
        if windows is None:
            src = run._serial_source()
            builder = src.index_sink
            try:
                for rep, pd in description.records(src, record_type, mask):
                    acc.add(rep, pd)
                    tally.add(pd)
                    state.records_done += 1
                    if state.records_done % run.interval == 0:
                        run._checkpoint(src, obs, builder)
                    _maybe_crash(state.records_done)
            finally:
                src.close()
            if builder is not None:
                state.index_builder = builder.state()
        else:
            _run_parallel_accum(run, description, record_type, mask,
                                tracked, summaries, acc, tally, obs)
    run.finish()
    return acc, tally


def _run_parallel_accum(run: _DurableRun, description, record_type, mask,
                        tracked, summaries, acc, tally, obs) -> None:
    from . import parallel as _parallel
    state = run.state
    windows = state.windows[state.chunks_done:]
    spec = _parallel._spec_for(description)
    _parallel._seed(description, spec)
    tasks = [(spec, w, record_type, mask, tracked, summaries, obs is not None)
             for w in windows]
    for part_acc, part_tally, registry in _parallel._healing_map(
            _parallel._map_accum, tasks, run.jobs,
            timeout=_parallel._chunk_timeout(spec)):
        if registry is not None and obs is not None:
            obs.metrics.merge(registry)
        acc.merge(part_acc)
        _parallel._rebase_tally(part_tally, state.records_done)
        state.records_done += part_tally.records
        tally.merge(part_tally)
        state.chunks_done += 1
        state.offset = state.windows[state.chunks_done - 1][3]
        run._checkpoint(None, obs, None)
        _maybe_crash(state.chunks_done)


def count_records_durable(description, path, *,
                          checkpoint=True,
                          interval: int = DEFAULT_CHECKPOINT_INTERVAL,
                          resume: bool = False,
                          jobs: Optional[int] = None,
                          engine: str = "serial",
                          window: Optional[int] = None,
                          build_index: bool = True,
                          index_interval: int = DEFAULT_INDEX_INTERVAL,
                          ) -> int:
    """Checkpointed record counting (record discipline only)."""
    run = _DurableRun(description, path, "count", None,
                      checkpoint=checkpoint, interval=interval, resume=resume,
                      jobs=jobs, engine=engine, window=window,
                      build_index=build_index, index_interval=index_interval)
    state = run.state

    with _metered(state.metrics) as obs:
        windows = run._plan()
        if windows is None:
            src = run._serial_source()
            builder = src.index_sink
            try:
                while src.begin_record():
                    src.end_record()
                    state.count += 1
                    state.records_done += 1
                    if state.records_done % run.interval == 0:
                        run._checkpoint(src, obs, builder)
                    _maybe_crash(state.records_done)
            finally:
                src.close()
            if builder is not None:
                state.index_builder = builder.state()
        else:
            from . import parallel as _parallel
            spec = _parallel._spec_for(description)
            _parallel._seed(description, spec)
            tasks = [(spec, w) for w in state.windows[state.chunks_done:]]
            for part in _parallel._healing_map(
                    _parallel._map_count, tasks, run.jobs,
                    timeout=_parallel._chunk_timeout(spec)):
                state.count += part
                state.records_done += part
                state.chunks_done += 1
                state.offset = state.windows[state.chunks_done - 1][3]
                run._checkpoint(None, obs, None)
                _maybe_crash(state.chunks_done)
    run.finish()
    return state.count


def records_durable(description, path, type_name: str, mask=None, *,
                    checkpoint=True,
                    interval: int = DEFAULT_CHECKPOINT_INTERVAL,
                    resume: bool = False,
                    jobs: Optional[int] = None,
                    engine: str = "serial",
                    window: Optional[int] = None,
                    build_index: bool = True,
                    index_interval: int = DEFAULT_INDEX_INTERVAL,
                    ) -> Iterator[Tuple[object, Pd]]:
    """Checkpointed ``records()``: yields ``(rep, pd)`` with global
    record indices in locations.  A resumed run yields only the records
    after the last checkpoint — the suffix an interrupted ``padsc
    fmt/xml --resume`` still needs to emit."""
    run = _DurableRun(description, path, "records", type_name,
                      checkpoint=checkpoint, interval=interval, resume=resume,
                      jobs=jobs, engine=engine, window=window,
                      build_index=build_index, index_interval=index_interval)
    state = run.state

    with _metered(state.metrics) as obs:
        windows = run._plan()
        if windows is None:
            src = run._serial_source()
            builder = src.index_sink
            try:
                for rep, pd in description.records(src, type_name, mask):
                    yield rep, pd
                    state.records_done += 1
                    if state.records_done % run.interval == 0:
                        run._checkpoint(src, obs, builder)
                    _maybe_crash(state.records_done)
            finally:
                src.close()
            if builder is not None:
                state.index_builder = builder.state()
        else:
            from . import parallel as _parallel
            spec = _parallel._spec_for(description)
            _parallel._seed(description, spec)
            tasks = [(spec, w, type_name, mask, obs is not None)
                     for w in state.windows[state.chunks_done:]]
            for chunk, registry in _parallel._healing_map(
                    _parallel._map_records, tasks, run.jobs,
                    timeout=_parallel._chunk_timeout(spec)):
                if registry is not None and obs is not None:
                    obs.metrics.merge(registry)
                cache: dict = {}
                for rep, pd in chunk:
                    _parallel._rebase_pd(pd, state.records_done, cache)
                    yield rep, pd
                state.records_done += len(chunk)
                state.chunks_done += 1
                state.offset = state.windows[state.chunks_done - 1][3]
                run._checkpoint(None, obs, None)
                _maybe_crash(state.chunks_done)
    run.finish()
