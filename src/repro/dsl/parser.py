"""Recursive-descent parser for PADS descriptions.

Accepts the concrete syntax of the paper's Figures 4 and 5 verbatim
(``tests/test_paper_descriptions.py`` parses both figures character for
character), plus the rest of the language surface described in Section 3:
switched unions, array size bounds, ``Pcompute`` fields, ``Plast`` /
``Pended`` / ``Plongest`` array conditions, enum value/spelling overrides
and parameterised type declarations.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..core.errors import DescriptionError
from ..expr import ast as E
from . import ast as D
from .lexer import Lexer, Token


class ParseError(DescriptionError):
    pass


# Binary operator precedence (higher binds tighter).  Mirrors C.
_PRECEDENCE = [
    ["||"],
    ["&&"],
    ["|"],
    ["^"],
    ["&"],
    ["==", "!="],
    ["<", "<=", ">", ">="],
    ["<<", ">>"],
    ["+", "-"],
    ["*", "/", "%"],
]

_ASSIGN_OPS = {"=", "+=", "-=", "*=", "/=", "%="}


class _Parser:
    def __init__(self, tokens: List[Token], filename: str):
        self.tokens = tokens
        self.idx = 0
        self.filename = filename

    # -- token utilities -----------------------------------------------------

    def peek(self, k: int = 0) -> Token:
        idx = min(self.idx + k, len(self.tokens) - 1)
        return self.tokens[idx]

    def next(self) -> Token:
        tok = self.tokens[self.idx]
        if tok.kind != "eof":
            self.idx += 1
        return tok

    def at(self, kind: str, value: Optional[str] = None, k: int = 0) -> bool:
        tok = self.peek(k)
        return tok.kind == kind and (value is None or tok.value == value)

    def at_kw(self, value: str, k: int = 0) -> bool:
        return self.at("keyword", value, k)

    def at_op(self, value: str, k: int = 0) -> bool:
        return self.at("op", value, k)

    def accept(self, kind: str, value: Optional[str] = None) -> Optional[Token]:
        if self.at(kind, value):
            return self.next()
        return None

    def expect(self, kind: str, value: Optional[str] = None) -> Token:
        tok = self.peek()
        if not self.at(kind, value):
            want = value if value is not None else kind
            raise ParseError(f"expected {want!r}, found {tok.value or tok.kind!r}",
                             tok.line, tok.col)
        return self.next()

    def error(self, message: str) -> ParseError:
        tok = self.peek()
        return ParseError(message, tok.line, tok.col)

    # -- top level ---------------------------------------------------------------

    def description(self) -> D.Description:
        decls: List[object] = []
        while not self.at("eof"):
            decls.append(self.declaration())
        return D.Description(decls, self.filename)

    def declaration(self):
        is_record = False
        is_source = False
        while True:
            if self.accept("keyword", "Precord"):
                is_record = True
            elif self.accept("keyword", "Psource"):
                is_source = True
            else:
                break

        tok = self.peek()
        if self.at_kw("Pstruct"):
            decl = self.struct_decl()
        elif self.at_kw("Punion"):
            decl = self.union_decl()
        elif self.at_kw("Parray"):
            decl = self.array_decl()
        elif self.at_kw("Penum"):
            decl = self.enum_decl()
        elif self.at_kw("Ptypedef"):
            decl = self.typedef_decl()
        elif self.at_kw("Pbitfields"):
            decl = self.bitfields_decl()
        elif self.at("ident"):
            if is_record or is_source:
                raise self.error("Precord/Psource must annotate a type declaration")
            return self.func_decl()
        else:
            raise self.error(f"expected a declaration, found {tok.value!r}")

        decl.is_record = is_record
        decl.is_source = is_source
        return decl

    def _params(self) -> List[Tuple[str, str]]:
        """Optional ``(: type name, ... :)`` parameter list on a declaration."""
        params: List[Tuple[str, str]] = []
        if self.accept("op", "(:"):
            while True:
                ptype = self.expect("ident").value
                pname = self.expect("ident").value
                params.append((ptype, pname))
                if not self.accept("op", ","):
                    break
            self.expect("op", ":)")
        return params

    def _where(self) -> Optional[E.Expr]:
        if self.accept("keyword", "Pwhere"):
            self.expect("op", "{")
            expr = self.expr()
            self.accept("op", ";")
            self.expect("op", "}")
            return expr
        return None

    # -- Pstruct -------------------------------------------------------------------

    def struct_decl(self) -> D.StructDecl:
        kw = self.expect("keyword", "Pstruct")
        name = self.expect("ident").value
        params = self._params()
        self.expect("op", "{")
        items: List[object] = []
        while not self.at_op("}"):
            items.append(self.struct_item())
        self.expect("op", "}")
        where = self._where()
        self.accept("op", ";")
        return D.StructDecl(name=name, params=params, items=items, where=where,
                            line=kw.line, col=kw.col)

    def struct_item(self):
        tok = self.peek()
        # `Pre "..." name;` is a regex-typed field, while `Pre "...";` is an
        # anonymous regex literal member — disambiguate by lookahead.
        if self.at_kw("Pre") and self.at("string", k=1) and self.at("ident", k=2):
            return self._data_field()
        lit = self._maybe_literal()
        if lit is not None:
            self.expect("op", ";")
            return D.LiteralField(lit)
        if self.accept("keyword", "Pcompute"):
            type_name = self.expect("ident").value
            fname = self.expect("ident").value
            self.expect("op", "=")
            expr = self.expr()
            constraint = self.expr() if self.accept("op", ":") else None
            self.expect("op", ";")
            return D.ComputeField(fname, type_name, expr, constraint,
                                  line=tok.line, col=tok.col)
        return self._data_field()

    def _maybe_literal(self) -> Optional[D.LiteralSpec]:
        tok = self.peek()
        if tok.kind == "char":
            self.next()
            return D.LiteralSpec("char", tok.value, tok.line, tok.col)
        if tok.kind == "string":
            self.next()
            return D.LiteralSpec("string", tok.value, tok.line, tok.col)
        if self.at_kw("Pre"):
            self.next()
            pat = self.expect("string")
            return D.LiteralSpec("regex", _strip_regex(pat.value), tok.line, tok.col)
        if self.at_kw("Peor"):
            self.next()
            return D.LiteralSpec("eor", None, tok.line, tok.col)
        if self.at_kw("Peof"):
            self.next()
            return D.LiteralSpec("eof", None, tok.line, tok.col)
        return None

    def _data_field(self) -> D.DataField:
        tok = self.peek()
        ftype = self.type_expr()
        fname = self.expect("ident").value
        constraint = None
        if self.accept("op", ":"):
            constraint = self.expr()
        self.expect("op", ";")
        return D.DataField(fname, ftype, constraint, line=tok.line, col=tok.col)

    def type_expr(self) -> D.TypeExpr:
        tok = self.peek()
        if self.accept("keyword", "Popt"):
            inner = self.type_expr()
            return D.OptType(inner, line=tok.line, col=tok.col)
        if self.accept("keyword", "Pre"):
            pat = self.expect("string")
            return D.RegexType(_strip_regex(pat.value), line=tok.line, col=tok.col)
        name = self.expect("ident").value
        args: List[E.Expr] = []
        if self.accept("op", "(:"):
            if not self.at_op(":)"):
                while True:
                    args.append(self.expr())
                    if not self.accept("op", ","):
                        break
            self.expect("op", ":)")
        return D.TypeRef(name, args, line=tok.line, col=tok.col)

    # -- Punion --------------------------------------------------------------------

    def union_decl(self) -> D.UnionDecl:
        kw = self.expect("keyword", "Punion")
        name = self.expect("ident").value
        params = self._params()
        self.expect("op", "{")
        if self.at_kw("Pswitch"):
            self.next()
            self.expect("op", "(")
            selector = self.expr()
            self.expect("op", ")")
            self.expect("op", "{")
            cases: List[D.SwitchCase] = []
            while not self.at_op("}"):
                if self.accept("keyword", "Pcase"):
                    value = self.expr()
                    self.expect("op", ":")
                    cases.append(D.SwitchCase(value, self._data_field()))
                elif self.accept("keyword", "Pdefault"):
                    self.expect("op", ":")
                    cases.append(D.SwitchCase(None, self._data_field()))
                else:
                    raise self.error("expected Pcase or Pdefault")
            self.expect("op", "}")
            self.accept("op", ";")
            self.expect("op", "}")
            where = self._where()
            self.accept("op", ";")
            return D.UnionDecl(name=name, params=params, switch=selector,
                               cases=cases, where=where, line=kw.line, col=kw.col)
        branches: List[D.DataField] = []
        while not self.at_op("}"):
            branches.append(self._data_field())
        self.expect("op", "}")
        where = self._where()
        self.accept("op", ";")
        return D.UnionDecl(name=name, params=params, branches=branches,
                           where=where, line=kw.line, col=kw.col)

    # -- Parray --------------------------------------------------------------------

    def array_decl(self) -> D.ArrayDecl:
        kw = self.expect("keyword", "Parray")
        name = self.expect("ident").value
        params = self._params()
        self.expect("op", "{")
        elt_type = self.type_expr()
        elt_name = None
        if self.at("ident"):
            elt_name = self.next().value
        self.expect("op", "[")
        min_size = max_size = None
        if not self.at_op("]"):
            first = self.expr()
            if self.accept("op", ".."):
                min_size = first
                max_size = self.expr()
            else:
                min_size = max_size = first
        self.expect("op", "]")

        decl = D.ArrayDecl(name=name, params=params, elt_type=elt_type,
                           elt_name=elt_name, min_size=min_size,
                           max_size=max_size, line=kw.line, col=kw.col)
        if self.accept("op", ":"):
            self._array_conds(decl)
        self.expect("op", ";")
        self.expect("op", "}")
        decl.where = self._where()
        self.accept("op", ";")
        return decl

    def _array_conds(self, decl: D.ArrayDecl) -> None:
        while True:
            tok = self.peek()
            if self.accept("keyword", "Psep"):
                self.expect("op", "(")
                lit = self._maybe_literal()
                if lit is None or lit.kind in ("eor", "eof"):
                    raise ParseError("Psep requires a char, string or regex literal",
                                     tok.line, tok.col)
                self.expect("op", ")")
                decl.sep = lit
            elif self.accept("keyword", "Pterm"):
                self.expect("op", "(")
                lit = self._maybe_literal()
                if lit is None:
                    raise ParseError("Pterm requires a literal, Peor, or Peof",
                                     tok.line, tok.col)
                self.expect("op", ")")
                decl.term = lit
            elif self.accept("keyword", "Plast"):
                self.expect("op", "(")
                decl.last = self.expr()
                self.expect("op", ")")
            elif self.accept("keyword", "Pended"):
                self.expect("op", "(")
                decl.ended = self.expr()
                self.expect("op", ")")
            elif self.accept("keyword", "Plongest"):
                decl.longest = True
            elif self.accept("keyword", "Pmin"):
                self.expect("op", "(")
                decl.min_size = self.expr()
                self.expect("op", ")")
            elif self.accept("keyword", "Pmax"):
                self.expect("op", "(")
                decl.max_size = self.expr()
                self.expect("op", ")")
            else:
                raise self.error("expected an array condition "
                                 "(Psep/Pterm/Plast/Pended/Plongest/Pmin/Pmax)")
            if not self.accept("op", "&&"):
                return

    def bitfields_decl(self) -> D.BitfieldsDecl:
        kw = self.expect("keyword", "Pbitfields")
        name = self.expect("ident").value
        params = self._params()
        self.expect("op", "{")
        items = []
        while not self.at_op("}"):
            width = _int_value(self.expect("int"))
            self.expect("op", ":")
            fname = self.expect("ident").value
            constraint = self.expr() if self.accept("op", ":") else None
            self.expect("op", ";")
            items.append(D.BitfieldItem(width, fname, constraint))
        self.expect("op", "}")
        where = self._where()
        self.accept("op", ";")
        return D.BitfieldsDecl(name=name, params=params, items=items,
                               where=where, line=kw.line, col=kw.col)

    # -- Penum ---------------------------------------------------------------------

    def enum_decl(self) -> D.EnumDecl:
        kw = self.expect("keyword", "Penum")
        name = self.expect("ident").value
        self.expect("op", "{")
        items: List[D.EnumItem] = []
        while True:
            ident = self.expect("ident").value
            value = None
            physical = None
            if self.accept("op", "="):
                sign = -1 if self.accept("op", "-") else 1
                value = sign * _int_value(self.expect("int"))
            if self.accept("keyword", "Pfrom"):
                self.expect("op", "(")
                physical = self.expect("string").value
                self.expect("op", ")")
            items.append(D.EnumItem(ident, value, physical))
            if not self.accept("op", ","):
                break
        self.expect("op", "}")
        self.accept("op", ";")
        return D.EnumDecl(name=name, items=items, line=kw.line, col=kw.col)

    # -- Ptypedef ------------------------------------------------------------------

    def typedef_decl(self) -> D.TypedefDecl:
        kw = self.expect("keyword", "Ptypedef")
        base = self.type_expr()
        name = self.expect("ident").value
        var = None
        constraint = None
        if self.accept("op", ":"):
            # `response_t x => { ... }` — the repeated type name is checked
            # by the typechecker.
            self.expect("ident")
            var = self.expect("ident").value
            self.expect("op", "=>")
            self.expect("op", "{")
            constraint = self.expr()
            self.expect("op", "}")
        self.expect("op", ";")
        return D.TypedefDecl(name=name, base=base, var=var, constraint=constraint,
                             line=kw.line, col=kw.col)

    # -- helper functions -----------------------------------------------------------

    def func_decl(self) -> D.FuncDecl:
        tok = self.peek()
        ret_type = self.expect("ident").value
        name = self.expect("ident").value
        self.expect("op", "(")
        params: List[Tuple[str, str]] = []
        if not self.at_op(")"):
            while True:
                ptype = self.expect("ident").value
                pname = self.expect("ident").value
                params.append((ptype, pname))
                if not self.accept("op", ","):
                    break
        self.expect("op", ")")
        body = self.block()
        self.accept("op", ";")
        fn = E.FuncDef(ret_type, name, params, body, line=tok.line, col=tok.col)
        return D.FuncDecl(fn, line=tok.line, col=tok.col)

    # -- statements -------------------------------------------------------------------

    def block(self) -> E.Block:
        tok = self.expect("op", "{")
        stmts: List[E.Stmt] = []
        while not self.at_op("}"):
            stmts.append(self.stmt())
        self.expect("op", "}")
        return E.Block(stmts, line=tok.line, col=tok.col)

    def stmt(self) -> E.Stmt:
        tok = self.peek()
        if self.at_op("{"):
            return self.block()
        if self.accept("keyword", "if"):
            self.expect("op", "(")
            cond = self.expr()
            self.expect("op", ")")
            then = self.stmt()
            other = None
            if self.accept("keyword", "else"):
                other = self.stmt()
            return E.If(cond, then, other, line=tok.line, col=tok.col)
        if self.accept("keyword", "while"):
            self.expect("op", "(")
            cond = self.expr()
            self.expect("op", ")")
            return E.While(cond, self.stmt(), line=tok.line, col=tok.col)
        if self.accept("keyword", "for"):
            self.expect("op", "(")
            init = None if self.at_op(";") else self.simple_stmt()
            self.expect("op", ";")
            cond = None if self.at_op(";") else self.expr()
            self.expect("op", ";")
            step = None if self.at_op(")") else self.simple_stmt()
            self.expect("op", ")")
            return E.ForStmt(init, cond, step, self.stmt(), line=tok.line, col=tok.col)
        if self.accept("keyword", "return"):
            value = None if self.at_op(";") else self.expr()
            self.expect("op", ";")
            return E.Return(value, line=tok.line, col=tok.col)
        stmt = self.simple_stmt()
        self.expect("op", ";")
        return stmt

    def simple_stmt(self) -> E.Stmt:
        tok = self.peek()
        # Declaration: two consecutive identifiers (`int x`, `bool ok = ...`).
        if self.at("ident") and self.at("ident", k=1):
            type_name = self.next().value
            name = self.next().value
            init = self.expr() if self.accept("op", "=") else None
            return E.VarDecl(type_name, name, init, line=tok.line, col=tok.col)
        expr = self.expr()
        for op in _ASSIGN_OPS:
            if self.at_op(op):
                self.next()
                value = self.expr()
                return E.Assign(expr, op, value, line=tok.line, col=tok.col)
        return E.ExprStmt(expr, line=tok.line, col=tok.col)

    # -- expressions -----------------------------------------------------------------

    def expr(self) -> E.Expr:
        return self.ternary()

    def ternary(self) -> E.Expr:
        cond = self.binary(0)
        if self.accept("op", "?"):
            then = self.expr()
            self.expect("op", ":")
            other = self.ternary()
            return E.Ternary(cond, then, other, line=cond.line, col=cond.col)
        return cond

    def binary(self, level: int) -> E.Expr:
        if level >= len(_PRECEDENCE):
            return self.unary()
        left = self.binary(level + 1)
        ops = _PRECEDENCE[level]
        while self.peek().kind == "op" and self.peek().value in ops:
            op = self.next().value
            right = self.binary(level + 1)
            left = E.Binary(op, left, right, line=left.line, col=left.col)
        return left

    def unary(self) -> E.Expr:
        tok = self.peek()
        if tok.kind == "op" and tok.value in ("-", "+", "!", "~"):
            self.next()
            return E.Unary(tok.value, self.unary(), line=tok.line, col=tok.col)
        return self.postfix()

    def postfix(self) -> E.Expr:
        expr = self.primary()
        while True:
            if self.at_op("."):
                self.next()
                name = self.expect("ident").value
                expr = E.Member(expr, name, line=expr.line, col=expr.col)
            elif self.at_op("["):
                self.next()
                idx = self.expr()
                self.expect("op", "]")
                expr = E.Index(expr, idx, line=expr.line, col=expr.col)
            else:
                return expr

    def primary(self) -> E.Expr:
        tok = self.peek()
        if tok.kind == "int":
            self.next()
            return E.IntLit(_int_value(tok), line=tok.line, col=tok.col)
        if tok.kind == "float":
            self.next()
            return E.FloatLit(float(tok.value), line=tok.line, col=tok.col)
        if tok.kind == "char":
            self.next()
            return E.CharLit(tok.value, line=tok.line, col=tok.col)
        if tok.kind == "string":
            self.next()
            return E.StrLit(tok.value, line=tok.line, col=tok.col)
        if self.at_kw("true"):
            self.next()
            return E.BoolLit(True, line=tok.line, col=tok.col)
        if self.at_kw("false"):
            self.next()
            return E.BoolLit(False, line=tok.line, col=tok.col)
        if self.at_kw("Pforall") or self.at_kw("Pexists"):
            return self._quantifier()
        if tok.kind == "ident":
            self.next()
            if self.at_op("("):
                self.next()
                args: List[E.Expr] = []
                if not self.at_op(")"):
                    while True:
                        args.append(self.expr())
                        if not self.accept("op", ","):
                            break
                self.expect("op", ")")
                return E.Call(tok.value, args, line=tok.line, col=tok.col)
            return E.Name(tok.value, line=tok.line, col=tok.col)
        if self.accept("op", "("):
            expr = self.expr()
            self.expect("op", ")")
            return expr
        raise self.error(f"expected an expression, found {tok.value or tok.kind!r}")

    def _quantifier(self) -> E.Expr:
        tok = self.next()  # Pforall | Pexists
        self.expect("op", "(")
        var = self.expect("ident").value
        self.expect("keyword", "Pin")
        self.expect("op", "[")
        lo = self.expr()
        self.expect("op", "..")
        hi = self.expr()
        self.expect("op", "]")
        self.expect("op", ":")
        body = self.expr()
        self.expect("op", ")")
        cls = E.Forall if tok.value == "Pforall" else E.Exists
        return cls(var, lo, hi, body, line=tok.line, col=tok.col)


def _int_value(tok: Token) -> int:
    text = tok.value
    if text.lower().startswith("0x"):
        return int(text, 16)
    return int(text, 10)


def _strip_regex(pattern: str) -> str:
    """PADS regex literals are written ``Pre "/.../"``; strip the slashes."""
    if len(pattern) >= 2 and pattern.startswith("/") and pattern.endswith("/"):
        return pattern[1:-1]
    return pattern


def parse_description(text: str, filename: str = "<description>") -> D.Description:
    """Parse PADS description source into a :class:`Description` AST."""
    tokens = Lexer(text, filename).tokens()
    return _Parser(tokens, filename).description()
