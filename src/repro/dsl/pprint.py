"""Pretty-printer: description ASTs back to PADS concrete syntax.

Supports tooling that *produces* descriptions (the Cobol translator,
refactoring scripts) and gives descriptions a canonical form.  The round
trip ``parse(pretty(parse(text)))`` is the identity on ASTs up to
source locations — pinned by a property test.
"""

from __future__ import annotations

from typing import List

from ..expr import ast as E
from . import ast as D

_PRECEDENCE = {
    "||": 1, "&&": 2, "|": 3, "^": 4, "&": 5,
    "==": 6, "!=": 6, "<": 7, "<=": 7, ">": 7, ">=": 7,
    "<<": 8, ">>": 8, "+": 9, "-": 9, "*": 10, "/": 10, "%": 10,
}


def _char(value: str) -> str:
    body = (value.replace("\\", "\\\\").replace("'", "\\'")
            .replace("\n", "\\n").replace("\t", "\\t").replace("\r", "\\r")
            .replace("\0", "\\0"))
    return f"'{body}'"


def _string(value: str) -> str:
    body = (value.replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n").replace("\t", "\\t").replace("\r", "\\r")
            .replace("\0", "\\0"))
    return f'"{body}"'


def pp_expr(expr: E.Expr, parent_prec: int = 0) -> str:
    if isinstance(expr, E.IntLit):
        return str(expr.value)
    if isinstance(expr, E.FloatLit):
        return repr(expr.value)
    if isinstance(expr, E.CharLit):
        return _char(expr.value)
    if isinstance(expr, E.StrLit):
        return _string(expr.value)
    if isinstance(expr, E.BoolLit):
        return "true" if expr.value else "false"
    if isinstance(expr, E.Name):
        return expr.ident
    if isinstance(expr, E.Unary):
        return f"{expr.op}{pp_expr(expr.operand, 11)}"
    if isinstance(expr, E.Binary):
        prec = _PRECEDENCE[expr.op]
        text = (f"{pp_expr(expr.left, prec)} {expr.op} "
                f"{pp_expr(expr.right, prec + 1)}")
        return f"({text})" if prec < parent_prec else text
    if isinstance(expr, E.Ternary):
        text = (f"{pp_expr(expr.cond, 1)} ? {pp_expr(expr.then)} : "
                f"{pp_expr(expr.other)}")
        return f"({text})" if parent_prec > 0 else text
    if isinstance(expr, E.Call):
        return f"{expr.func}({', '.join(pp_expr(a) for a in expr.args)})"
    if isinstance(expr, E.Member):
        return f"{pp_expr(expr.obj, 11)}.{expr.name}"
    if isinstance(expr, E.Index):
        return f"{pp_expr(expr.obj, 11)}[{pp_expr(expr.index)}]"
    if isinstance(expr, E.Forall):
        return (f"Pforall ({expr.var} Pin [{pp_expr(expr.lo)}.."
                f"{pp_expr(expr.hi)}] : {pp_expr(expr.body)})")
    if isinstance(expr, E.Exists):
        return (f"Pexists ({expr.var} Pin [{pp_expr(expr.lo)}.."
                f"{pp_expr(expr.hi)}] : {pp_expr(expr.body)})")
    raise TypeError(f"cannot pretty-print {type(expr).__name__}")


def pp_stmt(stmt: E.Stmt, indent: int = 1) -> List[str]:
    pad = "  " * indent
    if isinstance(stmt, E.Block):
        out = [pad + "{"]
        for s in stmt.stmts:
            out.extend(pp_stmt(s, indent + 1))
        out.append(pad + "}")
        return out
    if isinstance(stmt, E.VarDecl):
        init = f" = {pp_expr(stmt.init)}" if stmt.init is not None else ""
        return [f"{pad}{stmt.type_name} {stmt.name}{init};"]
    if isinstance(stmt, E.Assign):
        return [f"{pad}{pp_expr(stmt.target)} {stmt.op} {pp_expr(stmt.value)};"]
    if isinstance(stmt, E.If):
        out = [f"{pad}if ({pp_expr(stmt.cond)})"]
        out.extend(pp_stmt(stmt.then, indent + 1))
        if stmt.other is not None:
            out.append(f"{pad}else")
            out.extend(pp_stmt(stmt.other, indent + 1))
        return out
    if isinstance(stmt, E.While):
        out = [f"{pad}while ({pp_expr(stmt.cond)})"]
        out.extend(pp_stmt(stmt.body, indent + 1))
        return out
    if isinstance(stmt, E.ForStmt):
        init = pp_stmt(stmt.init, 0)[0].rstrip(";") if stmt.init else ""
        cond = pp_expr(stmt.cond) if stmt.cond is not None else ""
        step = pp_stmt(stmt.step, 0)[0].rstrip(";") if stmt.step else ""
        out = [f"{pad}for ({init}; {cond}; {step})"]
        out.extend(pp_stmt(stmt.body, indent + 1))
        return out
    if isinstance(stmt, E.Return):
        value = f" {pp_expr(stmt.value)}" if stmt.value is not None else ""
        return [f"{pad}return{value};"]
    if isinstance(stmt, E.ExprStmt):
        return [f"{pad}{pp_expr(stmt.expr)};"]
    raise TypeError(f"cannot pretty-print {type(stmt).__name__}")


def pp_type(texpr: D.TypeExpr) -> str:
    if isinstance(texpr, D.OptType):
        return f"Popt {pp_type(texpr.inner)}"
    if isinstance(texpr, D.RegexType):
        return f'Pre "/{texpr.pattern}/"'
    assert isinstance(texpr, D.TypeRef)
    if texpr.args:
        args = ", ".join(pp_expr(a) for a in texpr.args)
        return f"{texpr.name}(:{args}:)"
    return texpr.name


def pp_literal(lit: D.LiteralSpec) -> str:
    if lit.kind == "char":
        return _char(lit.value)
    if lit.kind == "string":
        return _string(lit.value)
    if lit.kind == "regex":
        return f'Pre "/{lit.value}/"'
    return "Peor" if lit.kind == "eor" else "Peof"


def _params(decl: D.Decl) -> str:
    if not decl.params:
        return ""
    inner = ", ".join(f"{t} {n}" for t, n in decl.params)
    return f"(:{inner}:)"


def _annotations(decl: D.Decl) -> str:
    out = ""
    if decl.is_source:
        out += "Psource "
    if decl.is_record:
        out += "Precord "
    return out


def _where(decl: D.Decl) -> str:
    if decl.where is None:
        return ""
    return f" Pwhere {{ {pp_expr(decl.where)} }}"


def pp_decl(decl) -> str:
    if isinstance(decl, D.FuncDecl):
        fn = decl.func
        params = ", ".join(f"{t} {n}" for t, n in fn.params)
        lines = [f"{fn.ret_type} {fn.name}({params})"]
        lines.extend(pp_stmt(fn.body, 0))
        return "\n".join(lines) + ";"

    head = _annotations(decl)
    if isinstance(decl, D.StructDecl):
        lines = [f"{head}Pstruct {decl.name}{_params(decl)} {{"]
        for item in decl.items:
            if isinstance(item, D.LiteralField):
                lines.append(f"  {pp_literal(item.literal)};")
            elif isinstance(item, D.ComputeField):
                constraint = (f" : {pp_expr(item.constraint)}"
                              if item.constraint is not None else "")
                lines.append(f"  Pcompute {item.type_name} {item.name} = "
                             f"{pp_expr(item.expr)}{constraint};")
            else:
                constraint = (f" : {pp_expr(item.constraint)}"
                              if item.constraint is not None else "")
                lines.append(f"  {pp_type(item.type)} {item.name}{constraint};")
        lines.append("}" + _where(decl) + ";")
        return "\n".join(lines)

    if isinstance(decl, D.UnionDecl):
        lines = [f"{head}Punion {decl.name}{_params(decl)} {{"]
        if decl.is_switched:
            lines.append(f"  Pswitch ({pp_expr(decl.switch)}) {{")
            for case in decl.cases:
                label = (f"Pcase {pp_expr(case.value)}"
                         if case.value is not None else "Pdefault")
                f = case.field
                constraint = (f" : {pp_expr(f.constraint)}"
                              if f.constraint is not None else "")
                lines.append(f"    {label}: {pp_type(f.type)} "
                             f"{f.name}{constraint};")
            lines.append("  }")
        else:
            for br in decl.branches:
                constraint = (f" : {pp_expr(br.constraint)}"
                              if br.constraint is not None else "")
                lines.append(f"  {pp_type(br.type)} {br.name}{constraint};")
        lines.append("}" + _where(decl) + ";")
        return "\n".join(lines)

    if isinstance(decl, D.ArrayDecl):
        if decl.min_size is not None and decl.max_size is not None:
            lo, hi = pp_expr(decl.min_size), pp_expr(decl.max_size)
            size = lo if lo == hi else f"{lo}..{hi}"
        elif decl.min_size is not None:
            size = pp_expr(decl.min_size)
        else:
            size = ""
        conds = []
        if decl.sep is not None:
            conds.append(f"Psep({pp_literal(decl.sep)})")
        if decl.term is not None:
            conds.append(f"Pterm({pp_literal(decl.term)})")
        if decl.last is not None:
            conds.append(f"Plast({pp_expr(decl.last)})")
        if decl.ended is not None:
            conds.append(f"Pended({pp_expr(decl.ended)})")
        if decl.longest:
            conds.append("Plongest")
        cond_text = f" : {' && '.join(conds)}" if conds else ""
        lines = [f"{head}Parray {decl.name}{_params(decl)} {{",
                 f"  {pp_type(decl.elt_type)}[{size}]{cond_text};",
                 "}" + _where(decl) + ";"]
        return "\n".join(lines)

    if isinstance(decl, D.BitfieldsDecl):
        lines = [f"{head}Pbitfields {decl.name}{_params(decl)} {{"]
        for item in decl.items:
            constraint = (f" : {pp_expr(item.constraint)}"
                          if item.constraint is not None else "")
            lines.append(f"  {item.width} : {item.name}{constraint};")
        lines.append("}" + _where(decl) + ";")
        return "\n".join(lines)

    if isinstance(decl, D.EnumDecl):
        items = []
        for item in decl.items:
            text = item.name
            if item.value is not None:
                text += f" = {item.value}"
            if item.physical is not None:
                text += f' Pfrom({_string(item.physical)})'
            items.append(text)
        return (f"{head}Penum {decl.name} {{ " + ", ".join(items) + " };")

    if isinstance(decl, D.TypedefDecl):
        base = pp_type(decl.base)
        if decl.constraint is not None:
            return (f"{head}Ptypedef {base} {decl.name} : {decl.name} "
                    f"{decl.var} => {{ {pp_expr(decl.constraint)} }};")
        return f"{head}Ptypedef {base} {decl.name};"

    raise TypeError(f"cannot pretty-print {type(decl).__name__}")


def pp_description(desc: D.Description) -> str:
    """Render a whole description as PADS source."""
    return "\n\n".join(pp_decl(d) for d in desc.decls) + "\n"
