"""Semantic analysis for PADS descriptions.

Checks performed before binding a description to the runtime:

* every type name resolves — to an *earlier* declaration (the paper:
  "types are declared before they are used") or to a registered base type;
* no duplicate type, field, branch or enum-literal names;
* parameter arity at every use site (declared types and base types);
* constraints mention only names in scope — for struct fields that is
  *earlier fields plus the field itself*, matching the paper's scoping
  rule; for array ``Pwhere`` clauses the pseudo-variables ``elts`` and
  ``length`` are in scope;
* helper functions are checked for unbound names;
* at most one explicit ``Psource``; the source type is resolvable.

Errors are reported together as a :class:`TypeErrorReport` carrying all
located diagnostics.
"""

from __future__ import annotations

import keyword as _kw
from typing import Dict, List, Set, Tuple

from ..core.basetypes.base import base_type_arity, is_base_type
from ..core.errors import DescriptionError
from ..expr import ast as E
from ..expr.ast import free_names
from ..expr.eval import BUILTINS
from . import ast as D

_PSEUDO_ARRAY_VARS = {"elts", "length"}


class TypeErrorReport(DescriptionError):
    """All diagnostics from one checking pass."""

    def __init__(self, diagnostics: List[str]):
        self.diagnostics = diagnostics
        super().__init__("; ".join(diagnostics))


def _reserved(name: str) -> bool:
    """Identifiers reserved by the Python backend.

    The paper's compiler emits C, so C keywords cannot name PADS fields;
    this backend emits Python, so Python keywords are reserved the same
    way.  The check keeps generated modules loadable for every legal
    description.
    """
    return _kw.iskeyword(name) or _kw.issoftkeyword(name)


class _Checker:
    def __init__(self, desc: D.Description, ambient: str):
        self.desc = desc
        self.ambient = ambient
        self.errors: List[str] = []
        self.declared: Dict[str, D.Decl] = {}
        self.functions: Dict[str, E.FuncDef] = {}
        self.enum_literals: Set[str] = set()

    def error(self, message: str, line: int = 0, col: int = 0) -> None:
        if line:
            message = f"line {line}:{col}: {message}"
        self.errors.append(message)

    def check_ident(self, name: str, what: str, line: int = 0, col: int = 0) -> None:
        if _reserved(name):
            self.error(f"{what} {name!r} is a Python keyword, which the "
                       "Python backend reserves", line, col)

    # -- scope helpers -------------------------------------------------------

    def global_names(self) -> Set[str]:
        return set(self.functions) | self.enum_literals | set(BUILTINS)

    def check_expr_scope(self, expr: E.Expr, local: Set[str],
                         context: str, line: int, col: int) -> None:
        unknown = free_names(expr) - local - self.global_names()
        for name in sorted(unknown):
            self.error(f"{context}: unbound name {name!r}", line, col)

    def check_function(self, fn: E.FuncDef) -> None:
        bound = {p for _, p in fn.params}
        self._check_stmt_scope(fn.body, set(bound), fn)

    def _check_stmt_scope(self, stmt: E.Stmt, bound: Set[str], fn: E.FuncDef) -> None:
        if isinstance(stmt, E.Block):
            inner = set(bound)
            for s in stmt.stmts:
                self._check_stmt_scope(s, inner, fn)
            return
        if isinstance(stmt, E.VarDecl):
            if stmt.init is not None:
                self.check_expr_scope(stmt.init, bound, f"function {fn.name}",
                                      stmt.line, stmt.col)
            bound.add(stmt.name)
            return
        if isinstance(stmt, E.Assign):
            if isinstance(stmt.target, E.Name):
                bound.add(stmt.target.ident)
            else:
                self.check_expr_scope(stmt.target, bound, f"function {fn.name}",
                                      stmt.line, stmt.col)
            self.check_expr_scope(stmt.value, bound, f"function {fn.name}",
                                  stmt.line, stmt.col)
            return
        if isinstance(stmt, E.If):
            self.check_expr_scope(stmt.cond, bound, f"function {fn.name}",
                                  stmt.line, stmt.col)
            self._check_stmt_scope(stmt.then, set(bound), fn)
            if stmt.other is not None:
                self._check_stmt_scope(stmt.other, set(bound), fn)
            return
        if isinstance(stmt, E.While):
            self.check_expr_scope(stmt.cond, bound, f"function {fn.name}",
                                  stmt.line, stmt.col)
            self._check_stmt_scope(stmt.body, set(bound), fn)
            return
        if isinstance(stmt, E.ForStmt):
            inner = set(bound)
            if stmt.init is not None:
                self._check_stmt_scope(stmt.init, inner, fn)
            if stmt.cond is not None:
                self.check_expr_scope(stmt.cond, inner, f"function {fn.name}",
                                      stmt.line, stmt.col)
            if stmt.step is not None:
                self._check_stmt_scope(stmt.step, inner, fn)
            self._check_stmt_scope(stmt.body, inner, fn)
            return
        if isinstance(stmt, E.Return):
            if stmt.value is not None:
                self.check_expr_scope(stmt.value, bound, f"function {fn.name}",
                                      stmt.line, stmt.col)
            return
        if isinstance(stmt, E.ExprStmt):
            self.check_expr_scope(stmt.expr, bound, f"function {fn.name}",
                                  stmt.line, stmt.col)

    # -- type uses ------------------------------------------------------------

    def check_type_use(self, texpr: D.TypeExpr, local: Set[str],
                       context: str) -> None:
        if isinstance(texpr, D.OptType):
            self.check_type_use(texpr.inner, local, context)
            return
        if isinstance(texpr, D.RegexType):
            return
        assert isinstance(texpr, D.TypeRef)
        name, args = texpr.name, texpr.args
        for arg in args:
            self.check_expr_scope(arg, local, f"{context}: parameter of {name}",
                                  texpr.line, texpr.col)
        if name in self.declared:
            want = len(self.declared[name].params)
            if len(args) != want:
                self.error(f"{context}: {name} takes {want} parameter(s), "
                           f"got {len(args)}", texpr.line, texpr.col)
            return
        if is_base_type(name):
            try:
                lo, hi = base_type_arity(name, self.ambient)
            except Exception as exc:  # unknown under this ambient
                self.error(f"{context}: {exc}", texpr.line, texpr.col)
                return
            if not (lo <= len(args) <= hi):
                bounds = str(lo) if lo == hi else f"{lo}..{hi}"
                self.error(f"{context}: base type {name} takes {bounds} "
                           f"parameter(s), got {len(args)}", texpr.line, texpr.col)
            return
        self.error(f"{context}: unknown type {name!r} "
                   "(types must be declared before use)", texpr.line, texpr.col)

    # -- declarations ------------------------------------------------------------

    def run(self) -> None:
        for decl in self.desc.decls:
            if isinstance(decl, D.FuncDecl):
                if decl.name in self.functions:
                    self.error(f"duplicate function {decl.name!r}",
                               decl.line, decl.col)
                self.check_ident(decl.name, "function name",
                                 decl.line, decl.col)
                for _, pname in decl.func.params:
                    self.check_ident(pname, "parameter", decl.line, decl.col)
                self.functions[decl.name] = decl.func
                self.check_function(decl.func)
                continue
            assert isinstance(decl, D.Decl)
            self.check_ident(decl.name, "type name", decl.line, decl.col)
            for _, pname in decl.params:
                self.check_ident(pname, "parameter", decl.line, decl.col)
            if decl.name in self.declared or decl.name in self.functions:
                self.error(f"duplicate declaration {decl.name!r}",
                           decl.line, decl.col)
            self.check_decl(decl)
            self.declared[decl.name] = decl
            if isinstance(decl, D.EnumDecl):
                for item in decl.items:
                    if item.name in self.enum_literals:
                        self.error(f"enum literal {item.name!r} redeclared",
                                   decl.line, decl.col)
                    self.enum_literals.add(item.name)

        sources = [d for d in self.desc.decls
                   if isinstance(d, D.Decl) and d.is_source]
        if len(sources) > 1:
            self.error("multiple Psource declarations: "
                       + ", ".join(d.name for d in sources))
        if not self.desc.decls:
            self.error("empty description")

    def check_decl(self, decl: D.Decl) -> None:
        params = {p for _, p in decl.params}
        if len(params) != len(decl.params):
            self.error(f"{decl.name}: duplicate parameter names",
                       decl.line, decl.col)

        if isinstance(decl, D.StructDecl):
            self.check_struct(decl, params)
        elif isinstance(decl, D.UnionDecl):
            self.check_union(decl, params)
        elif isinstance(decl, D.ArrayDecl):
            self.check_array(decl, params)
        elif isinstance(decl, D.EnumDecl):
            self.check_enum(decl)
        elif isinstance(decl, D.TypedefDecl):
            self.check_typedef(decl, params)
        elif isinstance(decl, D.BitfieldsDecl):
            self.check_bitfields(decl, params)

    def check_struct(self, decl: D.StructDecl, params: Set[str]) -> None:
        in_scope: Set[str] = set(params)
        seen: Set[str] = set()
        for item in decl.items:
            if isinstance(item, D.LiteralField):
                continue
            if isinstance(item, D.ComputeField):
                self.check_ident(item.name, "field name", item.line, item.col)
                if item.name in seen:
                    self.error(f"{decl.name}: duplicate field {item.name!r}",
                               item.line, item.col)
                self.check_expr_scope(item.expr, in_scope,
                                      f"{decl.name}.{item.name}",
                                      item.line, item.col)
                seen.add(item.name)
                in_scope.add(item.name)
                if item.constraint is not None:
                    self.check_expr_scope(item.constraint, in_scope,
                                          f"{decl.name}.{item.name} constraint",
                                          item.line, item.col)
                continue
            assert isinstance(item, D.DataField)
            self.check_ident(item.name, "field name", item.line, item.col)
            if item.name in seen:
                self.error(f"{decl.name}: duplicate field {item.name!r}",
                           item.line, item.col)
            self.check_type_use(item.type, in_scope, f"{decl.name}.{item.name}")
            seen.add(item.name)
            in_scope.add(item.name)
            if item.constraint is not None:
                self.check_expr_scope(item.constraint, in_scope,
                                      f"{decl.name}.{item.name} constraint",
                                      item.line, item.col)
        if decl.where is not None:
            self.check_expr_scope(decl.where, in_scope,
                                  f"{decl.name} Pwhere", decl.line, decl.col)

    def check_union(self, decl: D.UnionDecl, params: Set[str]) -> None:
        fields = decl.branches if not decl.is_switched else [c.field for c in decl.cases]
        seen: Set[str] = set()
        for f in fields:
            self.check_ident(f.name, "branch name", f.line, f.col)
            if f.name in seen:
                self.error(f"{decl.name}: duplicate branch {f.name!r}",
                           f.line, f.col)
            seen.add(f.name)
            self.check_type_use(f.type, set(params), f"{decl.name}.{f.name}")
            if f.constraint is not None:
                self.check_expr_scope(f.constraint, params | {f.name},
                                      f"{decl.name}.{f.name} constraint",
                                      f.line, f.col)
        if decl.is_switched:
            self.check_expr_scope(decl.switch, set(params),
                                  f"{decl.name} Pswitch selector",
                                  decl.line, decl.col)
            defaults = [c for c in decl.cases if c.value is None]
            if len(defaults) > 1:
                self.error(f"{decl.name}: multiple Pdefault cases",
                           decl.line, decl.col)
            if not decl.cases:
                self.error(f"{decl.name}: empty Pswitch", decl.line, decl.col)
        elif not decl.branches:
            self.error(f"{decl.name}: empty Punion", decl.line, decl.col)
        if decl.where is not None:
            self.check_expr_scope(decl.where, params | seen,
                                  f"{decl.name} Pwhere", decl.line, decl.col)

    def check_array(self, decl: D.ArrayDecl, params: Set[str]) -> None:
        self.check_type_use(decl.elt_type, set(params), f"{decl.name} element")
        for label, expr in (("Pmin", decl.min_size), ("Pmax", decl.max_size)):
            if expr is not None:
                self.check_expr_scope(expr, set(params),
                                      f"{decl.name} {label}", decl.line, decl.col)
        for label, expr in (("Plast", decl.last), ("Pended", decl.ended)):
            if expr is not None:
                self.check_expr_scope(expr, params | _PSEUDO_ARRAY_VARS,
                                      f"{decl.name} {label}", decl.line, decl.col)
        if decl.where is not None:
            self.check_expr_scope(decl.where, params | _PSEUDO_ARRAY_VARS,
                                  f"{decl.name} Pwhere", decl.line, decl.col)
        if decl.longest and (decl.sep is not None or decl.term is not None):
            # Allowed, but Plongest already subsumes failure-terminated scans.
            pass

    def check_enum(self, decl: D.EnumDecl) -> None:
        seen: Set[str] = set()
        spellings: Set[str] = set()
        for item in decl.items:
            self.check_ident(item.name, "enum literal", decl.line, decl.col)
            if item.name in seen:
                self.error(f"{decl.name}: duplicate literal {item.name!r}",
                           decl.line, decl.col)
            seen.add(item.name)
            spelling = item.physical if item.physical is not None else item.name
            if spelling in spellings:
                self.error(f"{decl.name}: duplicate physical spelling {spelling!r}",
                           decl.line, decl.col)
            spellings.add(spelling)
        if not decl.items:
            self.error(f"{decl.name}: empty Penum", decl.line, decl.col)

    def check_bitfields(self, decl: D.BitfieldsDecl, params: Set[str]) -> None:
        seen: Set[str] = set(params)
        for item in decl.items:
            if item.width <= 0:
                self.error(f"{decl.name}.{item.name}: width must be positive",
                           decl.line, decl.col)
            self.check_ident(item.name, "field name", decl.line, decl.col)
            if item.name in seen:
                self.error(f"{decl.name}: duplicate field {item.name!r}",
                           decl.line, decl.col)
            seen.add(item.name)
            if item.constraint is not None:
                self.check_expr_scope(item.constraint, seen,
                                      f"{decl.name}.{item.name} constraint",
                                      decl.line, decl.col)
        if not decl.items:
            self.error(f"{decl.name}: empty Pbitfields", decl.line, decl.col)
        elif decl.total_bits % 8 != 0:
            self.error(f"{decl.name}: field widths sum to {decl.total_bits} "
                       "bits, not a whole number of bytes",
                       decl.line, decl.col)
        if decl.where is not None:
            self.check_expr_scope(decl.where, seen, f"{decl.name} Pwhere",
                                  decl.line, decl.col)

    def check_typedef(self, decl: D.TypedefDecl, params: Set[str]) -> None:
        self.check_type_use(decl.base, set(params), decl.name)
        if decl.constraint is not None:
            scope = set(params)
            if decl.var is not None:
                scope.add(decl.var)
            self.check_expr_scope(decl.constraint, scope,
                                  f"{decl.name} constraint", decl.line, decl.col)


def check_description(desc: D.Description, ambient: str = "ascii") -> None:
    """Typecheck ``desc``; raises :class:`TypeErrorReport` on any error."""
    checker = _Checker(desc, ambient)
    checker.run()
    if checker.errors:
        raise TypeErrorReport(checker.errors)
