"""Lexer for the PADS description language.

Tokenises the C-flavoured concrete syntax of the paper's Figures 4-5,
including the PADS-specific pieces:

* ``(:`` / ``:)`` type-parameter brackets (``Pstring(:' ':)``),
* ``/-`` line comments (visible in Figure 4), alongside ``//`` and
  ``/* ... */``,
* ``..`` range dots (``[0..length-2]``),
* ``=>`` used by ``Ptypedef`` constraints,
* char/string literals with C escape sequences.

Keywords are the P-constructs with grammatical meaning; base-type names
like ``Puint32`` are plain identifiers resolved later against the
base-type registry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

from ..core.errors import DescriptionError


class LexError(DescriptionError):
    pass


KEYWORDS = {
    "Pstruct", "Punion", "Parray", "Penum", "Popt", "Ptypedef", "Pbitfields",
    "Precord", "Psource", "Pwhere", "Pforall", "Pexists", "Pin",
    "Psep", "Pterm", "Plast", "Pended", "Plongest", "Pmin", "Pmax",
    "Pswitch", "Pcase", "Pdefault", "Peor", "Peof", "Pre", "Pfrom",
    "Pcompute", "Pnone",
    "if", "else", "return", "while", "for", "true", "false",
}

# Multi-character operators, longest first.
_OPERATORS = [
    "(:", ":)", "..", "=>", "==", "!=", "<=", ">=", "&&", "||",
    "<<", ">>", "+=", "-=", "*=", "/=", "%=",
    "{", "}", "(", ")", "[", "]", ";", ",", ":", ".", "?",
    "=", "<", ">", "+", "-", "*", "/", "%", "!", "~", "&", "|", "^",
]

_ESCAPES = {
    "n": "\n", "t": "\t", "r": "\r", "0": "\0", "\\": "\\",
    "'": "'", '"': '"', "a": "\a", "b": "\b", "f": "\f", "v": "\v",
}


@dataclass(frozen=True)
class Token:
    kind: str  # 'ident' | 'keyword' | 'int' | 'float' | 'char' | 'string' | 'op' | 'eof'
    value: str
    line: int
    col: int

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind}, {self.value!r}, {self.line}:{self.col})"


class Lexer:
    def __init__(self, text: str, filename: str = "<description>"):
        self.text = text
        self.filename = filename
        self.pos = 0
        self.line = 1
        self.col = 1

    def error(self, message: str) -> LexError:
        return LexError(message, self.line, self.col)

    def _advance(self, n: int = 1) -> None:
        for _ in range(n):
            if self.pos < len(self.text) and self.text[self.pos] == "\n":
                self.line += 1
                self.col = 1
            else:
                self.col += 1
            self.pos += 1

    def _peek(self, k: int = 0) -> str:
        idx = self.pos + k
        return self.text[idx] if idx < len(self.text) else ""

    def tokens(self) -> List[Token]:
        return list(self._iter())

    def _iter(self) -> Iterator[Token]:
        while True:
            self._skip_trivia()
            if self.pos >= len(self.text):
                yield Token("eof", "", self.line, self.col)
                return
            yield self._next_token()

    def _skip_trivia(self) -> None:
        while self.pos < len(self.text):
            ch = self._peek()
            if ch in " \t\r\n":
                self._advance()
            elif ch == "/" and self._peek(1) in ("/", "-"):
                while self.pos < len(self.text) and self._peek() != "\n":
                    self._advance()
            elif ch == "/" and self._peek(1) == "*":
                start_line, start_col = self.line, self.col
                self._advance(2)
                while self.pos < len(self.text) and not (self._peek() == "*" and self._peek(1) == "/"):
                    self._advance()
                if self.pos >= len(self.text):
                    raise LexError("unterminated block comment", start_line, start_col)
                self._advance(2)
            else:
                return

    def _next_token(self) -> Token:
        line, col = self.line, self.col
        ch = self._peek()

        if ch.isalpha() or ch == "_":
            start = self.pos
            while self.pos < len(self.text) and (self._peek().isalnum() or self._peek() == "_"):
                self._advance()
            word = self.text[start:self.pos]
            kind = "keyword" if word in KEYWORDS else "ident"
            return Token(kind, word, line, col)

        if ch.isdigit():
            return self._number(line, col)

        if ch == "'":
            return Token("char", self._char_literal(), line, col)

        if ch == '"':
            return Token("string", self._string_literal(), line, col)

        for op in _OPERATORS:
            if self.text.startswith(op, self.pos):
                # Disambiguate ".." inside numbers is handled by _number; here
                # '.' alone is member access.
                self._advance(len(op))
                return Token("op", op, line, col)

        raise LexError(f"unexpected character {ch!r}", line, col)

    def _number(self, line: int, col: int) -> Token:
        start = self.pos
        if self._peek() == "0" and self._peek(1) in ("x", "X"):
            self._advance(2)
            while self._peek() and self._peek() in "0123456789abcdefABCDEF":
                self._advance()
            return Token("int", self.text[start:self.pos], line, col)
        while self._peek().isdigit():
            self._advance()
        # A '.' starts a float only when not the '..' range operator and is
        # followed by a digit.
        if self._peek() == "." and self._peek(1).isdigit():
            self._advance()
            while self._peek().isdigit():
                self._advance()
            if self._peek() in ("e", "E"):
                self._advance()
                if self._peek() in ("+", "-"):
                    self._advance()
                while self._peek().isdigit():
                    self._advance()
            return Token("float", self.text[start:self.pos], line, col)
        return Token("int", self.text[start:self.pos], line, col)

    def _escape(self) -> str:
        self._advance()  # consume backslash
        ch = self._peek()
        if ch == "x":
            self._advance()
            hexits = ""
            while len(hexits) < 2 and self._peek() in "0123456789abcdefABCDEF":
                hexits += self._peek()
                self._advance()
            if not hexits:
                raise self.error("invalid \\x escape")
            return chr(int(hexits, 16))
        if ch in _ESCAPES:
            self._advance()
            return _ESCAPES[ch]
        raise self.error(f"unknown escape sequence \\{ch}")

    def _char_literal(self) -> str:
        self._advance()  # opening quote
        if self._peek() == "\\":
            value = self._escape()
        elif self._peek() == "'":
            raise self.error("empty character literal")
        else:
            value = self._peek()
            self._advance()
        if self._peek() != "'":
            raise self.error("unterminated character literal")
        self._advance()
        return value

    def _string_literal(self) -> str:
        self._advance()  # opening quote
        chars: List[str] = []
        while True:
            ch = self._peek()
            if ch == "":
                raise self.error("unterminated string literal")
            if ch == '"':
                self._advance()
                return "".join(chars)
            if ch == "\\":
                chars.append(self._escape())
            elif ch == "\n":
                raise self.error("newline in string literal")
            else:
                chars.append(ch)
                self._advance()
