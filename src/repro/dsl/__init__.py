"""Front-end for the PADS description language.

This package implements the concrete syntax from the paper (Figures 4-5):
a lexer, a recursive-descent parser producing description ASTs, and a
typechecker that resolves names, checks parameter arity and verifies that
constraints only mention fields already in scope.
"""

from .lexer import Lexer, LexError, Token
from .parser import parse_description
from .typecheck import check_description

__all__ = ["Lexer", "LexError", "Token", "parse_description", "check_description"]
