"""AST for PADS descriptions (the type-declaration layer).

Expressions and statements reuse :mod:`repro.expr.ast`; this module adds
the declaration forms from the paper's Section 3: ``Pstruct``, ``Punion``
(ordered and switched), ``Parray`` with separator/terminator/size/predicate
termination, ``Penum``, ``Popt``, ``Ptypedef``, ``Pwhere`` clauses and the
``Precord`` / ``Psource`` annotations, plus user helper functions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..expr import ast as E


# ---------------------------------------------------------------------------
# Type expressions (uses of types)
# ---------------------------------------------------------------------------

@dataclass
class TypeExpr:
    line: int = field(default=0, kw_only=True)
    col: int = field(default=0, kw_only=True)


@dataclass
class TypeRef(TypeExpr):
    """Use of a named type, possibly with value parameters: ``Puint16_FW(:3:)``."""
    name: str
    args: List[E.Expr] = field(default_factory=list)


@dataclass
class OptType(TypeExpr):
    """``Popt T`` — sugar for a union of T and the void type (paper §3)."""
    inner: TypeExpr


@dataclass
class RegexType(TypeExpr):
    """``Pre "pattern"`` used as an anonymous string-matching type."""
    pattern: str


# ---------------------------------------------------------------------------
# Literals appearing as data (struct literal fields, separators, terminators)
# ---------------------------------------------------------------------------

@dataclass
class LiteralSpec:
    """A physical literal: a char, string, or regex; or the EOR/EOF markers."""
    kind: str  # 'char' | 'string' | 'regex' | 'eor' | 'eof' | 'expr'
    value: object = None  # str for char/string/regex; E.Expr for 'expr'
    line: int = 0
    col: int = 0

    def describe(self) -> str:
        if self.kind == "eor":
            return "Peor"
        if self.kind == "eof":
            return "Peof"
        if self.kind == "regex":
            return f"Pre {self.value!r}"
        return repr(self.value)


# ---------------------------------------------------------------------------
# Struct / union members
# ---------------------------------------------------------------------------

@dataclass
class LiteralField:
    """An anonymous literal member of a Pstruct, e.g. ``"HTTP/";``."""
    literal: LiteralSpec


@dataclass
class DataField:
    """A named member: ``Puint8 major;`` possibly with a constraint.

    ``constraint`` is evaluated with all earlier fields and this field in
    scope (paper: "earlier fields are in scope during the processing of
    later fields").
    """
    name: str
    type: TypeExpr
    constraint: Optional[E.Expr] = None
    line: int = 0
    col: int = 0


@dataclass
class ComputeField:
    """``Pcompute`` member: a value computed from earlier fields, consuming
    no input.  An optional constraint checks the computed value."""
    name: str
    type_name: str
    expr: E.Expr
    constraint: Optional[E.Expr] = None
    line: int = 0
    col: int = 0


StructItem = object  # LiteralField | DataField | ComputeField


# ---------------------------------------------------------------------------
# Declarations
# ---------------------------------------------------------------------------

@dataclass
class Decl:
    name: str
    params: List[Tuple[str, str]] = field(default_factory=list)  # (type, name)
    is_record: bool = False
    is_source: bool = False
    where: Optional[E.Expr] = None
    line: int = 0
    col: int = 0


@dataclass
class StructDecl(Decl):
    items: List[StructItem] = field(default_factory=list)

    def data_fields(self) -> List[DataField]:
        return [i for i in self.items if isinstance(i, DataField)]


@dataclass
class SwitchCase:
    value: Optional[E.Expr]  # None for Pdefault
    field: DataField


@dataclass
class UnionDecl(Decl):
    branches: List[DataField] = field(default_factory=list)
    switch: Optional[E.Expr] = None  # selector expression for Pswitch form
    cases: List[SwitchCase] = field(default_factory=list)

    @property
    def is_switched(self) -> bool:
        return self.switch is not None


@dataclass
class ArrayDecl(Decl):
    elt_type: TypeExpr = None
    elt_name: Optional[str] = None
    sep: Optional[LiteralSpec] = None
    term: Optional[LiteralSpec] = None
    min_size: Optional[E.Expr] = None
    max_size: Optional[E.Expr] = None
    last: Optional[E.Expr] = None   # stop *after* an element satisfying this
    ended: Optional[E.Expr] = None  # stop *before* parsing when this holds
    longest: bool = False           # parse as many elements as possible


@dataclass
class BitfieldItem:
    """One field of a Pbitfields declaration: ``width : name (: constraint)``."""
    width: int
    name: str
    constraint: Optional[E.Expr] = None


@dataclass
class BitfieldsDecl(Decl):
    """``Pbitfields`` — the bit-field construct from the paper's Section 9
    ("we intend to add bit-field and overlay constructs ... in a fashion
    similar to DATASCRIPT and PACKETTYPES").  Fields are consecutive
    MSB-first bit ranges over a big-endian word whose width is the sum of
    the field widths (which must be a whole number of bytes).

    The construct is *checked sugar*: binding and code generation lower it
    to a Pstruct holding the raw word plus computed bit extractions (see
    ``lower_bitfields``), so every generated tool works on it unchanged.
    """
    items: List[BitfieldItem] = field(default_factory=list)

    @property
    def total_bits(self) -> int:
        return sum(item.width for item in self.items)


def lower_bitfields(decl: "BitfieldsDecl") -> "StructDecl":
    """Lower a Pbitfields declaration to its equivalent Pstruct.

    The struct parses one ``Pb_raw(:nbytes:)`` word into the hidden field
    ``_raw`` and derives each bit-field with a Pcompute: shifting and
    masking MSB-first.  Writing serialises ``_raw``, so round-trips are
    exact.
    """
    nbytes = decl.total_bits // 8
    items: List[object] = [
        DataField("_raw", TypeRef("Pb_raw", [E.IntLit(nbytes)]))]
    shift = decl.total_bits
    for item in decl.items:
        shift -= item.width
        mask = (1 << item.width) - 1
        expr = E.Binary("&", E.Binary(">>", E.Name("_raw"), E.IntLit(shift)),
                        E.IntLit(mask))
        items.append(ComputeField(item.name, "int", expr, item.constraint))
    return StructDecl(name=decl.name, params=decl.params,
                      is_record=decl.is_record, is_source=decl.is_source,
                      where=decl.where, items=items,
                      line=decl.line, col=decl.col)


@dataclass
class EnumItem:
    name: str
    value: Optional[int] = None      # integer code (defaults to position)
    physical: Optional[str] = None   # Pfrom("...") alternate spelling


@dataclass
class EnumDecl(Decl):
    items: List[EnumItem] = field(default_factory=list)


@dataclass
class TypedefDecl(Decl):
    base: TypeExpr = None
    var: Optional[str] = None        # the `x` in `response_t x => {...}`
    constraint: Optional[E.Expr] = None


@dataclass
class FuncDecl:
    func: E.FuncDef
    line: int = 0
    col: int = 0

    @property
    def name(self) -> str:
        return self.func.name


@dataclass
class Description:
    """A complete PADS description: an ordered list of declarations.

    ``source`` names the Psource type (the totality of the data source);
    per the paper, types are declared before use, so by default the last
    type declaration is the source if none is annotated.
    """
    decls: List[object] = field(default_factory=list)
    filename: str = "<description>"

    def types(self) -> Dict[str, Decl]:
        return {d.name: d for d in self.decls if isinstance(d, Decl)}

    def functions(self) -> Dict[str, E.FuncDef]:
        return {d.name: d.func for d in self.decls if isinstance(d, FuncDecl)}

    @property
    def source(self) -> Optional[Decl]:
        explicit = [d for d in self.decls if isinstance(d, Decl) and d.is_source]
        if explicit:
            return explicit[-1]
        type_decls = [d for d in self.decls if isinstance(d, Decl)]
        return type_decls[-1] if type_decls else None
