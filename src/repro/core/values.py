"""In-memory representations produced by parsing.

The paper maps each PADS type onto a canonical C representation (Section
4): structs to C structs, unions to tagged unions, arrays to length+data,
enums to C enums.  The Python analogues:

* :class:`Rec` — struct values with attribute access and field order,
* :class:`UnionVal` — tagged union values,
* ``list`` — arrays (``length`` is exposed to constraints by the
  expression evaluator),
* :class:`EnumVal` — a ``str`` subclass carrying the integer code, so
  constraints may compare enum fields against literal names,
* :class:`DateVal` — a parsed date: comparable epoch seconds plus the raw
  text, so writing reproduces the original bytes.
"""

from __future__ import annotations

import datetime as _dt
from typing import Iterator, Optional


class Rec:
    """A struct value: ordered named fields with attribute access.

    The keyword dict is adopted as the instance ``__dict__`` directly, so
    construction is one pointer assignment and field reads are ordinary
    C-speed attribute lookups — this type is instantiated once per parsed
    struct, which makes it one of the hottest allocations in the system.
    """

    def __init__(self, **fields):
        self.__dict__ = fields

    def __getitem__(self, name: str):
        return self.__dict__[name]

    def __setitem__(self, name: str, value) -> None:
        self.__dict__[name] = value

    def __contains__(self, name: str) -> bool:
        return name in self.__dict__

    def __iter__(self) -> Iterator[str]:
        return iter(self.__dict__)

    def items(self):
        return self.__dict__.items()

    def keys(self):
        return self.__dict__.keys()

    def __eq__(self, other) -> bool:
        if isinstance(other, Rec):
            return self.__dict__ == other.__dict__
        return NotImplemented

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v!r}" for k, v in self.__dict__.items())
        return f"Rec({inner})"


class UnionVal:
    """A tagged union value: the branch name plus the branch value.

    Attribute access by branch name projects the value (like C's
    ``u.val.branch``); accessing a different branch raises, which surfaces
    as a constraint-evaluation error rather than silently comparing
    garbage.
    """

    __slots__ = ("tag", "value")

    def __init__(self, tag: str, value):
        object.__setattr__(self, "tag", tag)
        object.__setattr__(self, "value", value)

    def __getattr__(self, name: str):
        if name == object.__getattribute__(self, "tag"):
            return object.__getattribute__(self, "value")
        raise AttributeError(
            f"union holds {object.__getattribute__(self, 'tag')!r}, not {name!r}")

    def __setattr__(self, name, value):
        raise AttributeError("union values are immutable; build a new one")

    def __reduce__(self):
        # Default slot-based unpickling would trip the immutability guard;
        # rebuild through the constructor instead (parallel workers ship
        # parsed reps back to the parent by pickle).
        return (UnionVal,
                (object.__getattribute__(self, "tag"),
                 object.__getattribute__(self, "value")))

    def __eq__(self, other) -> bool:
        if isinstance(other, UnionVal):
            return self.tag == other.tag and self.value == other.value
        return NotImplemented

    def __repr__(self) -> str:
        return f"UnionVal({self.tag!r}, {self.value!r})"


class EnumVal(str):
    """An enum value: compares as its literal name, carries the int code."""

    def __new__(cls, name: str, code: int = 0, physical: Optional[str] = None):
        self = super().__new__(cls, name)
        self.code = code
        self.physical = physical if physical is not None else name
        return self

    def __int__(self) -> int:
        return self.code


class FloatVal(float):
    """A parsed float that remembers its physical spelling.

    ``0``, ``0.0`` and ``0e0`` all parse to the same number; keeping the
    raw text lets ``write`` reproduce the input byte-for-byte.  Behaves as
    a plain float everywhere else.
    """

    def __new__(cls, value, raw: str = ""):
        self = super().__new__(cls, value)
        self.raw = raw or repr(float(value))
        return self

    def __repr__(self) -> str:
        return f"FloatVal({float(self)!r}, {self.raw!r})"


class DateVal:
    """A parsed date: epoch seconds (UTC) plus the raw matched text."""

    __slots__ = ("epoch", "raw")

    def __init__(self, epoch: int, raw: str = ""):
        self.epoch = int(epoch)
        self.raw = raw or self.strftime("%Y-%m-%d %H:%M:%S")

    @classmethod
    def from_datetime(cls, dt: _dt.datetime, raw: str = "") -> "DateVal":
        if dt.tzinfo is None:
            dt = dt.replace(tzinfo=_dt.timezone.utc)
        return cls(int(dt.timestamp()), raw)

    def datetime(self) -> _dt.datetime:
        return _dt.datetime.fromtimestamp(self.epoch, _dt.timezone.utc)

    def strftime(self, fmt: str) -> str:
        # Expand the C-library shorthands the paper's example uses ("%D:%T").
        fmt = fmt.replace("%D", "%m/%d/%y").replace("%T", "%H:%M:%S")
        return self.datetime().strftime(fmt)

    def _key(self, other):
        if isinstance(other, DateVal):
            return other.epoch
        if isinstance(other, (int, float)):
            return other
        return NotImplemented

    def __eq__(self, other):
        key = self._key(other)
        return NotImplemented if key is NotImplemented else self.epoch == key

    def __lt__(self, other):
        key = self._key(other)
        return NotImplemented if key is NotImplemented else self.epoch < key

    def __le__(self, other):
        key = self._key(other)
        return NotImplemented if key is NotImplemented else self.epoch <= key

    def __gt__(self, other):
        key = self._key(other)
        return NotImplemented if key is NotImplemented else self.epoch > key

    def __ge__(self, other):
        key = self._key(other)
        return NotImplemented if key is NotImplemented else self.epoch >= key

    def __hash__(self):
        return hash(self.epoch)

    def __repr__(self) -> str:
        return f"DateVal({self.epoch}, {self.raw!r})"

    def __str__(self) -> str:
        return self.raw
