"""High-level user API: compile descriptions, parse data, write it back.

The paper's workflow is: write a description, run the PADS compiler, link
against the generated library.  The Python analogue is one call::

    from repro import compile_description
    clf = compile_description(CLF_SOURCE)
    rep, pd = clf.parse(data, "entry_t")

The returned :class:`CompiledDescription` exposes the generated-library
surface: parsing with masks and parse descriptors, multiple entry points
(whole source / record at a time / array element at a time), writing,
verification and random data generation.
"""

from __future__ import annotations

import hashlib
import random
import threading
from collections import OrderedDict
from time import perf_counter
from typing import Iterator, Optional, Tuple, Union

from .. import observe
from ..dsl import ast as D
from ..dsl.parser import parse_description
from ..dsl.typecheck import check_description
from ..expr.eval import Env
from .binding import BoundDescription, bind_description
from .errors import ErrCode, PadsError, Pd
from .io import NewlineRecords, RecordDiscipline, Source
from .limits import ParseLimits
from .masks import Mask, P_CheckAndSet
from .types import ArrayNode, PType, RecordNode

Data = Union[bytes, str, Source]


class CompiledDescription:
    """A compiled PADS description: the Python stand-in for the paper's
    generated ``.h``/``.c`` library."""

    def __init__(self, bound: BoundDescription,
                 discipline: Optional[RecordDiscipline] = None,
                 source_text: Optional[str] = None,
                 limits: Optional[ParseLimits] = None):
        self.bound = bound
        self.desc = bound.desc
        self.ambient = bound.ambient
        self.discipline = discipline or NewlineRecords()
        #: The original description source, kept so worker processes can
        #: recompile the description (:mod:`repro.parallel`).
        self.source_text = source_text
        #: Resource budget attached to every source this description opens.
        self.limits = limits
        bound.global_env.vars["_pads_discipline"] = self.discipline

    # -- introspection ----------------------------------------------------------

    @property
    def type_names(self):
        return list(self.bound.nodes)

    @property
    def source_type(self) -> str:
        return self.bound.source_name

    @property
    def plan(self):
        """The analyzed plan IR the description was bound from."""
        return self.bound.plan

    def node(self, name: Optional[str] = None) -> PType:
        if name is None:
            return self.bound.source_node
        return self.bound.node(name)

    @property
    def env(self) -> Env:
        return self.bound.global_env

    # -- sources ------------------------------------------------------------------

    def open(self, data: Data) -> Source:
        # Strings are encoded latin-1 (byte-transparent) everywhere in the
        # runtime; see the :mod:`repro.core.io` module docstring.
        if isinstance(data, Source):
            if data.limits is None and self.limits is not None:
                data.set_limits(self.limits)
            return data
        if isinstance(data, str):
            data = data.encode("latin-1")
        return Source.from_bytes(data, self.discipline, limits=self.limits)

    def open_file(self, path: str) -> Source:
        return Source.from_file(path, self.discipline, limits=self.limits)

    # -- parsing entry points --------------------------------------------------------

    def parse(self, data: Data, type_name: Optional[str] = None,
              mask: Optional[Mask] = None) -> Tuple[object, Pd]:
        """Parse one value of ``type_name`` (default: the Psource type)."""
        if isinstance(type_name, Mask):  # allow parse(data, mask)
            type_name, mask = None, type_name
        src = self.open(data)
        node = self.node(type_name)
        obs = observe.CURRENT
        if obs is None:
            return node.parse(src, mask or Mask(P_CheckAndSet), self.env)
        start, t0 = src.pos, perf_counter()
        rep, pd = node.parse(src, mask or Mask(P_CheckAndSet), self.env)
        obs.record_parsed(type_name or self.source_type, pd, src.pos - start,
                          perf_counter() - t0, start=start,
                          record=src.record_idx)
        return rep, pd

    def parse_source(self, data: Data, mask: Optional[Mask] = None):
        return self.parse(data, None, mask)

    def records(self, data: Data, type_name: str,
                mask: Optional[Mask] = None) -> Iterator[Tuple[object, Pd]]:
        """Record-at-a-time entry point (paper Section 4).

        Repeatedly parses ``type_name`` until end of input.  The type need
        not be declared ``Precord``; when it isn't, each iteration opens a
        record scope around it, matching how the paper's loop in Figure 7
        drives ``entry_t_read``.
        """
        src = self.open(data)
        node = self.node(type_name)
        use_mask = mask or Mask(P_CheckAndSet)
        wrapped = node if isinstance(node, RecordNode) else RecordNode(node)
        # One global load decides between the plain loop and the metered
        # one, keeping the disabled path free of per-record bookkeeping.
        obs = observe.CURRENT
        if obs is None:
            while not src.at_eof():
                rep, pd = wrapped.parse(src, use_mask, self.env)
                if pd.err_code == ErrCode.AT_EOF:
                    return
                yield rep, pd
            return
        while not src.at_eof():
            start, t0 = src.pos, perf_counter()
            rep, pd = wrapped.parse(src, use_mask, self.env)
            if pd.err_code == ErrCode.AT_EOF:
                return
            obs.record_parsed(type_name, pd, src.pos - start,
                              perf_counter() - t0, start=start,
                              record=src.record_idx)
            yield rep, pd

    def array_elements(self, data: Data, type_name: str,
                       mask: Optional[Mask] = None):
        """Element-at-a-time reading of a Parray type (paper Section 4)."""
        node = self.node(type_name)
        inner = node.inner if isinstance(node, RecordNode) else node
        if not isinstance(inner, ArrayNode):
            raise PadsError(f"{type_name} is not a Parray")
        src = self.open(data)
        yield from inner.parse_elements(src, mask or Mask(P_CheckAndSet), self.env)

    def count_records(self, data: Data) -> int:
        """Count records using only the record discipline (no field
        parsing) — the analogue of the paper's record-counting program."""
        src = self.open(data)
        count = 0
        while src.begin_record():
            src.end_record()
            count += 1
        return count

    # -- streaming entry points --------------------------------------------------
    #
    # Bounded-memory twins (:mod:`repro.stream`): ``data`` may be a pipe,
    # socket, fd, growing file or any readable binary object; it is read
    # through a sliding window so memory stays O(window) regardless of
    # input size.

    def records_stream(self, data, type_name: str,
                       mask: Optional[Mask] = None, **opts):
        """Bounded-memory record stream (``records`` twin).  ``opts``:
        ``window``, ``follow``, ``poll_interval``, ``idle_timeout``."""
        from ..stream import records_stream
        return records_stream(self, data, type_name, mask, **opts)

    def accumulate_stream(self, data, record_type: str,
                          mask: Optional[Mask] = None, **opts):
        """Bounded-memory accumulation: returns ``(acc, tally)``."""
        from ..stream import accumulate_stream
        return accumulate_stream(self, data, record_type, mask, **opts)

    def count_records_stream(self, data, **opts) -> int:
        """Bounded-memory record counting (``count_records`` twin)."""
        from ..stream import count_records_stream
        return count_records_stream(self, data, **opts)

    # -- batch entry points --------------------------------------------------------
    #
    # Vectorized twins (:mod:`repro.batch`): when the plan proves the
    # record layout fully static and the record discipline gives records
    # a constant pitch, thousands of records parse per call through a
    # columnar kernel.  All of them fall back to the cursor path (same
    # results, cursor speed) when the description is ineligible.

    def batch_kernel(self, type_name: str):
        """``(static width, batch kernel)`` for a batch-eligible record
        type, or None.  The kernels are materialised from the same plan
        fragments a generated module carries in its ``BATCH`` table."""
        dp = self.plan.decls.get(type_name)
        if dp is None or not dp.batch_verdict.eligible:
            return None
        fn = self.bound.batch_fns.get(type_name)
        if fn is None:
            return None
        return dp.width, fn

    def records_batch(self, data, type_name: str,
                      mask: Optional[Mask] = None, *,
                      strict: bool = False):
        """Vectorized record stream (``records`` twin)."""
        from ..batch import records_batch
        return records_batch(self, data, type_name, mask, strict=strict)

    def accumulate_batch(self, data, record_type: str,
                         mask: Optional[Mask] = None, *,
                         tracked: int = 1000, summaries: bool = False,
                         strict: bool = False):
        """Vectorized accumulation: returns ``(acc, tally)``."""
        from ..batch import accumulate_batch
        return accumulate_batch(self, data, record_type, mask,
                                tracked=tracked, summaries=summaries,
                                strict=strict)

    def count_records_batch(self, data, *, strict: bool = False) -> int:
        """Vectorized record counting (``count_records`` twin)."""
        from ..batch import count_records_batch
        return count_records_batch(self, data, strict=strict)

    # -- parallel entry points ---------------------------------------------------
    #
    # Chunked map-reduce twins of the serial entry points above
    # (:mod:`repro.parallel`).  ``data`` may additionally be an
    # ``os.PathLike``, in which case each worker opens its own window of
    # the file.  All of them fall back to the serial path when ``jobs``
    # is 1 or the record discipline cannot be chunk-aligned.

    def records_parallel(self, data, type_name: str,
                         mask: Optional[Mask] = None,
                         *, jobs: Optional[int] = None):
        """Order-preserving parallel record stream (``records`` twin)."""
        from ..parallel import parallel_records
        return parallel_records(self, data, type_name, mask, jobs=jobs)

    def accumulate_parallel(self, data, record_type: str,
                            mask: Optional[Mask] = None,
                            *, jobs: Optional[int] = None,
                            tracked: int = 1000,
                            header_type: Optional[str] = None,
                            summaries: bool = False):
        """Parallel accumulation: returns ``(acc, header_acc, tally)``."""
        from ..parallel import parallel_accumulate
        return parallel_accumulate(self, data, record_type, mask, jobs=jobs,
                                   tracked=tracked, header_type=header_type,
                                   summaries=summaries)

    def count_records_parallel(self, data, *, jobs: Optional[int] = None) -> int:
        """Parallel record counting (``count_records`` twin)."""
        from ..parallel import parallel_count
        return parallel_count(self, data, jobs=jobs)

    # -- writing -------------------------------------------------------------------

    def write(self, rep, type_name: Optional[str] = None) -> bytes:
        """Render ``rep`` back into its physical form (``write2io``)."""
        node = self.node(type_name)
        out = []
        node.write(rep, out, self.env)
        return b"".join(out)

    # -- verification / generation ------------------------------------------------------

    def verify(self, rep, type_name: Optional[str] = None) -> bool:
        """Re-check semantic constraints on an in-memory value
        (``entry_t_verify`` in the paper's Figure 7)."""
        return self.node(type_name).verify(rep, self.env)

    def default(self, type_name: Optional[str] = None):
        return self.node(type_name).default(self.env)

    def generate(self, type_name: Optional[str] = None,
                 rng: Optional[random.Random] = None):
        """Generate a random in-memory value conforming to the type."""
        return self.node(type_name).generate(rng or random.Random(), self.env)

    def generate_bytes(self, type_name: Optional[str] = None,
                       rng: Optional[random.Random] = None) -> bytes:
        """Generate random *data* conforming to the type."""
        rep = self.generate(type_name, rng)
        return self.write(rep, type_name)


def compile_description(text: str, *, ambient: str = "ascii",
                        discipline: Optional[RecordDiscipline] = None,
                        filename: str = "<description>",
                        check: bool = True,
                        fastpath: bool = True,
                        limits: Optional[ParseLimits] = None,
                        base_type_files: Optional[list] = None,
                        backend: Optional[str] = None):
    """Parse, typecheck, analyze and bind a PADS description.

    ``ambient`` selects the ambient coding ('ascii', 'binary', 'ebcdic');
    ``discipline`` the record discipline (newline-terminated by default,
    as in the paper); ``fastpath`` disables the plan-compiled record
    fast functions (reference mode for differential testing);
    ``limits`` an optional :class:`~repro.core.limits.ParseLimits`
    resource budget attached to every source the description opens;
    ``base_type_files`` lists user base-type specification files to load
    first (paper Section 6).

    ``backend`` selects the execution engine: ``None`` (the default)
    binds the interpreted combinators; ``'auto'``, ``'source'`` or
    ``'ast'`` compile through the named codegen backend
    (:mod:`repro.codegen.backends`) and return the generated twin,
    :class:`~repro.codegen.GeneratedDescription` — same API surface,
    byte-identical results.
    """
    if base_type_files:
        from .basetypes.userdef import load_base_type_files
        load_base_type_files(base_type_files)
    if backend is not None:
        from ..codegen import compile_generated
        return compile_generated(text, ambient=ambient,
                                 discipline=discipline, filename=filename,
                                 check=check, fastpath=fastpath,
                                 limits=limits, backend=backend)
    desc = parse_description(text, filename)
    if check:
        check_description(desc, ambient)
    bound = bind_description(desc, ambient, fastpath=fastpath)
    return CompiledDescription(bound, discipline, source_text=text,
                               limits=limits)


def compile_file(path: str, **kwargs):
    with open(path, "r", encoding="utf-8") as handle:
        return compile_description(handle.read(), filename=path, **kwargs)


# -- compiled-description cache -------------------------------------------------
#
# Long-running processes (the parse service, notebooks, repeated CLI
# invocations through the library) compile the same description over and
# over.  Compilation is pure in everything the cache key covers, so a
# content-hash-keyed cache gives compile-once semantics.
#
# The key MUST cover every compile input that changes the produced
# artifact — not just the source text.  Hashing only the source is a
# cross-tenant poisoning bug: two tenants sending identical source with
# different backends (interpreted vs generated), ambients, record
# disciplines or fastpath settings would share one compiled module, and
# whichever compiled first would silently serve the other tenant's
# requests with the wrong engine.  ``ParseLimits`` are deliberately NOT
# part of the key: limits are per-*source* state (attached when a cursor
# opens), so the same compiled description serves every budget.


def discipline_key(discipline) -> tuple:
    """A stable identity tuple for a record discipline.

    Covers the discipline class plus every constructor parameter any
    shipped discipline has; shared by the description cache and the
    parallel engine's worker :class:`~repro.parallel.DescSpec`.
    """
    d = discipline
    if d is None:
        return ("NewlineRecords", None, None, None, None)
    return (type(d).__name__, getattr(d, "width", None),
            getattr(d, "prefix", None), getattr(d, "byteorder", None),
            getattr(d, "inclusive", None))


def description_cache_key(text: str, *, ambient: str = "ascii",
                          discipline=None, backend: Optional[str] = None,
                          fastpath: bool = True) -> str:
    """Content hash over every plan-relevant compile input.

    ``backend=None`` (the interpreted engine) and each codegen backend
    hash differently; so do ambient codings, record disciplines and the
    fastpath/reference-mode switch.
    """
    parts = (text, ambient, str(backend), str(bool(fastpath)),
             repr(discipline_key(discipline)))
    h = hashlib.sha256()
    for part in parts:
        h.update(part.encode("utf-8", "surrogateescape"))
        h.update(b"\x00")
    return h.hexdigest()


class DescriptionCache:
    """A bounded, thread-safe, content-hash-keyed compile cache.

    Lookup and insertion are guarded by a lock so concurrent server
    request handlers (thread-pool executors) can share one cache;
    compilation itself runs outside the lock.  Racing first requests
    for the same key are *single-flighted*: one thread compiles, the
    rest wait on its gate and then take the cache hit — so a cold
    popular description costs exactly one compile no matter how many
    clients stampede it (and the compile-once metric stays exact).
    """

    def __init__(self, maxsize: int = 128):
        self.maxsize = maxsize
        self._entries: "OrderedDict[str, object]" = OrderedDict()
        self._lock = threading.Lock()
        self._inflight: Dict[str, threading.Event] = {}
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> dict:
        with self._lock:
            return {"hits": self.hits, "misses": self.misses,
                    "entries": len(self._entries)}

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0

    def get(self, key: str):
        """The cached description for ``key``, or None (counts a hit)."""
        with self._lock:
            desc = self._entries.get(key)
            if desc is not None:
                self._entries.move_to_end(key)
                self.hits += 1
            return desc

    def get_or_compile(self, text: str, *, ambient: str = "ascii",
                       discipline=None, backend: Optional[str] = None,
                       fastpath: bool = True, check: bool = True,
                       filename: str = "<description>"):
        """``(description, key, hit)`` for the given compile inputs.

        The returned description carries no :class:`ParseLimits`; attach
        budgets per-source (``Source.from_bytes(..., limits=...)``) so
        one cached artifact serves every tenant.
        """
        key = description_cache_key(text, ambient=ambient,
                                    discipline=discipline, backend=backend,
                                    fastpath=fastpath)
        while True:
            with self._lock:
                desc = self._entries.get(key)
                if desc is not None:
                    self._entries.move_to_end(key)
                    self.hits += 1
                    return desc, key, True
                gate = self._inflight.get(key)
                if gate is None:
                    gate = self._inflight[key] = threading.Event()
                    break  # this thread is the compiling leader
            # Single-flight: another thread is compiling this key; wait
            # for its gate, then re-check (hit on success, or become the
            # new leader if it failed).
            gate.wait()
        try:
            desc = compile_description(text, ambient=ambient,
                                       discipline=discipline,
                                       filename=filename, check=check,
                                       fastpath=fastpath, backend=backend)
        except BaseException:
            with self._lock:
                self._inflight.pop(key, None)
            gate.set()  # wake waiters; one of them retries as leader
            raise
        with self._lock:
            self.misses += 1
            self._entries[key] = desc
            self._entries.move_to_end(key)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
            self._inflight.pop(key, None)
        gate.set()
        return desc, key, False


#: The process-wide cache behind :func:`compile_cached`.  Servers build
#: their own instance so per-server cache metrics stay isolated.
DESCRIPTION_CACHE = DescriptionCache()


def compile_cached(text: str, **kwargs):
    """:func:`compile_description` through the process-wide
    :data:`DESCRIPTION_CACHE` (compile-once semantics)."""
    desc, _key, _hit = DESCRIPTION_CACHE.get_or_compile(text, **kwargs)
    return desc
