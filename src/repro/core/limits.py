"""Resource limits for the PADS runtime.

The paper's robustness story is that a generated parser "checks all
possible error cases" and reports them through parse descriptors instead
of ceding control to bad data.  That covers *syntactic* hostility; this
module covers *resource* hostility: inputs crafted (or corrupted) so that
an otherwise correct parser scans, allocates, or recurses without bound.

:class:`ParseLimits` is an immutable budget attached to a
:class:`~repro.core.io.Source` (``src.limits``).  Both engines — the
interpreted combinators and the generated modules — consult the same
cursor-level state, so limit semantics are identical by construction:

* ``max_record_bytes`` — records longer than this are skipped whole
  (``RECORD_LIMIT``), never parsed.
* ``max_array_elems`` — array parses stop growing at this many elements
  (``ARRAY_LIMIT``).
* ``max_scan`` — caps every error-recovery scan window (literal resync,
  array resync, stuck-field skip) below the engines' built-in cap.
* ``max_depth`` — caps nesting of compound parsers (``NEST_LIMIT``).
  Descriptions are declare-before-use, so this is a defensive bound, not
  a recursion breaker.
* ``deadline`` — wall-clock seconds for the whole run; checked at record
  boundaries (granularity: one record), so a run never *starts* a record
  past its deadline (``DEADLINE_EXCEEDED``).
* ``max_errors`` — total data errors across the run before the parser
  aborts to end-of-input (``ERROR_BUDGET_EXCEEDED``).

Limit hits are data-shaped outcomes, not exceptions: they surface as 5xx
``ErrCode`` values in the pd, set the ``Pstate.LIMIT`` bit, and bump
``limit.*`` observability counters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .. import observe
from .errors import ErrCode, Loc, PadsError, Pd, Pstate

__all__ = ["ParseLimits", "note_limit", "record_guard"]

#: CLI/spec key -> (field name, parser) for ``ParseLimits.parse``.
_SPEC_KEYS = {
    "record-bytes": ("max_record_bytes", int),
    "array": ("max_array_elems", int),
    "scan": ("max_scan", int),
    "depth": ("max_depth", int),
    "deadline": ("deadline", float),
    "errors": ("max_errors", int),
}

#: ErrCode -> observability counter label.
_LABELS = {
    ErrCode.RECORD_LIMIT: "record_bytes",
    ErrCode.ARRAY_LIMIT: "array_elems",
    ErrCode.NEST_LIMIT: "depth",
    ErrCode.DEADLINE_EXCEEDED: "deadline",
    ErrCode.ERROR_BUDGET_EXCEEDED: "errors",
    ErrCode.LIMIT_EXCEEDED: "other",
}


@dataclass(frozen=True)
class ParseLimits:
    """An immutable resource budget.  ``None`` fields are unlimited."""

    max_record_bytes: Optional[int] = None
    max_array_elems: Optional[int] = None
    max_scan: Optional[int] = None
    max_depth: Optional[int] = None
    deadline: Optional[float] = None
    max_errors: Optional[int] = None

    def __post_init__(self):
        for name, low in (("max_record_bytes", 1), ("max_array_elems", 0),
                          ("max_scan", 0), ("max_depth", 1),
                          ("max_errors", 1)):
            v = getattr(self, name)
            if v is not None and v < low:
                raise PadsError(f"limit {name} must be >= {low}, got {v}")
        if self.deadline is not None and self.deadline <= 0:
            raise PadsError("limit deadline must be positive")

    @classmethod
    def parse(cls, spec: str) -> "ParseLimits":
        """Build limits from a ``key=value,key=value`` CLI spec.

        Keys: ``record-bytes``, ``array``, ``scan``, ``depth``,
        ``deadline`` (seconds, float), ``errors``.
        """
        kwargs = {}
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            key, sep, value = part.partition("=")
            key = key.strip()
            if not sep or key not in _SPEC_KEYS:
                known = ", ".join(sorted(_SPEC_KEYS))
                raise PadsError(
                    f"bad --limits entry {part!r} (expected key=value with "
                    f"key one of: {known})")
            field_name, conv = _SPEC_KEYS[key]
            try:
                kwargs[field_name] = conv(value.strip())
            except ValueError:
                raise PadsError(f"bad --limits value for {key!r}: "
                                f"{value.strip()!r}") from None
        return cls(**kwargs)

    @property
    def fastpath_safe(self) -> bool:
        """Whether the plan-compiled record fast path may run.

        The fast fns parse a whole clean record with no element or depth
        accounting, so any limit a *clean* record could trip must disable
        them to keep both engines' results identical to the general path.
        Record-length, deadline and error budgets are enforced at the
        record boundary (before the fast path is consulted) and scan caps
        only matter on error paths the fast path never takes.
        """
        return self.max_array_elems is None and self.max_depth is None


def note_limit(pd: Pd, code: ErrCode, loc: Loc) -> None:
    """Record a limit hit on ``pd``: 5xx error, PANIC+LIMIT state, counter."""
    pd.record_error(code, loc, panic=True)
    pd.pstate |= Pstate.LIMIT
    observe.count("limit." + _LABELS.get(code, "other"))


def record_guard(src, pd: Pd) -> bool:
    """Enforce record-boundary limits on an open record.

    Called (by both engines) right after ``begin_record`` succeeds, with
    the record's pd.  Returns True when parsing may proceed.  On a limit
    hit it records the 5xx error and repositions the cursor — past the
    offending record for ``RECORD_LIMIT``, to end-of-input for the
    run-terminating budgets — and returns False; the caller yields the
    type's default rep with the limit pd.
    """
    limits = src.limits
    if limits is None:
        return True
    if (limits.max_errors is not None
            and src.total_errors >= limits.max_errors):
        note_limit(pd, ErrCode.ERROR_BUDGET_EXCEEDED, src.here())
        src.abort_to_eof()
        return False
    if limits.deadline is not None and src.deadline_expired():
        note_limit(pd, ErrCode.DEADLINE_EXCEEDED, src.here())
        src.abort_to_eof()
        return False
    if (limits.max_record_bytes is not None
            and src.rec_end - src.rec_start > limits.max_record_bytes):
        note_limit(pd, ErrCode.RECORD_LIMIT,
                   Loc(src.rec_start, src.rec_end, src.record_idx))
        src.pos = src.rec_end
        src.end_record()
        return False
    return True
