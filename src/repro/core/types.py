"""Structured-type combinators: the semantic core of the PADS runtime.

Each class here implements one PADS type constructor with the semantics of
the paper's generated C code:

* ``parse`` returns ``(rep, pd)`` — never raises on data errors; all
  syntactic and semantic problems are recorded in the parse descriptor,
* masks control which constraints are checked and which parts of the
  representation are materialised,
* errors trigger *recovery*: structs resynchronise on their next literal,
  arrays on their separator/terminator, and both fall back to panicking to
  end-of-record,
* ``write`` regenerates the physical form (``write2io``),
* ``verify`` re-checks semantic constraints against an in-memory value
  (``entry_t_verify`` in the paper's Figure 7),
* ``generate`` produces random conforming data (the generator the paper
  lists as future work; we use it in place of AT&T's proprietary feeds).

The interpreted combinators and the code generator (:mod:`repro.codegen`)
must agree; a property test cross-checks them.
"""

from __future__ import annotations

import random
import re
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .. import observe
from ..expr import ast as E
from ..expr.eval import Env, EvalError, eval_expr
from .basetypes.base import BaseType
from .errors import ErrCode, Loc, Pd, Pstate
from .io import Source
from .limits import note_limit, record_guard
from .masks import Mask, MaskFlag
from .values import EnumVal, Rec, UnionVal

# How far ahead resynchronisation scans for a literal before giving up and
# panicking to end-of-record.
MAX_RESYNC_SCAN = 4096


def _depth_guarded(parse):
    """Wrap a compound node's ``parse`` with the ``max_depth`` budget.

    Without a depth limit this is one attribute test; with one, the level
    is entered through ``Source.push_depth`` and always released, however
    the parse returns.  A refused level yields the type's default rep with
    a NEST_LIMIT pd — the same shape the generated engine emits.
    """
    def guarded(self, src: Source, mask: Mask, env: Env):
        limits = src.limits
        if limits is None or limits.max_depth is None:
            return parse(self, src, mask, env)
        pd = Pd()
        if not src.push_depth(pd):
            return self.default(env), pd
        try:
            return parse(self, src, mask, env)
        finally:
            src.pop_depth()
    return guarded


class PType:
    """Base class for runtime type nodes."""

    name: str = "<anonymous>"
    kind: str = "type"
    #: The plan-IR node this runtime node was bound from (set by
    #: :mod:`repro.core.binding`); tools read analyzed facts through it.
    plan: Optional[object] = None

    def parse(self, src: Source, mask: Mask, env: Env) -> Tuple[object, Pd]:
        raise NotImplementedError

    def write(self, rep, out: List[bytes], env: Env) -> None:
        raise NotImplementedError

    def default(self, env: Env):
        return None

    def verify(self, rep, env: Env) -> bool:
        """Re-check semantic constraints on an in-memory value."""
        return True

    def generate(self, rng: random.Random, env: Env):
        raise NotImplementedError(f"{self.name} cannot generate data")

    def to_bytes(self, rep, env: Optional[Env] = None) -> bytes:
        out: List[bytes] = []
        self.write(rep, out, env or Env({}))
        return b"".join(out)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name}>"


def _eval_constraint(expr: E.Expr, env: Env) -> Tuple[bool, bool]:
    """Evaluate a constraint; returns (ok, evaluation_failed)."""
    try:
        return bool(eval_expr(expr, env)), False
    except EvalError:
        return False, True


# ---------------------------------------------------------------------------
# Base-type wrapper
# ---------------------------------------------------------------------------

class BaseNode(PType):
    """A use of a base type, with (possibly value-dependent) parameters.

    ``Pstring_FW(:hdr.len:)`` must re-resolve its width for every parse, so
    when any argument is non-constant the factory is re-applied per parse
    with arguments evaluated in the current environment.
    """

    kind = "base"

    def __init__(self, name: str, resolver: Callable[[tuple], BaseType],
                 arg_exprs: Sequence[E.Expr] = ()):
        self.name = name
        self._resolver = resolver
        self.arg_exprs = list(arg_exprs)
        self._static: Optional[BaseType] = None
        if all(isinstance(a, (E.IntLit, E.StrLit, E.CharLit, E.FloatLit, E.BoolLit))
               for a in self.arg_exprs):
            args = tuple(a.value for a in self.arg_exprs)
            self._static = resolver(args)

    def instance(self, env: Env) -> BaseType:
        if self._static is not None:
            return self._static
        args = tuple(eval_expr(a, env) for a in self.arg_exprs)
        return self._resolver(args)

    def parse(self, src: Source, mask: Mask, env: Env):
        pd = Pd()
        try:
            base = self.instance(env)
        except Exception:
            # Data-dependent parameters can be garbage on malformed input
            # (e.g. a zero-width Pstring_FW(:n:)); report, don't crash.
            pd.record_error(ErrCode.USER_CONSTRAINT_VIOLATION, src.here(),
                            panic=True)
            return None, pd
        start = src.pos
        value, code = base.parse(src, mask.do_sem)
        if code != ErrCode.NO_ERR:
            pd.record_error(code, src.loc_from(start))
        if not mask.do_set and code == ErrCode.NO_ERR:
            value = base.default()
        return value, pd

    def write(self, rep, out: List[bytes], env: Env) -> None:
        out.append(self.instance(env).write(rep))

    def default(self, env: Env):
        try:
            return self.instance(env).default()
        except Exception:
            return None

    def generate(self, rng: random.Random, env: Env):
        return self.instance(env).generate(rng)


# ---------------------------------------------------------------------------
# Literals
# ---------------------------------------------------------------------------

class LiteralNode(PType):
    """A physical literal: char, string, regex, or the EOR/EOF markers."""

    kind = "literal"

    def __init__(self, lit_kind: str, value=None, encoding: str = "latin-1"):
        self.lit_kind = lit_kind  # 'char' | 'string' | 'regex' | 'eor' | 'eof'
        self.value = value
        self.encoding = encoding
        self.raw: bytes = b""
        self.regex = None
        if lit_kind in ("char", "string"):
            self.raw = value.encode(encoding)
            self.name = repr(value)
        elif lit_kind == "regex":
            self.regex = re.compile(value.encode(encoding))
            self.name = f"Pre /{value}/"
        else:
            self.name = "Peor" if lit_kind == "eor" else "Peof"

    def matches_at(self, src: Source) -> int:
        """Length consumed if the literal matches at the cursor, else -1."""
        if self.lit_kind in ("char", "string"):
            return len(self.raw) if src.peek(len(self.raw)) == self.raw else -1
        if self.lit_kind == "regex":
            m = self.regex.match(src.scope_bytes())
            return m.end() if m else -1
        if self.lit_kind == "eor":
            return 0 if src.at_end() else -1
        if self.lit_kind == "eof":
            return 0 if src.at_eof() else -1
        return -1

    def scan_from(self, src: Source, max_scan: Optional[int] = None) -> int:
        """Offset delta to the literal's next occurrence in scope, else -1.

        The default window is :data:`MAX_RESYNC_SCAN` clamped by the
        source's ``max_scan`` limit when one is set.
        """
        if max_scan is None:
            max_scan = src.scan_cap(MAX_RESYNC_SCAN)
        if self.lit_kind in ("char", "string"):
            abs_at = src.scan_for(self.raw, max_scan)
            return -1 if abs_at < 0 else abs_at - src.pos
        if self.lit_kind == "regex":
            m = self.regex.search(src.scope_bytes()[:max_scan])
            return m.start() if m else -1
        return -1

    def parse(self, src: Source, mask: Mask, env: Env):
        pd = Pd()
        start = src.pos
        n = self.matches_at(src)
        if n < 0:
            pd.record_error(ErrCode.MISSING_LITERAL, src.loc_from(start))
            return None, pd
        src.skip(n)
        return None, pd

    def write(self, rep, out: List[bytes], env: Env) -> None:
        if self.lit_kind in ("char", "string"):
            out.append(self.raw)
        elif self.lit_kind == "regex":
            # A canonical instance of the pattern is not recoverable; regex
            # literals are read-only and excluded from write round-trips.
            raise ValueError("cannot write a regex literal")

    def generate(self, rng: random.Random, env: Env):
        return None

    def generate_bytes(self, rng: random.Random) -> bytes:
        if self.lit_kind in ("char", "string"):
            return self.raw
        if self.lit_kind == "regex":
            from ..util.regexgen import sample_regex
            return sample_regex(self.value, rng).encode(self.encoding)
        return b""


# ---------------------------------------------------------------------------
# Pstruct
# ---------------------------------------------------------------------------

class StructField:
    """One member of a struct: literal, data field, or computed field."""

    __slots__ = ("kind", "name", "node", "constraint", "expr")

    def __init__(self, kind: str, name: Optional[str] = None,
                 node: Optional[PType] = None,
                 constraint: Optional[E.Expr] = None,
                 expr: Optional[E.Expr] = None):
        self.kind = kind  # 'literal' | 'data' | 'compute'
        self.name = name
        self.node = node
        self.constraint = constraint
        self.expr = expr


class StructNode(PType):
    """``Pstruct`` — a fixed sequence of fields and literals.

    Error recovery: when a member fails syntactically and leaves the cursor
    stuck, the parser scans forward (within the record) for the next
    literal member; if found it skips the garbage and continues in
    ``PARTIAL`` state, otherwise it panics to end-of-record and the
    remaining fields receive default values.
    """

    kind = "struct"

    #: Fused literal runs from the plan's literal-prefix fusion pass:
    #: ``{start index: (end index, concatenated bytes)}`` over ``fields``.
    #: ``Source.match_bytes`` consumes only on success, so a fused miss
    #: falls back to the per-literal code (and its resync behavior) at an
    #: unchanged cursor.
    fused: Dict[int, Tuple[int, bytes]] = {}

    def __init__(self, name: str, fields: Sequence[StructField],
                 where: Optional[E.Expr] = None):
        self.name = name
        self.fields = list(fields)
        self.where = where

    def data_fields(self) -> List[StructField]:
        return [f for f in self.fields if f.kind == "data"]

    def _next_literal(self, idx: int) -> Optional[Tuple[int, LiteralNode]]:
        for j in range(idx + 1, len(self.fields)):
            f = self.fields[j]
            if f.kind == "literal" and f.node.lit_kind in ("char", "string", "regex"):
                return j, f.node
        return None

    @_depth_guarded
    def parse(self, src: Source, mask: Mask, env: Env):
        pd = Pd()
        scope = env.child()
        values: Dict[str, object] = {}
        panicked = False
        # Hoisted once per struct parse: the per-field tracing cost when
        # disabled is a single local ``is None`` test.
        tracer = observe.current_tracer()

        fused = self.fused

        i = 0
        while i < len(self.fields):
            if not panicked and i in fused:
                end, raw = fused[i]
                if src.match_bytes(raw):
                    i = end + 1
                    continue
            f = self.fields[i]
            if panicked:
                if f.kind == "data":
                    values[f.name] = f.node.default(scope)
                    child = Pd()
                    child.pstate = Pstate.PANIC
                    pd.fields[f.name] = child
                elif f.kind == "compute":
                    values[f.name] = None
                i += 1
                continue

            if f.kind == "literal":
                start = src.pos
                n = f.node.matches_at(src)
                if n >= 0:
                    src.skip(n)
                else:
                    # Try to resynchronise on this same literal.
                    delta = f.node.scan_from(src)
                    if delta >= 0:
                        observe.count("resync.literal")
                        pd.record_error(ErrCode.MISSING_LITERAL, src.loc_from(start))
                        src.skip(delta)
                        src.skip(max(0, f.node.matches_at(src)))
                    else:
                        pd.record_error(ErrCode.MISSING_LITERAL,
                                        src.loc_from(start), panic=True)
                        src.skip_to_eor()
                        panicked = True
                i += 1
                continue

            if f.kind == "compute":
                try:
                    values[f.name] = eval_expr(f.expr, scope)
                except EvalError:
                    values[f.name] = None
                    pd.record_error(ErrCode.USER_CONSTRAINT_VIOLATION, src.here())
                scope.vars[f.name] = values[f.name]
                if f.constraint is not None and mask.do_sem \
                        and values[f.name] is not None:
                    ok, failed = _eval_constraint(f.constraint, scope)
                    if not ok or failed:
                        pd.record_error(ErrCode.USER_CONSTRAINT_VIOLATION,
                                        src.here())
                i += 1
                continue

            # Data field.
            fmask = mask.for_field(f.name)
            start = src.pos
            if tracer is not None:
                tracer.enter(f.name, getattr(f.node, "name", f.node.kind),
                             start, src.record_idx)
            value, child = f.node.parse(src, fmask, scope)
            if tracer is not None:
                if child.nerr == 0:
                    outcome, code = "ok", ""
                elif child.pstate & Pstate.PANIC:
                    outcome, code = "panic", child.err_code.name
                else:
                    outcome, code = "err", child.err_code.name
                tracer.exit(getattr(f.node, "name", f.node.kind), start,
                            src.pos, src.record_idx, outcome, code)
            stuck = child.nerr > 0 and child.err_code.is_syntactic() and src.pos == start
            if f.constraint is not None and fmask.do_sem and child.nerr == 0:
                scope.vars[f.name] = value
                ok, failed = _eval_constraint(f.constraint, scope)
                if not ok or failed:
                    child.record_error(ErrCode.USER_CONSTRAINT_VIOLATION,
                                       src.loc_from(start))
            values[f.name] = value
            scope.vars[f.name] = value
            if child.nerr:
                # Clean children are omitted from the descriptor: one Pd per
                # *errored* position keeps descriptors cheap on clean data.
                pd.fields[f.name] = child
                pd.absorb(child)

            if stuck:
                # Resynchronise at the next literal member; data members
                # skipped over receive default values and PANIC-state pds.
                nxt = self._next_literal(i)
                if nxt is not None:
                    j, lit = nxt
                    delta = lit.scan_from(src)
                    if delta >= 0:
                        observe.count("resync.field_skip")
                        src.skip(delta)
                        src.skip(max(0, lit.matches_at(src)))
                        for k in range(i + 1, j):
                            skipped = self.fields[k]
                            if skipped.kind == "data":
                                values[skipped.name] = skipped.node.default(scope)
                                scope.vars[skipped.name] = values[skipped.name]
                                sk_pd = Pd()
                                sk_pd.pstate = Pstate.PANIC
                                pd.fields[skipped.name] = sk_pd
                            elif skipped.kind == "compute":
                                values[skipped.name] = None
                                scope.vars[skipped.name] = None
                        i = j + 1
                        continue
                pd.pstate |= Pstate.PANIC
                src.skip_to_eor()
                panicked = True
            i += 1

        rep = Rec(**values)
        if self.where is not None and mask.level_sem and pd.nerr == 0:
            ok, failed = _eval_constraint(self.where, scope)
            if not ok or failed:
                pd.record_error(ErrCode.WHERE_CLAUSE_VIOLATION, src.here())
        return rep, pd

    def write(self, rep, out: List[bytes], env: Env) -> None:
        scope = env.child()
        for f in self.fields:
            if f.kind == "literal":
                f.node.write(None, out, scope)
            elif f.kind == "compute":
                scope.vars[f.name] = getattr(rep, f.name, None)
            else:
                value = getattr(rep, f.name)
                f.node.write(value, out, scope)
                scope.vars[f.name] = value

    def default(self, env: Env):
        values = {}
        for f in self.fields:
            if f.kind == "data":
                values[f.name] = f.node.default(env)
            elif f.kind == "compute":
                values[f.name] = None
        return Rec(**values)

    def verify(self, rep, env: Env) -> bool:
        scope = env.child()
        for f in self.fields:
            if f.kind == "literal":
                continue
            try:
                value = getattr(rep, f.name)
            except AttributeError:
                return False
            scope.vars[f.name] = value
            if f.kind == "data":
                if not f.node.verify(value, scope):
                    return False
            if f.constraint is not None:
                ok, failed = _eval_constraint(f.constraint, scope)
                if not ok or failed:
                    return False
        if self.where is not None:
            ok, failed = _eval_constraint(self.where, scope)
            if not ok or failed:
                return False
        return True

    def generate(self, rng: random.Random, env: Env):
        # Rejection sampling over the whole struct.  The bound is generous
        # because derived-field constraints (Pbitfields ranges) can only be
        # satisfied by re-rolling the underlying data fields.
        last_error = None
        for _ in range(512):
            scope = env.child()
            values: Dict[str, object] = {}
            try:
                for f in self.fields:
                    if f.kind == "literal":
                        continue
                    if f.kind == "compute":
                        try:
                            values[f.name] = eval_expr(f.expr, scope)
                        except EvalError:
                            values[f.name] = None
                        scope.vars[f.name] = values[f.name]
                        if f.constraint is not None:
                            ok, failed = _eval_constraint(f.constraint, scope)
                            if not ok or failed:
                                # Derived value violates its constraint
                                # (e.g. a Pbitfields range): resample.
                                raise ValueError(
                                    f"computed field {f.name} constraint")
                        continue
                    value = _generate_constrained(f.node, f.constraint,
                                                  f.name, rng, scope)
                    values[f.name] = value
                    scope.vars[f.name] = value
            except ValueError as exc:
                # A field constraint may be unsatisfiable for the earlier
                # fields drawn (e.g. chkVersion with meth == LINK); resample
                # the whole struct.
                last_error = exc
                continue
            if self.where is not None:
                ok, failed = _eval_constraint(self.where, scope)
                if not ok or failed:
                    continue
            return Rec(**values)
        raise ValueError(
            f"could not generate a {self.name} satisfying its constraints"
            + (f" ({last_error})" if last_error else ""))


def _generate_constrained(node: PType, constraint: Optional[E.Expr],
                          name: str, rng: random.Random, scope: Env,
                          attempts: int = 64):
    """Generate a value satisfying an optional field constraint.

    Uses a solve-by-retry loop, with a fast path for equality constraints
    of the shape ``field == literal``.
    """
    if constraint is not None:
        lit = _equality_literal(constraint, name)
        if lit is not None:
            return lit
        bounds = _int_bounds(constraint, name)
        if bounds is not None:
            lo, hi = bounds
            nlo, nhi = _node_int_bounds(node, scope)
            lo = nlo if lo is None else (lo if nlo is None else max(lo, nlo))
            hi = nhi if hi is None else (hi if nhi is None else min(hi, nhi))
            lo = 0 if lo is None else lo
            hi = (1 << 32) - 1 if hi is None else hi
            if lo <= hi:
                for _ in range(attempts):
                    value = rng.randint(lo, hi)
                    scope.vars[name] = value
                    ok, failed = _eval_constraint(constraint, scope)
                    if ok and not failed:
                        return value
    for _ in range(attempts):
        value = node.generate(rng, scope)
        if constraint is None:
            return value
        scope.vars[name] = value
        ok, failed = _eval_constraint(constraint, scope)
        if ok and not failed:
            return value
    raise ValueError(
        f"could not generate a value for {name!r} satisfying its constraint")


def _node_int_bounds(node: PType, env: Env):
    """The natural integer range of a node, when it has one."""
    if isinstance(node, TypedefNode):
        return _node_int_bounds(node.base, env)
    if isinstance(node, BaseNode):
        try:
            inst = node.instance(env)
        except EvalError:
            return None, None
        if inst.kind == "int":
            return getattr(inst, "lo", None), getattr(inst, "hi", None)
    return None, None


def _int_bounds(constraint: E.Expr, name: str):
    """Extract integer bounds (lo, hi) implied by a conjunction of
    comparisons between ``name`` and integer literals; None when the
    constraint has some other shape."""
    if isinstance(constraint, E.Binary) and constraint.op == "&&":
        left = _int_bounds(constraint.left, name)
        right = _int_bounds(constraint.right, name)
        if left is None or right is None:
            return None
        lo = max((b for b in (left[0], right[0]) if b is not None), default=None)
        hi = min((b for b in (left[1], right[1]) if b is not None), default=None)
        return lo, hi
    if not isinstance(constraint, E.Binary) or constraint.op not in ("<", "<=", ">", ">=", "=="):
        return None
    a, b = constraint.left, constraint.right
    op = constraint.op
    if isinstance(b, E.Name) and b.ident == name and isinstance(a, E.IntLit):
        # k op x  ==  x (flip op) k
        a, b = b, a
        op = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "==": "=="}[op]
    if not (isinstance(a, E.Name) and a.ident == name and isinstance(b, E.IntLit)):
        return None
    k = b.value
    if op == "==":
        return k, k
    if op == "<":
        return None, k - 1
    if op == "<=":
        return None, k
    if op == ">":
        return k + 1, None
    return k, None


def _equality_literal(constraint: E.Expr, name: str):
    if isinstance(constraint, E.Binary) and constraint.op == "==":
        for a, b in ((constraint.left, constraint.right),
                     (constraint.right, constraint.left)):
            if isinstance(a, E.Name) and a.ident == name and \
                    isinstance(b, (E.IntLit, E.StrLit, E.CharLit, E.FloatLit)):
                return b.value
    return None


# ---------------------------------------------------------------------------
# Punion
# ---------------------------------------------------------------------------

class UnionBranch:
    __slots__ = ("name", "node", "constraint")

    def __init__(self, name: str, node: PType, constraint: Optional[E.Expr] = None):
        self.name = name
        self.node = node
        self.constraint = constraint


class UnionNode(PType):
    """``Punion`` — ordered alternatives; "the first branch that parses
    without error is taken" (paper Section 3)."""

    kind = "union"

    def __init__(self, name: str, branches: Sequence[UnionBranch],
                 where: Optional[E.Expr] = None):
        self.name = name
        self.branches = list(branches)
        self.where = where

    @_depth_guarded
    def parse(self, src: Source, mask: Mask, env: Env):
        pd = Pd()
        start_loc = src.here()
        for br in self.branches:
            state = src.mark()
            bmask = mask.for_field(br.name)
            value, child = br.node.parse(src, bmask, env)
            ok = child.nerr == 0
            if ok and br.constraint is not None:
                scope = env.child({br.name: value})
                cok, failed = _eval_constraint(br.constraint, scope)
                # A failing branch guard redirects to the next branch even
                # when semantic checking is masked off — the guard decides
                # *which* branch the data belongs to (paper: auth_id_t).
                ok = cok and not failed
            if ok:
                src.commit(state)
                pd.tag = br.name
                tracer = observe.current_tracer()
                if tracer is not None:
                    # The taken branch, emitted after the fact so rejected
                    # branches leave no trace (they consume no input).
                    tracer.enter(br.name, getattr(br.node, "name", br.node.kind),
                                 start_loc.offset, src.record_idx)
                    tracer.exit(getattr(br.node, "name", br.node.kind),
                                start_loc.offset, src.pos, src.record_idx,
                                "ok", "")
                return UnionVal(br.name, value), pd
            src.restore(state)
        pd.record_error(ErrCode.UNION_MATCH_FAILURE, start_loc, panic=True)
        return UnionVal("<none>", None), pd

    def write(self, rep, out: List[bytes], env: Env) -> None:
        for br in self.branches:
            if br.name == rep.tag:
                br.node.write(rep.value, out, env)
                return
        raise ValueError(f"unknown union branch {rep.tag!r} for {self.name}")

    def default(self, env: Env):
        br = self.branches[0]
        return UnionVal(br.name, br.node.default(env))

    def verify(self, rep, env: Env) -> bool:
        for br in self.branches:
            if br.name == rep.tag:
                if not br.node.verify(rep.value, env):
                    return False
                if br.constraint is not None:
                    scope = env.child({br.name: rep.value})
                    ok, failed = _eval_constraint(br.constraint, scope)
                    return ok and not failed
                return True
        return False

    def generate(self, rng: random.Random, env: Env):
        order = list(self.branches)
        rng.shuffle(order)
        last = None
        for br in order:
            for _ in range(16):
                try:
                    value = _generate_constrained(br.node, br.constraint,
                                                  br.name, rng, env.child())
                except (ValueError, NotImplementedError) as exc:
                    last = exc
                    break
                candidate = UnionVal(br.name, value)
                if self._unambiguous(candidate, env):
                    return candidate
        if last is not None:
            raise ValueError(f"no generatable branch in union {self.name}: {last}")
        raise ValueError(
            f"could not generate an unambiguous value for union {self.name}")

    def _unambiguous(self, candidate: UnionVal, env: Env) -> bool:
        """Check that the candidate's physical form parses back to the same
        branch — an *earlier* branch may otherwise capture it (the paper's
        ordered-branch semantics), which would break write/parse round
        trips."""
        from .io import NoRecords, Source
        out: List[bytes] = []
        try:
            self.write(candidate, out, env)
        except Exception:
            return True  # unserialisable here (e.g. regex literal): accept
        src = Source.from_bytes(b"".join(out), NoRecords())
        rep, pd = self.parse(src, Mask(), env)
        return (pd.nerr == 0 and rep.tag == candidate.tag
                and rep.value == candidate.value and src.at_eof())


class SwitchCaseRT:
    __slots__ = ("value_expr", "name", "node", "constraint")

    def __init__(self, value_expr: Optional[E.Expr], name: str, node: PType,
                 constraint: Optional[E.Expr] = None):
        self.value_expr = value_expr  # None = Pdefault
        self.name = name
        self.node = node
        self.constraint = constraint


class SwitchUnionNode(PType):
    """Switched ``Punion``: a selector expression picks the branch
    (paper Section 3: "a switched union that uses a selection expression
    to determine the branch to parse")."""

    kind = "union"

    def __init__(self, name: str, selector: E.Expr, cases: Sequence[SwitchCaseRT]):
        self.name = name
        self.selector = selector
        self.cases = list(cases)

    def _pick(self, env: Env) -> Optional[SwitchCaseRT]:
        try:
            sel = eval_expr(self.selector, env)
        except EvalError:
            return None
        default = None
        for case in self.cases:
            if case.value_expr is None:
                default = case
                continue
            try:
                if eval_expr(case.value_expr, env) == sel:
                    return case
            except EvalError:
                continue
        return default

    @_depth_guarded
    def parse(self, src: Source, mask: Mask, env: Env):
        pd = Pd()
        case = self._pick(env)
        if case is None:
            pd.record_error(ErrCode.SWITCH_NO_CASE, src.here(), panic=True)
            return UnionVal("<none>", None), pd
        value, child = case.node.parse(src, mask.for_field(case.name), env)
        pd.branch = child
        pd.tag = case.name
        pd.absorb(child)
        if case.constraint is not None and mask.do_sem and child.nerr == 0:
            scope = env.child({case.name: value})
            ok, failed = _eval_constraint(case.constraint, scope)
            if not ok or failed:
                pd.record_error(ErrCode.USER_CONSTRAINT_VIOLATION, src.here())
        return UnionVal(case.name, value), pd

    def write(self, rep, out: List[bytes], env: Env) -> None:
        for case in self.cases:
            if case.name == rep.tag:
                case.node.write(rep.value, out, env)
                return
        raise ValueError(f"unknown switch branch {rep.tag!r} for {self.name}")

    def default(self, env: Env):
        case = self.cases[0]
        return UnionVal(case.name, case.node.default(env))

    def verify(self, rep, env: Env) -> bool:
        case = self._pick(env)
        if case is None or case.name != rep.tag:
            return False
        return case.node.verify(rep.value, env)

    def generate(self, rng: random.Random, env: Env):
        case = self._pick(env)
        if case is None:
            raise ValueError(f"switch selector has no case for {self.name}")
        value = _generate_constrained(case.node, case.constraint, case.name,
                                      rng, env.child())
        return UnionVal(case.name, value)


# ---------------------------------------------------------------------------
# Popt
# ---------------------------------------------------------------------------

class OptNode(PType):
    """``Popt T`` — sugar for ``Punion { T x; Pempty none; }``.

    The value is the inner value or ``None``; parsing never errors
    (the void branch "always matches but never consumes any input").
    """

    kind = "opt"

    def __init__(self, inner: PType):
        self.inner = inner
        self.name = f"Popt {inner.name}"

    def parse(self, src: Source, mask: Mask, env: Env):
        state = src.mark()
        value, child = self.inner.parse(src, mask, env)
        if child.nerr == 0:
            src.commit(state)
            pd = Pd()
            pd.tag = "some"
            return value, pd
        src.restore(state)
        pd = Pd()
        pd.tag = "none"
        return None, pd

    def write(self, rep, out: List[bytes], env: Env) -> None:
        if rep is not None:
            self.inner.write(rep, out, env)

    def default(self, env: Env):
        return None

    def verify(self, rep, env: Env) -> bool:
        if rep is None:
            return True
        return self.inner.verify(rep, env)

    def generate(self, rng: random.Random, env: Env):
        if rng.random() < 0.25:
            return None
        return self.inner.generate(rng, env)


# ---------------------------------------------------------------------------
# Parray
# ---------------------------------------------------------------------------

class ArrayNode(PType):
    """``Parray`` with the paper's "rich collection of array-termination
    conditions": maximum size, terminating literal (including end-of-record
    and end-of-source), or a user predicate over the already-parsed portion
    (``Plast`` / ``Pended``)."""

    kind = "array"

    def __init__(self, name: str, elt: PType, *,
                 sep: Optional[LiteralNode] = None,
                 term: Optional[LiteralNode] = None,
                 min_size: Optional[E.Expr] = None,
                 max_size: Optional[E.Expr] = None,
                 last: Optional[E.Expr] = None,
                 ended: Optional[E.Expr] = None,
                 longest: bool = False,
                 where: Optional[E.Expr] = None):
        self.name = name
        self.elt = elt
        self.sep = sep
        self.term = term
        self.min_size = min_size
        self.max_size = max_size
        self.last = last
        self.ended = ended
        self.longest = longest
        self.where = where

    def _size_bounds(self, env: Env) -> Tuple[Optional[int], Optional[int]]:
        lo = hi = None
        if self.min_size is not None:
            lo = int(eval_expr(self.min_size, env))
        if self.max_size is not None:
            hi = int(eval_expr(self.max_size, env))
        return lo, hi

    def _at_term(self, src: Source) -> bool:
        return self.term is not None and self.term.matches_at(src) >= 0

    @_depth_guarded
    def parse(self, src: Source, mask: Mask, env: Env):
        pd = Pd()
        emask = mask.for_elements()
        elts: List[object] = []
        try:
            lo, hi = self._size_bounds(env)
        except EvalError:
            pd.record_error(ErrCode.ARRAY_SIZE_ERR, src.here(), panic=True)
            return [], pd
        alim = src.limits.max_array_elems if src.limits is not None else None
        array_env = env.child()

        def pred_env() -> Env:
            array_env.vars["elts"] = elts
            array_env.vars["length"] = len(elts)
            return array_env

        first = True
        while True:
            if alim is not None and len(elts) >= alim:
                note_limit(pd, ErrCode.ARRAY_LIMIT, src.here())
                break
            if hi is not None and len(elts) >= hi:
                break
            if self.ended is not None:
                ok, failed = _eval_constraint(self.ended, pred_env())
                if ok and not failed:
                    break
            if self._at_term(src):
                # The terminator is left unconsumed (it belongs to the
                # enclosing type); Peor/Peof consume nothing anyway.
                break
            if src.at_end():
                break

            # Separator between elements.
            if not first and self.sep is not None:
                n = self.sep.matches_at(src)
                if n >= 0:
                    src.skip(n)
                else:
                    break

            before = src.pos
            if self.longest or (first and (lo is None or lo == 0)):
                state = src.mark()
                value, child = self.elt.parse(src, emask, array_env)
                if child.nerr > 0 and self.longest:
                    src.restore(state)
                    break
                src.commit(state)
            else:
                value, child = self.elt.parse(src, emask, array_env)

            if child.nerr > 0:
                pd.neerr += 1
                if pd.first_error < 0:
                    pd.first_error = len(elts)
                pd.absorb(child)
                if child.err_code.is_syntactic() and src.pos == before:
                    # Resynchronise: skip to next separator or terminator.
                    if not self._resync(src):
                        pd.pstate |= Pstate.PANIC
                        break
            pd.elts.append(child)
            elts.append(value)
            first = False

            if self.last is not None:
                ok, failed = _eval_constraint(self.last, pred_env())
                if ok and not failed:
                    break
            if src.pos == before and self.sep is None:
                # Zero-width element and no separator: avoid spinning.
                break

        if lo is not None and len(elts) < lo and mask.do_syn:
            pd.record_error(ErrCode.ARRAY_SIZE_ERR, src.here())
        if self.where is not None and mask.level_sem and pd.nerr == 0:
            ok, failed = _eval_constraint(self.where, pred_env())
            if not ok or failed:
                pd.record_error(ErrCode.WHERE_CLAUSE_VIOLATION, src.here())
        return elts, pd

    def _resync(self, src: Source) -> bool:
        """Skip junk up to the next separator/terminator.  False => panic."""
        candidates = []
        if self.sep is not None:
            d = self.sep.scan_from(src)
            if d >= 0:
                candidates.append(d)
        if self.term is not None and self.term.lit_kind in ("char", "string", "regex"):
            d = self.term.scan_from(src)
            if d >= 0:
                candidates.append(d)
        if candidates:
            observe.count("resync.array")
            src.skip(min(candidates))
            return True
        if src.in_record:
            src.skip_to_eor()
            return True
        return False

    def parse_elements(self, src: Source, mask: Mask, env: Env):
        """Element-at-a-time entry point (paper Section 4: reading an array
        one element at a time to support very large sources)."""
        emask = mask.for_elements()
        array_env = env.child()
        elts: List[object] = []
        first = True
        while True:
            array_env.vars["elts"] = elts
            array_env.vars["length"] = len(elts)
            if self.ended is not None:
                ok, failed = _eval_constraint(self.ended, array_env)
                if ok and not failed:
                    return
            if self._at_term(src) or src.at_end():
                return
            if not first and self.sep is not None:
                n = self.sep.matches_at(src)
                if n < 0:
                    return
                src.skip(n)
            value, child = self.elt.parse(src, emask, array_env)
            elts.append(value)
            first = False
            yield value, child
            if self.last is not None:
                ok, failed = _eval_constraint(self.last, array_env)
                if ok and not failed:
                    return

    def write(self, rep, out: List[bytes], env: Env) -> None:
        for i, value in enumerate(rep):
            if i and self.sep is not None:
                self.sep.write(None, out, env)
            self.elt.write(value, out, env)

    def default(self, env: Env):
        return []

    def verify(self, rep, env: Env) -> bool:
        scope = env.child({"elts": rep, "length": len(rep)})
        try:
            lo, hi = self._size_bounds(scope)
        except EvalError:
            return False
        if lo is not None and len(rep) < lo:
            return False
        if hi is not None and len(rep) > hi:
            return False
        for value in rep:
            if not self.elt.verify(value, scope):
                return False
        if self.where is not None:
            ok, failed = _eval_constraint(self.where, scope)
            if not ok or failed:
                return False
        return True

    def generate(self, rng: random.Random, env: Env, size: Optional[int] = None):
        scope = env.child()
        try:
            lo, hi = self._size_bounds(scope)
        except EvalError:
            lo = hi = None
        lo_eff = lo if lo is not None else 0
        if size is None:
            hi_eff = hi if hi is not None else lo_eff + 8
            size = rng.randint(lo_eff, max(lo_eff, hi_eff))
        # Rejection sampling against the Pwhere clause; when a size is hard
        # to satisfy (e.g. a sortedness Pforall), retry with fewer elements
        # down to the minimum (workload generators that need long
        # constrained arrays construct them directly — see tools.datagen).
        trial_size = size
        while True:
            for _ in range(32):
                elts = [self.elt.generate(rng, scope) for _ in range(trial_size)]
                if self.where is None:
                    return elts
                wscope = env.child({"elts": elts, "length": len(elts)})
                ok, failed = _eval_constraint(self.where, wscope)
                if ok and not failed:
                    return elts
            if trial_size <= lo_eff:
                raise ValueError(
                    f"could not satisfy Pwhere while generating {self.name}")
            trial_size = max(lo_eff, trial_size - 1)


# ---------------------------------------------------------------------------
# Penum
# ---------------------------------------------------------------------------

class EnumNode(PType):
    """``Penum`` — "a fixed collection of literals" matched with the ambient
    coding; longest literal wins."""

    kind = "enum"

    def __init__(self, name: str, items: Sequence[Tuple[str, int, str]],
                 encoding: str = "latin-1"):
        # items: (name, code, physical spelling)
        self.name = name
        self.items = list(items)
        self.encoding = encoding
        self._by_name = {n: (n, c, p) for n, c, p in self.items}
        self._ordered = sorted(self.items, key=lambda it: -len(it[2]))

    def parse(self, src: Source, mask: Mask, env: Env):
        pd = Pd()
        for name, code, physical in self._ordered:
            raw = physical.encode(self.encoding)
            if src.peek(len(raw)) == raw:
                src.skip(len(raw))
                return EnumVal(name, code, physical), pd
        pd.record_error(ErrCode.INVALID_ENUM, src.here())
        return self.default(env), pd

    def write(self, rep, out: List[bytes], env: Env) -> None:
        name = str(rep)
        if name not in self._by_name:
            raise ValueError(f"{name!r} is not a member of {self.name}")
        out.append(self._by_name[name][2].encode(self.encoding))

    def default(self, env: Env):
        name, code, physical = self.items[0]
        return EnumVal(name, code, physical)

    def verify(self, rep, env: Env) -> bool:
        return str(rep) in self._by_name

    def generate(self, rng: random.Random, env: Env):
        name, code, physical = rng.choice(self.items)
        return EnumVal(name, code, physical)


# ---------------------------------------------------------------------------
# Ptypedef
# ---------------------------------------------------------------------------

class TypedefNode(PType):
    """``Ptypedef`` — a new type constraining an existing one, e.g. the
    paper's ``response_t`` (100 <= x < 600)."""

    kind = "typedef"

    def __init__(self, name: str, base: PType, var: Optional[str],
                 constraint: Optional[E.Expr]):
        self.name = name
        self.base = base
        self.var = var
        self.constraint = constraint

    def parse(self, src: Source, mask: Mask, env: Env):
        start = src.pos
        value, pd = self.base.parse(src, mask, env)
        if self.constraint is not None and mask.do_sem and pd.nerr == 0:
            scope = env.child({self.var: value})
            ok, failed = _eval_constraint(self.constraint, scope)
            if not ok or failed:
                pd.record_error(ErrCode.TYPEDEF_CONSTRAINT_VIOLATION,
                                src.loc_from(start))
        return value, pd

    def write(self, rep, out: List[bytes], env: Env) -> None:
        self.base.write(rep, out, env)

    def default(self, env: Env):
        return self.base.default(env)

    def verify(self, rep, env: Env) -> bool:
        if not self.base.verify(rep, env):
            return False
        if self.constraint is not None:
            scope = env.child({self.var: rep})
            ok, failed = _eval_constraint(self.constraint, scope)
            return ok and not failed
        return True

    def generate(self, rng: random.Random, env: Env):
        if self.constraint is not None:
            return _generate_constrained(self.base, self.constraint, self.var,
                                         rng, env.child())
        return self.base.generate(rng, env)


# ---------------------------------------------------------------------------
# Precord / parameterised application
# ---------------------------------------------------------------------------

class RecordNode(PType):
    """``Precord`` wrapper: the inner type occupies exactly one record.

    Opening fails with ``AT_EOF`` at end of input.  Unconsumed bytes at
    end-of-record are a syntax error under ``P_SynCheck`` (undocumented
    trailing data is exactly the kind of thing accumulators surface).
    """

    kind = "record"

    #: Plan-compiled fast function (set by the binder when the plan's
    #: verdict is eligible): ``fn(record_bytes, do_sem) -> rep | None``.
    #: ``None`` means "not this fast way" — the general parser re-parses.
    fast_fn: Optional[Callable] = None

    def __init__(self, inner: PType):
        self.inner = inner
        self.name = inner.name

    def parse(self, src: Source, mask: Mask, env: Env):
        if src.in_record:
            # Already inside a record (nested Precord): parse plainly.
            return self.inner.parse(src, mask, env)
        if not src.begin_record():
            pd = Pd()
            pd.record_error(ErrCode.AT_EOF, src.here(), panic=True)
            return self.inner.default(env), pd
        limits = src.limits
        if limits is not None:
            pd = Pd()
            if not record_guard(src, pd):
                src.note_errors(pd.nerr)
                return self.inner.default(env), pd
        fast = self.fast_fn
        if (fast is not None and (mask.bits & 1) and not mask.fields
                and mask.compound_level is None and mask.elts is None
                and observe.current_tracer() is None
                and (limits is None or limits.fastpath_safe)):
            rep = fast(src.record_bytes(), (mask.bits & 4) != 0)
            if rep is not None:
                # Clean record: empty descriptor, identical to the general
                # parse (clean children are omitted from descriptors).
                src.pos = src.rec_end
                src.end_record()
                return rep, Pd()
        rep, pd = self.inner.parse(src, mask, env)
        if not src.at_eor() and mask.do_syn and pd.nerr == 0:
            pd.record_error(ErrCode.EXTRA_DATA_AT_EOR, src.here())
        src.end_record()
        if limits is not None:
            src.note_errors(pd.nerr)
        return rep, pd

    def write(self, rep, out: List[bytes], env: Env) -> None:
        inner: List[bytes] = []
        self.inner.write(rep, inner, env)
        content = b"".join(inner)
        discipline = None
        if env.bound("_pads_discipline"):
            discipline = env.lookup("_pads_discipline")
        if discipline is None:
            out.append(content + b"\n")
        else:
            out.append(discipline.header(content) + content
                       + discipline.trailer(content))

    def default(self, env: Env):
        return self.inner.default(env)

    def verify(self, rep, env: Env) -> bool:
        return self.inner.verify(rep, env)

    def generate(self, rng: random.Random, env: Env):
        return self.inner.generate(rng, env)


class AppNode(PType):
    """Application of a parameterised declared type: ``foo(:x, y:)``.

    Arguments are evaluated in the *caller's* environment; the callee's
    body sees only its parameters plus globals (C-like scoping).
    """

    kind = "app"

    def __init__(self, name: str, decl_node: PType, param_names: Sequence[str],
                 arg_exprs: Sequence[E.Expr], global_env: Env):
        self.name = name
        self.decl_node = decl_node
        self.param_names = list(param_names)
        self.arg_exprs = list(arg_exprs)
        self.global_env = global_env

    def _callee_env(self, env: Env) -> Env:
        args = {}
        for pname, aexpr in zip(self.param_names, self.arg_exprs):
            args[pname] = eval_expr(aexpr, env)
        return self.global_env.child(args)

    def parse(self, src: Source, mask: Mask, env: Env):
        try:
            callee = self._callee_env(env)
        except EvalError:
            pd = Pd()
            pd.record_error(ErrCode.USER_CONSTRAINT_VIOLATION, src.here(), panic=True)
            return None, pd
        return self.decl_node.parse(src, mask, callee)

    def write(self, rep, out: List[bytes], env: Env) -> None:
        self.decl_node.write(rep, out, self._callee_env(env))

    def default(self, env: Env):
        try:
            return self.decl_node.default(self._callee_env(env))
        except EvalError:
            return None

    def verify(self, rep, env: Env) -> bool:
        try:
            return self.decl_node.verify(rep, self._callee_env(env))
        except EvalError:
            return False

    def generate(self, rng: random.Random, env: Env):
        return self.decl_node.generate(rng, self._callee_env(env))
