"""Runtime core: IO, errors, masks, base types, combinators, API."""

from .api import CompiledDescription, compile_description, compile_file
from .errors import (
    DescriptionError,
    ErrCode,
    ErrorTally,
    Loc,
    PadsError,
    Pd,
    Pstate,
)
from .io import (
    FixedWidthRecords,
    LengthPrefixedRecords,
    NewlineRecords,
    NoRecords,
    Source,
    plan_chunks,
    plan_file_chunks,
)
from .masks import (
    Mask,
    MaskFlag,
    P_Check,
    P_CheckAndSet,
    P_Ignore,
    P_SemCheck,
    P_Set,
    P_SynCheck,
    mask_init,
)
from .values import DateVal, EnumVal, Rec, UnionVal

__all__ = [
    "CompiledDescription", "compile_description", "compile_file",
    "DescriptionError", "ErrCode", "ErrorTally", "Loc", "PadsError", "Pd",
    "Pstate",
    "FixedWidthRecords", "LengthPrefixedRecords", "NewlineRecords",
    "NoRecords", "Source", "plan_chunks", "plan_file_chunks",
    "Mask", "MaskFlag", "P_Check", "P_CheckAndSet", "P_Ignore",
    "P_SemCheck", "P_Set", "P_SynCheck", "mask_init",
    "DateVal", "EnumVal", "Rec", "UnionVal",
]
