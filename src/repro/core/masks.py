"""Mask trees controlling what the parser checks and materialises.

The paper (Sections 3-4) parameterises every generated parsing function by a
*mask* so that a single description can state every known property of the
data while letting each application pay only for the checks it needs.  A
mask mirrors the shape of its type: base-type positions carry a
:class:`MaskFlag`, compound positions additionally carry a
``compound_level`` flag gating struct/array-level checks such as ``Pwhere``
clauses.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional


class MaskFlag(enum.IntFlag):
    """Per-position mask bits.

    * ``SET`` — materialise the in-memory representation.
    * ``SYN_CHECK`` — verify the physical syntax beyond what is needed to
      make progress.
    * ``SEM_CHECK`` — evaluate user-supplied semantic constraints.

    The conventional combinations from the C library are exported as
    ``P_Ignore``, ``P_Set``, ``P_Check`` and ``P_CheckAndSet``.
    """

    IGNORE = 0
    SET = 1
    SYN_CHECK = 2
    SEM_CHECK = 4


P_Ignore = MaskFlag.IGNORE
P_Set = MaskFlag.SET
P_SynCheck = MaskFlag.SYN_CHECK
P_SemCheck = MaskFlag.SEM_CHECK
P_Check = MaskFlag.SYN_CHECK | MaskFlag.SEM_CHECK
P_CheckAndSet = MaskFlag.SET | MaskFlag.SYN_CHECK | MaskFlag.SEM_CHECK


@dataclass
class Mask:
    """A mask node.

    ``base`` applies to the value parsed at this position.  For compound
    types, ``compound_level`` gates type-level predicates (``Pwhere``,
    struct constraints); ``fields`` and ``elts`` give child masks.  Missing
    children default to this node's ``base`` flag, so ``Mask(P_Check)``
    checks everything without materialising anything, and the default mask
    checks and sets everything — matching ``P_CheckAndSet`` initialisation
    via ``entry_t_m_init`` in the paper's Figure 7.
    """

    base: MaskFlag = P_CheckAndSet
    compound_level: Optional[MaskFlag] = None
    fields: dict = field(default_factory=dict)
    elts: Optional["Mask"] = None
    # Cached uniform child, shared across positions (masks are treated as
    # immutable once parsing begins).
    _uniform: Optional["Mask"] = field(default=None, repr=False, compare=False,
                                       init=False)
    #: ``base`` as a plain int — parsing hot paths test this instead of
    #: paying IntFlag operator overhead.
    bits: int = field(default=0, repr=False, compare=False, init=False)

    def __post_init__(self):
        self.bits = int(self.base)

    def _uniform_child(self) -> "Mask":
        if self._uniform is None:
            child = Mask(self.base)
            child._uniform = child  # uniform all the way down
            self._uniform = child
        return self._uniform

    def for_field(self, name: str) -> "Mask":
        """Child mask for a named struct field / union branch."""
        if not self.fields:
            return self._uniform_child()
        child = self.fields.get(name)
        if child is None:
            return self._uniform_child()
        if isinstance(child, MaskFlag):
            return Mask(child)
        return child

    def for_elements(self) -> "Mask":
        """Child mask for array elements."""
        if self.elts is None:
            return self._uniform_child()
        return self.elts

    @property
    def level(self) -> MaskFlag:
        """Effective compound-level flag (defaults to ``base``)."""
        return self.base if self.compound_level is None else self.compound_level

    # -- convenience predicates -------------------------------------------

    @property
    def do_set(self) -> bool:
        return bool(self.bits & 1)

    @property
    def do_syn(self) -> bool:
        return bool(self.bits & 2)

    @property
    def do_sem(self) -> bool:
        return bool(self.bits & 4)

    @property
    def level_sem(self) -> bool:
        return bool(int(self.level) & 4)

    def with_field(self, name: str, child: "Mask | MaskFlag") -> "Mask":
        """Functional update: return a copy with ``name`` overridden."""
        fields = dict(self.fields)
        fields[name] = child
        return Mask(self.base, self.compound_level, fields, self.elts)


def mask_init(flag: MaskFlag = P_CheckAndSet) -> Mask:
    """Build a uniform mask, the analogue of ``<type>_m_init`` in Figure 6."""
    return Mask(flag)
