"""Date and time base types.

``Pdate(:']':)`` in the paper's Figure 4 consumes the CLF timestamp
``15/Oct/1997:18:46:51 -0700`` up to the closing bracket.  The runtime
date parser tries a list of common ad hoc formats (CLF, ISO, US slashed
dates, ctime) and records both the UTC epoch and the raw text, so data
writes back byte-for-byte and formatting can re-render in any output
format (Figure 8 uses ``%D:%T``).
"""

from __future__ import annotations

import datetime as _dt
import random

from ..errors import ErrCode
from ..io import Source
from ..values import DateVal
from .base import (
    AMBIENT_ASCII,
    AMBIENT_BINARY,
    AMBIENT_EBCDIC,
    BaseType,
    register_ambient_alias,
    register_base_type,
)
from .strings import _term_byte

# Formats tried in order.  %z handles the CLF timezone offset.
DATE_FORMATS = (
    "%d/%b/%Y:%H:%M:%S %z",   # CLF: 15/Oct/1997:18:46:51 -0700
    "%Y-%m-%dT%H:%M:%S%z",    # ISO with offset
    "%Y-%m-%dT%H:%M:%S",      # ISO basic
    "%Y-%m-%d %H:%M:%S",
    "%Y-%m-%d",
    "%m/%d/%Y:%H:%M:%S",
    "%m/%d/%Y %H:%M:%S",
    "%m/%d/%Y",
    "%m/%d/%y:%H:%M:%S",
    "%m/%d/%y",
    "%a %b %d %H:%M:%S %Y",   # ctime
    "%d %b %Y %H:%M:%S",
    "%d %b %Y",
    "%H:%M:%S",
)


def parse_date_text(text: str):
    """Parse ``text`` with the ad hoc format list; None when nothing fits."""
    text = text.strip()
    if not text:
        return None
    for fmt in DATE_FORMATS:
        try:
            dt = _dt.datetime.strptime(text, fmt)
        except ValueError:
            continue
        if fmt == "%H:%M:%S":
            dt = dt.replace(year=1970, month=1, day=1)
        if dt.tzinfo is None:
            dt = dt.replace(tzinfo=_dt.timezone.utc)
        return dt
    return None


class AsciiDate(BaseType):
    """``Pdate(:term:)`` — a date string up to the terminator (or EOR)."""

    kind = "date"

    def __init__(self, term=None, encoding: str = "latin-1"):
        self.encoding = encoding
        self.term = _term_byte(term, encoding) if term is not None else None

    def parse(self, src: Source, sem_check: bool):
        start = src.pos
        if self.term is not None:
            body = src.take_until(self.term)
            if body is None:
                body = src.take_rest()
        else:
            body = src.take_rest()
        text = body.decode(self.encoding)
        dt = parse_date_text(text)
        if dt is None:
            src.pos = start
            return self.default(), ErrCode.INVALID_DATE
        return DateVal.from_datetime(dt, text), ErrCode.NO_ERR

    def write(self, value) -> bytes:
        if isinstance(value, DateVal):
            return value.raw.encode(self.encoding)
        return str(value).encode(self.encoding)

    def default(self):
        return DateVal(0, "")

    def generate(self, rng: random.Random):
        epoch = rng.randint(0, 2_000_000_000)
        dt = _dt.datetime.fromtimestamp(epoch, _dt.timezone.utc)
        raw = dt.strftime("%d/%b/%Y:%H:%M:%S +0000")
        return DateVal(epoch, raw)


class EpochSeconds(BaseType):
    """``Ptimestamp`` — seconds since the epoch as an ASCII integer,
    exposed as a comparable :class:`DateVal`."""

    kind = "date"

    def parse(self, src: Source, sem_check: bool):
        digits = src.take_span(frozenset(b"0123456789"))
        if not digits:
            return self.default(), ErrCode.INVALID_DATE
        epoch = int(digits)
        return DateVal(epoch, digits.decode("ascii")), ErrCode.NO_ERR

    def write(self, value) -> bytes:
        if isinstance(value, DateVal):
            return str(value.epoch).encode("ascii")
        return str(int(value)).encode("ascii")

    def default(self):
        return DateVal(0, "0")

    def generate(self, rng: random.Random):
        epoch = rng.randint(0, 2_000_000_000)
        return DateVal(epoch, str(epoch))


def _register() -> None:
    register_base_type("Pa_date", lambda *a: AsciiDate(*a), min_args=0, max_args=1)
    register_base_type("Pe_date", lambda *a: AsciiDate(*a, encoding="cp037"),
                       min_args=0, max_args=1)
    register_ambient_alias("Pdate", AMBIENT_ASCII, "Pa_date")
    register_ambient_alias("Pdate", AMBIENT_BINARY, "Pa_date")
    register_ambient_alias("Pdate", AMBIENT_EBCDIC, "Pe_date")
    register_base_type("Ptimestamp", EpochSeconds)


_register()
