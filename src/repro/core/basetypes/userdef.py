"""User-defined base types loaded from specification files (paper §6).

"To make the collection of base types user-extensible, the compiler reads
all base type specifications from files.  At compile time, the user can
provide a list of such files to augment the provided base types."

A specification file here is a Python module that defines base types and
registers them.  It is executed with the registration helpers already in
scope, so a minimal file is::

    class Severity(BaseType):
        kind = "string"
        LEVELS = [b"DEBUG", b"INFO", b"WARN", b"ERROR", b"FATAL"]

        def parse(self, src, sem_check):
            for level in self.LEVELS:
                if src.match_bytes(level):
                    return level.decode(), ErrCode.NO_ERR
            return self.default(), ErrCode.INVALID_ENUM

        def write(self, value):
            return str(value).encode()

        def default(self):
            return "INFO"

        def generate(self, rng):
            return rng.choice(self.LEVELS).decode()

    register_base_type("Pseverity", Severity)

Loaded types participate in everything — descriptions, the typechecker's
arity table, generated parsers, accumulators — because they enter the
same registry as the built-ins.
"""

from __future__ import annotations

import random  # noqa: F401  (convenience for specification files)
from typing import Iterable

from ..errors import ErrCode, PadsError
from ..io import Source
from .base import (
    BaseType,
    register_ambient_alias,
    register_base_type,
)

_LOADED: set = set()


def load_base_type_file(path: str, *, force: bool = False) -> None:
    """Execute one base-type specification file.

    Files are idempotent by path: loading twice is a no-op unless
    ``force`` is set (re-registration overwrites, which is the documented
    way to iterate on a type).
    """
    import os
    key = os.path.abspath(path)
    if key in _LOADED and not force:
        return
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    namespace = {
        "BaseType": BaseType,
        "ErrCode": ErrCode,
        "Source": Source,
        "register_base_type": register_base_type,
        "register_ambient_alias": register_ambient_alias,
        "random": random,
        "__name__": f"pads_base_types:{path}",
        "__file__": path,
    }
    try:
        exec(compile(source, path, "exec"), namespace)  # noqa: S102
    except Exception as exc:
        raise PadsError(f"error loading base-type file {path}: {exc}") from exc
    _LOADED.add(key)


def load_base_type_files(paths: Iterable[str]) -> None:
    for path in paths:
        load_base_type_file(path)
