"""The PADS base-type library.

The paper ships ``Puint8`` .. ``Puint64``, ``Pint*``, strings, chars,
dates, IP addresses and friends, each available in ASCII (``Pa_``),
binary (``Pb_``) and EBCDIC (``Pe_``) codings, with the bare names
resolved through the *ambient* coding (Section 3).  Users can register
their own base types; the registry here is the Python analogue of the
paper's base-type specification files (Section 6).
"""

from .base import (
    AMBIENT_ASCII,
    AMBIENT_BINARY,
    AMBIENT_EBCDIC,
    BaseType,
    UnknownBaseType,
    base_type_names,
    is_base_type,
    register_base_type,
    resolve_base_type,
)
from . import integers, strings, temporal, network, cobol, misc  # noqa: F401  (registration side effects)
from .userdef import load_base_type_file, load_base_type_files

__all__ = [
    "AMBIENT_ASCII", "AMBIENT_BINARY", "AMBIENT_EBCDIC",
    "BaseType", "UnknownBaseType", "base_type_names", "is_base_type",
    "register_base_type", "resolve_base_type",
    "load_base_type_file", "load_base_type_files",
]
