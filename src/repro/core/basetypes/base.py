"""Base-type protocol and the user-extensible registry.

A *base type* describes atomic data.  Every base type knows how to

* ``parse`` itself from a :class:`~repro.core.io.Source` (returning a value
  and an :class:`~repro.core.errors.ErrCode`),
* ``write`` a value back in its physical form (used by the paper's
  ``write2io`` functions and the round-trip property tests),
* ``generate`` a random conforming value (supporting the data generator,
  which the paper lists as future work and which we rely on in place of
  AT&T's proprietary data), and
* report a ``default`` value used when a field is unparseable or masked
  out.

The registry maps base-type *names* to factories.  Names carry an explicit
coding prefix (``Pa_``, ``Pb_``, ``Pe_``) or are ambient-coded bare names
(``Puint32``) resolved against the current ambient coding, exactly as the
paper describes.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional, Tuple

from ..errors import ErrCode, PadsError
from ..io import Source

AMBIENT_ASCII = "ascii"
AMBIENT_BINARY = "binary"
AMBIENT_EBCDIC = "ebcdic"


class UnknownBaseType(PadsError):
    pass


class BaseType:
    """Protocol for atomic types.  Subclasses override the four hooks."""

    #: value category, used by accumulators / XML schema / formatting:
    #: 'int', 'float', 'string', 'char', 'date', 'ip', 'none'
    kind = "string"
    name = "Pbase"

    def parse(self, src: Source, sem_check: bool) -> Tuple[object, ErrCode]:
        """Parse one value at the cursor.

        On a syntax error the cursor is left where the error was detected
        (usually unmoved) and the returned value is ``self.default()``.
        ``sem_check`` gates semantic validation such as integer range
        checks, mirroring mask-controlled checking.
        """
        raise NotImplementedError

    def write(self, value: object) -> bytes:
        """Render ``value`` in this type's physical form."""
        raise NotImplementedError

    def default(self) -> object:
        return None

    def generate(self, rng: random.Random) -> object:
        """A random legal value (used by :mod:`repro.tools.datagen`)."""
        raise NotImplementedError(f"{self.name} cannot generate data")

    def xsd_type(self) -> str:
        return {"int": "xs:long", "float": "xs:double", "date": "xs:string",
                "none": "xs:string"}.get(self.kind, "xs:string")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name}>"


Factory = Callable[..., BaseType]

_REGISTRY: Dict[str, Tuple[Factory, int, int]] = {}
_AMBIENT_ALIASES: Dict[str, Dict[str, str]] = {
    AMBIENT_ASCII: {},
    AMBIENT_BINARY: {},
    AMBIENT_EBCDIC: {},
}


def register_base_type(name: str, factory: Factory,
                       min_args: int = 0, max_args: Optional[int] = None) -> None:
    """Register a base type under ``name``.

    ``factory(*arg_values)`` must return a :class:`BaseType`.  ``min_args``
    and ``max_args`` bound the number of ``(: ... :)`` parameters accepted
    at use sites (checked by the DSL typechecker).
    """
    if max_args is None:
        max_args = min_args
    _REGISTRY[name] = (factory, min_args, max_args)


def register_ambient_alias(bare: str, coding: str, concrete: str) -> None:
    """Declare that bare name ``bare`` means ``concrete`` under ``coding``."""
    _AMBIENT_ALIASES[coding][bare] = concrete


def is_base_type(name: str) -> bool:
    if name in _REGISTRY:
        return True
    return any(name in aliases for aliases in _AMBIENT_ALIASES.values())


def base_type_names() -> List[str]:
    names = set(_REGISTRY)
    for aliases in _AMBIENT_ALIASES.values():
        names.update(aliases)
    return sorted(names)


def base_type_arity(name: str, ambient: str = AMBIENT_ASCII) -> Tuple[int, int]:
    """(min, max) parameter count for a base-type name."""
    resolved = _AMBIENT_ALIASES.get(ambient, {}).get(name, name)
    if resolved not in _REGISTRY:
        # Fall back to any coding that defines the alias (for arity checks
        # the coding never changes the parameter count).
        for aliases in _AMBIENT_ALIASES.values():
            if name in aliases and aliases[name] in _REGISTRY:
                resolved = aliases[name]
                break
    if resolved not in _REGISTRY:
        raise UnknownBaseType(f"unknown base type {name!r}")
    _, lo, hi = _REGISTRY[resolved]
    return lo, hi


def resolve_base_type(name: str, args: tuple = (), ambient: str = AMBIENT_ASCII) -> BaseType:
    """Instantiate base type ``name`` with evaluated argument values."""
    resolved = _AMBIENT_ALIASES.get(ambient, {}).get(name, name)
    if resolved not in _REGISTRY:
        raise UnknownBaseType(
            f"unknown base type {name!r} (ambient coding: {ambient})")
    factory, lo, hi = _REGISTRY[resolved]
    if not (lo <= len(args) <= hi):
        raise PadsError(
            f"base type {name} takes {lo}"
            + (f"..{hi}" if hi != lo else "")
            + f" parameter(s), got {len(args)}")
    instance = factory(*args)
    instance.name = name if not args else f"{name}(:{', '.join(map(repr, args))}:)"
    return instance
