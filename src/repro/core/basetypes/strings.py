"""Character and string base types.

``Pstring(:' ':)`` — "a string terminated by a space" — is the workhorse of
the paper's ASCII descriptions.  This module provides:

* ``Pchar`` / ``Pe_char`` — single characters,
* ``Pstring(:c:)`` — terminated strings (terminator not consumed),
* ``Pstring_FW(:n:)`` — fixed-width strings,
* ``Pstring_ME(:re:)`` — string matching a regex at the cursor,
* ``Pstring_SE(:re:)`` — string up to (not including) a regex match,
* ``Pstring_any`` — the remainder of the current record,
* EBCDIC counterparts where meaningful.
"""

from __future__ import annotations

import random
import re
import string as _stringmod

from ...util.regexgen import RegexSampleError, sample_regex
from ..errors import ErrCode
from ..io import Source
from .base import (
    AMBIENT_ASCII,
    AMBIENT_BINARY,
    AMBIENT_EBCDIC,
    BaseType,
    register_ambient_alias,
    register_base_type,
)

_GEN_CHARS = _stringmod.ascii_letters + _stringmod.digits + "._-/"


def _term_byte(term, encoding: str = "latin-1") -> bytes:
    """Normalise a terminator parameter (char or 1-char string) to a byte."""
    if isinstance(term, bytes):
        return term
    if isinstance(term, str) and len(term) >= 1:
        return term.encode(encoding)
    if isinstance(term, int):
        return bytes([term])
    raise ValueError(f"invalid terminator {term!r}")


class AsciiChar(BaseType):
    """A single character (any byte; decoded latin-1)."""

    kind = "char"

    def parse(self, src: Source, sem_check: bool):
        raw = src.take(1)
        if not raw:
            return self.default(), ErrCode.INVALID_CHAR
        return raw.decode("latin-1"), ErrCode.NO_ERR

    def write(self, value) -> bytes:
        return str(value).encode("latin-1")

    def default(self):
        return "\0"

    def generate(self, rng: random.Random):
        return rng.choice(_GEN_CHARS)


class EbcdicChar(BaseType):
    kind = "char"

    def parse(self, src: Source, sem_check: bool):
        raw = src.take(1)
        if not raw:
            return self.default(), ErrCode.INVALID_CHAR
        return raw.decode("cp037"), ErrCode.NO_ERR

    def write(self, value) -> bytes:
        return str(value).encode("cp037")

    def default(self):
        return "\0"

    def generate(self, rng: random.Random):
        return rng.choice(_GEN_CHARS)


class TerminatedString(BaseType):
    """``Pstring(:term:)`` — bytes up to (not including) the terminator.

    When the terminator does not occur, the string extends to the end of
    the current scope (end-of-record, or end-of-source when no record is
    open), matching the C runtime where strings cannot cross records.
    """

    kind = "string"

    def __init__(self, term, encoding: str = "latin-1"):
        self.encoding = encoding
        self.term = _term_byte(term, encoding)
        self.term_char = self.term.decode(encoding)

    def parse(self, src: Source, sem_check: bool):
        start = src.pos
        body = src.take_until(self.term)
        if body is None:
            body = src.take_rest()
        try:
            return body.decode(self.encoding), ErrCode.NO_ERR
        except UnicodeDecodeError:
            src.pos = start
            return self.default(), ErrCode.INVALID_STRING

    def write(self, value) -> bytes:
        text = str(value)
        if self.term_char in text:
            raise ValueError(
                f"string {text!r} contains its terminator {self.term_char!r}")
        return text.encode(self.encoding)

    def default(self):
        return ""

    def generate(self, rng: random.Random):
        alphabet = _GEN_CHARS.replace(self.term_char, "")
        return "".join(rng.choice(alphabet) for _ in range(rng.randint(1, 12)))


class FixedString(BaseType):
    """``Pstring_FW(:n:)`` — exactly n bytes."""

    kind = "string"

    def __init__(self, nchars, encoding: str = "latin-1"):
        self.nchars = int(nchars)
        if self.nchars <= 0:
            raise ValueError("fixed width must be positive")
        self.encoding = encoding

    def parse(self, src: Source, sem_check: bool):
        start = src.pos
        raw = src.take(self.nchars)
        if len(raw) < self.nchars:
            src.pos = start
            return self.default(), ErrCode.WIDTH_NOT_AVAILABLE
        try:
            return raw.decode(self.encoding), ErrCode.NO_ERR
        except UnicodeDecodeError:
            src.pos = start
            return self.default(), ErrCode.INVALID_STRING

    def write(self, value) -> bytes:
        raw = str(value).encode(self.encoding)
        if len(raw) != self.nchars:
            raise ValueError(f"{value!r} is not exactly {self.nchars} bytes")
        return raw

    def default(self):
        return ""

    def generate(self, rng: random.Random):
        return "".join(rng.choice(_GEN_CHARS) for _ in range(self.nchars))


class RegexMatchString(BaseType):
    """``Pstring_ME(:"re":)`` — the longest regex match at the cursor."""

    kind = "string"

    def __init__(self, pattern: str):
        self.pattern = pattern
        self.compiled = re.compile(pattern.encode("latin-1"))

    def parse(self, src: Source, sem_check: bool):
        scope = src.scope_bytes()
        m = self.compiled.match(scope)
        if m is None or m.end() == 0:
            return self.default(), ErrCode.REGEXP_NO_MATCH
        src.skip(m.end())
        return m.group(0).decode("latin-1"), ErrCode.NO_ERR

    def write(self, value) -> bytes:
        raw = str(value).encode("latin-1")
        if not self.compiled.fullmatch(raw):
            raise ValueError(f"{value!r} does not match /{self.pattern}/")
        return raw

    def default(self):
        return ""

    def generate(self, rng: random.Random):
        try:
            return sample_regex(self.pattern, rng)
        except RegexSampleError:
            return ""


class RegexTermString(BaseType):
    """``Pstring_SE(:"re":)`` — bytes up to the first regex match."""

    kind = "string"

    def __init__(self, pattern: str):
        self.pattern = pattern
        self.compiled = re.compile(pattern.encode("latin-1"))

    def parse(self, src: Source, sem_check: bool):
        scope = src.scope_bytes()
        m = self.compiled.search(scope)
        if m is None:
            return self.default(), ErrCode.INVALID_STRING
        src.skip(m.start())
        return scope[:m.start()].decode("latin-1"), ErrCode.NO_ERR

    def write(self, value) -> bytes:
        raw = str(value).encode("latin-1")
        if self.compiled.search(raw):
            raise ValueError(f"{value!r} contains its terminating pattern")
        return raw

    def default(self):
        return ""

    def generate(self, rng: random.Random):
        alphabet = "".join(
            c for c in _GEN_CHARS
            if not self.compiled.search(c.encode("latin-1")))
        return "".join(rng.choice(alphabet) for _ in range(rng.randint(1, 12)))


class RestOfRecord(BaseType):
    """``Pstring_any`` — everything to the end of the current scope."""

    kind = "string"

    def parse(self, src: Source, sem_check: bool):
        return src.take_rest().decode("latin-1"), ErrCode.NO_ERR

    def write(self, value) -> bytes:
        return str(value).encode("latin-1")

    def default(self):
        return ""

    def generate(self, rng: random.Random):
        return "".join(rng.choice(_GEN_CHARS) for _ in range(rng.randint(0, 16)))


def _register() -> None:
    register_base_type("Pa_char", AsciiChar)
    register_base_type("Pe_char", EbcdicChar)
    register_base_type("Pb_char", AsciiChar)
    register_ambient_alias("Pchar", AMBIENT_ASCII, "Pa_char")
    register_ambient_alias("Pchar", AMBIENT_BINARY, "Pb_char")
    register_ambient_alias("Pchar", AMBIENT_EBCDIC, "Pe_char")

    register_base_type("Pa_string", lambda term: TerminatedString(term), min_args=1)
    register_base_type("Pe_string", lambda term: TerminatedString(term, "cp037"), min_args=1)
    register_ambient_alias("Pstring", AMBIENT_ASCII, "Pa_string")
    register_ambient_alias("Pstring", AMBIENT_BINARY, "Pa_string")
    register_ambient_alias("Pstring", AMBIENT_EBCDIC, "Pe_string")

    register_base_type("Pa_string_FW", lambda n: FixedString(n), min_args=1)
    register_base_type("Pe_string_FW", lambda n: FixedString(n, "cp037"), min_args=1)
    register_ambient_alias("Pstring_FW", AMBIENT_ASCII, "Pa_string_FW")
    register_ambient_alias("Pstring_FW", AMBIENT_BINARY, "Pa_string_FW")
    register_ambient_alias("Pstring_FW", AMBIENT_EBCDIC, "Pe_string_FW")

    register_base_type("Pstring_ME", RegexMatchString, min_args=1)
    register_base_type("Pstring_SE", RegexTermString, min_args=1)
    register_base_type("Pstring_any", RestOfRecord)

    # Unicode (UTF-8) strings — the character-encoding mechanism the paper
    # lists as future work in Section 9.  Terminators are single
    # characters; multi-byte values decode strictly, with undecodable
    # bytes reported as INVALID_STRING rather than raising.
    register_base_type("Pu_string", lambda term: TerminatedString(term, "utf-8"),
                       min_args=1)
    register_base_type("Pu_string_FW", lambda n: FixedString(n, "utf-8"),
                       min_args=1)


_register()
