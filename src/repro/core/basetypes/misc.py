"""Miscellaneous base types: the void type and counters.

``Pempty`` is the "void" type the paper uses to desugar ``Popt``: it
"always matches but never consumes any input" (Section 3).
"""

from __future__ import annotations

import random

from ..errors import ErrCode
from ..io import Source
from .base import (
    AMBIENT_ASCII,
    AMBIENT_BINARY,
    AMBIENT_EBCDIC,
    BaseType,
    register_ambient_alias,
    register_base_type,
)


class Empty(BaseType):
    """Matches always, consumes nothing, value ``None``."""

    kind = "none"

    def parse(self, src: Source, sem_check: bool):
        return None, ErrCode.NO_ERR

    def write(self, value) -> bytes:
        return b""

    def default(self):
        return None

    def generate(self, rng: random.Random):
        return None


class CountToTerminator(BaseType):
    """``PcountX(:c:)`` — counts occurrences of a byte to end of record,
    consuming nothing.  Useful for data-dependent array sizes."""

    kind = "int"

    def __init__(self, target):
        if isinstance(target, str):
            target = target.encode("latin-1")
        elif isinstance(target, int):
            target = bytes([target])
        self.target = target

    def parse(self, src: Source, sem_check: bool):
        return src.scope_bytes().count(self.target), ErrCode.NO_ERR

    def write(self, value) -> bytes:
        return b""

    def default(self):
        return 0

    def generate(self, rng: random.Random):
        return 0


def _register() -> None:
    register_base_type("Pempty", Empty)
    for ambient in (AMBIENT_ASCII, AMBIENT_BINARY, AMBIENT_EBCDIC):
        register_ambient_alias("Pvoid", ambient, "Pempty")
    register_base_type("PcountX", CountToTerminator, min_args=1)


_register()
