"""Network-flavoured base types: ``Pip``, ``Phostname``, ``Pzip``, ``Ppn``.

``client_t`` in the paper's Figure 4 is a union of ``Pip`` and
``Phostname``; parsing tries the IP first, so the hostname branch only
fires for names containing a letter, which matches how the two types are
defined here.  ``Pzip`` and phone numbers appear in the Sirius description
(Figure 5).
"""

from __future__ import annotations

import random

from ..errors import ErrCode
from ..io import Source
from .base import (
    AMBIENT_ASCII,
    AMBIENT_BINARY,
    AMBIENT_EBCDIC,
    BaseType,
    register_ambient_alias,
    register_base_type,
)

_DIGITS = frozenset(b"0123456789")
_HOST_CHARS = frozenset(b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789.-")


class Ipv4(BaseType):
    """Dotted-quad IPv4 address, each octet 0-255."""

    kind = "ip"

    def parse(self, src: Source, sem_check: bool):
        start = src.pos
        octets = []
        for i in range(4):
            digits = src.take_span(_DIGITS)
            if not digits or len(digits) > 3:
                src.pos = start
                return self.default(), ErrCode.INVALID_IP
            value = int(digits)
            if value > 255:
                src.pos = start
                return self.default(), ErrCode.INVALID_IP
            octets.append(value)
            if i < 3:
                if src.peek(1) != b".":
                    src.pos = start
                    return self.default(), ErrCode.INVALID_IP
                src.skip(1)
        # Reject when the address runs into more host-name characters
        # ("1.2.3.4x" or "1.2.3.4.example.com" are hostnames, not IPs).
        nxt = src.peek(1)
        if nxt and nxt[0] in _HOST_CHARS:
            src.pos = start
            return self.default(), ErrCode.INVALID_IP
        return ".".join(map(str, octets)), ErrCode.NO_ERR

    def write(self, value) -> bytes:
        return str(value).encode("ascii")

    def default(self):
        return "0.0.0.0"

    def generate(self, rng: random.Random):
        return ".".join(str(rng.randint(0, 255)) for _ in range(4))


class Hostname(BaseType):
    """A dotted hostname; must contain at least one letter."""

    kind = "string"

    def parse(self, src: Source, sem_check: bool):
        start = src.pos
        raw = src.take_span(_HOST_CHARS)
        if not raw:
            return self.default(), ErrCode.INVALID_HOSTNAME
        text = raw.decode("ascii")
        if not any(c.isalpha() for c in text):
            src.pos = start
            return self.default(), ErrCode.INVALID_HOSTNAME
        if text.startswith(".") or text.endswith("."):
            src.pos = start
            return self.default(), ErrCode.INVALID_HOSTNAME
        return text, ErrCode.NO_ERR

    def write(self, value) -> bytes:
        return str(value).encode("ascii")

    def default(self):
        return ""

    def generate(self, rng: random.Random):
        labels = ["".join(rng.choice("abcdefghijklmnopqrstuvwxyz")
                          for _ in range(rng.randint(2, 8)))
                  for _ in range(rng.randint(2, 3))]
        labels.append(rng.choice(["com", "net", "org", "edu"]))
        return ".".join(labels)


class ZipCode(BaseType):
    """US ZIP: five digits, optionally ``-`` and four more."""

    kind = "string"

    def parse(self, src: Source, sem_check: bool):
        start = src.pos
        digits = src.take_span(_DIGITS)
        if len(digits) != 5:
            src.pos = start
            return self.default(), ErrCode.INVALID_ZIP
        text = digits.decode("ascii")
        if src.peek(1) == b"-":
            mark = src.pos
            src.skip(1)
            plus4 = src.take_span(_DIGITS)
            if len(plus4) == 4:
                text += "-" + plus4.decode("ascii")
            else:
                src.pos = mark
        return text, ErrCode.NO_ERR

    def write(self, value) -> bytes:
        return str(value).encode("ascii")

    def default(self):
        return "00000"

    def generate(self, rng: random.Random):
        return f"{rng.randint(0, 99999):05d}"


class PhoneNumber(BaseType):
    """``Ppn`` — a North American phone number as a run of 10 digits.

    The Sirius data stores phone numbers as plain digit runs (Figure 3:
    ``9735551212``); a zero stands for "unavailable", which the paper's
    normalisation example converts to the missing representation.
    """

    kind = "int"

    def parse(self, src: Source, sem_check: bool):
        digits = src.take_span(_DIGITS)
        if not digits:
            return self.default(), ErrCode.INVALID_INT
        value = int(digits)
        if sem_check and len(digits) not in (1, 10):
            # Allow the single digit 0 ("no number") and full 10-digit numbers.
            return value, ErrCode.RANGE_ERR
        return value, ErrCode.NO_ERR

    def write(self, value) -> bytes:
        value = int(value)
        if value == 0:
            return b"0"
        return str(value).encode("ascii")

    def default(self):
        return 0

    def generate(self, rng: random.Random):
        return rng.randint(2_000_000_000, 9_999_999_999)


def _register() -> None:
    for name, cls in (("Pip", Ipv4), ("Phostname", Hostname), ("Pzip", ZipCode),
                      ("Ppn", PhoneNumber)):
        register_base_type(f"Pa_{name[1:]}", cls)
        for ambient in (AMBIENT_ASCII, AMBIENT_BINARY, AMBIENT_EBCDIC):
            register_ambient_alias(name, ambient, f"Pa_{name[1:]}")


_register()
