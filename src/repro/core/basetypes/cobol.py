"""Cobol-legacy base types: packed and zoned decimals.

The Altair feeds in the paper arrive in "various Cobol data formats"
(Figure 1), and Section 5.2 describes a tool translating Cobol copybooks
into PADS descriptions.  The two numeric encodings every copybook needs:

* **packed decimal** (``COMP-3``): two BCD digits per byte with a sign
  nibble (0xC positive, 0xD negative, 0xF unsigned) in the low half of the
  final byte;
* **zoned decimal** (``PIC S9(n) DISPLAY`` in EBCDIC): one digit per byte
  with the sign overpunched onto the final digit's zone nibble.

Both are parameterised by digit count; values with an implied decimal
point scale by ``10**-d`` (the copybook translator passes the scale).
"""

from __future__ import annotations

import random
from fractions import Fraction

from ..errors import ErrCode
from ..io import Source
from .base import BaseType, register_base_type


def _scale(value: int, decimals: int):
    if decimals == 0:
        return value
    scaled = Fraction(value, 10 ** decimals)
    return float(scaled)


def _unscale(value, decimals: int) -> int:
    if decimals == 0:
        return int(value)
    return round(float(value) * 10 ** decimals)


class PackedDecimal(BaseType):
    """``Pbcd_FW(:digits[, decimals]:)`` — COMP-3 packed decimal."""

    kind = "int"

    def __init__(self, digits, decimals=0):
        self.digits = int(digits)
        self.decimals = int(decimals)
        if self.digits <= 0:
            raise ValueError("digit count must be positive")
        # digits + sign nibble, rounded up to whole bytes.
        self.nbytes = (self.digits + 2) // 2
        if self.decimals:
            self.kind = "float"

    def parse(self, src: Source, sem_check: bool):
        start = src.pos
        raw = src.take(self.nbytes)
        if len(raw) < self.nbytes:
            src.pos = start
            return self.default(), ErrCode.WIDTH_NOT_AVAILABLE
        nibbles = []
        for b in raw:
            nibbles.append(b >> 4)
            nibbles.append(b & 0x0F)
        sign_nibble = nibbles[-1]
        digit_nibbles = nibbles[:-1]
        # Skip a leading pad nibble when the digit count is even.
        if len(digit_nibbles) > self.digits:
            digit_nibbles = digit_nibbles[-self.digits:]
        if sign_nibble not in (0x0C, 0x0D, 0x0F) or any(n > 9 for n in digit_nibbles):
            src.pos = start
            return self.default(), ErrCode.INVALID_BCD
        value = 0
        for n in digit_nibbles:
            value = value * 10 + n
        if sign_nibble == 0x0D:
            value = -value
        return _scale(value, self.decimals), ErrCode.NO_ERR

    def write(self, value) -> bytes:
        magnitude = _unscale(value, self.decimals)
        sign = 0x0C if magnitude >= 0 else 0x0D
        magnitude = abs(magnitude)
        text = str(magnitude).rjust(self.digits, "0")
        if len(text) > self.digits:
            raise ValueError(f"{value} does not fit in {self.digits} BCD digits")
        nibbles = [int(c) for c in text] + [sign]
        if len(nibbles) % 2:
            nibbles.insert(0, 0)
        out = bytearray()
        for i in range(0, len(nibbles), 2):
            out.append((nibbles[i] << 4) | nibbles[i + 1])
        return bytes(out)

    def default(self):
        return 0.0 if self.decimals else 0

    def generate(self, rng: random.Random):
        magnitude = rng.randint(0, 10 ** self.digits - 1)
        if rng.random() < 0.2:
            magnitude = -magnitude
        return _scale(magnitude, self.decimals)


class ZonedDecimal(BaseType):
    """``Pzoned_FW(:digits[, decimals]:)`` — EBCDIC zoned decimal."""

    kind = "int"

    # EBCDIC overpunch: zone 0xC (positive) / 0xD (negative) on final digit.
    _POS_ZONE = 0xC0
    _NEG_ZONE = 0xD0
    _DIGIT_ZONE = 0xF0

    def __init__(self, digits, decimals=0):
        self.digits = int(digits)
        self.decimals = int(decimals)
        if self.digits <= 0:
            raise ValueError("digit count must be positive")
        if self.decimals:
            self.kind = "float"

    def parse(self, src: Source, sem_check: bool):
        start = src.pos
        raw = src.take(self.digits)
        if len(raw) < self.digits:
            src.pos = start
            return self.default(), ErrCode.WIDTH_NOT_AVAILABLE
        value = 0
        negative = False
        for i, b in enumerate(raw):
            zone, digit = b & 0xF0, b & 0x0F
            if digit > 9:
                src.pos = start
                return self.default(), ErrCode.INVALID_BCD
            last = i == len(raw) - 1
            if zone == self._DIGIT_ZONE:
                pass
            elif last and zone == self._POS_ZONE:
                pass
            elif last and zone == self._NEG_ZONE:
                negative = True
            else:
                src.pos = start
                return self.default(), ErrCode.INVALID_BCD
            value = value * 10 + digit
        if negative:
            value = -value
        return _scale(value, self.decimals), ErrCode.NO_ERR

    def write(self, value) -> bytes:
        magnitude = _unscale(value, self.decimals)
        negative = magnitude < 0
        text = str(abs(magnitude)).rjust(self.digits, "0")
        if len(text) > self.digits:
            raise ValueError(f"{value} does not fit in {self.digits} zoned digits")
        out = bytearray(self._DIGIT_ZONE | int(c) for c in text)
        zone = self._NEG_ZONE if negative else self._POS_ZONE
        out[-1] = zone | (out[-1] & 0x0F)
        return bytes(out)

    def default(self):
        return 0.0 if self.decimals else 0

    def generate(self, rng: random.Random):
        magnitude = rng.randint(0, 10 ** self.digits - 1)
        if rng.random() < 0.2:
            magnitude = -magnitude
        return _scale(magnitude, self.decimals)


register_base_type("Pbcd_FW", lambda *a: PackedDecimal(*a), min_args=1, max_args=2)
register_base_type("Pzoned_FW", lambda *a: ZonedDecimal(*a), min_args=1, max_args=2)
