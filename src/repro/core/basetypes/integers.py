"""Integer and floating-point base types.

Covers the paper's integer family in all three codings:

* ASCII variable-width (``Pa_int8`` .. ``Pa_uint64``): optional sign and a
  run of decimal digits, with width checking as a semantic condition
  ("checking that the resulting number fits in the indicated space, i.e.,
  16 bits for Pint16" — Section 3),
* ASCII fixed-width (``Pa_uint16_FW(:3:)`` and friends): exactly N bytes,
* binary (``Pb_*``): fixed-size two's-complement, little-endian by default
  with explicit ``_be`` variants,
* EBCDIC (``Pe_*``): like ASCII but over EBCDIC digit code points,
* floats: ASCII decimal (``Pa_float``) and IEEE binary (``Pb_float`` /
  ``Pb_double``).

Bare ambient names (``Puint32``, ``Pint16_FW``) are registered as aliases
for each ambient coding.
"""

from __future__ import annotations

import random
import struct
from typing import Tuple

from ..errors import ErrCode
from ..io import Source
from ..values import FloatVal
from .base import (
    AMBIENT_ASCII,
    AMBIENT_BINARY,
    AMBIENT_EBCDIC,
    BaseType,
    register_ambient_alias,
    register_base_type,
)

_ASCII_DIGITS = frozenset(b"0123456789")
# EBCDIC (cp037) digits 0-9 are 0xF0-0xF9.
_EBCDIC_DIGITS = frozenset(range(0xF0, 0xFA))
_EBCDIC_MINUS = 0x60
_EBCDIC_PLUS = 0x4E


def int_bounds(width: int, signed: bool) -> Tuple[int, int]:
    if signed:
        half = 1 << (width - 1)
        return -half, half - 1
    return 0, (1 << width) - 1


class AsciiInt(BaseType):
    """Variable-width ASCII decimal integer."""

    kind = "int"

    def __init__(self, width: int, signed: bool):
        self.width = width
        self.signed = signed
        self.lo, self.hi = int_bounds(width, signed)

    def parse(self, src: Source, sem_check: bool):
        start = src.pos
        neg = False
        if self.signed:
            head = src.peek(1)
            if head in (b"-", b"+"):
                src.skip(1)
                neg = head == b"-"
        digits = src.take_span(_ASCII_DIGITS)
        if not digits:
            src.pos = start
            return self.default(), ErrCode.INVALID_INT
        value = int(digits)
        if neg:
            value = -value
        if sem_check and not (self.lo <= value <= self.hi):
            return value, ErrCode.RANGE_ERR
        return value, ErrCode.NO_ERR

    def write(self, value) -> bytes:
        return str(int(value)).encode("ascii")

    def default(self):
        return 0

    def generate(self, rng: random.Random):
        return rng.randint(self.lo, self.hi)


class AsciiIntFW(BaseType):
    """Fixed-width ASCII decimal integer (``Puint16_FW(:3:)``).

    Accepts space- or zero-padding on input; writes zero-padded output.
    """

    kind = "int"

    def __init__(self, width: int, signed: bool, nchars: int):
        if nchars <= 0:
            raise ValueError("fixed width must be positive")
        self.width = width
        self.signed = signed
        self.nchars = int(nchars)
        self.lo, self.hi = int_bounds(width, signed)

    def parse(self, src: Source, sem_check: bool):
        start = src.pos
        raw = src.take(self.nchars)
        if len(raw) < self.nchars:
            src.pos = start
            return self.default(), ErrCode.WIDTH_NOT_AVAILABLE
        text = raw.decode("ascii", errors="replace").strip()
        try:
            value = int(text, 10)
        except ValueError:
            src.pos = start
            return self.default(), ErrCode.INVALID_INT
        if not self.signed and value < 0:
            src.pos = start
            return self.default(), ErrCode.INVALID_INT
        if sem_check and not (self.lo <= value <= self.hi):
            return value, ErrCode.RANGE_ERR
        return value, ErrCode.NO_ERR

    def write(self, value) -> bytes:
        value = int(value)
        body = str(abs(value))
        sign = "-" if value < 0 else ""
        text = sign + body.rjust(self.nchars - len(sign), "0")
        if len(text) > self.nchars:
            raise ValueError(f"{value} does not fit in {self.nchars} characters")
        return text.encode("ascii")

    def default(self):
        return 0

    def generate(self, rng: random.Random):
        digits = self.nchars - (1 if self.signed else 0)
        hi = min(self.hi, 10 ** max(1, digits) - 1)
        lo = max(self.lo, 0 if not self.signed else -(10 ** max(1, digits - 1) - 1))
        return rng.randint(lo, hi)


class BinaryInt(BaseType):
    """Fixed-size two's-complement binary integer."""

    kind = "int"

    def __init__(self, width: int, signed: bool, byteorder: str = "little"):
        self.width = width
        self.signed = signed
        self.byteorder = byteorder
        self.nbytes = width // 8
        self.lo, self.hi = int_bounds(width, signed)

    def parse(self, src: Source, sem_check: bool):
        start = src.pos
        raw = src.take(self.nbytes)
        if len(raw) < self.nbytes:
            src.pos = start
            return self.default(), ErrCode.WIDTH_NOT_AVAILABLE
        value = int.from_bytes(raw, self.byteorder, signed=self.signed)
        return value, ErrCode.NO_ERR

    def write(self, value) -> bytes:
        return int(value).to_bytes(self.nbytes, self.byteorder, signed=self.signed)

    def default(self):
        return 0

    def generate(self, rng: random.Random):
        return rng.randint(self.lo, self.hi)


class BinaryRaw(BaseType):
    """``Pb_raw(:nbytes:)`` — an unsigned big-endian integer over an
    arbitrary number of bytes.  The substrate for ``Pbitfields`` (the
    bit-field construct of the paper's Section 9): the raw word is parsed
    once and individual bit ranges are computed from it."""

    kind = "int"

    def __init__(self, nbytes):
        self.nbytes = int(nbytes)
        if self.nbytes <= 0:
            raise ValueError("byte count must be positive")
        self.lo = 0
        self.hi = (1 << (self.nbytes * 8)) - 1

    def parse(self, src: Source, sem_check: bool):
        start = src.pos
        raw = src.take(self.nbytes)
        if len(raw) < self.nbytes:
            src.pos = start
            return self.default(), ErrCode.WIDTH_NOT_AVAILABLE
        return int.from_bytes(raw, "big"), ErrCode.NO_ERR

    def write(self, value) -> bytes:
        return int(value).to_bytes(self.nbytes, "big")

    def default(self):
        return 0

    def generate(self, rng: random.Random):
        return rng.randint(0, self.hi)


class EbcdicInt(BaseType):
    """Variable-width EBCDIC decimal integer (digit code points 0xF0-0xF9)."""

    kind = "int"

    def __init__(self, width: int, signed: bool):
        self.width = width
        self.signed = signed
        self.lo, self.hi = int_bounds(width, signed)

    def parse(self, src: Source, sem_check: bool):
        start = src.pos
        neg = False
        if self.signed:
            head = src.peek(1)
            if head and head[0] in (_EBCDIC_MINUS, _EBCDIC_PLUS):
                src.skip(1)
                neg = head[0] == _EBCDIC_MINUS
        digits = src.take_span(_EBCDIC_DIGITS)
        if not digits:
            src.pos = start
            return self.default(), ErrCode.INVALID_INT
        value = int(bytes(b - 0xC0 for b in digits))
        if neg:
            value = -value
        if sem_check and not (self.lo <= value <= self.hi):
            return value, ErrCode.RANGE_ERR
        return value, ErrCode.NO_ERR

    def write(self, value) -> bytes:
        return str(int(value)).encode("cp037")

    def default(self):
        return 0

    def generate(self, rng: random.Random):
        return rng.randint(self.lo, self.hi)


class AsciiFloat(BaseType):
    """ASCII decimal floating point: ``-?digits(.digits)?([eE][+-]?digits)?``."""

    kind = "float"

    def parse(self, src: Source, sem_check: bool):
        start = src.pos
        chunk = bytearray()
        if src.peek(1) in (b"-", b"+"):
            chunk += src.take(1)
        intpart = src.take_span(_ASCII_DIGITS)
        chunk += intpart
        if src.peek(1) == b"." :
            dot_mark = src.pos
            src.skip(1)
            frac = src.take_span(_ASCII_DIGITS)
            if frac:
                chunk += b"." + frac
            else:
                src.pos = dot_mark
        if not intpart and b"." not in chunk:
            src.pos = start
            return self.default(), ErrCode.INVALID_FLOAT
        if src.peek(1) in (b"e", b"E"):
            mark = src.pos
            src.skip(1)
            exp_sign = b""
            if src.peek(1) in (b"-", b"+"):
                exp_sign = src.take(1)
            exp = src.take_span(_ASCII_DIGITS)
            if exp:
                chunk += b"e" + exp_sign + exp
            else:
                src.pos = mark
        try:
            text = chunk.decode("ascii")
            return FloatVal(float(chunk), text), ErrCode.NO_ERR
        except ValueError:
            src.pos = start
            return self.default(), ErrCode.INVALID_FLOAT

    def write(self, value) -> bytes:
        if isinstance(value, FloatVal):
            return value.raw.encode("ascii")
        return repr(float(value)).encode("ascii")

    def default(self):
        return 0.0

    def generate(self, rng: random.Random):
        return round(rng.uniform(-1e6, 1e6), 6)


class BinaryFloat(BaseType):
    """IEEE-754 binary float (4 or 8 bytes)."""

    kind = "float"

    def __init__(self, nbytes: int, byteorder: str = "little"):
        self.nbytes = nbytes
        self.fmt = ("<" if byteorder == "little" else ">") + ("f" if nbytes == 4 else "d")

    def parse(self, src: Source, sem_check: bool):
        start = src.pos
        raw = src.take(self.nbytes)
        if len(raw) < self.nbytes:
            src.pos = start
            return self.default(), ErrCode.WIDTH_NOT_AVAILABLE
        return struct.unpack(self.fmt, raw)[0], ErrCode.NO_ERR

    def write(self, value) -> bytes:
        return struct.pack(self.fmt, float(value))

    def default(self):
        return 0.0

    def generate(self, rng: random.Random):
        return struct.unpack(self.fmt, struct.pack(self.fmt, rng.uniform(-1e9, 1e9)))[0]


def _register_int_family() -> None:
    for width in (8, 16, 32, 64):
        for signed in (False, True):
            tag = ("int" if signed else "uint") + str(width)

            register_base_type(f"Pa_{tag}",
                               (lambda w=width, s=signed: AsciiInt(w, s)))
            register_base_type(f"Pa_{tag}_FW",
                               (lambda n, w=width, s=signed: AsciiIntFW(w, s, n)),
                               min_args=1)
            register_base_type(f"Pb_{tag}",
                               (lambda w=width, s=signed: BinaryInt(w, s)))
            register_base_type(f"Pb_{tag}_be",
                               (lambda w=width, s=signed: BinaryInt(w, s, "big")))
            register_base_type(f"Pe_{tag}",
                               (lambda w=width, s=signed: EbcdicInt(w, s)))

            register_ambient_alias(f"P{tag}", AMBIENT_ASCII, f"Pa_{tag}")
            register_ambient_alias(f"P{tag}", AMBIENT_BINARY, f"Pb_{tag}")
            register_ambient_alias(f"P{tag}", AMBIENT_EBCDIC, f"Pe_{tag}")
            register_ambient_alias(f"P{tag}_FW", AMBIENT_ASCII, f"Pa_{tag}_FW")
            register_ambient_alias(f"P{tag}_FW", AMBIENT_EBCDIC, f"Pa_{tag}_FW")

    register_base_type("Pb_raw", BinaryRaw, min_args=1)

    register_base_type("Pa_float", AsciiFloat)
    register_base_type("Pb_float", lambda: BinaryFloat(4))
    register_base_type("Pb_double", lambda: BinaryFloat(8))
    register_base_type("Pb_float_be", lambda: BinaryFloat(4, "big"))
    register_base_type("Pb_double_be", lambda: BinaryFloat(8, "big"))
    register_ambient_alias("Pfloat", AMBIENT_ASCII, "Pa_float")
    register_ambient_alias("Pfloat", AMBIENT_BINARY, "Pb_float")
    register_ambient_alias("Pdouble", AMBIENT_BINARY, "Pb_double")
    register_ambient_alias("Pdouble", AMBIENT_ASCII, "Pa_float")


_register_int_family()
