"""Input abstraction for the PADS runtime.

The paper's runtime reads ad hoc data through SFIO with a pluggable notion
of *record*: ASCII sources are typically newline-terminated, binary sources
fixed-width, and Cobol sources length-prefixed (Section 3, "the notion of a
record varies depending upon the data encoding").  This module provides:

* :class:`RecordDiscipline` and its three standard implementations,
* :class:`Source` — a buffered byte cursor over bytes or a binary stream,
  supporting incremental reads (so multi-gigabyte files need never be fully
  resident), record scoping, checkpoint/restore for union backtracking,
  and bounded scanning used by error recovery.

All reads are clamped to the current record when a record is open, so a
panicking parser can never run past a record boundary.
"""

from __future__ import annotations

import io as _stdio
from typing import BinaryIO, Optional

from .errors import Loc

_CHUNK = 1 << 16


class RecordDiscipline:
    """Strategy for finding record boundaries.

    ``bounds(src, pos)`` returns ``(content_start, content_end,
    next_start)`` as absolute offsets — where the record's payload begins
    (after any length prefix), where it ends, and where the next record
    starts — or ``None`` when no complete record begins at ``pos`` (at end
    of input).  Implementations may call ``src._ensure``/``src._find`` to
    pull more data from the underlying stream.
    """

    name = "none"

    def bounds(self, src: "Source", pos: int):  # pragma: no cover - abstract
        raise NotImplementedError

    def trailer(self, content: bytes) -> bytes:
        """Bytes to append after a record's payload when writing."""
        return b""

    def header(self, content: bytes) -> bytes:
        """Bytes to prepend before a record's payload when writing."""
        return b""


class NewlineRecords(RecordDiscipline):
    """Newline-terminated records (the paper's ASCII default).

    A trailing ``\\r`` before the newline is treated as part of the record
    terminator, so Windows-style data parses identically.
    """

    name = "newline"

    def bounds(self, src: "Source", pos: int):
        if not src._ensure(pos, 1):
            return None
        nl = src._find(b"\n", pos)
        if nl < 0:
            # Final record without trailing newline.
            return pos, src._end(), src._end()
        end = nl
        if end > pos and src._byte_at(end - 1) == 0x0D:
            end -= 1
        return pos, end, nl + 1

    def trailer(self, content: bytes) -> bytes:
        return b"\n"


class FixedWidthRecords(RecordDiscipline):
    """Fixed-width records (typical for binary sources, paper Figure 1)."""

    name = "fixed"

    def __init__(self, width: int):
        if width <= 0:
            raise ValueError("record width must be positive")
        self.width = width

    def bounds(self, src: "Source", pos: int):
        if not src._ensure(pos, 1):
            return None
        have = src._ensure_count(pos, self.width)
        # A short final record is still surfaced; the parser will report
        # RECORD_TOO_SHORT when it runs out of bytes.
        return pos, pos + have, pos + have


class LengthPrefixedRecords(RecordDiscipline):
    """Records that store their payload length first (Cobol convention).

    ``prefix`` is the width of the length field in bytes and ``byteorder``
    its endianness.  ``inclusive`` indicates whether the stored length
    counts the prefix itself.
    """

    name = "length-prefixed"

    def __init__(self, prefix: int = 4, byteorder: str = "big", inclusive: bool = False):
        if prefix not in (1, 2, 4, 8):
            raise ValueError("prefix must be 1, 2, 4 or 8 bytes")
        self.prefix = prefix
        self.byteorder = byteorder
        self.inclusive = inclusive

    def bounds(self, src: "Source", pos: int):
        if not src._ensure(pos, 1):
            return None
        if src._ensure_count(pos, self.prefix) < self.prefix:
            # Garbage tail shorter than a prefix; surface as a short record.
            return pos, src._end(), src._end()
        raw = src._slice(pos, pos + self.prefix)
        length = int.from_bytes(raw, self.byteorder)
        if self.inclusive:
            length = max(0, length - self.prefix)
        start = pos + self.prefix
        have = src._ensure_count(start, length)
        return start, start + have, start + have

    def header(self, content: bytes) -> bytes:
        length = len(content) + (self.prefix if self.inclusive else 0)
        return length.to_bytes(self.prefix, self.byteorder)


class NoRecords(RecordDiscipline):
    """No record structure: the whole source is one record."""

    name = "none"

    def bounds(self, src: "Source", pos: int):
        if not src._ensure(pos, 1):
            return None
        src._read_all()
        return pos, src._end(), src._end()


class Source:
    """A buffered cursor over a byte source with record scoping.

    The cursor works in *absolute* byte offsets.  Data already consumed and
    no longer reachable (behind every checkpoint and the current record) is
    discarded from the internal buffer, which is what lets record-at-a-time
    clients process sources much larger than memory — the multiple-entry-
    point design from Section 4 of the paper.
    """

    def __init__(self, data: bytes | None = None, *, stream: Optional[BinaryIO] = None,
                 discipline: Optional[RecordDiscipline] = None):
        if (data is None) == (stream is None):
            raise ValueError("provide exactly one of data or stream")
        self._buf = bytearray(data or b"")
        self._base = 0  # absolute offset of _buf[0]
        self._stream = stream
        self._eof = stream is None
        self.pos = 0
        self.discipline: RecordDiscipline = discipline or NewlineRecords()

        self.in_record = False
        self.record_idx = -1
        self.rec_start = 0
        self.rec_end = 0
        self.rec_next = 0
        self._checkpoints = 0

    # -- constructors ------------------------------------------------------

    @classmethod
    def from_bytes(cls, data: bytes, discipline: Optional[RecordDiscipline] = None) -> "Source":
        return cls(data, discipline=discipline)

    @classmethod
    def from_string(cls, text: str, discipline: Optional[RecordDiscipline] = None) -> "Source":
        return cls(text.encode("utf-8"), discipline=discipline)

    @classmethod
    def from_file(cls, path: str, discipline: Optional[RecordDiscipline] = None) -> "Source":
        return cls(stream=open(path, "rb"), discipline=discipline)

    def close(self) -> None:
        if self._stream is not None:
            self._stream.close()
            self._stream = None
            self._eof = True

    def __enter__(self) -> "Source":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- low-level buffer management ----------------------------------------

    def _end(self) -> int:
        """Absolute offset one past the last buffered byte."""
        return self._base + len(self._buf)

    def _fill(self, want: int) -> None:
        """Read from the stream until ``want`` absolute bytes exist or EOF."""
        while not self._eof and self._end() < want:
            chunk = self._stream.read(max(_CHUNK, want - self._end()))
            if not chunk:
                self._eof = True
                break
            self._buf.extend(chunk)

    def _read_all(self) -> None:
        while not self._eof:
            chunk = self._stream.read(_CHUNK)
            if not chunk:
                self._eof = True
                break
            self._buf.extend(chunk)

    def _ensure(self, pos: int, n: int) -> bool:
        """True iff at least ``n`` bytes exist starting at absolute ``pos``."""
        self._fill(pos + n)
        return self._end() >= pos + n

    def _ensure_count(self, pos: int, n: int) -> int:
        """Number of bytes (<= n) actually available at ``pos``."""
        self._fill(pos + n)
        return max(0, min(self._end() - pos, n))

    def _byte_at(self, pos: int) -> int:
        return self._buf[pos - self._base]

    def _slice(self, start: int, end: int) -> bytes:
        return bytes(self._buf[start - self._base:end - self._base])

    def _find(self, needle: bytes, start: int, end: Optional[int] = None) -> int:
        """Find ``needle`` at absolute offset >= start, pulling data as needed.

        Returns the absolute offset or -1.  ``end`` (absolute, exclusive)
        bounds the search when given.
        """
        search_from = start
        while True:
            hi = len(self._buf) if end is None else min(len(self._buf), end - self._base)
            idx = self._buf.find(needle, search_from - self._base, hi)
            if idx >= 0:
                return idx + self._base
            if self._eof or (end is not None and self._end() >= end):
                return -1
            # Re-scan the tail that could straddle the chunk boundary.
            search_from = max(start, self._end() - len(needle) + 1)
            before = self._end()
            self._fill(self._end() + _CHUNK)
            if self._end() == before:
                return -1

    def _trim(self) -> None:
        """Discard buffered bytes behind the cursor when safe."""
        if self._checkpoints:
            return
        keep_from = min(self.pos, self.rec_start if self.in_record else self.pos)
        drop = keep_from - self._base
        if drop > _CHUNK:
            del self._buf[:drop]
            self._base = keep_from

    # -- limits --------------------------------------------------------------

    def _limit(self) -> Optional[int]:
        """Absolute offset parsing may not cross (record end), or None."""
        return self.rec_end if self.in_record else None

    def avail(self, n: int) -> int:
        """Bytes available to the parser at the cursor, up to ``n``."""
        limit = self._limit()
        if limit is not None:
            return max(0, min(limit - self.pos, n))
        return self._ensure_count(self.pos, n)

    # -- cursor primitives used by base types --------------------------------

    def at_eof(self) -> bool:
        if self.in_record:
            return False
        return not self._ensure(self.pos, 1)

    def at_eor(self) -> bool:
        return self.in_record and self.pos >= self.rec_end

    def at_end(self) -> bool:
        """At end of the current scope (record if open, else whole source)."""
        return self.at_eor() if self.in_record else self.at_eof()

    def peek(self, n: int = 1) -> bytes:
        k = self.avail(n)
        return self._slice(self.pos, self.pos + k)

    def peek_byte(self) -> int:
        b = self.peek(1)
        return b[0] if b else -1

    def first_byte(self) -> int:
        """The byte at the cursor (or -1), without allocation — the hot
        path for single-character literal matching in generated parsers."""
        pos = self.pos
        if self.in_record:
            if pos >= self.rec_end:
                return -1
        elif not self._ensure(pos, 1):
            return -1
        return self._buf[pos - self._base]

    def take(self, n: int) -> bytes:
        k = self.avail(n)
        out = self._slice(self.pos, self.pos + k)
        self.pos += k
        return out

    def skip(self, n: int) -> int:
        k = self.avail(n)
        self.pos += k
        return k

    def match_bytes(self, lit: bytes) -> bool:
        """Consume ``lit`` at the cursor if present."""
        if self.peek(len(lit)) == lit:
            self.pos += len(lit)
            return True
        return False

    def scan_for(self, lit: bytes, max_scan: Optional[int] = None) -> int:
        """Absolute offset of ``lit`` at/after the cursor within scope, or -1.

        Does not move the cursor.  Used for literal resynchronisation and
        array separator recovery.
        """
        end = self._limit()
        if max_scan is not None:
            cap = self.pos + max_scan
            end = cap if end is None else min(end, cap)
        return self._find(lit, self.pos, end)

    def take_until(self, lit: bytes) -> Optional[bytes]:
        """Consume and return bytes up to (not including) ``lit``.

        Returns None when ``lit`` does not occur in scope; the cursor does
        not move in that case.
        """
        idx = self.scan_for(lit)
        if idx < 0:
            return None
        out = self._slice(self.pos, idx)
        self.pos = idx
        return out

    def take_span(self, allowed: frozenset) -> bytes:
        """Consume the maximal run of bytes whose values are in ``allowed``.

        This is the hot path for ASCII integer and string base types, so it
        works directly on the internal buffer in chunks instead of peeking
        byte by byte.
        """
        start = self.pos
        limit = self._limit()
        while True:
            hi = self._end() if limit is None else min(self._end(), limit)
            i = self.pos - self._base
            buf = self._buf
            stop = hi - self._base
            while i < stop and buf[i] in allowed:
                i += 1
            self.pos = i + self._base
            if self.pos < hi or (limit is not None and self.pos >= limit):
                break
            if self._eof:
                break
            before = self._end()
            self._fill(self._end() + _CHUNK)
            if self._end() == before:
                break
        return self._slice(start, self.pos)

    def take_rest(self) -> bytes:
        """Consume everything to the end of the current scope."""
        if self.in_record:
            out = self._slice(self.pos, self.rec_end)
            self.pos = self.rec_end
            return out
        self._read_all()
        out = self._slice(self.pos, self._end())
        self.pos = self._end()
        return out

    def scope_bytes(self) -> bytes:
        """All remaining bytes in scope, without consuming (regex support)."""
        if self.in_record:
            return self._slice(self.pos, self.rec_end)
        self._read_all()
        return self._slice(self.pos, self._end())

    # -- records ---------------------------------------------------------------

    def begin_record(self) -> bool:
        """Open a record at the cursor.  False at end of input.

        Nested calls are not allowed; Precord types at nested positions
        simply parse within the enclosing record (matching the C runtime,
        where the record discipline lives in the IO stack).
        """
        if self.in_record:
            return True
        self._trim()
        b = self.discipline.bounds(self, self.pos)
        if b is None:
            return False
        self.rec_start, self.rec_end, self.rec_next = b
        self.pos = self.rec_start
        self.in_record = True
        self.record_idx += 1
        return True

    def end_record(self) -> None:
        """Close the current record and advance past its trailer."""
        if not self.in_record:
            return
        self.pos = self.rec_next
        self.in_record = False

    def skip_to_eor(self) -> int:
        """Panic recovery: jump to end-of-record.  Returns bytes skipped."""
        if not self.in_record:
            rest = self.take_rest()
            return len(rest)
        skipped = max(0, self.rec_end - self.pos)
        self.pos = self.rec_end
        return skipped

    def record_bytes(self) -> bytes:
        """The full payload of the current record."""
        return self._slice(self.rec_start, self.rec_end)

    # -- checkpoints -------------------------------------------------------------

    def mark(self) -> tuple:
        """Checkpoint the cursor (for Punion backtracking)."""
        self._checkpoints += 1
        return (self.pos, self.in_record, self.record_idx,
                self.rec_start, self.rec_end, self.rec_next)

    def restore(self, state: tuple) -> None:
        (self.pos, self.in_record, self.record_idx,
         self.rec_start, self.rec_end, self.rec_next) = state
        self._checkpoints -= 1

    def commit(self, state: tuple) -> None:
        """Release a checkpoint without rewinding."""
        self._checkpoints -= 1

    # -- locations ------------------------------------------------------------------

    def loc_from(self, start: int) -> Loc:
        return Loc(start, self.pos, self.record_idx)

    def here(self) -> Loc:
        return Loc(self.pos, self.pos, self.record_idx)
