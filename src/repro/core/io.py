"""Input abstraction for the PADS runtime.

The paper's runtime reads ad hoc data through SFIO with a pluggable notion
of *record*: ASCII sources are typically newline-terminated, binary sources
fixed-width, and Cobol sources length-prefixed (Section 3, "the notion of a
record varies depending upon the data encoding").  This module provides:

* :class:`RecordDiscipline` and its three standard implementations,
* :class:`Source` — a buffered byte cursor over bytes or a binary stream,
  supporting incremental reads (so multi-gigabyte files need never be fully
  resident), record scoping, checkpoint/restore for union backtracking,
  and bounded scanning used by error recovery.

All reads are clamped to the current record when a record is open, so a
panicking parser can never run past a record boundary.

For the parallel engine (:mod:`repro.parallel`) this module also provides
*chunk planning*: disciplines that can locate a record boundary from an
arbitrary byte offset declare ``chunkable = True`` and implement
``align``, and :func:`plan_chunks` uses that to split an input into
record-aligned byte ranges.  A :class:`Source` can be opened over such a
range (``start``/``end``), in which case it reports absolute offsets but
behaves as if the window were the whole input.  Chunkable disciplines
additionally implement ``cut``, which locates the last record boundary
inside an in-memory buffer — what the streaming feeder uses to carve a
live stream into worker chunks without seeking.

For inputs that cannot be slurped or seeked at all — pipes, sockets,
``tail -f``-style growing files — :class:`StreamSource` parses through a
*sliding window*: bytes are pulled on demand in window-sized refills and
retired as soon as the record that owned them is sealed, so memory stays
O(window + largest record) no matter how large (or endless) the input
is.  See :mod:`repro.stream` for the user-facing entry points.

Text handling note: strings given to the runtime are encoded **latin-1**
everywhere (``Source.from_string``, ``CompiledDescription.open``).
Latin-1 is the byte-transparent choice — every byte value 0-255 maps to
exactly one code point — so parsing, writing and error offsets agree with
the underlying bytes, matching the paper's byte-oriented C runtime.
"""

from __future__ import annotations

import io as _stdio
import os
from time import monotonic, sleep
from typing import BinaryIO, List, Optional, Tuple

from .. import observe
from .errors import ErrCode as _EC
from .errors import Loc
from .limits import ParseLimits, note_limit

_CHUNK = 1 << 16

#: Smallest chunk worth fanning out to a worker process; splits finer than
#: this cost more in process traffic than the parsing they save.
MIN_CHUNK_BYTES = 1 << 16


def transparent_encode(text: str) -> bytes:
    """Encode runtime text back to the bytes it was parsed from.

    Code points 0-255 are literal bytes (the latin-1 convention above);
    code points above 255 can only have come from a ``Pu_string`` UTF-8
    decode, so they re-encode as UTF-8.  Round-trips both byte-string and
    Unicode-string fields in one output stream.
    """
    try:
        return text.encode("latin-1")
    except UnicodeEncodeError:
        return b"".join(
            bytes([o]) if (o := ord(ch)) < 256 else ch.encode("utf-8")
            for ch in text
        )


class RecordDiscipline:
    """Strategy for finding record boundaries.

    ``bounds(src, pos)`` returns ``(content_start, content_end,
    next_start)`` as absolute offsets — where the record's payload begins
    (after any length prefix), where it ends, and where the next record
    starts — or ``None`` when no complete record begins at ``pos`` (at end
    of input).  Implementations may call ``src._ensure``/``src._find`` to
    pull more data from the underlying stream.
    """

    name = "none"

    #: True when record boundaries can be located from an arbitrary byte
    #: offset without replaying the stream from the start — the property
    #: the parallel engine needs to split a file into independent chunks.
    chunkable = False

    def bounds(self, src: "Source", pos: int):  # pragma: no cover - abstract
        raise NotImplementedError

    def align(self, handle: BinaryIO, offset: int, size: int,
              origin: int = 0) -> Optional[int]:
        """Absolute offset of the first record boundary at or after
        ``offset`` in the seekable binary ``handle`` of ``size`` bytes.

        ``origin`` is where the record stream begins (non-zero when a
        header precedes the records).  Returns ``None`` when the
        discipline cannot align from an arbitrary offset (``chunkable``
        is False).  ``origin`` and ``size`` are always boundaries.
        """
        return None

    def cut(self, buf: bytes) -> Optional[int]:
        """Length of the longest prefix of ``buf`` ending on a record
        boundary, assuming ``buf`` itself starts on one.

        This is the streaming twin of ``align``: it lets a feeder carve
        worker chunks out of a live, unseekable stream.  Returns 0 when
        no complete record is buffered yet and ``None`` when the
        discipline cannot cut (``chunkable`` is False).
        """
        return None

    def trailer(self, content: bytes) -> bytes:
        """Bytes to append after a record's payload when writing."""
        return b""

    def header(self, content: bytes) -> bytes:
        """Bytes to prepend before a record's payload when writing."""
        return b""


class NewlineRecords(RecordDiscipline):
    """Newline-terminated records (the paper's ASCII default).

    A trailing ``\\r`` before the newline is treated as part of the record
    terminator, so Windows-style data parses identically.
    """

    name = "newline"
    chunkable = True

    def align(self, handle: BinaryIO, offset: int, size: int,
              origin: int = 0) -> Optional[int]:
        if offset <= origin:
            return origin
        if offset >= size:
            return size
        # A boundary is any position immediately after a '\n', so scan for
        # the first newline at or after offset-1.
        handle.seek(offset - 1)
        pos = offset - 1
        while True:
            chunk = handle.read(_CHUNK)
            if not chunk:
                return size
            idx = chunk.find(b"\n")
            if idx >= 0:
                return min(pos + idx + 1, size)
            pos += len(chunk)

    def cut(self, buf: bytes) -> Optional[int]:
        return buf.rfind(b"\n") + 1

    def bounds(self, src: "Source", pos: int):
        if not src._ensure(pos, 1):
            return None
        nl = src._find(b"\n", pos)
        if nl < 0:
            # Final record without trailing newline.
            return pos, src._end(), src._end()
        end = nl
        if end > pos and src._byte_at(end - 1) == 0x0D:
            end -= 1
        return pos, end, nl + 1

    def trailer(self, content: bytes) -> bytes:
        return b"\n"


class FixedWidthRecords(RecordDiscipline):
    """Fixed-width records (typical for binary sources, paper Figure 1)."""

    name = "fixed"
    chunkable = True

    def __init__(self, width: int):
        if width <= 0:
            raise ValueError("record width must be positive")
        self.width = width

    def align(self, handle: BinaryIO, offset: int, size: int,
              origin: int = 0) -> Optional[int]:
        if offset <= origin:
            return origin
        # Round up to the next record multiple (counted from ``origin``);
        # a short final record belongs to the last chunk.
        return min(origin + -(-(offset - origin) // self.width) * self.width,
                   size)

    def cut(self, buf: bytes) -> Optional[int]:
        return len(buf) - len(buf) % self.width

    def bounds(self, src: "Source", pos: int):
        if not src._ensure(pos, 1):
            return None
        have = src._ensure_count(pos, self.width)
        # A short final record is still surfaced; the parser will report
        # RECORD_TOO_SHORT when it runs out of bytes.
        return pos, pos + have, pos + have


class LengthPrefixedRecords(RecordDiscipline):
    """Records that store their payload length first (Cobol convention).

    ``prefix`` is the width of the length field in bytes and ``byteorder``
    its endianness.  ``inclusive`` indicates whether the stored length
    counts the prefix itself.
    """

    name = "length-prefixed"

    def __init__(self, prefix: int = 4, byteorder: str = "big", inclusive: bool = False):
        if prefix not in (1, 2, 4, 8):
            raise ValueError("prefix must be 1, 2, 4 or 8 bytes")
        self.prefix = prefix
        self.byteorder = byteorder
        self.inclusive = inclusive

    def bounds(self, src: "Source", pos: int):
        if not src._ensure(pos, 1):
            return None
        if src._ensure_count(pos, self.prefix) < self.prefix:
            # Garbage tail shorter than a prefix; surface as a short record.
            return pos, src._end(), src._end()
        raw = src._slice(pos, pos + self.prefix)
        length = int.from_bytes(raw, self.byteorder)
        if self.inclusive:
            length = max(0, length - self.prefix)
        start = pos + self.prefix
        have = src._ensure_count(start, length)
        return start, start + have, start + have

    def header(self, content: bytes) -> bytes:
        length = len(content) + (self.prefix if self.inclusive else 0)
        return length.to_bytes(self.prefix, self.byteorder)


class NoRecords(RecordDiscipline):
    """No record structure: the whole source is one record."""

    name = "none"

    def bounds(self, src: "Source", pos: int):
        if not src._ensure(pos, 1):
            return None
        src._read_all()
        return pos, src._end(), src._end()


def discipline_from_spec(spec: str) -> RecordDiscipline:
    """Build a record discipline from its CLI/wire spelling.

    ``newline``, ``none``, ``fixed:<width>``, ``lenprefix:<bytes>`` —
    the spellings ``padsc --records`` and the parse service's
    ``records`` request field share.  Every malformed spec (unknown
    kind, non-numeric or out-of-range parameter) raises
    :class:`PadsError` so callers get a one-line diagnostic, never a
    traceback.
    """
    from .errors import PadsError
    kind = spec.strip()
    try:
        if kind == "newline":
            return NewlineRecords()
        if kind == "none":
            return NoRecords()
        if kind.startswith("fixed:"):
            return FixedWidthRecords(int(kind.split(":", 1)[1]))
        if kind.startswith("lenprefix:"):
            return LengthPrefixedRecords(int(kind.split(":", 1)[1]))
    except ValueError as exc:
        raise PadsError(f"bad record discipline {spec!r}: {exc}") from None
    raise PadsError(f"unknown record discipline {spec!r} "
                    "(use newline, none, fixed:<n>, lenprefix:<n>)")


class Source:
    """A buffered cursor over a byte source with record scoping.

    The cursor works in *absolute* byte offsets.  Data already consumed and
    no longer reachable (behind every checkpoint and the current record) is
    discarded from the internal buffer, which is what lets record-at-a-time
    clients process sources much larger than memory — the multiple-entry-
    point design from Section 4 of the paper.
    """

    def __init__(self, data: bytes | None = None, *, stream: Optional[BinaryIO] = None,
                 discipline: Optional[RecordDiscipline] = None,
                 start: int = 0, end: Optional[int] = None,
                 limits: Optional[ParseLimits] = None):
        if (data is None) == (stream is None):
            raise ValueError("provide exactly one of data or stream")
        self._buf = bytearray(data or b"")
        self._base = 0  # absolute offset of _buf[0]
        self._stream = stream
        self._owns_stream = True
        self._eof = stream is None
        #: How far speculative refills (boundary search, span scanning)
        #: read past the bytes actually requested.  StreamSource lowers
        #: this to its window so buffering stays bounded.
        self._readahead = _CHUNK
        self.pos = 0
        self.discipline: RecordDiscipline = discipline or NewlineRecords()
        # Window bounds: the cursor works in absolute offsets of the whole
        # underlying input, but behaves as if [start, end) were all of it.
        # With ``data``, the given bytes ARE the window and ``start`` is
        # the absolute offset of their first byte.
        self._hard_end = end
        if start:
            if stream is not None:
                stream.seek(start)
            self._base = start
            self.pos = start

        self.in_record = False
        self.record_idx = -1
        self.rec_start = start
        self.rec_end = start
        self.rec_next = start
        self._checkpoints = 0
        #: Optional boundary sampler (``repro.durable.IndexBuilder``)
        #: notified at sealed-byte retirement; one ``is None`` test per
        #: record when unused.
        self.index_sink = None

        # Resource budgets (None = unlimited).  ``total_errors`` is the
        # run-wide data-error count the ``max_errors`` budget draws on;
        # ``_depth`` tracks compound-parser nesting for ``max_depth``.
        self.limits: Optional[ParseLimits] = None
        self._deadline_at: Optional[float] = None
        self.total_errors = 0
        self._depth = 0
        if limits is not None:
            self.set_limits(limits)

    # -- constructors ------------------------------------------------------

    @classmethod
    def from_bytes(cls, data: bytes, discipline: Optional[RecordDiscipline] = None,
                   *, limits: Optional[ParseLimits] = None) -> "Source":
        return cls(data, discipline=discipline, limits=limits)

    @classmethod
    def from_string(cls, text: str, discipline: Optional[RecordDiscipline] = None,
                    *, limits: Optional[ParseLimits] = None) -> "Source":
        # latin-1: byte-transparent, and consistent with the rest of the
        # runtime (see the module docstring).
        return cls(text.encode("latin-1"), discipline=discipline, limits=limits)

    @classmethod
    def from_stream(cls, stream: BinaryIO,
                    discipline: Optional[RecordDiscipline] = None,
                    **kwargs) -> "StreamSource":
        """Open an unseekable byte stream (pipe, socket file, growing
        file) through a bounded sliding window; see :class:`StreamSource`
        for the keyword options (``window``, ``follow``, ...)."""
        return StreamSource(stream, discipline, **kwargs)

    @classmethod
    def from_file(cls, path: str, discipline: Optional[RecordDiscipline] = None,
                  *, start: int = 0, end: Optional[int] = None,
                  limits: Optional[ParseLimits] = None) -> "Source":
        """Open ``path``, optionally windowed to the byte range
        ``[start, end)``.  ``start`` must be a record boundary (use
        :func:`plan_chunks` to compute aligned ranges); offsets reported
        in locations remain absolute file offsets."""
        return cls(stream=open(path, "rb"), discipline=discipline,
                   start=start, end=end, limits=limits)

    def close(self) -> None:
        if self._stream is not None:
            if self._owns_stream:
                self._stream.close()
            self._stream = None
            self._eof = True

    def __enter__(self) -> "Source":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- low-level buffer management ----------------------------------------

    def _end(self) -> int:
        """Absolute offset one past the last buffered byte."""
        return self._base + len(self._buf)

    def _fill(self, want: int) -> None:
        """Read from the stream until ``want`` absolute bytes exist or EOF.

        Reads never cross the window's ``end``: a windowed source is at
        EOF once the window is exhausted, even mid-file.
        """
        cap = self._hard_end
        if cap is not None and want > cap:
            want = cap
        while not self._eof and self._end() < want:
            n = max(_CHUNK, want - self._end())
            if cap is not None:
                n = min(n, cap - self._end())
                if n <= 0:
                    break
            chunk = self._stream.read(n)
            if not chunk:
                self._eof = True
                break
            self._buf.extend(chunk)

    def _read_all(self) -> None:
        cap = self._hard_end
        while not self._eof:
            n = _CHUNK
            if cap is not None:
                n = min(n, cap - self._end())
                if n <= 0:
                    break
            chunk = self._stream.read(n)
            if not chunk:
                self._eof = True
                break
            self._buf.extend(chunk)

    def _ensure(self, pos: int, n: int) -> bool:
        """True iff at least ``n`` bytes exist starting at absolute ``pos``."""
        self._fill(pos + n)
        return self._end() >= pos + n

    def _ensure_count(self, pos: int, n: int) -> int:
        """Number of bytes (<= n) actually available at ``pos``."""
        self._fill(pos + n)
        return max(0, min(self._end() - pos, n))

    def _byte_at(self, pos: int) -> int:
        return self._buf[pos - self._base]

    def _slice(self, start: int, end: int) -> bytes:
        return bytes(self._buf[start - self._base:end - self._base])

    def _find(self, needle: bytes, start: int, end: Optional[int] = None) -> int:
        """Find ``needle`` at absolute offset >= start, pulling data as needed.

        Returns the absolute offset or -1.  ``end`` (absolute, exclusive)
        bounds the search when given.
        """
        search_from = start
        while True:
            hi = len(self._buf) if end is None else min(len(self._buf), end - self._base)
            idx = self._buf.find(needle, search_from - self._base, hi)
            if idx >= 0:
                return idx + self._base
            if self._eof or (end is not None and self._end() >= end):
                return -1
            # Re-scan the tail that could straddle the chunk boundary.
            search_from = max(start, self._end() - len(needle) + 1)
            before = self._end()
            self._fill(self._end() + self._readahead)
            if self._end() == before:
                return -1

    def _trim(self) -> None:
        """Discard buffered bytes behind the cursor when safe."""
        if self._checkpoints:
            return
        keep_from = min(self.pos, self.rec_start if self.in_record else self.pos)
        drop = keep_from - self._base
        if drop > _CHUNK:
            del self._buf[:drop]
            self._base = keep_from

    # -- limits --------------------------------------------------------------

    def _limit(self) -> Optional[int]:
        """Absolute offset parsing may not cross (record end), or None."""
        return self.rec_end if self.in_record else None

    def avail(self, n: int) -> int:
        """Bytes available to the parser at the cursor, up to ``n``."""
        limit = self._limit()
        if limit is not None:
            return max(0, min(limit - self.pos, n))
        return self._ensure_count(self.pos, n)

    # -- resource budgets ------------------------------------------------------

    def set_limits(self, limits: Optional[ParseLimits]) -> None:
        """Attach a resource budget; starts the deadline clock now."""
        self.limits = limits
        self._deadline_at = None
        if limits is not None and limits.deadline is not None:
            self._deadline_at = monotonic() + limits.deadline

    def note_errors(self, n: int) -> None:
        """Charge ``n`` data errors against the ``max_errors`` budget."""
        if n:
            self.total_errors += n

    def deadline_expired(self) -> bool:
        return self._deadline_at is not None and monotonic() > self._deadline_at

    def abort_to_eof(self) -> None:
        """Stop the run: close any record scope and move to end of input.

        Used when a run-wide budget (deadline, error count) is exhausted;
        afterwards ``at_eof`` is True so every record loop terminates.
        """
        if self.in_record:
            self.in_record = False
        self._read_all()
        self.pos = self._end()

    def scan_cap(self, default: int) -> int:
        """Effective recovery-scan window: ``max_scan`` clamped under the
        engine's built-in cap ``default``."""
        if self.limits is not None and self.limits.max_scan is not None:
            return min(default, self.limits.max_scan)
        return default

    def push_depth(self, pd) -> bool:
        """Enter one compound-parser level; False when ``max_depth`` would
        be exceeded (the level is NOT entered, and the refusal is recorded
        on ``pd`` as a NEST_LIMIT error)."""
        limits = self.limits
        if (limits is not None and limits.max_depth is not None
                and self._depth >= limits.max_depth):
            note_limit(pd, _EC.NEST_LIMIT, self.here())
            return False
        self._depth += 1
        return True

    def pop_depth(self) -> None:
        self._depth -= 1

    # -- cursor primitives used by base types --------------------------------

    def at_eof(self) -> bool:
        if self.in_record:
            return False
        return not self._ensure(self.pos, 1)

    def at_eor(self) -> bool:
        return self.in_record and self.pos >= self.rec_end

    def at_end(self) -> bool:
        """At end of the current scope (record if open, else whole source)."""
        return self.at_eor() if self.in_record else self.at_eof()

    def peek(self, n: int = 1) -> bytes:
        k = self.avail(n)
        return self._slice(self.pos, self.pos + k)

    def peek_byte(self) -> int:
        b = self.peek(1)
        return b[0] if b else -1

    def first_byte(self) -> int:
        """The byte at the cursor (or -1), without allocation — the hot
        path for single-character literal matching in generated parsers."""
        pos = self.pos
        if self.in_record:
            if pos >= self.rec_end:
                return -1
        elif not self._ensure(pos, 1):
            return -1
        return self._buf[pos - self._base]

    def take(self, n: int) -> bytes:
        k = self.avail(n)
        out = self._slice(self.pos, self.pos + k)
        self.pos += k
        return out

    def skip(self, n: int) -> int:
        k = self.avail(n)
        self.pos += k
        return k

    def match_bytes(self, lit: bytes) -> bool:
        """Consume ``lit`` at the cursor if present."""
        if self.peek(len(lit)) == lit:
            self.pos += len(lit)
            return True
        return False

    def scan_for(self, lit: bytes, max_scan: Optional[int] = None) -> int:
        """Absolute offset of ``lit`` at/after the cursor within scope, or -1.

        Does not move the cursor.  Used for literal resynchronisation and
        array separator recovery.
        """
        end = self._limit()
        if max_scan is not None:
            cap = self.pos + max_scan
            end = cap if end is None else min(end, cap)
        return self._find(lit, self.pos, end)

    def take_until(self, lit: bytes) -> Optional[bytes]:
        """Consume and return bytes up to (not including) ``lit``.

        Returns None when ``lit`` does not occur in scope; the cursor does
        not move in that case.
        """
        idx = self.scan_for(lit)
        if idx < 0:
            return None
        out = self._slice(self.pos, idx)
        self.pos = idx
        return out

    def take_span(self, allowed: frozenset) -> bytes:
        """Consume the maximal run of bytes whose values are in ``allowed``.

        This is the hot path for ASCII integer and string base types, so it
        works directly on the internal buffer in chunks instead of peeking
        byte by byte.
        """
        start = self.pos
        limit = self._limit()
        while True:
            hi = self._end() if limit is None else min(self._end(), limit)
            i = self.pos - self._base
            buf = self._buf
            stop = hi - self._base
            while i < stop and buf[i] in allowed:
                i += 1
            self.pos = i + self._base
            if self.pos < hi or (limit is not None and self.pos >= limit):
                break
            if self._eof:
                break
            before = self._end()
            self._fill(self._end() + self._readahead)
            if self._end() == before:
                break
        return self._slice(start, self.pos)

    def take_rest(self) -> bytes:
        """Consume everything to the end of the current scope."""
        if self.in_record:
            out = self._slice(self.pos, self.rec_end)
            self.pos = self.rec_end
            return out
        self._read_all()
        out = self._slice(self.pos, self._end())
        self.pos = self._end()
        return out

    def scope_bytes(self) -> bytes:
        """All remaining bytes in scope, without consuming (regex support)."""
        if self.in_record:
            return self._slice(self.pos, self.rec_end)
        self._read_all()
        return self._slice(self.pos, self._end())

    # -- records ---------------------------------------------------------------

    def begin_record(self) -> bool:
        """Open a record at the cursor.  False at end of input.

        Nested calls are not allowed; Precord types at nested positions
        simply parse within the enclosing record (matching the C runtime,
        where the record discipline lives in the IO stack).
        """
        if self.in_record:
            return True
        self._trim()
        b = self.discipline.bounds(self, self.pos)
        if b is None:
            return False
        self.rec_start, self.rec_end, self.rec_next = b
        self.pos = self.rec_start
        self.in_record = True
        self.record_idx += 1
        return True

    def end_record(self) -> None:
        """Close the current record and advance past its trailer."""
        if not self.in_record:
            return
        self.pos = self.rec_next
        self.in_record = False
        sink = self.index_sink
        if sink is not None:
            sink.note(self.record_idx, self.rec_next)

    def skip_to_eor(self) -> int:
        """Panic recovery: jump to end-of-record.  Returns bytes skipped."""
        if not self.in_record:
            rest = self.take_rest()
            return len(rest)
        skipped = max(0, self.rec_end - self.pos)
        self.pos = self.rec_end
        return skipped

    def record_bytes(self) -> bytes:
        """The full payload of the current record."""
        return self._slice(self.rec_start, self.rec_end)

    # -- checkpoints -------------------------------------------------------------

    def mark(self) -> tuple:
        """Checkpoint the cursor (for Punion backtracking)."""
        self._checkpoints += 1
        return (self.pos, self.in_record, self.record_idx,
                self.rec_start, self.rec_end, self.rec_next)

    def restore(self, state: tuple) -> None:
        (self.pos, self.in_record, self.record_idx,
         self.rec_start, self.rec_end, self.rec_next) = state
        self._checkpoints -= 1

    def commit(self, state: tuple) -> None:
        """Release a checkpoint without rewinding."""
        self._checkpoints -= 1

    # -- locations ------------------------------------------------------------------

    def loc_from(self, start: int) -> Loc:
        return Loc(start, self.pos, self.record_idx)

    def here(self) -> Loc:
        return Loc(self.pos, self.pos, self.record_idx)


# -- streaming ----------------------------------------------------------------

#: Default sliding-window size for streaming sources (1 MiB): large
#: enough that refill overhead vanishes, small enough that a thousand
#: concurrent streams fit in a few GB.
DEFAULT_STREAM_WINDOW = 1 << 20


class StreamSource(Source):
    """A :class:`Source` over an unseekable byte stream with bounded
    buffering — the record-at-a-time entry point the paper promises for
    multi-gigabyte feeds, without ever materializing the input.

    Three behaviours distinguish it from a plain stream-backed
    :class:`Source`:

    * **Sliding window.**  Refills pull at most ``window`` bytes at a
      time (speculative readahead is clamped to the window too), and
      bytes behind the current record are retired eagerly once the
      record is sealed, so peak buffering is O(window + largest record)
      regardless of input size.  The window is a working-set target, not
      a hard cap: one record longer than the window is still parsed
      correctly (and shows up in the high-water mark); combine with
      ``ParseLimits.max_record_bytes`` for a hard bound.  When
      ``limits.max_scan`` is larger than the window, the window is
      widened to it so a maximal error-recovery scan never thrashes.
    * **Tail mode.**  ``follow=True`` turns end-of-stream into a poll:
      the source sleeps ``poll_interval`` seconds and retries — the
      ``tail -f`` discipline for growing files — reporting EOF only
      after ``idle_timeout`` seconds pass with no new data (or never,
      when ``idle_timeout`` is None).
    * **Instrumentation.**  Refills, stalls (polls that found no data)
      and the buffer high-water mark are counted on the instance
      (``refills``/``stalls``/``high_water``) and, when observability is
      enabled, in the ``stream.*`` metrics.

    Record disciplines are refill-transparent: boundary searches rescan
    the straddling tail after every refill, so a record split across any
    refill boundary parses byte-identically to the slurped path (pinned
    by the differential sweep in ``tests/test_stream.py``).
    """

    def __init__(self, stream: BinaryIO,
                 discipline: Optional[RecordDiscipline] = None, *,
                 window: int = DEFAULT_STREAM_WINDOW,
                 follow: bool = False,
                 poll_interval: float = 0.05,
                 idle_timeout: Optional[float] = None,
                 limits: Optional[ParseLimits] = None,
                 owns_stream: bool = False):
        super().__init__(stream=stream, discipline=discipline, limits=limits)
        self._owns_stream = owns_stream
        if limits is not None and limits.max_scan:
            window = max(window, limits.max_scan)
        self.window = max(1, window)
        self._refill = max(1, min(self.window, _CHUNK))
        self._readahead = self._refill
        self._trim_at = max(1, self._refill // 2)
        self.follow = follow
        self.poll_interval = poll_interval
        self.idle_timeout = idle_timeout
        # ``read1`` (when the stream has it) returns whatever bytes are
        # ready instead of blocking for a full ``n`` — lower latency on
        # pipes and growing files.
        self._read = getattr(stream, "read1", None) or stream.read
        self.refills = 0
        self.stalls = 0
        self.high_water = 0

    # -- instrumentation ---------------------------------------------------

    def _note_refill(self) -> None:
        self.refills += 1
        buffered = len(self._buf)
        if buffered > self.high_water:
            self.high_water = buffered
        obs = observe.CURRENT
        if obs is not None:
            m = obs.metrics
            m.counter("stream.refills").inc()
            m.gauge("stream.bytes_buffered").set(buffered)
            hw = m.gauge("stream.high_water")
            if buffered > hw.value:
                hw.set(buffered)

    def _note_stall(self) -> None:
        self.stalls += 1
        obs = observe.CURRENT
        if obs is not None:
            obs.metrics.counter("stream.stalls").inc()

    # -- sliding-window buffer management ----------------------------------

    def _fill(self, want: int) -> None:
        cap = self._hard_end
        if cap is not None and want > cap:
            want = cap
        idle_since = None
        while not self._eof and self._end() < want:
            n = max(want - self._end(), self._refill)
            if cap is not None:
                n = min(n, cap - self._end())
                if n <= 0:
                    break
            chunk = self._read(n)
            if chunk:
                self._buf.extend(chunk)
                self._note_refill()
                idle_since = None
                continue
            if not self.follow:
                self._eof = True
                break
            # Tail mode: no data *yet*.  Poll until new bytes appear or
            # the idle timeout expires (then: clean EOF).
            self._note_stall()
            now = monotonic()
            if idle_since is None:
                idle_since = now
            elif (self.idle_timeout is not None
                    and now - idle_since >= self.idle_timeout):
                self._eof = True
                break
            sleep(self.poll_interval)

    def _read_all(self) -> None:
        # Route through _fill so follow/stall accounting stays uniform.
        while not self._eof:
            before = self._end()
            self._fill(before + self._refill)
            if self._end() == before:
                break

    def _trim(self) -> None:
        if self._checkpoints:
            return
        keep_from = min(self.pos, self.rec_start if self.in_record else self.pos)
        drop = keep_from - self._base
        # Retire eagerly (half a refill instead of a whole chunk): the
        # memmove is amortized and the buffer never holds more than the
        # window plus one refill of already-consumed bytes.
        if drop >= self._trim_at:
            del self._buf[:drop]
            self._base = keep_from
            obs = observe.CURRENT
            if obs is not None:
                obs.metrics.gauge("stream.bytes_buffered").set(len(self._buf))


# -- chunk planning -----------------------------------------------------------


def plan_chunks(handle: BinaryIO, size: int, discipline: RecordDiscipline,
                n_chunks: int, min_chunk: int = MIN_CHUNK_BYTES,
                start: int = 0) -> Optional[List[Tuple[int, int]]]:
    """Split ``[start, size)`` into up to ``n_chunks`` record-aligned ranges.

    ``handle`` is any seekable binary file (a real file or ``BytesIO``);
    it is only used to locate boundaries, and its position afterwards is
    unspecified.  ``start`` lets chunk planning begin after a serially
    parsed prefix (e.g. a header record); it must itself be a record
    boundary.  Returns a list of ``(start, end)`` ranges that exactly
    tile ``[start, size)``, or ``None`` when splitting is not possible or
    not worthwhile (discipline not chunkable, input too small, fewer than
    two resulting chunks) — the caller should then use the serial path.
    """
    span = size - start
    if span <= 0 or n_chunks <= 1 or not discipline.chunkable:
        return None
    n_chunks = min(n_chunks, max(1, span // max(1, min_chunk)))
    if n_chunks <= 1:
        return None
    cuts = [start]
    for i in range(1, n_chunks):
        boundary = discipline.align(handle, start + span * i // n_chunks, size,
                                    origin=start)
        if boundary is None:
            return None
        if cuts[-1] < boundary < size:
            cuts.append(boundary)
    cuts.append(size)
    if len(cuts) <= 2:
        return None
    return list(zip(cuts, cuts[1:]))


def plan_file_chunks(path: str, discipline: RecordDiscipline, n_chunks: int,
                     min_chunk: int = MIN_CHUNK_BYTES,
                     start: int = 0) -> Optional[List[Tuple[int, int]]]:
    """:func:`plan_chunks` over a file on disk."""
    size = os.path.getsize(path)
    with open(path, "rb") as handle:
        return plan_chunks(handle, size, discipline, n_chunks, min_chunk, start)
