"""Bind an analyzed plan to runtime type nodes (the interpreted engine).

Binding consumes the plan IR (:mod:`repro.plan`) — not the raw AST — so
every derived fact (the ambient-coding table, resolved base types,
literal byte forms, fused literal runs, fastpath verdicts) comes from
the one analysis shared with the code generator.  One
:class:`~repro.core.types.PType` node is built per declaration, in
declaration order (legal because PADS types are declared before use),
along with the *global environment* holding user helper functions, enum
literal values and the expression builtins.

Each runtime node keeps a ``plan`` attribute pointing at the plan node
it was built from, so plan facts stay reachable from a bound tree (the
AST-walking tools rely on this).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..dsl import ast as D
from ..expr.eval import Env
from ..plan import analyze
from ..plan.ir import (
    ArrayPlan,
    BaseUse,
    ComputeItem,
    DataItem,
    DeclPlan,
    EnumPlan,
    LitItem,
    LitPlan,
    OptUse,
    Plan,
    RefUse,
    RegexUse,
    StructPlan,
    SwitchPlan,
    TypedefPlan,
    UnionPlan,
    Use,
)
from .basetypes.strings import RegexMatchString
from .errors import PadsError
from .types import (
    AppNode,
    ArrayNode,
    BaseNode,
    EnumNode,
    LiteralNode,
    OptNode,
    PType,
    RecordNode,
    StructField,
    StructNode,
    SwitchCaseRT,
    SwitchUnionNode,
    TypedefNode,
    UnionBranch,
    UnionNode,
)


class BoundDescription:
    """The result of binding: runtime nodes plus the global environment."""

    def __init__(self, desc: D.Description, ambient: str,
                 plan: Optional[Plan] = None, fastpath: bool = True):
        self.desc = desc
        self.ambient = ambient
        self.plan = plan if plan is not None else analyze(desc, ambient)
        self.encoding = self.plan.encoding
        self.fastpath = fastpath
        self.nodes: Dict[str, PType] = {}
        self.params: Dict[str, List[str]] = {}
        self.global_env = Env({})
        self._bind()

    # -- lookup ----------------------------------------------------------------

    def node(self, name: str) -> PType:
        try:
            return self.nodes[name]
        except KeyError:
            raise PadsError(f"no type named {name!r} in description") from None

    @property
    def source_name(self) -> Optional[str]:
        return self.plan.source_name

    @property
    def source_node(self) -> PType:
        if self.source_name is None:
            raise PadsError("description has no source type")
        return self.nodes[self.source_name]

    # -- binding ----------------------------------------------------------------

    def _bind(self) -> None:
        fast_fns = {}
        self.batch_fns: Dict[str, object] = {}
        if self.fastpath:
            from ..plan.runtime import materialize_batch_fns, materialize_fast_fns
            fast_fns = materialize_fast_fns(self.plan)
            self.batch_fns = materialize_batch_fns(self.plan)
        for kind, entry in self.plan.order:
            if kind == "func":
                self.global_env.funcs[entry.name] = entry.func
                continue
            node = self._bind_decl(entry)
            node.plan = entry
            if entry.is_record:
                record = RecordNode(node)
                record.plan = entry
                if entry.verdict.eligible:
                    record.fast_fn = fast_fns.get(entry.name)
                node = record
            self.nodes[entry.name] = node
            self.params[entry.name] = entry.param_names

    def _literal(self, lit: LitPlan) -> LiteralNode:
        node = LiteralNode(lit.kind, lit.value, self.encoding)
        node.plan = lit
        return node

    def _type(self, use: Use) -> PType:
        if isinstance(use, RefUse):
            decl_node = self.nodes[use.name]
            pnames = self.params[use.name]
            if pnames:
                node = AppNode(use.name, decl_node, pnames, use.args,
                               self.global_env)
                node.plan = use
                return node
            # Shared declaration node; its ``plan`` is the DeclPlan.
            return decl_node
        node = self._type_node(use)
        node.plan = use
        return node

    def _type_node(self, use: Use) -> PType:
        if isinstance(use, OptUse):
            return OptNode(self._type(use.inner))
        if isinstance(use, RegexUse):
            pattern = use.pattern
            return BaseNode(f'Pre "{pattern}"',
                            lambda args, p=pattern: RegexMatchString(p), ())
        assert isinstance(use, BaseUse)
        if use.static is not None:
            # Statically resolved during analysis: close over the instance.
            return BaseNode(use.name, lambda args, inst=use.static: inst,
                            use.args)
        plan = self.plan
        return BaseNode(use.name,
                        lambda a, n=use.name, p=plan: p.resolve(n, a),
                        use.args)

    def _bind_decl(self, dp: DeclPlan) -> PType:
        if isinstance(dp, StructPlan):
            fields = []
            for item in dp.items:
                if isinstance(item, LitItem):
                    fields.append(StructField("literal",
                                              node=self._literal(item.literal)))
                elif isinstance(item, ComputeItem):
                    fields.append(StructField("compute", name=item.name,
                                              expr=item.expr,
                                              constraint=item.constraint))
                else:
                    assert isinstance(item, DataItem)
                    fields.append(StructField("data", name=item.name,
                                              node=self._type(item.type),
                                              constraint=item.constraint))
            node = StructNode(dp.name, fields, dp.where)
            if dp.fused_runs and self.fastpath:
                # Literal-prefix fusion (plan pass): match whole runs of
                # adjacent literals with a single comparison.
                node.fused = {start: (end, raw)
                              for start, end, raw in dp.fused_runs}
            return node

        if isinstance(dp, SwitchPlan):
            cases = [SwitchCaseRT(c.value, c.name, self._type(c.type),
                                  c.constraint)
                     for c in dp.cases]
            return SwitchUnionNode(dp.name, dp.selector, cases)

        if isinstance(dp, UnionPlan):
            branches = [UnionBranch(b.name, self._type(b.type), b.constraint)
                        for b in dp.branches]
            return UnionNode(dp.name, branches, dp.where)

        if isinstance(dp, ArrayPlan):
            return ArrayNode(
                dp.name, self._type(dp.elt),
                sep=self._literal(dp.sep) if dp.sep else None,
                term=self._literal(dp.term) if dp.term else None,
                min_size=dp.min_size, max_size=dp.max_size,
                last=dp.last, ended=dp.ended, longest=dp.longest,
                where=dp.where)

        if isinstance(dp, EnumPlan):
            items = [(it.name, it.code, it.physical) for it in dp.items]
            node = EnumNode(dp.name, items, self.encoding)
            # Enum literals become global constants usable in constraints
            # (`m == LINK` in the paper's chkVersion).
            from .values import EnumVal
            for name, code, physical in items:
                self.global_env.vars[name] = EnumVal(name, code, physical)
            return node

        if isinstance(dp, TypedefPlan):
            return TypedefNode(dp.name, self._type(dp.base),
                               dp.var, dp.constraint)

        raise PadsError(f"cannot bind declaration {dp!r}")


def bind_description(desc: D.Description, ambient: str = "ascii",
                     plan: Optional[Plan] = None,
                     fastpath: bool = True) -> BoundDescription:
    return BoundDescription(desc, ambient, plan, fastpath)
