"""Bind a type-checked description AST to runtime type nodes.

Binding builds one :class:`~repro.core.types.PType` node per declaration,
in declaration order (legal because PADS types are declared before use),
along with the *global environment* holding user helper functions, enum
literal values and the expression builtins.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..dsl import ast as D
from ..expr import ast as E
from ..expr.eval import Env
from .basetypes.base import resolve_base_type
from .basetypes.strings import RegexMatchString
from .errors import PadsError
from .types import (
    AppNode,
    ArrayNode,
    BaseNode,
    EnumNode,
    LiteralNode,
    OptNode,
    PType,
    RecordNode,
    StructField,
    StructNode,
    SwitchCaseRT,
    SwitchUnionNode,
    TypedefNode,
    UnionBranch,
    UnionNode,
)

_ENCODINGS = {"ascii": "latin-1", "binary": "latin-1", "ebcdic": "cp037"}


class BoundDescription:
    """The result of binding: runtime nodes plus the global environment."""

    def __init__(self, desc: D.Description, ambient: str):
        self.desc = desc
        self.ambient = ambient
        self.encoding = _ENCODINGS[ambient]
        self.nodes: Dict[str, PType] = {}
        self.params: Dict[str, List[str]] = {}
        self.global_env = Env({})
        self.source_name: Optional[str] = None
        self._bind()

    # -- lookup ----------------------------------------------------------------

    def node(self, name: str) -> PType:
        try:
            return self.nodes[name]
        except KeyError:
            raise PadsError(f"no type named {name!r} in description") from None

    @property
    def source_node(self) -> PType:
        if self.source_name is None:
            raise PadsError("description has no source type")
        return self.nodes[self.source_name]

    # -- binding ----------------------------------------------------------------

    def _bind(self) -> None:
        for decl in self.desc.decls:
            if isinstance(decl, D.FuncDecl):
                self.global_env.funcs[decl.name] = decl.func
                continue
            node = self._bind_decl(decl)
            if decl.is_record:
                node = RecordNode(node)
            self.nodes[decl.name] = node
            self.params[decl.name] = [p for _, p in decl.params]
        src = self.desc.source
        if src is not None:
            self.source_name = src.name

    def _literal(self, spec: D.LiteralSpec) -> LiteralNode:
        return LiteralNode(spec.kind, spec.value, self.encoding)

    def _type(self, texpr: D.TypeExpr) -> PType:
        if isinstance(texpr, D.OptType):
            return OptNode(self._type(texpr.inner))
        if isinstance(texpr, D.RegexType):
            pattern = texpr.pattern
            return BaseNode(f'Pre "{pattern}"',
                            lambda args, p=pattern: RegexMatchString(p), ())
        assert isinstance(texpr, D.TypeRef)
        name, args = texpr.name, texpr.args
        if name in self.nodes:
            decl_node = self.nodes[name]
            pnames = self.params[name]
            if pnames:
                return AppNode(name, decl_node, pnames, args, self.global_env)
            return decl_node
        ambient = self.ambient
        return BaseNode(name,
                        lambda a, n=name, amb=ambient: resolve_base_type(n, a, amb),
                        args)

    def _bind_decl(self, decl: D.Decl) -> PType:
        if isinstance(decl, D.BitfieldsDecl):
            decl = D.lower_bitfields(decl)
        if isinstance(decl, D.StructDecl):
            fields = []
            for item in decl.items:
                if isinstance(item, D.LiteralField):
                    fields.append(StructField("literal", node=self._literal(item.literal)))
                elif isinstance(item, D.ComputeField):
                    fields.append(StructField("compute", name=item.name,
                                              expr=item.expr,
                                              constraint=item.constraint))
                else:
                    fields.append(StructField("data", name=item.name,
                                              node=self._type(item.type),
                                              constraint=item.constraint))
            return StructNode(decl.name, fields, decl.where)

        if isinstance(decl, D.UnionDecl):
            if decl.is_switched:
                cases = [SwitchCaseRT(c.value, c.field.name,
                                      self._type(c.field.type),
                                      c.field.constraint)
                         for c in decl.cases]
                return SwitchUnionNode(decl.name, decl.switch, cases)
            branches = [UnionBranch(b.name, self._type(b.type), b.constraint)
                        for b in decl.branches]
            return UnionNode(decl.name, branches, decl.where)

        if isinstance(decl, D.ArrayDecl):
            return ArrayNode(
                decl.name, self._type(decl.elt_type),
                sep=self._literal(decl.sep) if decl.sep else None,
                term=self._literal(decl.term) if decl.term else None,
                min_size=decl.min_size, max_size=decl.max_size,
                last=decl.last, ended=decl.ended, longest=decl.longest,
                where=decl.where)

        if isinstance(decl, D.EnumDecl):
            items = []
            for pos, item in enumerate(decl.items):
                code = item.value if item.value is not None else pos
                physical = item.physical if item.physical is not None else item.name
                items.append((item.name, code, physical))
            node = EnumNode(decl.name, items, self.encoding)
            # Enum literals become global constants usable in constraints
            # (`m == LINK` in the paper's chkVersion).
            from .values import EnumVal
            for name, code, physical in items:
                self.global_env.vars[name] = EnumVal(name, code, physical)
            return node

        if isinstance(decl, D.TypedefDecl):
            return TypedefNode(decl.name, self._type(decl.base),
                               decl.var, decl.constraint)

        raise PadsError(f"cannot bind declaration {decl!r}")


def bind_description(desc: D.Description, ambient: str = "ascii") -> BoundDescription:
    return BoundDescription(desc, ambient)
