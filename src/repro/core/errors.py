"""Error model for the PADS runtime.

The generated C library in the paper returns, for every parse, a *parse
descriptor* (``pd``) mirroring the shape of the parsed type.  Each pd node
records the parse state (normal / partial / panicking), the number of errors
detected in its subtree, the error code of the first detected error, and the
location of that error (paper, Section 4 and Figure 6).

This module defines the Python equivalents: :class:`ErrCode`, :class:`Loc`,
:class:`Pstate` and the :class:`Pd` tree.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional


class ErrCode(enum.IntEnum):
    """Error codes reported in parse descriptors.

    The numbering groups codes the same way the C runtime does: 0 is
    success, 1xx are system/IO errors, 2xx are syntactic errors, 3xx are
    semantic (user-constraint) errors, and 4xx are structural errors raised
    by compound types.  5xx are resource-limit errors raised when a
    :class:`~repro.core.limits.ParseLimits` budget is exhausted — they are
    *not* syntactic, so they never trigger error-recovery resync.
    """

    NO_ERR = 0

    # System errors (file, buffer, socket).
    IO_ERR = 100
    AT_EOF = 101
    AT_EOR = 102
    RECORD_TOO_SHORT = 103
    BAD_RECORD = 104

    # Syntactic errors.
    MISSING_LITERAL = 200
    INVALID_CHAR = 201
    INVALID_INT = 202
    RANGE_ERR = 203
    INVALID_STRING = 204
    INVALID_DATE = 205
    INVALID_IP = 206
    INVALID_HOSTNAME = 207
    INVALID_ZIP = 208
    INVALID_FLOAT = 209
    INVALID_BCD = 210
    REGEXP_NO_MATCH = 211
    INVALID_ENUM = 212
    WIDTH_NOT_AVAILABLE = 213

    # Semantic errors.
    USER_CONSTRAINT_VIOLATION = 300
    TYPEDEF_CONSTRAINT_VIOLATION = 301
    WHERE_CLAUSE_VIOLATION = 302

    # Structural errors.
    UNION_MATCH_FAILURE = 400
    STRUCT_FIELD_ERR = 401
    ARRAY_ELEM_ERR = 402
    ARRAY_SEP_ERR = 403
    ARRAY_TERM_ERR = 404
    ARRAY_SIZE_ERR = 405
    SWITCH_NO_CASE = 406
    EXTRA_DATA_AT_EOR = 407
    PANIC_SKIPPED = 408

    # Resource-limit errors (ParseLimits budgets).
    LIMIT_EXCEEDED = 500
    RECORD_LIMIT = 501
    ARRAY_LIMIT = 502
    NEST_LIMIT = 503
    DEADLINE_EXCEEDED = 504
    ERROR_BUDGET_EXCEEDED = 505

    def is_syntactic(self) -> bool:
        return 100 <= int(self) < 300 or 400 <= int(self) < 500

    def is_semantic(self) -> bool:
        return 300 <= int(self) < 400

    def is_limit(self) -> bool:
        return int(self) >= 500


class Pstate(enum.IntFlag):
    """Parse state recorded in a pd node (paper: Normal, Partial, Panicking).

    ``OK`` means the subtree parsed without error.  ``PARTIAL`` means errors
    occurred but the parser resynchronised and continued.  ``PANIC`` means
    the parser lost track of the input and skipped to a synchronisation
    point (typically end-of-record).  ``LIMIT`` means a resource budget
    (:class:`~repro.core.limits.ParseLimits`) was exhausted somewhere in
    the subtree — the data may well be fine, but the parser refused to
    spend more on it.
    """

    OK = 0
    PARTIAL = 1
    PANIC = 2
    LIMIT = 4


@dataclass(frozen=True)
class Loc:
    """A source location: byte offsets plus record/line coordinates.

    ``offset`` and ``end`` are absolute byte offsets into the data source.
    ``record`` is the 0-based index of the record being parsed (or -1 when
    no record discipline is active).
    """

    offset: int = 0
    end: int = 0
    record: int = -1

    def __str__(self) -> str:
        if self.record >= 0:
            return f"record {self.record}, bytes {self.offset}-{self.end}"
        return f"bytes {self.offset}-{self.end}"


class Pd:
    """A parse-descriptor node.

    Mirrors the generated ``_pd`` structs from the paper: every node carries
    ``pstate``, ``nerr`` (number of errors detected in the subtree),
    ``err_code`` (code of the first detected error) and ``loc`` (location of
    that error).  Compound types attach child descriptors:

    * ``fields`` — name -> child pd for Pstruct / switched-union branches,
    * ``elts`` — list of element pds for Parray (plus ``neerr`` and
      ``first_error`` summarising element errors),
    * ``branch`` — the taken branch's pd for Punion / Popt.

    Implementation note: one Pd is allocated per parsed position, so this
    is a ``__slots__`` class with the child containers created lazily.
    """

    __slots__ = ("pstate", "nerr", "err_code", "loc", "_fields", "_elts",
                 "branch", "tag", "neerr", "first_error")

    def __init__(self, _ok=Pstate.OK, _no_err=ErrCode.NO_ERR):
        # The enum defaults ride in as argument defaults: Pd construction is
        # the single hottest allocation in parsing, and this avoids two
        # global lookups per node.
        self.pstate = _ok
        self.nerr = 0
        self.err_code = _no_err
        self.loc: Optional[Loc] = None
        self._fields: Optional[dict] = None
        self._elts: Optional[list] = None
        self.branch: Optional["Pd"] = None
        self.tag: Optional[str] = None
        # Parray summaries (paper's eventSeq_pd carries neerr / firstError).
        self.neerr = 0
        self.first_error = -1

    @property
    def fields(self) -> dict:
        if self._fields is None:
            self._fields = {}
        return self._fields

    @property
    def elts(self) -> list:
        if self._elts is None:
            self._elts = []
        return self._elts

    def __repr__(self) -> str:
        return (f"Pd(pstate={self.pstate!r}, nerr={self.nerr}, "
                f"err_code={self.err_code!r}, loc={self.loc!r}, "
                f"tag={self.tag!r})")

    @property
    def errors(self) -> bool:
        return self.nerr > 0

    def record_error(self, code: ErrCode, loc: Loc, *, panic: bool = False) -> None:
        """Record one error at this node, keeping first-error semantics."""
        if self.nerr == 0:
            self.err_code = code
            self.loc = loc
        self.nerr += 1
        if panic:
            self.pstate |= Pstate.PANIC
        else:
            self.pstate |= Pstate.PARTIAL

    def absorb(self, child: "Pd") -> None:
        """Fold a child's error summary into this node."""
        if child.nerr:
            if self.nerr == 0:
                self.err_code = child.err_code
                self.loc = child.loc
            self.nerr += child.nerr
            self.pstate |= Pstate.PARTIAL
            if child.pstate & Pstate.PANIC:
                self.pstate |= Pstate.PANIC
            if child.pstate & Pstate.LIMIT:
                self.pstate |= Pstate.LIMIT

    def summary(self) -> str:
        """One-line human-readable summary of this descriptor."""
        if not self.nerr:
            return "ok"
        where = f" at {self.loc}" if self.loc is not None else ""
        return f"{self.nerr} error(s), first {self.err_code.name}{where}"

    def iter_errors(self, path: str = "<top>"):
        """Walk the errored portion of this descriptor tree, yielding
        ``(path, err_code, count)`` triples with dotted field paths.

        Child errors are attributed to the child's path; errors a node
        recorded itself (beyond what it absorbed from children) are
        attributed to the node's own path.  Array elements collapse to a
        single ``[]`` path component so the path set stays bounded
        regardless of array sizes — this is the tally path the
        observability layer's per-field error counters are built on.

        The walk touches only errored subtrees (``nerr == 0`` nodes are
        skipped at the parent), so it costs nothing on clean data.
        """
        absorbed = 0
        if self._fields:
            for name, child in self._fields.items():
                if child is not None and child.nerr:
                    absorbed += child.nerr
                    yield from child.iter_errors(f"{path}.{name}")
        if self._elts:
            for child in self._elts:
                if child is not None and child.nerr:
                    absorbed += child.nerr
                    yield from child.iter_errors(f"{path}.[]")
        if self.branch is not None and self.branch.nerr:
            absorbed += self.branch.nerr
            name = self.tag or "<branch>"
            yield from self.branch.iter_errors(f"{path}.{name}")
        own = self.nerr - absorbed
        if own > 0 and self.err_code != ErrCode.NO_ERR:
            yield path, self.err_code, own


class ErrorTally:
    """A mergeable aggregate of parse-descriptor outcomes.

    The reduce side of the parallel engine: each worker folds its chunk's
    parse descriptors into a tally (:meth:`add`), and the parent combines
    the per-chunk tallies (:meth:`merge`).  Folding every pd of a serial
    run into one tally produces the identical result — ``merge`` is the
    homomorphic image of ``add`` — which is what lets the parallel path
    report byte-identical error totals.

    ``first_error`` is the error whose location has the smallest absolute
    byte offset, which is well-defined across chunks because windowed
    sources report absolute offsets.
    """

    __slots__ = ("records", "bad_records", "total_errors", "by_code",
                 "first_error_code", "first_error_loc")

    def __init__(self):
        self.records = 0
        self.bad_records = 0
        self.total_errors = 0
        self.by_code: dict = {}
        self.first_error_code: Optional[ErrCode] = None
        self.first_error_loc: Optional[Loc] = None

    @property
    def good_records(self) -> int:
        return self.records - self.bad_records

    def add(self, pd: "Pd") -> None:
        """Fold one record's parse descriptor into the tally."""
        self.records += 1
        if not pd.nerr:
            return
        self.bad_records += 1
        self.total_errors += pd.nerr
        name = pd.err_code.name
        self.by_code[name] = self.by_code.get(name, 0) + 1
        self._note_first(pd.err_code, pd.loc)

    def _note_first(self, code: ErrCode, loc: Optional[Loc]) -> None:
        if self.first_error_code is None:
            self.first_error_code, self.first_error_loc = code, loc
            return
        if loc is not None and (self.first_error_loc is None
                                or loc.offset < self.first_error_loc.offset):
            self.first_error_code, self.first_error_loc = code, loc

    def merge(self, other: "ErrorTally") -> "ErrorTally":
        """Combine another tally into this one (commutative on every
        field except ``first_error``, which prefers the smaller offset)."""
        self.records += other.records
        self.bad_records += other.bad_records
        self.total_errors += other.total_errors
        for name, count in other.by_code.items():
            self.by_code[name] = self.by_code.get(name, 0) + count
        if other.first_error_code is not None:
            self._note_first(other.first_error_code, other.first_error_loc)
        return self

    def summary(self) -> str:
        if not self.bad_records:
            return f"{self.records} records, all ok"
        parts = ", ".join(f"{name}: {count}" for name, count
                          in sorted(self.by_code.items(), key=lambda kv: -kv[1]))
        where = ""
        if self.first_error_loc is not None:
            where = f", first at {self.first_error_loc}"
        return (f"{self.records} records, {self.bad_records} with errors "
                f"({self.total_errors} total{where}) — {parts}")

    def __repr__(self) -> str:
        return (f"ErrorTally(records={self.records}, "
                f"bad_records={self.bad_records}, "
                f"total_errors={self.total_errors})")


class PadsError(Exception):
    """Base class for exceptions raised by the repro PADS system itself.

    Note that *data* errors never raise — they are reported through parse
    descriptors, as in the paper.  Exceptions are reserved for misuse of the
    API, malformed descriptions, and I/O failures.
    """


class DescriptionError(PadsError):
    """A PADS description is malformed (syntax or type error)."""

    def __init__(self, message: str, line: int = 0, col: int = 0):
        self.line = line
        self.col = col
        if line:
            message = f"line {line}:{col}: {message}"
        super().__init__(message)
