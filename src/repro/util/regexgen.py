"""Generate random strings matching a (simple) regular expression.

The data generator (:mod:`repro.tools.datagen`) needs to synthesise values
for regex-constrained base types such as ``Pstring_ME``.  This module
implements a small sampler over a practical regex subset:

* literals and escapes (``\\d``, ``\\w``, ``\\s``, escaped metacharacters),
* character classes ``[a-z0-9_]`` including ranges and negation,
* groups ``(...)`` (capturing and ``(?:...)``),
* alternation ``a|b``,
* quantifiers ``?``, ``*``, ``+``, ``{m}``, ``{m,n}`` (unbounded repetition
  is capped at a small limit so outputs stay short),
* ``.`` (any printable character except newline), and the anchors ``^`` /
  ``$`` (ignored: sampling is whole-string).

The sampler is validated against :func:`re.fullmatch` — ``sample`` retries
on the rare subset mismatch and raises if the pattern is outside the
supported subset.
"""

from __future__ import annotations

import random
import re
import string
from typing import List, Tuple

_PRINTABLE = string.ascii_letters + string.digits + " !#$%&()*+,-./:;<=>?@[]^_{|}~"
_MAX_REPEAT = 4


class RegexSampleError(ValueError):
    pass


class _Gen:
    def __init__(self, pattern: str, rng: random.Random):
        self.pattern = pattern
        self.rng = rng
        self.pos = 0

    def fail(self, message: str) -> RegexSampleError:
        return RegexSampleError(f"{message} at {self.pos} in {self.pattern!r}")

    def peek(self) -> str:
        return self.pattern[self.pos] if self.pos < len(self.pattern) else ""

    def next(self) -> str:
        ch = self.peek()
        self.pos += 1
        return ch

    # alternation := concat ('|' concat)*
    def alternation(self, stop: str = "") -> str:
        options: List[str] = [self.concat(stop)]
        while self.peek() == "|":
            self.next()
            options.append(self.concat(stop))
        return self.rng.choice(options)

    def concat(self, stop: str) -> str:
        parts: List[str] = []
        while self.pos < len(self.pattern):
            ch = self.peek()
            if ch == "|" or (stop and ch == stop):
                break
            parts.append(self.piece())
        return "".join(parts)

    def piece(self) -> str:
        atom_start = self.pos
        produce = self.atom()
        lo, hi = self.quantifier()
        if (lo, hi) == (1, 1):
            return produce()
        count = self.rng.randint(lo, hi)
        # Re-run the atom for each repetition so classes vary.
        out = []
        for _ in range(count):
            save = self.pos
            self.pos = atom_start
            out.append(self.atom()())
            self.pos = save
        return "".join(out)

    def quantifier(self) -> Tuple[int, int]:
        ch = self.peek()
        if ch == "?":
            self.next()
            return 0, 1
        if ch == "*":
            self.next()
            return 0, _MAX_REPEAT
        if ch == "+":
            self.next()
            return 1, _MAX_REPEAT
        if ch == "{":
            close = self.pattern.find("}", self.pos)
            if close < 0:
                raise self.fail("unterminated {…} quantifier")
            body = self.pattern[self.pos + 1:close]
            self.pos = close + 1
            if "," in body:
                lo_s, hi_s = body.split(",", 1)
                lo = int(lo_s) if lo_s else 0
                hi = int(hi_s) if hi_s else lo + _MAX_REPEAT
            else:
                lo = hi = int(body)
            return lo, hi
        return 1, 1

    def atom(self):
        ch = self.next()
        if ch == "(":
            if self.pattern.startswith("?:", self.pos):
                self.pos += 2
            elif self.peek() == "?":
                raise self.fail("unsupported group flags")
            start = self.pos
            # Capture the group body span, then sample it.
            depth = 1
            i = self.pos
            while i < len(self.pattern) and depth:
                c = self.pattern[i]
                if c == "\\":
                    i += 1
                elif c == "(":
                    depth += 1
                elif c == ")":
                    depth -= 1
                i += 1
            if depth:
                raise self.fail("unterminated group")
            body = self.pattern[start:i - 1]
            self.pos = i
            rng = self.rng
            return lambda: _Gen(body, rng).alternation()
        if ch == "[":
            chars = self.char_class()
            rng = self.rng
            return lambda: rng.choice(chars)
        if ch == "\\":
            return self.escape()
        if ch == ".":
            rng = self.rng
            return lambda: rng.choice(_PRINTABLE)
        if ch in ("^", "$"):
            return lambda: ""
        if ch in ")]}*+?{|":
            raise self.fail(f"unexpected metacharacter {ch!r}")
        return lambda: ch

    def escape(self):
        ch = self.next()
        rng = self.rng
        if ch == "d":
            return lambda: rng.choice(string.digits)
        if ch == "w":
            return lambda: rng.choice(string.ascii_letters + string.digits + "_")
        if ch == "s":
            return lambda: " "
        if ch == "D":
            return lambda: rng.choice(string.ascii_letters)
        if ch == "W":
            return lambda: rng.choice(" -/")
        if ch == "S":
            return lambda: rng.choice(string.ascii_letters + string.digits)
        if ch in ".^$*+?()[]{}|\\/-":
            return lambda: ch
        if ch == "n":
            return lambda: "\n"
        if ch == "t":
            return lambda: "\t"
        if ch == "r":
            return lambda: "\r"
        raise self.fail(f"unsupported escape \\{ch}")

    def char_class(self) -> str:
        negate = False
        if self.peek() == "^":
            negate = True
            self.next()
        chars: List[str] = []
        first = True
        while True:
            ch = self.peek()
            if ch == "":
                raise self.fail("unterminated character class")
            if ch == "]" and not first:
                self.next()
                break
            first = False
            self.next()
            if ch == "\\":
                esc = self.next()
                mapped = {"d": string.digits, "w": string.ascii_letters + string.digits + "_",
                          "s": " \t", "n": "\n", "t": "\t", "r": "\r"}.get(esc)
                if mapped is not None:
                    chars.extend(mapped)
                    continue
                ch = esc
            if self.peek() == "-" and self.pos + 1 < len(self.pattern) and self.pattern[self.pos + 1] != "]":
                self.next()
                hi = self.next()
                if hi == "\\":
                    hi = self.next()
                chars.extend(chr(c) for c in range(ord(ch), ord(hi) + 1))
            else:
                chars.append(ch)
        if negate:
            allowed = [c for c in _PRINTABLE if c not in set(chars)]
            if not allowed:
                raise self.fail("empty negated class")
            return "".join(allowed)
        if not chars:
            raise self.fail("empty character class")
        return "".join(chars)


def sample_regex(pattern: str, rng: random.Random, attempts: int = 20) -> str:
    """A random string matching ``pattern`` (validated with re.fullmatch)."""
    compiled = re.compile(pattern)
    last = ""
    for _ in range(attempts):
        gen = _Gen(pattern, rng)
        last = gen.alternation()
        if gen.pos != len(pattern):
            raise RegexSampleError(f"trailing junk in {pattern!r}")
        if compiled.fullmatch(last):
            return last
    raise RegexSampleError(
        f"could not generate a match for {pattern!r} (last attempt {last!r})")
