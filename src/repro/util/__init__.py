"""Small shared utilities (regex sampling, text helpers)."""
