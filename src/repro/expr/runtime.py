"""Helpers imported by code generated from PADS expressions.

Generated Python modules (see :mod:`repro.codegen`) compile description
expressions down to Python expressions; the few places where C semantics
and Python semantics differ are routed through these helpers so that the
interpreter (:mod:`repro.expr.eval`) and generated code always agree.
"""

from __future__ import annotations

from typing import Any

from .eval import BUILTINS, member


def cdiv(a: Any, b: Any) -> Any:
    """C-style division: truncates toward zero on integers."""
    if isinstance(a, int) and isinstance(b, int):
        q = abs(a) // abs(b)
        return q if (a >= 0) == (b >= 0) else -q
    return a / b


def cmod(a: Any, b: Any) -> Any:
    """C-style remainder: sign follows the dividend."""
    if isinstance(a, int) and isinstance(b, int):
        return a - cdiv(a, b) * b
    return a % b


# Re-exported so generated modules have a single import site.
getmember = member
builtins_table = BUILTINS
