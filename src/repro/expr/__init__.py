"""C-like expression language used inside PADS descriptions.

PADS constraints, ``Pwhere`` clauses, switched-union selectors, array
termination predicates and helper functions (like ``chkVersion`` in the
paper's Figure 4) are written in a C-like expression language.  This
package provides its AST (shared with the DSL parser), a direct
interpreter used by the combinator runtime, and a compiler to Python
expressions used by the code generator.
"""

from .ast import (
    Binary,
    Block,
    BoolLit,
    Call,
    CharLit,
    ExprStmt,
    FloatLit,
    Forall,
    ForStmt,
    FuncDef,
    If,
    Index,
    IntLit,
    Member,
    Name,
    Assign,
    Return,
    StrLit,
    Ternary,
    Unary,
    VarDecl,
    While,
)
from .eval import EvalError, Env, eval_expr, call_function
from .pycompile import compile_expr, compile_function

__all__ = [
    "Binary", "Block", "BoolLit", "Call", "CharLit", "ExprStmt", "FloatLit",
    "Forall", "ForStmt", "FuncDef", "If", "Index", "IntLit", "Member",
    "Name", "Assign", "Return", "StrLit", "Ternary", "Unary", "VarDecl",
    "While", "EvalError", "Env", "eval_expr", "call_function",
    "compile_expr", "compile_function",
]
