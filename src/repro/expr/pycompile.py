"""Compile embedded-language ASTs to Python source.

The PADS compiler in the paper inlines constraint checks into the generated
C parser.  Our code generator does the same for Python: every constraint,
``Pwhere`` clause and helper function is translated to Python source by
this module and embedded in the generated parser module.

The translation must agree with the interpreter in :mod:`repro.expr.eval`;
``tests/test_expr.py`` cross-checks the two on randomly generated
expressions.
"""

from __future__ import annotations

from typing import Callable, Optional

from . import ast as E

Resolver = Callable[[str], str]

_BINOP = {
    "+": "+", "-": "-", "*": "*",
    "&": "&", "|": "|", "^": "^", "<<": "<<", ">>": ">>",
    "==": "==", "!=": "!=", "<": "<", "<=": "<=", ">": ">", ">=": ">=",
    "&&": "and", "||": "or",
}


def _default_resolver(name: str) -> str:
    return name


def compile_expr(expr: E.Expr, resolve: Optional[Resolver] = None) -> str:
    """Render ``expr`` as a Python expression string.

    ``resolve`` maps free identifiers to Python expressions (the code
    generator uses it to route field names to local variables and enum
    literals to constants).
    """
    r = resolve or _default_resolver

    def go(e: E.Expr) -> str:
        if isinstance(e, E.IntLit):
            return repr(e.value)
        if isinstance(e, E.FloatLit):
            return repr(e.value)
        if isinstance(e, (E.StrLit, E.CharLit)):
            return repr(e.value)
        if isinstance(e, E.BoolLit):
            return "True" if e.value else "False"
        if isinstance(e, E.Name):
            return r(e.ident)
        if isinstance(e, E.Unary):
            op = {"!": "not ", "-": "-", "+": "+", "~": "~"}[e.op]
            return f"({op}{go(e.operand)})"
        if isinstance(e, E.Binary):
            if e.op == "/":
                return f"_cdiv({go(e.left)}, {go(e.right)})"
            if e.op == "%":
                return f"_cmod({go(e.left)}, {go(e.right)})"
            if e.op in ("&&", "||"):
                return f"(bool({go(e.left)}) {_BINOP[e.op]} bool({go(e.right)}))"
            return f"({go(e.left)} {_BINOP[e.op]} {go(e.right)})"
        if isinstance(e, E.Ternary):
            return f"({go(e.then)} if {go(e.cond)} else {go(e.other)})"
        if isinstance(e, E.Member):
            # `length` needs the helper (it means len() on arrays); other
            # members compile to direct attribute access on Rec/UnionVal.
            if e.name == "length":
                return f"_member({go(e.obj)}, {e.name!r})"
            return f"{go(e.obj)}.{e.name}"
        if isinstance(e, E.Index):
            return f"{go(e.obj)}[{go(e.index)}]"
        if isinstance(e, E.Call):
            args = ", ".join(go(a) for a in e.args)
            return f"{r(e.func)}({args})"
        if isinstance(e, E.Forall):
            shadow = _shadowing(r, e.var)
            body = compile_expr(e.body, shadow)
            return (f"all({body} for {e.var} in "
                    f"range(int({go(e.lo)}), int({go(e.hi)}) + 1))")
        if isinstance(e, E.Exists):
            shadow = _shadowing(r, e.var)
            body = compile_expr(e.body, shadow)
            return (f"any({body} for {e.var} in "
                    f"range(int({go(e.lo)}), int({go(e.hi)}) + 1))")
        raise TypeError(f"cannot compile {type(e).__name__}")

    return go(expr)


def _shadowing(resolve: Resolver, var: str) -> Resolver:
    def inner(name: str) -> str:
        if name == var:
            return name
        return resolve(name)
    return inner


def compile_function(fn: E.FuncDef, resolve: Optional[Resolver] = None,
                     name_prefix: str = "") -> str:
    """Render a user helper function as a Python ``def``.

    Free names inside the body that are neither parameters nor locals are
    resolved through ``resolve`` (enum literals, other helper functions).
    """
    bound = {p for _, p in fn.params}
    outer = resolve or _default_resolver

    def r(name: str) -> str:
        if name in bound:
            return name
        return outer(name)

    lines = [f"def {name_prefix}{fn.name}({', '.join(p for _, p in fn.params)}):"]
    body = _compile_block(fn.body, r, bound, indent=1)
    if not body:
        body = ["    return None"]
    lines.extend(body)
    lines.append("    return None")
    return "\n".join(lines)


def _compile_block(block: E.Block, r: Resolver, bound: set, indent: int) -> list:
    out: list = []
    for stmt in block.stmts:
        out.extend(_compile_stmt(stmt, r, bound, indent))
    return out


def _compile_stmt(stmt: E.Stmt, r: Resolver, bound: set, indent: int) -> list:
    pad = "    " * indent
    if isinstance(stmt, E.Block):
        return _compile_block(stmt, r, set(bound), indent)
    if isinstance(stmt, E.VarDecl):
        bound.add(stmt.name)
        init = compile_expr(stmt.init, r) if stmt.init is not None else "0"
        return [f"{pad}{stmt.name} = {init}"]
    if isinstance(stmt, E.Assign):
        value = compile_expr(stmt.value, r)
        if isinstance(stmt.target, E.Name):
            bound.add(stmt.target.ident)
            target = stmt.target.ident
        elif isinstance(stmt.target, E.Index):
            target = f"{compile_expr(stmt.target.obj, r)}[{compile_expr(stmt.target.index, r)}]"
        else:
            raise TypeError("unsupported assignment target in generated code")
        op = stmt.op if stmt.op != "=" else "="
        if op in ("/=", "%="):
            helper = "_cdiv" if op == "/=" else "_cmod"
            return [f"{pad}{target} = {helper}({target}, {value})"]
        return [f"{pad}{target} {op} {value}"]
    if isinstance(stmt, E.If):
        out = [f"{pad}if {compile_expr(stmt.cond, r)}:"]
        out.extend(_compile_stmt(stmt.then, r, set(bound), indent + 1) or [f"{pad}    pass"])
        if stmt.other is not None:
            out.append(f"{pad}else:")
            out.extend(_compile_stmt(stmt.other, r, set(bound), indent + 1) or [f"{pad}    pass"])
        return out
    if isinstance(stmt, E.While):
        out = [f"{pad}while {compile_expr(stmt.cond, r)}:"]
        out.extend(_compile_stmt(stmt.body, r, set(bound), indent + 1) or [f"{pad}    pass"])
        return out
    if isinstance(stmt, E.ForStmt):
        out = []
        inner_bound = set(bound)
        if stmt.init is not None:
            out.extend(_compile_stmt(stmt.init, r, inner_bound, indent))
        cond = compile_expr(stmt.cond, r) if stmt.cond is not None else "True"
        out.append(f"{pad}while {cond}:")
        body = _compile_stmt(stmt.body, r, inner_bound, indent + 1) or [f"{pad}    pass"]
        out.extend(body)
        if stmt.step is not None:
            out.extend(_compile_stmt(stmt.step, r, inner_bound, indent + 1))
        return out
    if isinstance(stmt, E.Return):
        value = compile_expr(stmt.value, r) if stmt.value is not None else "None"
        return [f"{pad}return {value}"]
    if isinstance(stmt, E.ExprStmt):
        return [f"{pad}{compile_expr(stmt.expr, r)}"]
    raise TypeError(f"cannot compile statement {type(stmt).__name__}")
