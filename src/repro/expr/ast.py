"""AST for the C-like expression language embedded in PADS descriptions.

Expressions appear in field constraints (``version : chkVersion(version,
meth)``), typedef predicates, ``Pwhere`` clauses, array termination
conditions, switched-union selectors, and type parameters.  Statements
appear only in user-defined helper functions such as ``chkVersion``.

Nodes carry ``line``/``col`` so later phases (typechecker, evaluator) can
produce located diagnostics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple


@dataclass
class Node:
    line: int = field(default=0, kw_only=True)
    col: int = field(default=0, kw_only=True)


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------

class Expr(Node):
    pass


@dataclass
class IntLit(Expr):
    value: int


@dataclass
class FloatLit(Expr):
    value: float


@dataclass
class StrLit(Expr):
    value: str


@dataclass
class CharLit(Expr):
    """A character literal; the value is a one-character string."""
    value: str


@dataclass
class BoolLit(Expr):
    value: bool


@dataclass
class Name(Expr):
    ident: str


@dataclass
class Unary(Expr):
    op: str  # '-', '!', '~', '+'
    operand: Expr


@dataclass
class Binary(Expr):
    op: str  # '||' '&&' '|' '^' '&' '==' '!=' '<' '<=' '>' '>=' '<<' '>>' '+' '-' '*' '/' '%'
    left: Expr
    right: Expr


@dataclass
class Ternary(Expr):
    cond: Expr
    then: Expr
    other: Expr


@dataclass
class Call(Expr):
    func: str
    args: List[Expr]


@dataclass
class Member(Expr):
    obj: Expr
    name: str


@dataclass
class Index(Expr):
    obj: Expr
    index: Expr


@dataclass
class Forall(Expr):
    """``Pforall (i Pin [lo..hi] : body)`` — universally quantified range.

    The paper's Figure 5 uses this to require Sirius event timestamps to be
    sorted.  The bounds are inclusive, matching the ``[0..length-2]``
    notation.
    """
    var: str
    lo: Expr
    hi: Expr
    body: Expr


@dataclass
class Exists(Expr):
    """``Pexists (i Pin [lo..hi] : body)`` — existential counterpart."""
    var: str
    lo: Expr
    hi: Expr
    body: Expr


# ---------------------------------------------------------------------------
# Statements (bodies of user helper functions)
# ---------------------------------------------------------------------------

class Stmt(Node):
    pass


@dataclass
class Block(Stmt):
    stmts: List[Stmt]


@dataclass
class VarDecl(Stmt):
    type_name: str
    name: str
    init: Optional[Expr]


@dataclass
class Assign(Stmt):
    target: Expr  # Name, Member or Index
    op: str  # '=', '+=', '-=', '*=', '/=', '%='
    value: Expr


@dataclass
class If(Stmt):
    cond: Expr
    then: Stmt
    other: Optional[Stmt]


@dataclass
class While(Stmt):
    cond: Expr
    body: Stmt


@dataclass
class ForStmt(Stmt):
    init: Optional[Stmt]
    cond: Optional[Expr]
    step: Optional[Stmt]
    body: Stmt


@dataclass
class Return(Stmt):
    value: Optional[Expr]


@dataclass
class ExprStmt(Stmt):
    expr: Expr


@dataclass
class FuncDef(Node):
    """A user-defined helper function, e.g. ``chkVersion`` in Figure 4."""
    ret_type: str
    name: str
    params: List[Tuple[str, str]]  # (type name, param name)
    body: Block


def free_names(expr: Expr, bound: frozenset = frozenset()) -> set:
    """The free variable names of an expression.

    Used by the typechecker to verify that constraints only mention fields
    already in scope, and by codegen to decide what to pass into compiled
    predicates.
    """
    out: set = set()

    def walk(e: Expr, b: frozenset) -> None:
        if isinstance(e, Name):
            if e.ident not in b:
                out.add(e.ident)
        elif isinstance(e, Unary):
            walk(e.operand, b)
        elif isinstance(e, Binary):
            walk(e.left, b)
            walk(e.right, b)
        elif isinstance(e, Ternary):
            walk(e.cond, b)
            walk(e.then, b)
            walk(e.other, b)
        elif isinstance(e, Call):
            for a in e.args:
                walk(a, b)
        elif isinstance(e, Member):
            walk(e.obj, b)
        elif isinstance(e, Index):
            walk(e.obj, b)
            walk(e.index, b)
        elif isinstance(e, (Forall, Exists)):
            walk(e.lo, b)
            walk(e.hi, b)
            walk(e.body, b | {e.var})

    walk(expr, bound)
    return out
