"""Direct interpreter for the embedded expression language.

The combinator runtime evaluates constraints with this interpreter; the
code generator instead compiles the same ASTs to Python (see
:mod:`repro.expr.pycompile`).  Both must agree — a property test in the
test suite checks them against each other on random expressions.

Semantics follow C where it matters for descriptions:

* ``&&`` / ``||`` short-circuit and yield booleans,
* integer division truncates toward zero,
* comparisons between a char literal and a one-character string compare
  equal exactly when the characters match (chars *are* one-character
  strings here),
* enum values evaluate to their literal name, so ``m == LINK`` compares
  strings.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

from . import ast as E


class EvalError(Exception):
    """Raised when an expression cannot be evaluated (bad name, bad type)."""


class _ReturnSignal(Exception):
    def __init__(self, value: Any):
        self.value = value


class Env:
    """Lexically chained environment.

    ``vars`` holds local bindings; ``funcs`` user function definitions
    (shared across the chain); ``builtins`` native Python callables.
    """

    def __init__(self, vars: Optional[Dict[str, Any]] = None,
                 parent: Optional["Env"] = None,
                 funcs: Optional[Dict[str, E.FuncDef]] = None,
                 builtins: Optional[Dict[str, Callable]] = None):
        self.vars = vars if vars is not None else {}
        self.parent = parent
        self.funcs = funcs if funcs is not None else (parent.funcs if parent else {})
        self.builtins = builtins if builtins is not None else (parent.builtins if parent else dict(BUILTINS))

    def child(self, vars: Optional[Dict[str, Any]] = None) -> "Env":
        return Env(vars or {}, parent=self)

    def lookup(self, name: str) -> Any:
        env: Optional[Env] = self
        while env is not None:
            if name in env.vars:
                return env.vars[name]
            env = env.parent
        raise EvalError(f"unbound name {name!r}")

    def bound(self, name: str) -> bool:
        env: Optional[Env] = self
        while env is not None:
            if name in env.vars:
                return True
            env = env.parent
        return False

    def assign(self, name: str, value: Any) -> None:
        env: Optional[Env] = self
        while env is not None:
            if name in env.vars:
                env.vars[name] = value
                return
            env = env.parent
        self.vars[name] = value


def _c_div(a: Any, b: Any) -> Any:
    if isinstance(a, int) and isinstance(b, int):
        if b == 0:
            raise EvalError("division by zero")
        q = abs(a) // abs(b)
        return q if (a >= 0) == (b >= 0) else -q
    return a / b


def _c_mod(a: Any, b: Any) -> Any:
    if isinstance(a, int) and isinstance(b, int):
        if b == 0:
            raise EvalError("modulo by zero")
        return a - _c_div(a, b) * b
    return a % b


_ARITH = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": _c_div,
    "%": _c_mod,
    "&": lambda a, b: a & b,
    "|": lambda a, b: a | b,
    "^": lambda a, b: a ^ b,
    "<<": lambda a, b: a << b,
    ">>": lambda a, b: a >> b,
}

_CMP = {
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


def eval_expr(expr: E.Expr, env: Env) -> Any:
    """Evaluate ``expr`` in ``env``; raises :class:`EvalError` on failure."""
    if isinstance(expr, (E.IntLit, E.FloatLit, E.StrLit, E.CharLit, E.BoolLit)):
        return expr.value
    if isinstance(expr, E.Name):
        return env.lookup(expr.ident)
    if isinstance(expr, E.Unary):
        v = eval_expr(expr.operand, env)
        if expr.op == "-":
            return -v
        if expr.op == "+":
            return +v
        if expr.op == "!":
            return not v
        if expr.op == "~":
            return ~v
        raise EvalError(f"unknown unary operator {expr.op!r}")
    if isinstance(expr, E.Binary):
        if expr.op == "&&":
            return bool(eval_expr(expr.left, env)) and bool(eval_expr(expr.right, env))
        if expr.op == "||":
            return bool(eval_expr(expr.left, env)) or bool(eval_expr(expr.right, env))
        a = eval_expr(expr.left, env)
        b = eval_expr(expr.right, env)
        if expr.op in _CMP:
            try:
                return _CMP[expr.op](a, b)
            except TypeError as exc:
                raise EvalError(f"bad comparison {type(a).__name__} {expr.op} {type(b).__name__}") from exc
        if expr.op in _ARITH:
            try:
                return _ARITH[expr.op](a, b)
            except TypeError as exc:
                raise EvalError(f"bad operands for {expr.op!r}") from exc
        raise EvalError(f"unknown operator {expr.op!r}")
    if isinstance(expr, E.Ternary):
        return eval_expr(expr.then if eval_expr(expr.cond, env) else expr.other, env)
    if isinstance(expr, E.Member):
        obj = eval_expr(expr.obj, env)
        return member(obj, expr.name)
    if isinstance(expr, E.Index):
        obj = eval_expr(expr.obj, env)
        idx = eval_expr(expr.index, env)
        try:
            return obj[idx]
        except (IndexError, KeyError, TypeError) as exc:
            raise EvalError(f"bad index {idx!r}") from exc
    if isinstance(expr, E.Call):
        args = [eval_expr(a, env) for a in expr.args]
        if expr.func in env.funcs:
            return call_function(env.funcs[expr.func], args, env)
        if expr.func in env.builtins:
            try:
                return env.builtins[expr.func](*args)
            except EvalError:
                raise
            except Exception as exc:
                raise EvalError(f"builtin {expr.func} failed: {exc}") from exc
        raise EvalError(f"unknown function {expr.func!r}")
    if isinstance(expr, E.Forall):
        lo = eval_expr(expr.lo, env)
        hi = eval_expr(expr.hi, env)
        for i in range(int(lo), int(hi) + 1):
            if not eval_expr(expr.body, env.child({expr.var: i})):
                return False
        return True
    if isinstance(expr, E.Exists):
        lo = eval_expr(expr.lo, env)
        hi = eval_expr(expr.hi, env)
        for i in range(int(lo), int(hi) + 1):
            if eval_expr(expr.body, env.child({expr.var: i})):
                return True
        return False
    raise EvalError(f"cannot evaluate {type(expr).__name__}")


def member(obj: Any, name: str) -> Any:
    """Field access over runtime representations.

    Works for struct reps (attribute access), union reps (``tag``/value
    projection), arrays (``length``/``elts``) and plain dicts.
    """
    if isinstance(obj, dict):
        if name in obj:
            return obj[name]
        raise EvalError(f"no field {name!r}")
    if isinstance(obj, (list, tuple)) and name == "length":
        return len(obj)
    try:
        return getattr(obj, name)
    except AttributeError as exc:
        raise EvalError(f"no field {name!r} on {type(obj).__name__}") from exc


def call_function(fn: E.FuncDef, args: list, env: Env) -> Any:
    """Invoke a user helper function with C-like call-by-value semantics."""
    if len(args) != len(fn.params):
        raise EvalError(f"{fn.name} expects {len(fn.params)} argument(s), got {len(args)}")
    # C-like scoping: the body sees its parameters and globals (the root of
    # the caller's environment chain — enum literals, functions), but not
    # the caller's locals.
    root = env
    while root.parent is not None:
        root = root.parent
    frame = Env({name: val for (_, name), val in zip(fn.params, args)},
                parent=root)
    try:
        exec_stmt(fn.body, frame)
    except _ReturnSignal as ret:
        return ret.value
    return None


def exec_stmt(stmt: E.Stmt, env: Env) -> None:
    if isinstance(stmt, E.Block):
        inner = env.child()
        for s in stmt.stmts:
            exec_stmt(s, inner)
        return
    if isinstance(stmt, E.VarDecl):
        env.vars[stmt.name] = eval_expr(stmt.init, env) if stmt.init is not None else 0
        return
    if isinstance(stmt, E.Assign):
        value = eval_expr(stmt.value, env)
        if stmt.op != "=":
            current = eval_expr(stmt.target, env)
            value = _ARITH[stmt.op[:-1]](current, value)
        target = stmt.target
        if isinstance(target, E.Name):
            env.assign(target.ident, value)
        elif isinstance(target, E.Index):
            obj = eval_expr(target.obj, env)
            obj[eval_expr(target.index, env)] = value
        elif isinstance(target, E.Member):
            obj = eval_expr(target.obj, env)
            if isinstance(obj, dict):
                obj[target.name] = value
            else:
                setattr(obj, target.name, value)
        else:
            raise EvalError("invalid assignment target")
        return
    if isinstance(stmt, E.If):
        if eval_expr(stmt.cond, env):
            exec_stmt(stmt.then, env)
        elif stmt.other is not None:
            exec_stmt(stmt.other, env)
        return
    if isinstance(stmt, E.While):
        guard = 0
        while eval_expr(stmt.cond, env):
            exec_stmt(stmt.body, env)
            guard += 1
            if guard > 10_000_000:
                raise EvalError("while loop exceeded iteration bound")
        return
    if isinstance(stmt, E.ForStmt):
        inner = env.child()
        if stmt.init is not None:
            exec_stmt(stmt.init, inner)
        guard = 0
        while stmt.cond is None or eval_expr(stmt.cond, inner):
            exec_stmt(stmt.body, inner)
            if stmt.step is not None:
                exec_stmt(stmt.step, inner)
            guard += 1
            if guard > 10_000_000:
                raise EvalError("for loop exceeded iteration bound")
        return
    if isinstance(stmt, E.Return):
        raise _ReturnSignal(eval_expr(stmt.value, env) if stmt.value is not None else None)
    if isinstance(stmt, E.ExprStmt):
        eval_expr(stmt.expr, env)
        return
    raise EvalError(f"cannot execute {type(stmt).__name__}")


def _strlen(s: Any) -> int:
    return len(s)


def _substr(s: str, start: int, length: int) -> str:
    return s[start:start + length]


BUILTINS: Dict[str, Callable] = {
    "strlen": _strlen,
    "substr": _substr,
    "abs": abs,
    "min": min,
    "max": max,
    "length": len,
    "tolower": lambda s: s.lower(),
    "toupper": lambda s: s.upper(),
    "startswith": lambda s, p: s.startswith(p),
    "endswith": lambda s, p: s.endswith(p),
    "contains": lambda s, p: p in s,
}
