      * Altair-style billing record copybook (representative reconstruction
      * of the Cobol feeds described in Figure 1 of the PADS paper).
       01  BILLING-RECORD.
           05  ACCOUNT-ID          PIC 9(10).
           05  CUSTOMER-NAME       PIC X(20).
           05  SERVICE-CLASS       PIC X(2).
           05  BILL-AMOUNT         PIC S9(7)V99 COMP-3.
           05  MINUTES-USED        PIC 9(5)     COMP-3.
           05  CYCLE-DATE.
               10  CYCLE-YEAR      PIC 9(4).
               10  CYCLE-MONTH     PIC 9(2).
               10  CYCLE-DAY       PIC 9(2).
           05  USAGE-COUNTERS OCCURS 3 TIMES PIC 9(4) COMP.
           05  STATUS-AREA.
               10  STATUS-CODE     PIC X(1).
               10  FILLER          PIC X(3).
