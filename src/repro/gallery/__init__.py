"""Shipped PADS descriptions and the paper's sample data.

``CLF`` and ``SIRIUS`` are the paper's Figures 4 and 5; ``CLF_SAMPLE`` and
``SIRIUS_SAMPLE`` are the data from Figures 2 and 3.  ``CALL_DETAIL`` and
``NETFLOW`` cover the binary formats from Figure 1.  Loader helpers return
ready-to-use :class:`~repro.core.api.CompiledDescription` objects with the
right ambient coding and record discipline.
"""

from __future__ import annotations

import importlib.resources as _resources

from ..core.api import CompiledDescription, compile_description
from ..core.io import FixedWidthRecords, NewlineRecords, NoRecords


def _read(name: str) -> str:
    return (_resources.files(__package__) / name).read_text(encoding="utf-8")


CLF = _read("clf.pads")
SIRIUS = _read("sirius.pads")
CALL_DETAIL = _read("calldetail.pads")
NETFLOW = _read("netflow.pads")
REGULUS = _read("regulus.pads")

#: Figure 2 of the paper: "Tiny example of web server log data."
CLF_SAMPLE = (
    '207.136.97.49 - - [15/Oct/1997:18:46:51 -0700] "GET /tk/p.txt HTTP/1.0" 200 30\n'
    'tj62.aol.com - - [16/Oct/1997:14:32:22 -0700] "POST /scpt/dd@grp.org/confirm HTTP/1.0" 200 941\n'
)

#: Figure 3 of the paper: "Tiny example of Sirius provisioning data."
SIRIUS_SAMPLE = (
    "0|1005022800\n"
    "9152|9152|1|9735551212|0||9085551212|07988|no_ii152272|EDTF_6|0|APRL1|DUO|10|1000295291\n"
    "9153|9153|1|0|0|0|0||152268|LOC_6|0|FRDW1|DUO|LOC_CRTE|1001476800|LOC_OS_10|1001649601\n"
)

#: Figure 8 of the paper: the formatted CLF records (delimiter "|",
#: date format "%D:%T").
CLF_FORMATTED = (
    "207.136.97.49|-|-|10/16/97:01:46:51|GET|/tk/p.txt|1|0|200|30\n"
    "tj62.aol.com|-|-|10/16/97:21:32:22|POST|/scpt/dd@grp.org/confirm|1|0|200|941\n"
)

CALL_DETAIL_WIDTH = 24  # bytes per fixed-width call_t record


def load_clf() -> CompiledDescription:
    """The CLF description, newline records, ASCII ambient coding."""
    return compile_description(CLF, ambient="ascii",
                               discipline=NewlineRecords(), filename="clf.pads")


def load_sirius() -> CompiledDescription:
    """The Sirius description, newline records, ASCII ambient coding."""
    return compile_description(SIRIUS, ambient="ascii",
                               discipline=NewlineRecords(), filename="sirius.pads")


def load_call_detail() -> CompiledDescription:
    """The call-detail description: binary ambient, fixed-width records."""
    return compile_description(
        CALL_DETAIL, ambient="binary",
        discipline=FixedWidthRecords(CALL_DETAIL_WIDTH),
        filename="calldetail.pads")


def load_netflow() -> CompiledDescription:
    """The netflow description: binary ambient, no record structure."""
    return compile_description(NETFLOW, ambient="binary",
                               discipline=NoRecords(), filename="netflow.pads")


def load_regulus() -> CompiledDescription:
    """The Regulus IP-backbone description, newline records."""
    return compile_description(REGULUS, ambient="ascii",
                               discipline=NewlineRecords(),
                               filename="regulus.pads")


__all__ = [
    "CLF", "SIRIUS", "CALL_DETAIL", "NETFLOW", "REGULUS",
    "CLF_SAMPLE", "SIRIUS_SAMPLE", "CLF_FORMATTED", "CALL_DETAIL_WIDTH",
    "load_clf", "load_sirius", "load_call_detail", "load_netflow",
    "load_regulus",
]
