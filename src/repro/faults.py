"""Fault-injection harness: corrupt conforming data, assert never-crash.

The paper's premise is that ad hoc data is dirty — "data sources
frequently contain errors" (Section 2) — and the PADS contract is that
errors surface as parse-descriptor entries, never as crashes.  This
module turns that contract into an executable property.  Given any
description (gallery or user-written) it

1. generates conforming records with the description's own generators
   (:mod:`repro.tools.datagen`),
2. systematically corrupts them — byte garbling, truncation at every
   structural boundary, literal deletion and duplication, separator
   duplication, encoding garbage, raw binary noise — reusing the
   plan-derived mutators so corruption aims at real structure, and
3. parses every corrupted source through both engines under a
   :class:`~repro.core.limits.ParseLimits` budget, checking the
   never-crash invariants:

   * **no uncaught exception** — data errors must become pd errors;
   * **no hang** — every ``records()`` iteration must advance the
     cursor (a bounded stall allowance covers legitimate zero-width
     yields), the record count is capped, and a wall-clock deadline
     bounds the sweep;
   * **pd accounting** — ``nerr > 0`` exactly when an error code is set.

:func:`fuzz_description` sweeps one description; :func:`fuzz_gallery`
sweeps every shipped gallery format.  The ``padsc fuzz`` subcommand and
the CI smoke job are thin wrappers over these.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from time import monotonic
from typing import Iterator, List, Optional, Sequence, Tuple

from .core.errors import ErrCode
from .core.io import RecordDiscipline
from .core.limits import ParseLimits
from .tools import datagen

__all__ = [
    "FaultFailure", "FaultReport", "mutation_battery", "boundary_truncations",
    "encoding_garbage", "fuzz_description", "fuzz_gallery", "GALLERY_TARGETS",
    "kill_resume_check", "kill_resume_gallery",
]

#: Consecutive zero-advance ``records()`` iterations tolerated before the
#: run is flagged as hung.  Legitimate parses always advance past at
#: least a record terminator; a small allowance absorbs degenerate
#: zero-width records at end of input.
MAX_STALL = 8

#: Hard cap on records parsed from one corrupted source.  Corruption can
#: split records (extra terminators) but never by orders of magnitude.
MAX_RECORDS_FACTOR = 64

#: Default per-run budget: a deadline so hangs become DEADLINE_EXCEEDED
#: pd errors, and a scan cap so resync never walks unbounded garbage.
DEFAULT_LIMITS = ParseLimits(deadline=10.0, max_scan=4096)


# -- failure reporting --------------------------------------------------------


@dataclass
class FaultFailure:
    """One violated invariant: which description/engine/mutation, what
    broke, and the corrupted input that triggered it (for replay)."""

    description: str
    engine: str
    mutation: str
    kind: str  # 'exception' | 'no-progress' | 'accounting' | 'deadline'
    detail: str
    data: bytes

    def __str__(self) -> str:
        return (f"{self.description}/{self.engine}/{self.mutation}: "
                f"{self.kind}: {self.detail}")


@dataclass
class FaultReport:
    """Aggregate result of a fuzz sweep."""

    cases: int = 0    #: (source, engine) runs executed
    records: int = 0  #: records parsed across all runs
    errors: int = 0   #: pd errors observed (proof the corruption bites)
    failures: List[FaultFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def merge(self, other: "FaultReport") -> "FaultReport":
        self.cases += other.cases
        self.records += other.records
        self.errors += other.errors
        self.failures.extend(other.failures)
        return self

    def summary(self) -> str:
        head = (f"fuzz: {self.cases} runs, {self.records} records parsed, "
                f"{self.errors} pd errors, {len(self.failures)} failures")
        if not self.failures:
            return head
        return "\n".join([head] + [f"  FAIL {f}" for f in self.failures])


# -- mutation battery ---------------------------------------------------------


def encoding_garbage(record: bytes, rng: random.Random) -> bytes:
    """Splice invalid/high-bit bytes into the payload (the paper's
    "corrupted data feed" error class, aimed at the ambient coding)."""
    body, nl = ((record[:-1], record[-1:])
                if record.endswith(b"\n") else (record, b""))
    i = rng.randrange(len(body) + 1) if body else 0
    junk = bytes(rng.choice((0x00, 0x1B, 0x80, 0xC3, 0xFE, 0xFF))
                 for _ in range(rng.randint(1, 3)))
    return body[:i] + junk + body[i:] + nl


def mutation_battery(description, record_type: str) -> List[tuple]:
    """Named ``(label, mutator)`` pairs for ``record_type``.

    The generic quartet always applies; when the analyzed plan exposes
    structure (resync literals, a static width), plan-derived mutators
    are added so corruption lands exactly on the boundaries the
    error-recovery machinery keys on (mirrors
    :func:`repro.tools.datagen.plan_mutators`, but keeps labels)."""
    battery: List[tuple] = [
        ("garble-byte", datagen.garble_byte),
        ("truncate-tail", datagen.truncate_record),
        ("dup-separator", datagen.duplicate_field_separator),
        ("encoding-garbage", encoding_garbage),
    ]
    try:
        from .plan.ir import StructPlan
        decl = description.plan.decl(record_type)
    except Exception:
        return battery
    if isinstance(decl, StructPlan):
        for raw in dict.fromkeys(decl.scan_literals):
            label = raw.decode("latin-1")
            battery.append((f"drop-literal:{label}", datagen.drop_literal(raw)))
            battery.append((f"double-literal:{label}",
                            datagen.double_literal(raw)))
    if decl.width is not None:
        battery.append((f"misalign:{decl.width}",
                        datagen.misalign_fixed_width(decl.width)))
    return battery


def _literals(description, record_type: str) -> List[bytes]:
    try:
        from .plan.ir import StructPlan
        decl = description.plan.decl(record_type)
    except Exception:
        return []
    if isinstance(decl, StructPlan):
        return list(dict.fromkeys(decl.scan_literals))
    return []


def boundary_truncations(record: bytes,
                         literals: Sequence[bytes]) -> Iterator[Tuple[str, bytes]]:
    """Truncate ``record`` at every structural boundary.

    Boundaries are the start and end of every literal occurrence (where
    field parsers hand off to literal matchers), plus the record's
    edges and midpoint — the cuts most likely to strand a parser
    mid-field or mid-literal."""
    cuts = {0, 1, len(record) // 2, max(len(record) - 1, 0)}
    for raw in literals:
        at = record.find(raw)
        while at != -1:
            cuts.add(at)
            cuts.add(at + len(raw))
            at = record.find(raw, at + 1)
    for cut in sorted(c for c in cuts if 0 <= c < len(record)):
        yield f"truncate@{cut}", record[:cut]


def _fault_sources(description, record_type: str, n_records: int,
                   rng: random.Random) -> List[Tuple[str, bytes]]:
    """The corrupted-source corpus for one description."""
    records = list(datagen.generate_records(description, record_type,
                                            n_records, rng))
    clean = b"".join(records)
    sources: List[Tuple[str, bytes]] = [
        ("clean", clean),
        ("empty", b""),
        ("binary-noise", rng.randbytes(256)),
        ("all-terminators", b"\n" * 64),
    ]
    # Truncation at every structural boundary: a lone cut record, and the
    # same cut applied to the stream's final record.
    literals = _literals(description, record_type)
    body = clean[:len(clean) - len(records[-1])] if records else clean
    for label, cut in boundary_truncations(records[0] if records else b"",
                                           literals):
        sources.append((label, cut))
        sources.append((f"final-{label}", body + cut))
    # Every mutator, applied to alternating records so corrupt records sit
    # between clean neighbours (exercises resynchronisation).
    for label, mutate in mutation_battery(description, record_type):
        corrupted = b"".join(mutate(r, rng) if i % 2 == 0 else r
                             for i, r in enumerate(records))
        sources.append((label, corrupted))
    return sources


# -- the never-crash runner ---------------------------------------------------


def _never_crash(description, data: bytes, record_type: str,
                 wall_cap: float) -> Tuple[int, int, Optional[Tuple[str, str]]]:
    """Parse ``data`` record-at-a-time; return ``(records, pd_errors,
    violation)`` where ``violation`` is ``None`` or ``(kind, detail)``."""
    count = errors = stall = 0
    last_pos = -1
    cap = max(64, (data.count(b"\n") + len(data) // 8 + 2) * 2)
    cap = min(cap, MAX_RECORDS_FACTOR * max(1, data.count(b"\n") + 1))
    t0 = monotonic()
    try:
        src = description.open(bytes(data))
        for _rep, pd in description.records(src, record_type):
            count += 1
            errors += pd.nerr
            if (pd.nerr > 0) != (pd.err_code != ErrCode.NO_ERR):
                return count, errors, (
                    "accounting",
                    f"nerr={pd.nerr} but err_code={pd.err_code!r}")
            if src.pos <= last_pos:
                stall += 1
                if stall > MAX_STALL:
                    return count, errors, (
                        "no-progress", f"cursor stuck at byte {src.pos}")
            else:
                stall = 0
            last_pos = src.pos
            if count > cap:
                return count, errors, (
                    "no-progress", f"record cap {cap} exceeded")
            if monotonic() - t0 > wall_cap:
                return count, errors, (
                    "deadline", f"sweep ran past {wall_cap:.1f}s wall cap")
    except Exception as exc:  # noqa: BLE001 - the invariant under test
        return count, errors, ("exception", f"{type(exc).__name__}: {exc}")
    return count, errors, None


# -- entry points -------------------------------------------------------------


def fuzz_description(text: str, record_type: str, *,
                     name: str = "<description>",
                     ambient: str = "ascii",
                     discipline: Optional[RecordDiscipline] = None,
                     n_records: int = 12,
                     seed: int = 0,
                     limits: Optional[ParseLimits] = None,
                     engines: Sequence[str] = ("interp", "generated"),
                     wall_cap: float = 30.0) -> FaultReport:
    """Fuzz one description through both engines; never raises for data
    reasons (a description that fails to *compile* still raises — that is
    a caller error, not a data error)."""
    from .codegen import compile_generated
    from .core.api import compile_description

    limits = limits if limits is not None else DEFAULT_LIMITS
    rng = random.Random(seed)
    built = {}
    for engine in engines:
        if engine == "generated":
            built[engine] = compile_generated(
                text, ambient=ambient, discipline=discipline, limits=limits)
        else:
            built[engine] = compile_description(
                text, ambient=ambient, discipline=discipline, limits=limits)
    reference = next(iter(built.values()))
    sources = _fault_sources(reference, record_type, n_records, rng)

    report = FaultReport()
    for engine, desc in built.items():
        for label, data in sources:
            count, errors, violation = _never_crash(desc, data, record_type,
                                                    wall_cap)
            report.cases += 1
            report.records += count
            report.errors += errors
            if violation is not None:
                report.failures.append(FaultFailure(
                    name, engine, label, violation[0], violation[1], data))
    return report


def _gallery_targets() -> List[tuple]:
    from . import gallery
    from .core.io import FixedWidthRecords, NewlineRecords, NoRecords
    return [
        ("clf", gallery.CLF, "entry_t", "ascii", NewlineRecords()),
        ("sirius", gallery.SIRIUS, "entry_t", "ascii", NewlineRecords()),
        ("calldetail", gallery.CALL_DETAIL, "call_t", "binary",
         FixedWidthRecords(gallery.CALL_DETAIL_WIDTH)),
        ("regulus", gallery.REGULUS, "util_t", "ascii", NewlineRecords()),
        ("netflow", gallery.NETFLOW, "nf_packet_t", "binary", NoRecords()),
    ]


#: ``(name, text, record_type, ambient, discipline)`` per gallery format.
GALLERY_TARGETS = _gallery_targets()


def fuzz_gallery(*, n_records: int = 8, seed: int = 0,
                 limits: Optional[ParseLimits] = None,
                 only: Optional[Sequence[str]] = None) -> FaultReport:
    """Fuzz every shipped gallery description (or the named subset)."""
    report = FaultReport()
    for name, text, record_type, ambient, discipline in GALLERY_TARGETS:
        if only is not None and name not in only:
            continue
        report.merge(fuzz_description(
            text, record_type, name=name, ambient=ambient,
            discipline=discipline, n_records=n_records, seed=seed,
            limits=limits))
    return report


# -- kill-resume: the durable-run differential ---------------------------------


def _durable_child(description, path: str, record_type: str,
                   interval: int) -> None:
    """The forked victim: a checkpointed accumulate over ``path``.

    A fresh session group (``setsid``) lets the parent SIGKILL the whole
    group, so any pool workers die with the run — the same blast radius
    as an OOM kill or host reboot."""
    import os as _os
    _os.setsid()
    from .durable import accumulate_durable
    accumulate_durable(description, path, record_type, interval=interval)


def kill_resume_check(description, path: str, record_type: str, *,
                      rng: Optional[random.Random] = None,
                      interval: int = 50,
                      timeout: float = 60.0) -> Optional[str]:
    """SIGKILL a checkpointed run at an arbitrary progress point, resume
    it, and compare against an uninterrupted reference.

    Returns ``None`` on success or a failure detail string.  The kill
    lands after the first checkpoint appears plus a random delay, so
    over repeated seeds it samples arbitrary interruption points —
    including "after the run already finished", which must degrade to a
    clean full re-run (the checkpoint is gone by then).
    """
    import multiprocessing
    import os as _os
    import signal
    import time

    from .durable import CHECKPOINT_SUFFIX, INDEX_SUFFIX, accumulate_durable

    rng = rng or random.Random(0)
    ckpt = path + CHECKPOINT_SUFFIX
    for stale in (ckpt, path + INDEX_SUFFIX):
        if _os.path.exists(stale):
            _os.unlink(stale)

    # Uninterrupted reference: the same durable loop, no persistence.
    ref_acc, ref_tally = accumulate_durable(description, path, record_type,
                                            checkpoint=None)

    ctx = multiprocessing.get_context("fork")
    victim = ctx.Process(target=_durable_child,
                         args=(description, path, record_type, interval))
    victim.start()
    deadline = monotonic() + timeout
    while (not _os.path.exists(ckpt) and victim.is_alive()
           and monotonic() < deadline):
        time.sleep(0.001)
    time.sleep(rng.random() * 0.05)
    if victim.is_alive():
        try:
            _os.killpg(victim.pid, signal.SIGKILL)
        except ProcessLookupError:
            pass  # finished between the check and the kill
    victim.join(timeout)
    if victim.is_alive():
        victim.kill()
        victim.join()
        return "victim did not die within the timeout"

    acc, tally = accumulate_durable(description, path, record_type,
                                    interval=interval, resume=True)
    if _os.path.exists(ckpt):
        return "checkpoint not cleaned up after completed resume"
    if tally.records != ref_tally.records:
        return (f"resumed record count {tally.records} != "
                f"reference {ref_tally.records}")
    if (tally.bad_records, tally.total_errors, dict(tally.by_code)) != \
            (ref_tally.bad_records, ref_tally.total_errors,
             dict(ref_tally.by_code)):
        return "resumed error accounting diverges from reference"
    if acc.full_report() != ref_acc.full_report():
        return "resumed accumulator report diverges from reference"
    return None


def kill_resume_gallery(*, n_records: int = 2000, seed: int = 0,
                        only: Optional[Sequence[str]] = None) -> FaultReport:
    """The kill-resume differential over every gallery description
    (``padsc fuzz --kill-resume``).  Each format gets a conforming file,
    a SIGKILLed checkpointed run, and a resume that must reproduce the
    uninterrupted report exactly."""
    import os as _os
    import tempfile

    from .core.api import compile_description

    report = FaultReport()
    rng = random.Random(seed)
    for name, text, record_type, ambient, discipline in GALLERY_TARGETS:
        if only is not None and name not in only:
            continue
        desc = compile_description(text, ambient=ambient,
                                   discipline=discipline)
        records = list(datagen.generate_records(desc, record_type,
                                                n_records, rng))
        data = b"".join(records)
        fd, path = tempfile.mkstemp(prefix=f"kill_resume_{name}_")
        try:
            with _os.fdopen(fd, "wb") as handle:
                handle.write(data)
            detail = kill_resume_check(desc, path, record_type, rng=rng)
            report.cases += 1
            report.records += n_records
            if detail is not None:
                report.failures.append(FaultFailure(
                    name, "durable", "kill-resume", "divergence", detail,
                    data[:256]))
        finally:
            for leftover in (path, path + ".padsckpt", path + ".padsidx"):
                if _os.path.exists(leftover):
                    _os.unlink(leftover)
    return report
