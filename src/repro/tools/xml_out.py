"""Canonical XML embedding of PADS data (paper Section 5.3.2).

"One interesting aspect of the mapping is that we embed not just the
in-memory representation of PADS values, but also the parse descriptors in
cases where the data was buggy" — each node whose parse descriptor records
errors carries a ``<pd>`` child with ``pstate`` / ``nerr`` / ``errCode`` /
``loc`` (arrays additionally ``neerr`` / ``firstError``), so analysts can
explore exactly the error portions of their sources.
"""

from __future__ import annotations

from typing import List, Optional
from xml.sax.saxutils import escape

from ..core.errors import Pd
from ..core.types import (
    AppNode,
    ArrayNode,
    BaseNode,
    EnumNode,
    OptNode,
    PType,
    RecordNode,
    StructNode,
    SwitchUnionNode,
    TypedefNode,
    UnionNode,
)
from ..core.values import DateVal


def _scalar(value) -> str:
    if value is None:
        return ""
    if isinstance(value, DateVal):
        return escape(value.raw)
    if isinstance(value, float):
        return f"{value:g}"
    return escape(str(value))


def _pd_xml(pd: Pd, indent: str, array: bool) -> List[str]:
    lines = [f"{indent}<pd>",
             f"{indent}  <pstate>{pd.pstate.name or 'OK'}</pstate>",
             f"{indent}  <nerr>{pd.nerr}</nerr>",
             f"{indent}  <errCode>{pd.err_code.name}</errCode>"]
    if pd.loc is not None:
        lines.append(f"{indent}  <loc>{escape(str(pd.loc))}</loc>")
    if array:
        lines.append(f"{indent}  <neerr>{pd.neerr}</neerr>")
        lines.append(f"{indent}  <firstError>{pd.first_error}</firstError>")
    lines.append(f"{indent}</pd>")
    return lines


def _emit(node: PType, rep, pd: Optional[Pd], tag: str, indent: int,
          out: List[str]) -> None:
    pad = "  " * indent
    while isinstance(node, RecordNode):
        node = node.inner
    if isinstance(node, AppNode):
        node = node.decl_node
    if isinstance(node, TypedefNode):
        # Typedefs are transparent in the embedding, but keep their pd.
        _emit(node.base, rep, pd, tag, indent, out)
        return

    buggy = pd is not None and pd.nerr > 0

    if isinstance(node, StructNode):
        out.append(f"{pad}<{tag}>")
        for f in node.fields:
            if f.kind == "literal":
                continue
            child_pd = pd.fields.get(f.name) if pd else None
            value = getattr(rep, f.name, None)
            if f.kind == "compute":
                out.append(f"{pad}  <{f.name}>{_scalar(value)}</{f.name}>")
            else:
                _emit(f.node, value, child_pd, f.name, indent + 1, out)
        if buggy:
            out.extend(_pd_xml(pd, pad + "  ", array=False))
        out.append(f"{pad}</{tag}>")
        return

    if isinstance(node, (UnionNode, SwitchUnionNode)):
        out.append(f"{pad}<{tag}>")
        branches = node.branches if isinstance(node, UnionNode) else node.cases
        matched = False
        for br in branches:
            if br.name == rep.tag:
                _emit(br.node, rep.value, pd.branch if pd else None,
                      br.name, indent + 1, out)
                matched = True
                break
        if buggy or not matched:
            out.extend(_pd_xml(pd or Pd(), pad + "  ", array=False))
        out.append(f"{pad}</{tag}>")
        return

    if isinstance(node, OptNode):
        if rep is None:
            out.append(f"{pad}<{tag}/>")
        else:
            _emit(node.inner, rep, pd.branch if pd else None, tag, indent, out)
        return

    if isinstance(node, ArrayNode):
        out.append(f"{pad}<{tag}>")
        elts = rep or []
        for i, value in enumerate(elts):
            elt_pd = pd.elts[i] if pd and i < len(pd.elts) else None
            _emit(node.elt, value, elt_pd, "elt", indent + 1, out)
        out.append(f"{pad}  <length>{len(elts)}</length>")
        if buggy:
            out.extend(_pd_xml(pd, pad + "  ", array=True))
        out.append(f"{pad}</{tag}>")
        return

    if isinstance(node, EnumNode):
        body = _scalar(str(rep))
    else:
        body = _scalar(rep)
    if buggy:
        out.append(f"{pad}<{tag}>")
        if body:
            out.append(f"{pad}  <value>{body}</value>")
        out.extend(_pd_xml(pd, pad + "  ", array=False))
        out.append(f"{pad}</{tag}>")
    else:
        out.append(f"{pad}<{tag}>{body}</{tag}>")


def to_xml(node: PType, rep, pd: Optional[Pd] = None,
           tag: Optional[str] = None, indent: int = 0) -> str:
    """Render one parsed value as canonical XML
    (``<type>_write_xml_2io`` in the paper's Figure 6)."""
    out: List[str] = []
    _emit(node, rep, pd, tag or _default_tag(node), indent, out)
    return "\n".join(out)


def _default_tag(node: PType) -> str:
    name = node.name
    for ch in " (:)\"'/":
        name = name.replace(ch, "_")
    return name or "value"


def xml_records(description, data, record_type: str, mask=None,
                root: str = "source", jobs: int = 1, pairs=None):
    """Convert a whole source to XML, one element per record (the
    generated conversion program of Section 5.3.2).  ``jobs > 1`` parses
    through the parallel engine, order preserved.  An already-parsed
    ``(rep, pd)`` iterable may be supplied as ``pairs`` (the streaming
    entry points produce one), in which case ``data``/``jobs`` are
    ignored."""
    yield f"<{root}>"
    node = description.node(record_type)
    if pairs is not None:
        stream = pairs
    elif jobs and jobs > 1:
        from ..parallel import parallel_records
        stream = parallel_records(description, data, record_type, mask,
                                  jobs=jobs)
    else:
        stream = description.records(data, record_type, mask)
    for rep, pd in stream:
        yield to_xml(node, rep, pd, record_type, indent=1)
    yield f"</{root}>"
