"""Profile comparison: flag feeds whose statistics drifted (paper §5.2).

The Altair project receives ~4000 Cobol files a day — too many to eyeball
— so "accumulator profiles can be used to automatically determine which
profiles have high percentages of errors and which have significantly
different statistical profiles than earlier versions of the same file."

:func:`compare` diffs two accumulator trees position by position and
returns scored :class:`Drift` findings:

* **bad-rate drift** — the error fraction moved by more than a threshold,
* **distribution drift** — total-variation distance between the tracked
  value distributions exceeds a threshold (catches a field being
  "hijacked" for a new purpose, the paper's Section 1 anecdote),
* **novel / vanished values** — union tags or enum literals that appear
  in one profile only (a new missing-value representation, a retired
  state code),
* **range drift** — numeric min/max moved outside the old envelope by a
  wide margin.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from .accum import Accumulator, ScalarAccum


@dataclass
class Drift:
    path: str
    kind: str       # 'bad-rate' | 'distribution' | 'novel-values' | 'range'
    score: float    # larger = more severe, comparable within a kind
    detail: str

    def __str__(self) -> str:
        return f"[{self.kind:>13}] {self.path}: {self.detail}"


@dataclass
class DriftReport:
    findings: List[Drift] = field(default_factory=list)

    @property
    def drifted(self) -> bool:
        return bool(self.findings)

    def render(self) -> str:
        if not self.findings:
            return "no drift detected"
        ranked = sorted(self.findings, key=lambda d: -d.score)
        return "\n".join(str(d) for d in ranked)


def _distribution(scalar: ScalarAccum) -> Optional[dict]:
    if not scalar.values or scalar.good == 0:
        return None
    total = sum(scalar.values.values())
    return {k: v / total for k, v in scalar.values.items()}


def _tv_distance(p: dict, q: dict) -> float:
    keys = set(p) | set(q)
    return 0.5 * sum(abs(p.get(k, 0.0) - q.get(k, 0.0)) for k in keys)


def _compare_scalar(path: str, old: ScalarAccum, new: ScalarAccum,
                    out: List[Drift], *, bad_rate_delta: float,
                    tv_threshold: float, min_count: int,
                    category_limit: int) -> None:
    if old.total_count < min_count or new.total_count < min_count:
        return

    old_bad = old.pcnt_bad() / 100.0
    new_bad = new.pcnt_bad() / 100.0
    if abs(new_bad - old_bad) > bad_rate_delta:
        out.append(Drift(path, "bad-rate", abs(new_bad - old_bad),
                         f"bad fraction {old_bad:.1%} -> {new_bad:.1%}"))

    old_dist = _distribution(old)
    new_dist = _distribution(new)
    if old_dist is not None and new_dist is not None:
        # Distribution comparisons are only meaningful for *categorical*
        # positions (enum literals, union tags, small code sets): two
        # samples of a wide numeric field legitimately share few exact
        # values.  High-cardinality fields are covered by the bad-rate and
        # range checks instead.
        small = (len(old.values) <= category_limit
                 and len(new.values) <= category_limit
                 and len(old.values) < old.tracked_limit
                 and len(new.values) < new.tracked_limit)
        if small:
            tv = _tv_distance(old_dist, new_dist)
            if tv > tv_threshold:
                out.append(Drift(path, "distribution", tv,
                                 f"total-variation distance {tv:.2f}"))
            novel = sorted(set(new_dist) - set(old_dist))
            vanished = sorted(set(old_dist) - set(new_dist))
            # Report categorical novelty (strings/tags), not numeric churn.
            novel = [v for v in novel if isinstance(v, str)]
            vanished = [v for v in vanished if isinstance(v, str)]
            if novel or vanished:
                bits = []
                if novel:
                    bits.append("new: " + ", ".join(map(str, novel[:5])))
                if vanished:
                    bits.append("gone: " + ", ".join(map(str, vanished[:5])))
                out.append(Drift(path, "novel-values",
                                 float(len(novel) + len(vanished)),
                                 "; ".join(bits)))

    if old.kind in ("int", "float", "date") and old.good and new.good:
        old_span = (old.max - old.min) or 1
        widened = 0.0
        if new.max > old.max:
            widened = max(widened, (new.max - old.max) / old_span)
        if new.min < old.min:
            widened = max(widened, (old.min - new.min) / old_span)
        if widened > 1.0:  # range grew by more than the whole old span
            out.append(Drift(path, "range", widened,
                             f"range [{old.min}, {old.max}] -> "
                             f"[{new.min}, {new.max}]"))


def compare(old: Accumulator, new: Accumulator, *,
            bad_rate_delta: float = 0.02,
            tv_threshold: float = 0.25,
            min_count: int = 20,
            category_limit: int = 32) -> DriftReport:
    """Diff two accumulator trees built over the same description."""
    findings: List[Drift] = []

    def walk(path: str, a: Accumulator, b: Accumulator) -> None:
        _compare_scalar(path or "<top>", a.self_acc, b.self_acc, findings,
                        bad_rate_delta=bad_rate_delta,
                        tv_threshold=tv_threshold, min_count=min_count,
                        category_limit=category_limit)
        if a.lengths is not None and b.lengths is not None:
            _compare_scalar(f"{path}.length" if path else "<top>.length",
                            a.lengths, b.lengths, findings,
                            bad_rate_delta=bad_rate_delta,
                            tv_threshold=tv_threshold, min_count=min_count,
                            category_limit=category_limit)
        if a.elts is not None and b.elts is not None:
            walk(f"{path}[]", a.elts, b.elts)
        for name, child in a.children.items():
            other = b.children.get(name)
            if other is not None:
                walk(f"{path}.{name}" if path else name, child, other)

    walk("", old, new)
    return DriftReport(findings)


def profile_and_compare(description, record_type: str,
                        old_data, new_data, mask=None, **thresholds) -> DriftReport:
    """Profile two files and diff the profiles (the Altair daily check)."""
    old_acc = Accumulator(description.node(record_type))
    for rep, pd in description.records(old_data, record_type, mask):
        old_acc.add(rep, pd)
    new_acc = Accumulator(description.node(record_type))
    for rep, pd in description.records(new_data, record_type, mask):
        new_acc.add(rep, pd)
    return compare(old_acc, new_acc, **thresholds)
