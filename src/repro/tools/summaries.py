"""Small-space streaming summaries for accumulators (paper Section 9).

"We also plan to augment the statistical profiling library with functions
that use randomized and approximate techniques to create small summaries
such as histograms [...] or quantile summaries" — citing Gilbert et al.'s
histogram and quantile-maintenance work.  This module provides three such
summaries, all single-pass and bounded-memory, suitable for the
gigabytes-per-day feeds of Figure 1:

* :class:`StreamingHistogram` — a merge-based equi-depth-ish histogram in
  the style of Ben-Haim & Tom-Tov: keeps at most ``bins`` centroids,
  merging the two closest after every insertion.
* :class:`QuantileSketch` — the Greenwald-Khanna epsilon-approximate
  quantile summary: ``query(q)`` returns a value whose rank is within
  ``eps * n`` of the true q-quantile using O((1/eps) log(eps n)) space.
* :class:`ReservoirSample` — a uniform k-sample over the stream
  (Vitter's algorithm R), handy for eyeballing representative values.

``attach_summaries`` bolts all three onto an accumulator tree's numeric
scalar positions.
"""

from __future__ import annotations

import bisect
import math
import random
from typing import List, Optional, Tuple


class StreamingHistogram:
    """Bounded-bin streaming histogram (merge the closest pair).

    ``bins`` bounds memory; ``counts()`` yields (center, count) pairs and
    ``render`` draws a terminal bar chart, the shape the paper's analysts
    would eyeball for a field's distribution.
    """

    def __init__(self, bins: int = 32):
        if bins < 2:
            raise ValueError("need at least 2 bins")
        self.max_bins = bins
        self._centroids: List[Tuple[float, int]] = []  # sorted (center, count)
        self.n = 0

    def add(self, value: float) -> None:
        self.n += 1
        key = float(value)
        idx = bisect.bisect_left(self._centroids, (key, 0))
        if idx < len(self._centroids) and self._centroids[idx][0] == key:
            center, count = self._centroids[idx]
            self._centroids[idx] = (center, count + 1)
            return
        self._centroids.insert(idx, (key, 1))
        if len(self._centroids) > self.max_bins:
            self._merge_closest()

    def _merge_closest(self) -> None:
        cs = self._centroids
        gaps = [(cs[i + 1][0] - cs[i][0], i) for i in range(len(cs) - 1)]
        _, i = min(gaps)
        (c1, n1), (c2, n2) = cs[i], cs[i + 1]
        merged = ((c1 * n1 + c2 * n2) / (n1 + n2), n1 + n2)
        cs[i:i + 2] = [merged]

    def add_weighted(self, center: float, count: int) -> None:
        """Insert a pre-aggregated centroid (used when merging)."""
        self.n += count
        key = float(center)
        idx = bisect.bisect_left(self._centroids, (key, 0))
        if idx < len(self._centroids) and self._centroids[idx][0] == key:
            existing_center, existing_count = self._centroids[idx]
            self._centroids[idx] = (existing_center, existing_count + count)
            return
        self._centroids.insert(idx, (key, count))
        if len(self._centroids) > self.max_bins:
            self._merge_closest()

    def merge(self, other: "StreamingHistogram") -> "StreamingHistogram":
        """Fold another histogram in (Ben-Haim & Tom-Tov merge: re-insert
        the other side's centroids with their weights)."""
        for center, count in other._centroids:
            self.add_weighted(center, count)
        return self

    def counts(self) -> List[Tuple[float, int]]:
        return list(self._centroids)

    def cdf(self, x: float) -> float:
        """Approximate fraction of values <= x."""
        if self.n == 0:
            return 0.0
        total = 0.0
        for center, count in self._centroids:
            if center <= x:
                total += count
            else:
                break
        return total / self.n

    def render(self, width: int = 40) -> str:
        if not self._centroids:
            return "(empty histogram)"
        peak = max(count for _, count in self._centroids)
        lines = []
        for center, count in self._centroids:
            bar = "#" * max(1, round(width * count / peak))
            lines.append(f"{center:>14.2f} | {bar} {count}")
        return "\n".join(lines)


class QuantileSketch:
    """Greenwald-Khanna epsilon-approximate quantiles.

    Maintains tuples ``(value, g, delta)`` where ``g`` is the gap in
    minimum rank to the previous tuple and ``delta`` bounds the rank
    uncertainty; invariant: ``g + delta <= floor(2 * eps * n)`` after
    compression, which guarantees ``query(q)`` is within ``eps * n`` ranks
    of the true quantile.
    """

    def __init__(self, eps: float = 0.01):
        if not (0 < eps < 1):
            raise ValueError("eps must be in (0, 1)")
        self.eps = eps
        self.n = 0
        # (value, g, delta), sorted by value.
        self._tuples: List[List[float]] = []

    def add(self, value: float) -> None:
        value = float(value)
        threshold = math.floor(2 * self.eps * self.n)
        idx = bisect.bisect_left([t[0] for t in self._tuples], value)
        if idx == 0 or idx == len(self._tuples):
            delta = 0
        else:
            delta = max(0, threshold - 1)
        self._tuples.insert(idx, [value, 1, delta])
        self.n += 1
        # Compress periodically.
        if self.n % max(1, int(1.0 / (2.0 * self.eps))) == 0:
            self._compress()

    def _compress(self) -> None:
        threshold = math.floor(2 * self.eps * self.n)
        ts = self._tuples
        i = len(ts) - 2
        while i >= 1:
            if ts[i][1] + ts[i + 1][1] + ts[i + 1][2] <= threshold:
                ts[i + 1][1] += ts[i][1]
                del ts[i]
            i -= 1

    def query(self, q: float) -> Optional[float]:
        """Value at quantile ``q`` (0..1), within eps*n ranks."""
        if not self._tuples:
            return None
        q = min(1.0, max(0.0, q))
        target = q * self.n
        bound = self.eps * self.n
        rank_min = 0.0
        for value, g, delta in self._tuples:
            rank_min += g
            if rank_min + delta >= target - bound and rank_min >= target - bound:
                return value
        return self._tuples[-1][0]

    def merge(self, other: "QuantileSketch") -> "QuantileSketch":
        """Standard GK merge: interleave the tuple lists by value, bumping
        each side's rank uncertainty by the other side's bound.  The
        merged sketch answers queries within ``eps_self + eps_other`` of
        the true rank (the known bound for merging GK summaries)."""
        if other.n == 0:
            return self
        err_other = math.floor(2 * other.eps * other.n)
        err_self = math.floor(2 * self.eps * self.n)
        combined = ([[v, g, d + err_other] for v, g, d in self._tuples]
                    + [[v, g, d + err_self] for v, g, d in other._tuples])
        combined.sort(key=lambda t: t[0])
        # The extreme tuples are exact by construction.
        combined[0][2] = 0
        combined[-1][2] = 0
        self._tuples = combined
        self.n += other.n
        self._compress()
        return self

    def space(self) -> int:
        return len(self._tuples)

    def report(self, quantiles=(0.01, 0.25, 0.5, 0.75, 0.99)) -> str:
        parts = [f"p{int(q * 100):02d}: {self.query(q):g}" for q in quantiles]
        return "  ".join(parts) + f"   (n={self.n}, tuples={self.space()})"


class ReservoirSample:
    """Uniform k-sample over a stream (Vitter's algorithm R)."""

    def __init__(self, k: int = 50, rng: Optional[random.Random] = None):
        if k <= 0:
            raise ValueError("k must be positive")
        self.k = k
        self.rng = rng or random.Random(0)
        self.n = 0
        self.sample: List = []

    def add(self, value) -> None:
        self.n += 1
        if len(self.sample) < self.k:
            self.sample.append(value)
        else:
            j = self.rng.randrange(self.n)
            if j < self.k:
                self.sample[j] = value

    def merge(self, other: "ReservoirSample") -> "ReservoirSample":
        """Combine two reservoirs into an (approximately) uniform sample
        of the concatenated streams: each output slot draws from one of
        the reservoirs with probability proportional to its stream size."""
        if other.n == 0:
            return self
        if self.n == 0:
            self.sample = list(other.sample)
            self.n = other.n
            return self
        total = self.n + other.n
        mine, theirs = list(self.sample), list(other.sample)
        merged: List = []
        while len(merged) < self.k and (mine or theirs):
            take_mine = mine and (not theirs
                                  or self.rng.random() < self.n / total)
            pool = mine if take_mine else theirs
            merged.append(pool.pop(self.rng.randrange(len(pool))))
        self.sample = merged
        self.n = total
        return self


class NumericSummaries:
    """The bundle attached to a numeric accumulator position."""

    def __init__(self, bins: int = 32, eps: float = 0.01, sample_k: int = 50):
        self.histogram = StreamingHistogram(bins)
        self.quantiles = QuantileSketch(eps)
        self.sample = ReservoirSample(sample_k)

    def add(self, value: float) -> None:
        self.histogram.add(value)
        self.quantiles.add(value)
        self.sample.add(value)

    def merge(self, other: "NumericSummaries") -> "NumericSummaries":
        self.histogram.merge(other.histogram)
        self.quantiles.merge(other.quantiles)
        self.sample.merge(other.sample)
        return self

    def report(self) -> str:
        return (self.quantiles.report() + "\n" + self.histogram.render())


def attach_summaries(accumulator, bins: int = 32, eps: float = 0.01) -> None:
    """Attach :class:`NumericSummaries` to every numeric scalar position
    of an accumulator tree; subsequent ``add`` calls feed them."""
    from .accum import Accumulator, ScalarAccum

    def visit(acc: Accumulator) -> None:
        scalar = acc.self_acc
        if scalar.kind in ("int", "float", "date"):
            _instrument(scalar, bins, eps)
        if acc.lengths is not None:
            _instrument(acc.lengths, bins, eps)
        if acc.elts is not None:
            visit(acc.elts)
        for child in acc.children.values():
            visit(child)

    visit(accumulator)


def _instrument(scalar, bins: int, eps: float) -> None:
    from ..core.values import DateVal

    if getattr(scalar, "summaries", None) is not None:
        return
    scalar.summaries = NumericSummaries(bins, eps)
    original_add = scalar.add

    def add_with_summaries(value, pd=None):
        original_add(value, pd)
        if pd is None or pd.nerr == 0:
            key = value.epoch if isinstance(value, DateVal) else value
            if isinstance(key, (int, float)) and not isinstance(key, bool):
                scalar.summaries.add(key)

    scalar.add = add_with_summaries
