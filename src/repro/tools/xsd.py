"""XML Schema generation for the canonical embedding (paper Section 5.3.2).

"Given a PADS specification, the PADS compiler generates an XML Schema
describing the canonical embedding for that data source."  The paper
prints the fragment for the Sirius ``eventSeq`` type; this module
generates that shape for every declared type: a ``<name>_pd`` complex type
describing the embedded parse descriptor and a ``<name>`` complex type
describing the value (with an optional trailing ``pd`` element).

The walk runs over the plan IR (:mod:`repro.plan`): every bound runtime
node carries its plan node on ``.plan``, so the schema is derived from
the same analyzed facts (resolved base types in particular) as the
engines, not from a second traversal of runtime internals.
"""

from __future__ import annotations

from typing import List

from ..plan.ir import (
    ArrayPlan,
    BaseUse,
    ComputeItem,
    DeclPlan,
    EnumPlan,
    LitItem,
    OptUse,
    RefUse,
    StructPlan,
    SwitchPlan,
    TypedefPlan,
    UnionPlan,
    Use,
)


def _use_xsd(use: Use) -> str:
    """The XSD type name used for a child element's type-use."""
    if isinstance(use, RefUse):
        return use.name
    if isinstance(use, OptUse):
        return _use_xsd(use.inner)
    if isinstance(use, BaseUse):
        if use.static is not None:
            return use.static.xsd_type()
        return "xs:string"
    return "xs:string"  # RegexUse


def _pd_complex_type(name: str, is_array: bool) -> List[str]:
    lines = [f'<xs:complexType name="{name}_pd">',
             "  <xs:sequence>",
             '    <xs:element name="pstate" type="Pflags_t"/>',
             '    <xs:element name="nerr" type="Puint32"/>',
             '    <xs:element name="errCode" type="PerrCode_t"/>',
             '    <xs:element name="loc" type="Ploc_t"/>']
    if is_array:
        lines.append('    <xs:element name="neerr" type="Puint32"/>')
        lines.append('    <xs:element name="firstError" type="Puint32"/>')
        lines.append('    <xs:element name="elt" type="Puint32"\n'
                     '        minOccurs="0" maxOccurs="unbounded"/>')
    lines.extend(["  </xs:sequence>", "</xs:complexType>"])
    return lines


def _decl_plan(node) -> DeclPlan:
    plan = getattr(node, "plan", None)
    if not isinstance(plan, DeclPlan):
        raise TypeError(f"node {node!r} carries no plan declaration")
    return plan


def schema_for_type(name: str, node) -> str:
    """The XML Schema fragment for one declared type (paper's eventSeq
    example).  ``node`` is a bound runtime node; its ``plan`` attribute
    supplies the analyzed declaration."""
    decl = _decl_plan(node)

    lines: List[str] = []
    if isinstance(decl, ArrayPlan):
        lines.extend(_pd_complex_type(name, is_array=True))
        lines.append("")
        lines.append(f'<xs:complexType name="{name}">')
        lines.append("  <xs:sequence>")
        elt_type = _use_xsd(decl.elt)
        lines.append(f'    <xs:element name="elt" type="{elt_type}"\n'
                     '        minOccurs="0" maxOccurs="unbounded"/>')
        lines.append('    <xs:element name="length" type="Puint32"/>')
        lines.append(f'    <xs:element name="pd" type="{name}_pd"\n'
                     '        minOccurs="0" maxOccurs="1"/>')
        lines.append("  </xs:sequence>")
        lines.append("</xs:complexType>")
        return "\n".join(lines)

    lines.extend(_pd_complex_type(name, is_array=False))
    lines.append("")
    lines.append(f'<xs:complexType name="{name}">')
    if isinstance(decl, StructPlan):
        lines.append("  <xs:sequence>")
        for item in decl.items:
            if isinstance(item, LitItem):
                continue
            if isinstance(item, ComputeItem):
                lines.append(f'    <xs:element name="{item.name}" '
                             'type="xs:long"/>')
                continue
            ftype = _use_xsd(item.type)
            optional = (' minOccurs="0"'
                        if isinstance(item.type, OptUse) else "")
            lines.append(f'    <xs:element name="{item.name}" '
                         f'type="{ftype}"{optional}/>')
        lines.append(f'    <xs:element name="pd" type="{name}_pd"\n'
                     '        minOccurs="0" maxOccurs="1"/>')
        lines.append("  </xs:sequence>")
    elif isinstance(decl, (UnionPlan, SwitchPlan)):
        branches = (decl.branches if isinstance(decl, UnionPlan)
                    else decl.cases)
        lines.append("  <xs:choice>")
        for br in branches:
            btype = _use_xsd(br.type)
            lines.append(f'    <xs:element name="{br.name}" type="{btype}"/>')
        lines.append(f'    <xs:element name="pd" type="{name}_pd"/>')
        lines.append("  </xs:choice>")
    elif isinstance(decl, EnumPlan):
        lines[-1] = f'<xs:simpleType name="{name}">'
        lines.append('  <xs:restriction base="xs:string">')
        for item in decl.items:
            lines.append(f'    <xs:enumeration value="{item.name}"/>')
        lines.append("  </xs:restriction>")
        lines.append(f"</xs:simpleType>")
        return "\n".join(lines)
    elif isinstance(decl, TypedefPlan):
        lines.append("  <xs:sequence>")
        lines.append(f'    <xs:element name="value" '
                     f'type="{_use_xsd(decl.base)}"/>')
        lines.append(f'    <xs:element name="pd" type="{name}_pd"\n'
                     '        minOccurs="0" maxOccurs="1"/>')
        lines.append("  </xs:sequence>")
    else:
        lines.append("  <xs:sequence>")
        lines.append('    <xs:element name="value" type="xs:string"/>')
        lines.append("  </xs:sequence>")
    lines.append("</xs:complexType>")
    return "\n".join(lines)


def schema_for_description(description) -> str:
    """A complete XML Schema for every type in a description."""
    parts = ['<?xml version="1.0"?>',
             '<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">']
    for name in description.type_names:
        parts.append("")
        parts.append(schema_for_type(name, description.node(name)))
    parts.append("</xs:schema>")
    return "\n".join(parts)
