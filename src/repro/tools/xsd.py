"""XML Schema generation for the canonical embedding (paper Section 5.3.2).

"Given a PADS specification, the PADS compiler generates an XML Schema
describing the canonical embedding for that data source."  The paper
prints the fragment for the Sirius ``eventSeq`` type; this module
generates that shape for every declared type: a ``<name>_pd`` complex type
describing the embedded parse descriptor and a ``<name>`` complex type
describing the value (with an optional trailing ``pd`` element).
"""

from __future__ import annotations

from typing import List

from ..core.types import (
    AppNode,
    ArrayNode,
    BaseNode,
    EnumNode,
    OptNode,
    PType,
    RecordNode,
    StructNode,
    SwitchUnionNode,
    TypedefNode,
    UnionNode,
)


def _base_xsd(node: BaseNode) -> str:
    inst = node._static
    if inst is not None:
        return inst.xsd_type()
    return "xs:string"


def _element_type(node: PType, owner: str, field: str) -> str:
    """The XSD type name used for a child element."""
    while isinstance(node, RecordNode):
        node = node.inner
    if isinstance(node, AppNode):
        return node.name
    if isinstance(node, BaseNode):
        return _base_xsd(node)
    if isinstance(node, OptNode):
        return _element_type(node.inner, owner, field)
    if isinstance(node, TypedefNode):
        return node.name
    return node.name


def _pd_complex_type(name: str, is_array: bool) -> List[str]:
    lines = [f'<xs:complexType name="{name}_pd">',
             "  <xs:sequence>",
             '    <xs:element name="pstate" type="Pflags_t"/>',
             '    <xs:element name="nerr" type="Puint32"/>',
             '    <xs:element name="errCode" type="PerrCode_t"/>',
             '    <xs:element name="loc" type="Ploc_t"/>']
    if is_array:
        lines.append('    <xs:element name="neerr" type="Puint32"/>')
        lines.append('    <xs:element name="firstError" type="Puint32"/>')
        lines.append('    <xs:element name="elt" type="Puint32"\n'
                     '        minOccurs="0" maxOccurs="unbounded"/>')
    lines.extend(["  </xs:sequence>", "</xs:complexType>"])
    return lines


def schema_for_type(name: str, node: PType) -> str:
    """The XML Schema fragment for one declared type (paper's eventSeq
    example)."""
    while isinstance(node, RecordNode):
        node = node.inner

    lines: List[str] = []
    if isinstance(node, ArrayNode):
        lines.extend(_pd_complex_type(name, is_array=True))
        lines.append("")
        lines.append(f'<xs:complexType name="{name}">')
        lines.append("  <xs:sequence>")
        elt_type = _element_type(node.elt, name, "elt")
        lines.append(f'    <xs:element name="elt" type="{elt_type}"\n'
                     '        minOccurs="0" maxOccurs="unbounded"/>')
        lines.append('    <xs:element name="length" type="Puint32"/>')
        lines.append(f'    <xs:element name="pd" type="{name}_pd"\n'
                     '        minOccurs="0" maxOccurs="1"/>')
        lines.append("  </xs:sequence>")
        lines.append("</xs:complexType>")
        return "\n".join(lines)

    lines.extend(_pd_complex_type(name, is_array=False))
    lines.append("")
    lines.append(f'<xs:complexType name="{name}">')
    if isinstance(node, StructNode):
        lines.append("  <xs:sequence>")
        for f in node.fields:
            if f.kind == "literal":
                continue
            if f.kind == "compute":
                lines.append(f'    <xs:element name="{f.name}" type="xs:long"/>')
                continue
            ftype = _element_type(f.node, name, f.name)
            optional = ' minOccurs="0"' if isinstance(f.node, OptNode) else ""
            lines.append(f'    <xs:element name="{f.name}" '
                         f'type="{ftype}"{optional}/>')
        lines.append(f'    <xs:element name="pd" type="{name}_pd"\n'
                     '        minOccurs="0" maxOccurs="1"/>')
        lines.append("  </xs:sequence>")
    elif isinstance(node, (UnionNode, SwitchUnionNode)):
        branches = node.branches if isinstance(node, UnionNode) else node.cases
        lines.append("  <xs:choice>")
        for br in branches:
            btype = _element_type(br.node, name, br.name)
            lines.append(f'    <xs:element name="{br.name}" type="{btype}"/>')
        lines.append(f'    <xs:element name="pd" type="{name}_pd"/>')
        lines.append("  </xs:choice>")
    elif isinstance(node, EnumNode):
        lines[-1] = f'<xs:simpleType name="{name}">'
        lines.append('  <xs:restriction base="xs:string">')
        for item_name, _, _ in node.items:
            lines.append(f'    <xs:enumeration value="{item_name}"/>')
        lines.append("  </xs:restriction>")
        lines.append(f"</xs:simpleType>")
        return "\n".join(lines)
    elif isinstance(node, TypedefNode):
        lines.append("  <xs:sequence>")
        lines.append(f'    <xs:element name="value" '
                     f'type="{_element_type(node.base, name, "value")}"/>')
        lines.append(f'    <xs:element name="pd" type="{name}_pd"\n'
                     '        minOccurs="0" maxOccurs="1"/>')
        lines.append("  </xs:sequence>")
    else:
        lines.append("  <xs:sequence>")
        lines.append('    <xs:element name="value" type="xs:string"/>')
        lines.append("  </xs:sequence>")
    lines.append("</xs:complexType>")
    return "\n".join(lines)


def schema_for_description(description) -> str:
    """A complete XML Schema for every type in a description."""
    parts = ['<?xml version="1.0"?>',
             '<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">']
    for name in description.type_names:
        parts.append("")
        parts.append(schema_for_type(name, description.node(name)))
    parts.append("</xs:schema>")
    return "\n".join(parts)
