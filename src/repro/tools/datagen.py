"""Conforming-data generation with controlled error injection.

The paper's Section 9 ("Generated artifacts") asks for exactly this tool:
"generate random data that conforms to a given specification, or deviates
from it in specified ways, particularly when the real data is proprietary
and cannot be exposed outside of AT&T."  This reproduction depends on it:
AT&T's CLF logs, Sirius feeds and call-detail streams are proprietary, so
every experiment runs over synthetic data generated here, calibrated to
the statistics the paper reports.

Two layers:

* **generic** — :func:`generate_records` drives ``PType.generate`` for any
  description; :class:`ErrorInjector` corrupts a controlled fraction of
  records.
* **calibrated workloads** — fast, hand-rolled generators for the paper's
  sources: :func:`clf_workload` (with the '-' length errors behind the
  6.666%-bad accumulator report of Section 5.2) and
  :func:`sirius_workload` (2.2GB/11.8M-record file statistics of Section
  7: events-per-order min 1 / avg 5.5 / max 156, one timestamp-sort
  violation, 53 syntax errors — all scaled to the requested record count).
"""

from __future__ import annotations

import random
from typing import Callable, Iterator, List, Optional, Sequence

# ---------------------------------------------------------------------------
# Generic generation
# ---------------------------------------------------------------------------


def generate_records(description, record_type: str, n: int,
                     rng: Optional[random.Random] = None) -> Iterator[bytes]:
    """Yield ``n`` records of ``record_type`` in physical form.

    Uses the description's own generators, so every record parses cleanly
    under ``P_CheckAndSet`` (a property test pins this).
    """
    rng = rng or random.Random()
    for _ in range(n):
        rep = description.generate(record_type, rng)
        yield description.write(rep, record_type)


def generate_source(description, record_type: str, n: int,
                    rng: Optional[random.Random] = None,
                    injector: Optional["ErrorInjector"] = None) -> bytes:
    """A complete synthetic source: ``n`` records, optionally corrupted."""
    rng = rng or random.Random()
    chunks: List[bytes] = []
    for record in generate_records(description, record_type, n, rng):
        if injector is not None:
            record = injector.maybe_corrupt(record, rng)
        chunks.append(record)
    return b"".join(chunks)


Mutator = Callable[[bytes, random.Random], bytes]


def truncate_record(record: bytes, rng: random.Random) -> bytes:
    """Drop the tail of the record (keeps the record terminator)."""
    body, nl = (record[:-1], record[-1:]) if record.endswith(b"\n") else (record, b"")
    if len(body) < 2:
        return record
    return body[:rng.randint(1, len(body) - 1)] + nl

def garble_byte(record: bytes, rng: random.Random) -> bytes:
    """Overwrite one payload byte with junk."""
    body, nl = (record[:-1], record[-1:]) if record.endswith(b"\n") else (record, b"")
    if not body:
        return record
    i = rng.randrange(len(body))
    return body[:i] + bytes([rng.choice(b"@#$%&?")]) + body[i + 1:] + nl

def duplicate_field_separator(record: bytes, rng: random.Random) -> bytes:
    """Insert a stray separator, shifting every later field."""
    body, nl = (record[:-1], record[-1:]) if record.endswith(b"\n") else (record, b"")
    seps = [i for i, b in enumerate(body) if b in b"|, "]
    if not seps:
        return record
    i = rng.choice(seps)
    return body[:i] + body[i:i + 1] + body[i:] + nl


# -- plan-derived structural mutators ---------------------------------------
#
# The generic mutators above guess at structure (bytes that look like
# separators).  These read the analyzed plan IR instead: the struct's
# resync literal set and the static-width analysis say exactly which
# corruptions exercise the error-recovery machinery.


def drop_literal(raw: bytes) -> Mutator:
    """Remove one occurrence of a required literal (missing-separator
    errors, driving ``lit_resync``)."""
    def mutate(record: bytes, rng: random.Random) -> bytes:
        body, nl = ((record[:-1], record[-1:])
                    if record.endswith(b"\n") else (record, b""))
        hits = []
        start = body.find(raw)
        while start != -1:
            hits.append(start)
            start = body.find(raw, start + 1)
        if not hits:
            return record
        i = rng.choice(hits)
        return body[:i] + body[i + len(raw):] + nl
    return mutate


def double_literal(raw: bytes) -> Mutator:
    """Duplicate one occurrence of a literal (stray-separator errors,
    shifting every later field)."""
    def mutate(record: bytes, rng: random.Random) -> bytes:
        body, nl = ((record[:-1], record[-1:])
                    if record.endswith(b"\n") else (record, b""))
        hits = []
        start = body.find(raw)
        while start != -1:
            hits.append(start)
            start = body.find(raw, start + 1)
        if not hits:
            return record
        i = rng.choice(hits)
        return body[:i] + raw + body[i:] + nl
    return mutate


def misalign_fixed_width(width: int) -> Mutator:
    """Break a statically-sized record's width by one byte (the exact
    corruption the fixed-width slicing fast path must reject)."""
    def mutate(record: bytes, rng: random.Random) -> bytes:
        body, nl = ((record[:-1], record[-1:])
                    if record.endswith(b"\n") else (record, b""))
        if len(body) < 2:
            return record
        if rng.random() < 0.5:
            return body[:-1] + nl
        i = rng.randrange(len(body))
        return body[:i] + body[i:i + 1] + body[i:] + nl
    return mutate


def plan_mutators(description, record_type: str) -> List[Mutator]:
    """Mutators derived from the analyzed plan of ``record_type``.

    Struct resync literals yield drop/duplicate mutators; a static width
    yields a misalignment mutator.  Falls back to the generic mix when
    the plan offers no structure to aim at.
    """
    from ..plan.ir import StructPlan

    decl = description.plan.decl(record_type)
    mutators: List[Mutator] = []
    if isinstance(decl, StructPlan):
        for raw in dict.fromkeys(decl.scan_literals):
            mutators.append(drop_literal(raw))
            mutators.append(double_literal(raw))
    if decl.width is not None:
        mutators.append(misalign_fixed_width(decl.width))
    if not mutators:
        mutators = [truncate_record, garble_byte, duplicate_field_separator]
    return mutators


def plan_injector(description, record_type: str, rate: float) -> "ErrorInjector":
    """An :class:`ErrorInjector` armed with plan-derived mutators."""
    return ErrorInjector(rate, plan_mutators(description, record_type))


class ErrorInjector:
    """Corrupts a fraction of records with a chosen mix of mutators.

    The defaults model the paper's observed error classes (Figure 1):
    corrupted data feeds (garbled bytes), truncated/missing data, and
    unexpected values (stray separators).
    """

    def __init__(self, rate: float,
                 mutators: Sequence[Mutator] = (truncate_record, garble_byte,
                                                duplicate_field_separator)):
        if not (0.0 <= rate <= 1.0):
            raise ValueError("rate must be within [0, 1]")
        self.rate = rate
        self.mutators = list(mutators)
        self.injected = 0

    def maybe_corrupt(self, record: bytes, rng: random.Random) -> bytes:
        if rng.random() < self.rate:
            self.injected += 1
            return rng.choice(self.mutators)(record, rng)
        return record


# ---------------------------------------------------------------------------
# Calibrated CLF workload (paper Sections 2.1, 5.2)
# ---------------------------------------------------------------------------

_CLF_METHODS = ["GET"] * 88 + ["POST"] * 7 + ["HEAD"] * 4 + ["PUT"]
_CLF_PATHS = ["/tk/p.txt", "/index.html", "/images/logo.gif", "/cgi-bin/form",
              "/scpt/dd@grp.org/confirm", "/download/data.zip", "/news",
              "/research/papers/pads.pdf", "/favicon.ico", "/robots.txt"]
_CLF_HOSTS = ["tj62.aol.com", "www.research.att.com", "crawler.example.net",
              "proxy.bigcorp.com", "dialup-42.isp.org"]
_MONTHS = ["Jan", "Feb", "Mar", "Apr", "May", "Jun",
           "Jul", "Aug", "Sep", "Oct", "Nov", "Dec"]
# The paper's report shows a heavy-headed length distribution; these are its
# printed top values.
_CLF_COMMON_LENGTHS = [3082, 170, 43, 9372, 1425, 518, 1082, 1367, 1027, 1277]


def clf_workload(n: int, rng: Optional[random.Random] = None,
                 dash_rate: float = 0.06666) -> bytes:
    """Synthetic CLF web-server log.

    ``dash_rate`` is the fraction of records whose byte-count field holds
    '-' instead of a number — the undocumented behaviour the paper's
    accumulator run surfaced (6.666% bad, Section 5.2).
    """
    rng = rng or random.Random()
    lines: List[str] = []
    for _ in range(n):
        if rng.random() < 0.7:
            client = ".".join(str(rng.randint(1, 254)) for _ in range(4))
        else:
            client = rng.choice(_CLF_HOSTS)
        day = rng.randint(1, 28)
        month = rng.choice(_MONTHS)
        stamp = (f"{day:02d}/{month}/1997:{rng.randint(0, 23):02d}:"
                 f"{rng.randint(0, 59):02d}:{rng.randint(0, 59):02d} -0700")
        meth = rng.choice(_CLF_METHODS)
        uri = rng.choice(_CLF_PATHS)
        version = "1.1" if rng.random() < 0.2 else "1.0"
        code = rng.choices([200, 304, 404, 302, 500],
                           weights=[78, 10, 8, 3, 1])[0]
        if rng.random() < dash_rate:
            length = "-"
        elif rng.random() < 0.4:
            length = str(rng.choice(_CLF_COMMON_LENGTHS))
        else:
            length = str(rng.randint(35, 248591))
        lines.append(f'{client} - - [{stamp}] "{meth} {uri} HTTP/{version}" '
                     f"{code} {length}")
    return ("\n".join(lines) + "\n").encode("ascii")


# ---------------------------------------------------------------------------
# Calibrated Sirius workload (paper Sections 2.2 and 7)
# ---------------------------------------------------------------------------

_SIRIUS_STATES = [f"ST{i:03d}" for i in range(400)] + \
    ["LOC_CRTE", "LOC_OS_10", "EDTF_6", "LOC_6", "FRDW1", "APRL1", "DUO"]
_ORDER_TYPES = ["EDTF_6", "LOC_6", "CMB_GA", "DSL_3", "WIREL_2"]
_STREAMS = ["DUO", "UNO", "TRIO"]


def _sirius_event_count(rng: random.Random, avg: float, max_events: int) -> int:
    """Events per order: geometric-ish with the paper's min 1 / avg ~5.5,
    clamped to the paper's max of 156."""
    n = 1 + int(rng.expovariate(1.0 / (avg - 1.0)))
    return min(n, max_events)


def sirius_order_line(rng: random.Random, order_num: int, *,
                      base_time: int = 1_000_000_000,
                      avg_events: float = 5.5,
                      max_events: int = 156) -> str:
    """One provisioning-order record in the Figure 3/5 physical format."""
    def opt_pn() -> str:
        roll = rng.random()
        if roll < 0.25:
            return ""                       # missing representation 1: omitted
        if roll < 0.45:
            return "0"                      # missing representation 2: zero
        return str(rng.randint(2_000_000_000, 9_999_999_999))

    if rng.random() < 0.3:
        ramp = f"no_ii{rng.randint(100000, 999999)}"  # generated identifier
    else:
        ramp = str(rng.randint(100000, 999999))
    zip_code = "" if rng.random() < 0.2 else f"{rng.randint(0, 99999):05d}"

    header = "|".join([
        str(order_num),
        str(order_num),
        str(rng.randint(1, 3)),
        opt_pn(), opt_pn(), opt_pn(), opt_pn(),
        zip_code,
        ramp,
        rng.choice(_ORDER_TYPES),
        str(rng.randint(0, 30)),
        rng.choice(["", "APRL1", "FRDW1"]),
        rng.choice(_STREAMS),
    ])

    n_events = _sirius_event_count(rng, avg_events, max_events)
    t = base_time + rng.randint(0, 50_000_000)
    events = []
    for _ in range(n_events):
        events.append(f"{rng.choice(_SIRIUS_STATES)}|{t}")
        t += rng.randint(0, 500_000)
    return header + "|" + "|".join(events)


def sirius_workload(n_orders: int, rng: Optional[random.Random] = None, *,
                    header_time: int = 1_005_022_800,
                    sort_violations: int = 1,
                    syntax_errors: int = 53,
                    avg_events: float = 5.5,
                    max_events: int = 156) -> bytes:
    """A synthetic Sirius summary file.

    Defaults mirror the statistics of the paper's 2.2GB benchmark file
    (Section 7): one record violating the timestamp sort order and 53
    containing a syntax error.  When ``n_orders`` is small the error
    counts are clipped so errors never dominate.
    """
    rng = rng or random.Random()
    sort_violations = min(sort_violations, n_orders // 10 if n_orders < 100 else sort_violations)
    syntax_errors = min(syntax_errors, n_orders // 10 if n_orders < 530 else syntax_errors)

    lines = [f"0|{header_time}"]
    bad_sort = set(rng.sample(range(n_orders), sort_violations)) if sort_violations else set()
    remaining = sorted(set(range(n_orders)) - bad_sort)
    bad_syntax = set(rng.sample(remaining, min(syntax_errors, len(remaining)))) \
        if syntax_errors else set()

    for i in range(n_orders):
        line = sirius_order_line(rng, 9000 + i, avg_events=avg_events,
                                 max_events=max_events)
        if i in bad_sort:
            line = _swap_last_two_timestamps(line, rng)
        elif i in bad_syntax:
            line = _corrupt_sirius_line(line, rng)
        lines.append(line)
    return ("\n".join(lines) + "\n").encode("ascii")


def _swap_last_two_timestamps(line: str, rng: random.Random) -> str:
    """Force a timestamp sort-order violation in the event sequence."""
    parts = line.split("|")
    if len(parts) < 18:  # header(14) + two events(4)
        parts.extend([rng.choice(_SIRIUS_STATES), "1000000900",
                      rng.choice(_SIRIUS_STATES), "1000000100"])
        return "|".join(parts)
    parts[-1], parts[-3] = parts[-3], parts[-1]
    if parts[-1] == parts[-3]:
        parts[-1] = str(int(parts[-1]) - 7)
        parts[-1], parts[-3] = parts[-3], parts[-1]
    return "|".join(parts)


def _corrupt_sirius_line(line: str, rng: random.Random) -> str:
    """Introduce a syntax error of the kind the paper's vetter catches."""
    choice = rng.randrange(3)
    if choice == 0:
        # Non-numeric order number.
        return "X" + line
    if choice == 1:
        # Record truncated inside the header (too few fields).
        return "|".join(line.split("|")[:5])
    # Garbage in the final timestamp.
    parts = line.split("|")
    parts[-1] = "t" + parts[-1]
    return "|".join(parts)


# ---------------------------------------------------------------------------
# Binary workloads
# ---------------------------------------------------------------------------

def call_detail_workload(n: int, rng: Optional[random.Random] = None) -> bytes:
    """Fixed-width binary call-detail records (24 bytes each)."""
    rng = rng or random.Random()
    out = bytearray()
    t = 1_000_000_000
    for _ in range(n):
        out += rng.randint(2_000_000_000, 9_999_999_999).to_bytes(8, "little")
        out += rng.randint(2_000_000_000, 9_999_999_999).to_bytes(8, "little")
        out += t.to_bytes(4, "little")
        out += rng.randint(0, 7200).to_bytes(2, "little")
        out += rng.randint(0, 4).to_bytes(1, "little")
        out += rng.randint(0, 255).to_bytes(1, "little")
        t += rng.randint(0, 10)
    return bytes(out)
