"""The Galax-style data API: a lazy tree view of parsed PADS data.

Section 5.4 of the paper: PADS generates, per type, ``node_new`` and
``node_kthChild`` functions implementing a data API that presents the
source as a tree, letting the Galax XQuery engine query raw ad hoc data
"as if the data were in XML without having to convert to XML".

:class:`PNode` is the Python analogue.  Children are materialised lazily,
and — as in the paper — a node's children include its parse descriptor
(``pd``), so queries can explore the error portions of the data.
"""

from __future__ import annotations

from typing import List, Optional

from ..core.errors import Pd
from ..core.types import (
    AppNode,
    ArrayNode,
    BaseNode,
    EnumNode,
    OptNode,
    PType,
    RecordNode,
    StructNode,
    SwitchUnionNode,
    TypedefNode,
    UnionNode,
)
from ..core.values import DateVal


def _unwrap(node: PType) -> PType:
    while True:
        if isinstance(node, RecordNode):
            node = node.inner
        elif isinstance(node, AppNode):
            node = node.decl_node
        else:
            return node


class PNode:
    """A tree node over (type, rep, pd) — ``PDCI_node_t`` in Figure 6."""

    __slots__ = ("ptype", "rep", "pd", "name", "parent", "_children")

    def __init__(self, ptype: Optional[PType], rep, pd: Optional[Pd],
                 name: str, parent: Optional["PNode"] = None):
        self.ptype = ptype
        self.rep = rep
        self.pd = pd
        self.name = name
        self.parent = parent
        self._children: Optional[List[PNode]] = None

    # -- identity ---------------------------------------------------------------

    @property
    def type_name(self) -> str:
        if self.ptype is None:
            return ""
        return _unwrap(self.ptype).name

    @property
    def kind(self) -> str:
        if self.ptype is None:
            return "pd" if isinstance(self.rep, Pd) else "atomic"
        return _unwrap(self.ptype).kind

    def matches(self, label: str) -> bool:
        """A step name matches this node by field name, type name, or type
        name with the conventional ``_t`` suffix stripped (so the paper's
        ``/sirius/order`` path style works against ``order_t``-style
        declarations)."""
        if label == self.name or label == self.type_name:
            return True
        tname = self.type_name
        return tname.endswith("_t") and label == tname[:-2]

    # -- children (lazy) -----------------------------------------------------------

    @property
    def children(self) -> List["PNode"]:
        if self._children is None:
            self._children = self._build_children()
        return self._children

    def _build_children(self) -> List["PNode"]:
        out: List[PNode] = []
        node = _unwrap(self.ptype) if self.ptype is not None else None

        if node is None:
            if isinstance(self.rep, Pd):
                out.extend(self._pd_children(self.rep))
            return out

        if isinstance(node, TypedefNode):
            inner = PNode(node.base, self.rep, self.pd, self.name, self.parent)
            return inner._build_children()

        if isinstance(node, StructNode):
            for f in node.fields:
                if f.kind == "literal":
                    continue
                child_pd = self.pd.fields.get(f.name) if self.pd else None
                value = getattr(self.rep, f.name, None)
                out.append(PNode(f.node, value, child_pd, f.name, self))
        elif isinstance(node, (UnionNode, SwitchUnionNode)):
            branches = node.branches if isinstance(node, UnionNode) else node.cases
            for br in branches:
                if br.name == getattr(self.rep, "tag", None):
                    out.append(PNode(br.node, self.rep.value,
                                     self.pd.branch if self.pd else None,
                                     br.name, self))
        elif isinstance(node, OptNode):
            if self.rep is not None:
                inner = PNode(node.inner, self.rep,
                              self.pd.branch if self.pd else None,
                              self.name, self)
                return inner._build_children()
        elif isinstance(node, ArrayNode):
            elt_name = _element_label(node)
            for i, value in enumerate(self.rep or []):
                elt_pd = (self.pd.elts[i]
                          if self.pd and i < len(self.pd.elts) else None)
                out.append(PNode(node.elt, value, elt_pd, elt_name, self))

        if self.pd is not None and self.pd.nerr > 0:
            out.append(PNode(None, self.pd, None, "pd", self))
        return out

    def _pd_children(self, pd: Pd) -> List["PNode"]:
        mk = lambda name, value: PNode(None, value, None, name, self)
        out = [mk("pstate", pd.pstate.name or "OK"),
               mk("nerr", pd.nerr),
               mk("errCode", pd.err_code.name)]
        if pd.loc is not None:
            out.append(mk("loc", str(pd.loc)))
        return out

    def kth_child(self, k: int) -> Optional["PNode"]:
        """0-based child access (``node_kthChild`` in Figure 6)."""
        kids = self.children
        if 0 <= k < len(kids):
            return kids[k]
        return None

    def kth_child_named(self, name: str, k: int = 0) -> Optional["PNode"]:
        matches = [c for c in self.children if c.matches(name)]
        if 0 <= k < len(matches):
            return matches[k]
        return None

    def named(self, name: str) -> List["PNode"]:
        return [c for c in self.children if c.matches(name)]

    def descendants(self) -> List["PNode"]:
        out: List[PNode] = [self]
        for child in self.children:
            out.extend(child.descendants())
        return out

    # -- atomic value ------------------------------------------------------------------

    @property
    def is_leaf(self) -> bool:
        node = _unwrap(self.ptype) if self.ptype is not None else None
        while True:
            if isinstance(node, TypedefNode):
                node = _unwrap(node.base)
            elif isinstance(node, OptNode) and self.rep is not None:
                node = _unwrap(node.inner)
            else:
                break
        return node is None or isinstance(node, (BaseNode, EnumNode))

    def value(self):
        """Typed atomic value for leaves; text content otherwise."""
        if self.is_leaf:
            return self.rep
        return self.text()

    def text(self) -> str:
        if self.is_leaf:
            if self.rep is None:
                return ""
            if isinstance(self.rep, DateVal):
                return self.rep.raw
            return str(self.rep)
        return "".join(c.text() for c in self.children)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<PNode {self.name}:{self.type_name}>"


def _element_label(node: ArrayNode) -> str:
    """Array children take the element type's name when it has one (so the
    paper's ``/sirius/order`` style paths work), with the conventional
    ``_t`` suffix stripped; anonymous elements are labelled ``elt``."""
    elt = _unwrap(node.elt)
    name = getattr(elt, "name", "")
    if name and not name.startswith(("<", "P")):
        return name[:-2] if name.endswith("_t") else name
    return "elt"


def node_new(description, rep, pd=None, type_name: Optional[str] = None,
             name: Optional[str] = None) -> PNode:
    """Build the root of a data-API tree over a parsed value."""
    node = description.node(type_name)
    return PNode(node, rep, pd, name or (type_name or "root"))
