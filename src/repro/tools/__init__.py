"""Generated-tool suite: accumulators, formatting, XML, query, Cobol,
data generation, and the ``padsc`` command line."""
