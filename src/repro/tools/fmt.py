"""Delimited formatting of parsed data (paper Section 5.3.1, Figure 8).

The generated formatting function "takes a delimiter list as an argument.
At each field boundary, it prints the first delimiter.  At each nested
type boundary, it advances the delimiter list unless the list is
exhausted, in which case it reuses the last delimiter.  The mask argument
allows the user to suppress printing of portions of the data."

Dates are rendered through an output format (the paper's example uses
``"%D:%T"``); other scalars render naturally.  Custom per-type formatters
may be registered, mirroring "PADS allows users to provide their own
formatting functions for any type".
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from ..core.masks import Mask, MaskFlag, P_CheckAndSet
from ..core.types import (
    AppNode,
    ArrayNode,
    BaseNode,
    EnumNode,
    OptNode,
    PType,
    RecordNode,
    StructNode,
    SwitchUnionNode,
    TypedefNode,
    UnionNode,
)
from ..core.values import DateVal

Formatter = Callable[[object], str]


class FormatSpec:
    """Options threaded through a formatting walk."""

    def __init__(self, delims: Sequence[str] = ("|",),
                 date_format: Optional[str] = None,
                 mask: Optional[Mask] = None,
                 none_text: str = "",
                 custom: Optional[Dict[str, Formatter]] = None):
        self.delims = list(delims) or ["|"]
        self.date_format = date_format
        self.mask = mask or Mask(P_CheckAndSet)
        self.none_text = none_text
        self.custom = custom or {}

    def delim(self, depth: int) -> str:
        return self.delims[min(depth, len(self.delims) - 1)]


def _scalar_text(value, spec: FormatSpec) -> str:
    if value is None:
        return spec.none_text
    if isinstance(value, DateVal):
        if spec.date_format is not None:
            return value.strftime(spec.date_format)
        return value.raw
    if isinstance(value, float):
        return f"{value:g}"
    return str(value)


def _pieces(node: PType, rep, spec: FormatSpec, mask: Mask, depth: int) -> List[str]:
    """Flatten a value into formatted leaf strings at ``depth``."""
    if node.name in spec.custom:
        return [spec.custom[node.name](rep)]
    if isinstance(node, RecordNode):
        return _pieces(node.inner, rep, spec, mask, depth)
    if isinstance(node, AppNode):
        return _pieces(node.decl_node, rep, spec, mask, depth)
    if isinstance(node, TypedefNode):
        return _pieces(node.base, rep, spec, mask, depth)
    if isinstance(node, StructNode):
        out: List[str] = []
        for f in node.fields:
            if f.kind == "literal":
                continue
            fmask = mask.for_field(f.name)
            if fmask.base == MaskFlag.IGNORE:
                continue
            value = getattr(rep, f.name, None)
            if f.kind == "compute":
                out.append(_scalar_text(value, spec))
            else:
                out.append(_join(f.node, value, spec, fmask, depth + 1))
        return out
    if isinstance(node, (UnionNode, SwitchUnionNode)):
        branches = node.branches if isinstance(node, UnionNode) else node.cases
        for br in branches:
            if br.name == rep.tag:
                return _pieces(br.node, rep.value, spec,
                               mask.for_field(br.name), depth)
        return [spec.none_text]
    if isinstance(node, OptNode):
        if rep is None:
            return [spec.none_text]
        return _pieces(node.inner, rep, spec, mask, depth)
    if isinstance(node, ArrayNode):
        emask = mask.for_elements()
        return [_join(node.elt, v, spec, emask, depth + 1) for v in (rep or [])]
    if isinstance(node, EnumNode):
        return [str(rep)]
    if isinstance(node, BaseNode):
        return [_scalar_text(rep, spec)]
    return [_scalar_text(rep, spec)]


def _join(node: PType, rep, spec: FormatSpec, mask: Mask, depth: int) -> str:
    return spec.delim(depth).join(_pieces(node, rep, spec, mask, depth))


def format_value(node: PType, rep, *, delims: Sequence[str] = ("|",),
                 date_format: Optional[str] = None,
                 mask: Optional[Mask] = None,
                 none_text: str = "",
                 custom: Optional[Dict[str, Formatter]] = None) -> str:
    """Render one parsed value as a delimited line (``<type>_fmt2io``)."""
    spec = FormatSpec(delims, date_format, mask, none_text, custom)
    return spec.delim(0).join(_pieces(node, rep, spec, spec.mask, 0))


def format_records(description, data, record_type: str, *,
                   delims: Sequence[str] = ("|",),
                   date_format: Optional[str] = None,
                   mask: Optional[Mask] = None,
                   none_text: str = "",
                   custom: Optional[Dict[str, Formatter]] = None,
                   skip_errors: bool = False,
                   jobs: int = 1,
                   pairs=None):
    """The generated formatting *program* (paper: given just the record
    type and a delimiter string).  Yields one formatted line per record.

    ``jobs > 1`` parses records through the parallel engine (order
    preserved); formatting itself stays in the caller's process.  An
    already-parsed ``(rep, pd)`` iterable may be supplied as ``pairs``
    (the streaming entry points produce one), in which case ``data`` and
    ``jobs`` are ignored.
    """
    node = description.node(record_type)
    if pairs is not None:
        stream = pairs
    elif jobs and jobs > 1:
        from ..parallel import parallel_records
        stream = parallel_records(description, data, record_type, mask,
                                  jobs=jobs)
    else:
        stream = description.records(data, record_type, mask)
    for rep, pd in stream:
        if skip_errors and pd.nerr:
            continue
        yield format_value(node, rep, delims=delims, date_format=date_format,
                           mask=mask, none_text=none_text, custom=custom)
