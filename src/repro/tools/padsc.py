"""``padsc`` — the PADS command line.

Bundles the compiler and every generated tool the paper describes behind
one entry point::

    padsc compile  desc.pads -o desc_parser.py        # generate a parser module
    padsc check    desc.pads                          # parse + typecheck only
    padsc plan     desc.pads                          # analyzed plan IR
    padsc accum    desc.pads data --record entry_t    # statistical profile (5.2)
    padsc fmt      desc.pads data --record entry_t --delims '|'   # (5.3.1)
    padsc xml      desc.pads data --record entry_t    # canonical XML (5.3.2)
    padsc xsd      desc.pads                          # XML Schema (5.3.2)
    padsc query    desc.pads data 'es/entry[...]'     # XQuery subset (5.4)
    padsc gen      desc.pads --type entry_t -n 100    # synthetic data (9)
    padsc cobol    copybook.cpy                       # copybook -> PADS (5.2)
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from typing import Optional

from .. import observe
from ..core.api import compile_file
from ..core.errors import DescriptionError, PadsError
from ..core.io import discipline_from_spec
from ..core.limits import ParseLimits


def _discipline(args):
    # The shared spec parser raises PadsError (one-line exit-2
    # diagnostic) on malformed specs like fixed:abc or fixed:0 — the
    # raw int() here used to escape as a ValueError traceback.
    return discipline_from_spec(getattr(args, "records", "newline"))


def _limits(args) -> Optional[ParseLimits]:
    spec = getattr(args, "limits", None)
    return ParseLimits.parse(spec) if spec else None


def _load(args):
    if getattr(args, "base_types", None):
        from ..core.basetypes.userdef import load_base_type_files
        load_base_type_files(args.base_types)
    backend = getattr(args, "backend", None)
    d = compile_file(args.description, ambient=args.ambient,
                     discipline=_discipline(args), limits=_limits(args),
                     backend=backend)
    # The resolved choice, for --stats: the interpreter when --backend
    # was not given, else the codegen backend that actually compiled
    # (auto resolves per description through the plan's codegen verdicts).
    args._backend_used = getattr(d, "backend", "interp")
    return d


def _data_input(args, d):
    """The input for a subcommand, always streaming: stdin and ``--follow``
    inputs read through a sliding-window :class:`StreamSource` (no slurp —
    a pipe of any size parses in O(window) memory), plain files through
    ``Source.from_file``.  Either way record-at-a-time tools keep only one
    record's working set resident."""
    from ..stream import open_stream
    follow = getattr(args, "follow", None)
    window = getattr(args, "window", None)
    idle = None if follow is None or follow < 0 else follow
    if args.data == "-":
        return open_stream(sys.stdin.buffer, d.discipline, window=window,
                           follow=follow is not None, idle_timeout=idle,
                           limits=d.limits)
    if follow is not None:
        return open_stream(args.data, d.discipline, window=window,
                           follow=True, idle_timeout=idle, limits=d.limits)
    return d.open_file(args.data)


def _parallel_file(args) -> Optional[pathlib.Path]:
    """The input as a path when the subcommand should fan out to workers
    over seekable chunk planning (``--jobs N`` with a real, non-followed
    file)."""
    if getattr(args, "jobs", 1) > 1 and args.data != "-" \
            and getattr(args, "follow", None) is None:
        return pathlib.Path(args.data)
    return None


def _batch_input(args):
    """The input for the batch engine's feeder: stdin's buffer, or the
    file as a *path* (a plain str would be read as literal data)."""
    if args.data == "-":
        return sys.stdin.buffer
    return pathlib.Path(args.data)


def _pick_engine(args, d, record_type: Optional[str]) -> str:
    """Resolve ``--engine`` to the engine that will actually run.

    ``auto`` selects the batch engine exactly when the description,
    record discipline, and run shape are inside the batch subset;
    ``batch`` enforces it (ineligible -> PadsError -> exit 2);
    ``cursor`` pins the ordinary serial loop.  The resolved choice is
    recorded on ``args`` so ``--stats`` can report it.
    """
    choice = getattr(args, "engine", "auto")
    if choice == "cursor":
        if getattr(args, "jobs", 1) > 1:
            raise PadsError("--engine cursor pins the serial cursor loop "
                            "and cannot be combined with --jobs")
        args._engine_used = "cursor"
        return "cursor"
    if choice == "batch" and getattr(args, "jobs", 1) > 1:
        # Without this, --jobs wins the dispatch and the forced batch
        # engine was silently ignored — every invalid combination must
        # be a diagnostic, never a silent different run.
        raise PadsError("--engine batch runs the in-process columnar "
                        "kernels and cannot be combined with --jobs; "
                        "drop one of the two")
    from ..batch import _runtime_gate, batch_verdict
    from ..core.io import FixedWidthRecords, NewlineRecords
    if record_type is None:
        # Record counting: geometry-only eligibility (no field parsing).
        if not isinstance(d.discipline, (FixedWidthRecords, NewlineRecords)):
            eligible, reason = False, (
                f"{type(d.discipline).__name__} records have no constant "
                "pitch")
        elif getattr(d, "limits", None) is not None:
            eligible, reason = False, (
                "parse limits attached (budgets are accounted per-cursor)")
        else:
            eligible, reason = True, ""
    else:
        v = batch_verdict(d, record_type)
        eligible, reason = v.eligible, v.reason
        if eligible:
            gate = _runtime_gate(d, None)
            if gate is not None:
                eligible, reason = False, gate
    if getattr(args, "follow", None) is not None and eligible:
        eligible, reason = False, ("--follow tails an unbounded stream "
                                   "(cursor only)")
    if choice == "batch" and not eligible:
        raise PadsError(f"--engine batch: {reason}")
    args._engine_used = "batch" if eligible else "cursor"
    return args._engine_used


def _durable_opts(args) -> Optional[dict]:
    """kwargs for the ``repro.durable`` entry points when ``--checkpoint``
    or ``--resume`` was given, else None (the ordinary dispatch runs).

    Durable runs need a real, seekable file: stdin and ``--follow`` tails
    have no stable offsets to checkpoint against, and the batch engine
    has no mid-grid cursor to persist — all three are explicit exit-2
    diagnostics, never a silent non-durable run.
    """
    ckpt = getattr(args, "checkpoint", None)
    resume = getattr(args, "resume", False)
    if ckpt is None and not resume:
        return None
    from ..durable import DEFAULT_CHECKPOINT_INTERVAL
    if args.data == "-":
        raise PadsError("--checkpoint/--resume need a seekable file, "
                        "not stdin")
    if getattr(args, "follow", None) is not None:
        raise PadsError("--follow tails an unbounded stream and cannot be "
                        "checkpointed; drop one of the two")
    if getattr(args, "engine", "auto") == "batch":
        raise PadsError("--engine batch has no mid-grid cursor to "
                        "checkpoint; use --engine auto or cursor")
    if getattr(args, "header", None):
        raise PadsError("--header needs a serial prefix parse and cannot "
                        "be combined with --checkpoint/--resume")
    interval = ckpt if isinstance(ckpt, int) and ckpt > 0 \
        else DEFAULT_CHECKPOINT_INTERVAL
    window = getattr(args, "window", None)
    opts = {"interval": interval, "resume": resume,
            "jobs": getattr(args, "jobs", 1)}
    if window is not None:
        opts["engine"] = "stream"
        opts["window"] = window
    args._engine_used = "durable"
    return opts


def _stream_jobs(args) -> Optional[int]:
    """``--jobs N`` on a stdin stream: the pipelined feeder, or an explicit
    diagnostic (a non-chunkable discipline raises inside the feeder) —
    never a silent fallback to one core."""
    jobs = getattr(args, "jobs", 1)
    if jobs <= 1:
        return None
    if getattr(args, "follow", None) is not None:
        raise PadsError("--follow tails an unbounded stream and cannot be "
                        "combined with --jobs; drop one of the two")
    return jobs if args.data == "-" else None


def cmd_check(args) -> int:
    try:
        d = _load(args)
    except DescriptionError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(f"{args.description}: ok "
          f"({len(d.type_names)} types, source type {d.source_type})")
    return 0


def cmd_compile(args) -> int:
    from ..codegen import compile_generated, generate_source
    with open(args.description, "r", encoding="utf-8") as handle:
        text = handle.read()
    backend = getattr(args, "backend", None) or "source"
    if backend == "source" and not args.dump:
        source = generate_source(text, ambient=args.ambient,
                                 filename=args.description)
        label = "source backend"
    else:
        # --dump: the chosen backend's module rendering.  For the AST
        # backend that is ``ast.unparse`` of the specialized tree — a
        # debugging view (the real module is compiled from the tree,
        # never from this text).
        if backend == "ast" and not args.dump:
            raise PadsError(
                "--backend ast compiles an in-memory AST, not module "
                "source; add --dump to write the unparsed debugging view")
        gen = compile_generated(text, ambient=args.ambient,
                                filename=args.description, backend=backend)
        source = gen.dump()
        label = f"{gen.backend} backend dump"
    out = args.output or (args.description.rsplit(".", 1)[0] + "_parser.py")
    with open(out, "w", encoding="utf-8") as handle:
        handle.write(source)
    print(f"wrote {out} ({len(source.splitlines())} lines, {label})")
    return 0


def cmd_accum(args) -> int:
    from .accum import Accumulator, accumulate_records
    d = _load(args)
    durable_opts = _durable_opts(args)
    if durable_opts is not None:
        from ..durable import accumulate_durable
        acc, tally = accumulate_durable(d, args.data, args.record,
                                        tracked=args.track,
                                        summaries=args.summaries,
                                        **durable_opts)
        header_acc, count = None, tally.records
        if args.field:
            target = acc.field(args.field)
            _emit_text(target.report(args.top))
        else:
            _emit_text(acc.full_report(args.top))
        print(f"\n{count} records", file=sys.stderr)
        return 0
    engine = _pick_engine(args, d, args.record)
    path = _parallel_file(args)
    stream_jobs = _stream_jobs(args)
    if path is not None:
        acc, header_acc, tally = d.accumulate_parallel(
            path, args.record, jobs=args.jobs, tracked=args.track,
            header_type=args.header, summaries=args.summaries)
        count = tally.records
    elif stream_jobs is not None:
        if args.header:
            raise PadsError("--header needs a serial prefix parse and "
                            "cannot be combined with --jobs on stdin")
        from ..parallel import parallel_accumulate_stream
        acc, tally = parallel_accumulate_stream(
            d, sys.stdin.buffer, args.record, jobs=stream_jobs,
            tracked=args.track, summaries=args.summaries)
        header_acc, count = None, tally.records
    elif engine == "batch":
        if args.header:
            raise PadsError("--header needs a serial prefix parse; use "
                            "--engine cursor")
        acc, tally = d.accumulate_batch(_batch_input(args), args.record,
                                        tracked=args.track,
                                        summaries=args.summaries)
        header_acc, count = None, tally.records
    elif args.summaries:
        # Attach streaming histograms/quantiles before feeding records.
        from .summaries import attach_summaries
        acc = Accumulator(d.node(args.record), "<top>", args.track)
        attach_summaries(acc)
        header_acc = None
        count = 0
        for rep, pd in d.records(_data_input(args, d), args.record):
            acc.add(rep, pd)
            count += 1
    else:
        acc, header_acc, count = accumulate_records(
            d, _data_input(args, d), args.record, header_type=args.header,
            tracked=args.track)
    if header_acc is not None:
        _emit_text(header_acc.full_report(args.top) + "\n")
    if args.field:
        target = acc.field(args.field)
        _emit_text(target.report(args.top))
        if args.summaries and getattr(target.self_acc, "summaries", None):
            _emit_text("\n" + target.self_acc.summaries.report())
    else:
        _emit_text(acc.full_report(args.top))
    print(f"\n{count} records", file=sys.stderr)
    return 0


def _emit_lines(lines, flush_each: bool = False) -> None:
    # Bypass stdout's text encoding: byte-string fields must come out as
    # the bytes they were parsed from, not their utf-8 re-encoding.
    # ``flush_each`` keeps tail mode (--follow) live: each record's line
    # reaches the pipe as it parses, not when a buffer happens to fill.
    from ..core.io import transparent_encode
    out = sys.stdout.buffer
    sys.stdout.flush()
    for line in lines:
        out.write(transparent_encode(line))
        out.write(b"\n")
        if flush_each:
            out.flush()
    out.flush()


def _emit_text(text: str) -> None:
    # Same byte transparency for whole reports (accum, summaries, view):
    # they quote raw field bytes, which must round-trip unre-encoded.
    _emit_lines([text])


def cmd_fmt(args) -> int:
    from .fmt import format_records
    d = _load(args)
    durable_opts = _durable_opts(args)
    if durable_opts is not None:
        from ..durable import records_durable
        pairs = records_durable(d, args.data, args.record, **durable_opts)
        _emit_lines(format_records(d, pathlib.Path(args.data), args.record,
                                   delims=list(args.delims),
                                   date_format=args.date_format,
                                   skip_errors=args.skip_errors,
                                   pairs=pairs))
        return 0
    engine = _pick_engine(args, d, args.record)
    path = _parallel_file(args)
    stream_jobs = _stream_jobs(args)
    pairs = None
    if stream_jobs is not None:
        from ..parallel import parallel_records_stream
        pairs = parallel_records_stream(d, sys.stdin.buffer, args.record,
                                        jobs=stream_jobs)
    elif path is None and engine == "batch":
        pairs = d.records_batch(_batch_input(args), args.record)
    if path is not None or pairs is not None:
        data = path
    else:
        data = _data_input(args, d)
    _emit_lines(format_records(d, data, args.record, delims=list(args.delims),
                               date_format=args.date_format,
                               skip_errors=args.skip_errors,
                               jobs=args.jobs, pairs=pairs),
                flush_each=getattr(args, "follow", None) is not None)
    return 0


def cmd_xml(args) -> int:
    from .xml_out import xml_records
    d = _load(args)
    durable_opts = _durable_opts(args)
    if durable_opts is not None:
        from ..durable import records_durable
        pairs = records_durable(d, args.data, args.record, **durable_opts)
        _emit_lines(xml_records(d, pathlib.Path(args.data), args.record,
                                pairs=pairs))
        return 0
    engine = _pick_engine(args, d, args.record)
    path = _parallel_file(args)
    stream_jobs = _stream_jobs(args)
    pairs = None
    if stream_jobs is not None:
        from ..parallel import parallel_records_stream
        pairs = parallel_records_stream(d, sys.stdin.buffer, args.record,
                                        jobs=stream_jobs)
    elif path is None and engine == "batch":
        pairs = d.records_batch(_batch_input(args), args.record)
    if path is not None or pairs is not None:
        data = path
    else:
        data = _data_input(args, d)
    _emit_lines(xml_records(d, data, args.record, jobs=args.jobs,
                            pairs=pairs),
                flush_each=getattr(args, "follow", None) is not None)
    return 0


def cmd_count(args) -> int:
    """The paper's record-counting program (the Figure 10 floor task)."""
    d = _load(args)
    durable_opts = _durable_opts(args)
    if durable_opts is not None:
        from ..durable import count_records_durable
        print(count_records_durable(d, args.data, **durable_opts))
        return 0
    engine = _pick_engine(args, d, None)
    path = _parallel_file(args)
    stream_jobs = _stream_jobs(args)
    if path is not None:
        count = d.count_records_parallel(path, jobs=args.jobs)
    elif stream_jobs is not None:
        from ..parallel import parallel_count_stream
        count = parallel_count_stream(d, sys.stdin.buffer, jobs=stream_jobs)
    elif engine == "batch":
        count = d.count_records_batch(_batch_input(args))
    else:
        count = d.count_records(_data_input(args, d))
    print(count)
    return 0


def cmd_plan(args) -> int:
    """Pretty-print the analyzed plan IR for a description."""
    from ..codegen.backends import select_backend
    from ..plan import format_plan
    try:
        d = _load(args)
    except DescriptionError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        print(format_plan(d.plan, args.type))
    except KeyError:
        print(f"padsc: no type named {args.type!r} in description",
              file=sys.stderr)
        return 2
    chosen, reason = select_backend(d.plan, "auto")
    print(f"backend (auto): {chosen.name} — {reason}")
    return 0


def cmd_xsd(args) -> int:
    from .xsd import schema_for_description, schema_for_type
    d = _load(args)
    if args.type:
        print(schema_for_type(args.type, d.node(args.type)))
    else:
        print(schema_for_description(d))
    return 0


def cmd_query(args) -> int:
    from .dataapi import node_new
    from .query import query, query_records
    d = _load(args)
    data = _data_input(args, d)
    if args.record:
        # Streaming: one record resident at a time (bounded memory).
        results = query_records(d, data, args.record, args.expr)
    else:
        rep, pd = d.parse_source(data)
        root = node_new(d, rep, pd, None, name=args.root)
        results = query(args.expr, root)
    for item in results:
        if hasattr(item, "text"):
            print(item.text() if item.is_leaf else f"<{item.name}>")
        else:
            print(item)
    return 0


def cmd_gen(args) -> int:
    import random
    from .datagen import ErrorInjector, generate_source as gen_source
    d = _load(args)
    rng = random.Random(args.seed)
    injector = ErrorInjector(args.error_rate) if args.error_rate else None
    data = gen_source(d, args.type or d.source_type, args.count, rng, injector)
    if args.output:
        with open(args.output, "wb") as handle:
            handle.write(data)
        print(f"wrote {len(data)} bytes to {args.output}", file=sys.stderr)
    else:
        sys.stdout.buffer.write(data)
    return 0


def cmd_drift(args) -> int:
    from .drift import profile_and_compare
    d = _load(args)
    with open(args.data, "rb") as handle:
        old = handle.read()
    with open(args.new_data, "rb") as handle:
        new = handle.read()
    report = profile_and_compare(d, args.record, old, new)
    _emit_text(report.render())
    return 2 if report.drifted else 0


def cmd_view(args) -> int:
    from .view import render_record
    d = _load(args)
    # Skip to the requested record (streaming; only one record resident).
    src = d.open(_data_input(args, d))
    for _ in range(args.index):
        if not src.begin_record():
            print(f"padsc: no record {args.index}", file=sys.stderr)
            return 1
        src.end_record()
    _emit_text(render_record(d, src, args.record))
    return 0


def cmd_index(args) -> int:
    """Build (or verify) the persistent record-boundary index."""
    from .. import durable
    d = _load(args)
    if args.data == "-":
        raise PadsError("index needs a seekable file, not stdin")
    if args.verify:
        idx = durable.load_index(args.data, d.discipline,
                                 index_path=args.output)
        if idx is None:
            print(f"padsc: no valid index for {args.data} "
                  "(missing, corrupt, or stale)", file=sys.stderr)
            return 1
        print(f"{args.data}: {idx.records} records, "
              f"{len(idx.offsets)} sampled boundaries "
              f"(every {idx.interval}), {idx.size} bytes")
        return 0
    idx, target = durable.build_index(
        d, args.data, interval=args.interval or durable.DEFAULT_INDEX_INTERVAL,
        out=args.output)
    print(f"wrote {target} ({idx.records} records, "
          f"{len(idx.offsets)} sampled boundaries, every {idx.interval})")
    return 0


def cmd_fuzz(args) -> int:
    """Fault-injection sweep: corrupt conforming data, assert the
    never-crash invariants (:mod:`repro.faults`)."""
    from ..faults import fuzz_description, fuzz_gallery
    limits = _limits(args)
    if getattr(args, "kill_resume", False):
        from ..faults import kill_resume_gallery
        report = kill_resume_gallery(n_records=args.count, seed=args.seed,
                                     only=args.only or None)
        print(report.summary())
        return 0 if report.ok else 1
    if args.gallery:
        report = fuzz_gallery(n_records=args.count, seed=args.seed,
                              limits=limits, only=args.only or None)
    else:
        if not args.description or not args.record:
            raise PadsError("fuzz needs a description and --record "
                            "(or --gallery)")
        with open(args.description, "r", encoding="utf-8") as handle:
            text = handle.read()
        report = fuzz_description(
            text, args.record, name=args.description, ambient=args.ambient,
            discipline=_discipline(args), n_records=args.count,
            seed=args.seed, limits=limits)
    print(report.summary())
    return 0 if report.ok else 1


def cmd_serve(args) -> int:
    """Run the multi-tenant parse service (:mod:`repro.serve`)."""
    from ..serve import ServeConfig, run_server
    if not 0 <= args.port <= 65535:
        raise PadsError(f"--port {args.port} is out of range 0..65535")
    if args.cache_size < 1:
        raise PadsError("--cache must be at least 1")
    if args.workers < 1:
        raise PadsError("--workers must be at least 1")
    if args.max_body < 1:
        raise PadsError("--max-body must be at least 1 byte")
    if args.parallel_threshold < 0:
        raise PadsError("--parallel-threshold cannot be negative")
    tenant_limits = {}
    for spec in args.tenant_limits or []:
        name, sep, budget = spec.partition(":")
        if not sep or not name or not budget:
            raise PadsError("--tenant-limits wants NAME:SPEC "
                            f"(e.g. gold:deadline=5,errors=10), got {spec!r}")
        tenant_limits[name] = ParseLimits.parse(budget)
    config = ServeConfig(
        host=args.host, port=args.port, jobs=args.jobs,
        cache_size=args.cache_size, max_body=args.max_body,
        parallel_threshold=args.parallel_threshold, workers=args.workers,
        default_limits=ParseLimits.parse(args.limits) if args.limits else None,
        tenant_limits=tenant_limits)
    return run_server(config)


def cmd_cobol(args) -> int:
    from .cobol import translate
    with open(args.copybook, "r", encoding="utf-8") as handle:
        text = handle.read()
    tr = translate(text, args.copybook)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(tr.pads_source)
        print(f"wrote {args.output} (record type {tr.record_type}, "
              f"width {tr.record_width})", file=sys.stderr)
    else:
        print(tr.pads_source)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="padsc",
        description="PADS: processing ad hoc data sources (PLDI 2005 "
                    "reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p, data: bool = True):
        p.add_argument("description", help="PADS description file")
        if data:
            p.add_argument("data", help="data file ('-' for stdin)")
        p.add_argument("--ambient", default="ascii",
                       choices=["ascii", "binary", "ebcdic"])
        p.add_argument("--records", default="newline",
                       help="record discipline: newline, none, fixed:<n>, "
                            "lenprefix:<n>")
        p.add_argument("--base-types", action="append", dest="base_types",
                       metavar="FILE",
                       help="user base-type specification file "
                            "(repeatable; paper Section 6)")
        if data:
            p.add_argument("--limits", metavar="SPEC",
                           help="resource budget, comma-separated key=value: "
                                "record-bytes, array, scan, depth, deadline "
                                "(seconds), errors — limit hits become "
                                "LIMIT_EXCEEDED pd errors, never crashes")

    def jobs_flag(p):
        p.add_argument("-j", "--jobs", type=int, default=1, metavar="N",
                       help="fan the input out to N worker processes, "
                            "split at record boundaries; stdin is "
                            "pipelined chunk-by-chunk into the pool, and "
                            "a stream that cannot be chunked is an error "
                            "(exit 2), never a silent one-core run")

    def stream_flags(p):
        p.add_argument("--follow", nargs="?", const=-1.0, type=float,
                       default=None, metavar="IDLE_SECS",
                       help="tail mode: keep reading as the input grows "
                            "(like tail -f); with a value, stop once no "
                            "new data arrives for IDLE_SECS seconds")
        p.add_argument("--window", type=int, default=None, metavar="BYTES",
                       help="sliding-window size for streamed input "
                            "(stdin/--follow; default 1 MiB) — peak "
                            "buffered bytes stay within 2x this")

    def engine_flag(p):
        p.add_argument("--engine", choices=["auto", "batch", "cursor"],
                       default="auto",
                       help="record engine: 'batch' forces the vectorized "
                            "columnar kernels (exit 2 if the description "
                            "is not batch-eligible), 'cursor' pins the "
                            "ordinary serial loop, 'auto' (default) picks "
                            "batch whenever eligible")

    def backend_flag(p):
        p.add_argument("--backend", choices=["auto", "source", "ast"],
                       default=None,
                       help="run through a compiled parser module instead "
                            "of the interpreter: 'source' is the string "
                            "emitter, 'ast' the AST-specializing backend, "
                            "'auto' picks per description from the plan's "
                            "codegen verdicts; the default stays on the "
                            "interpreted engine.  Results are "
                            "byte-identical either way; the resolved "
                            "choice lands in --stats")

    def durable_flags(p):
        p.add_argument("--checkpoint", nargs="?", const=-1, type=int,
                       default=None, metavar="INTERVAL",
                       help="persist an atomic resume checkpoint every "
                            "INTERVAL records (default 10000) so a killed "
                            "run can continue with --resume; needs a "
                            "seekable file input")
        p.add_argument("--resume", action="store_true",
                       help="continue from the input's checkpoint if a "
                            "valid one exists (implies --checkpoint); a "
                            "missing, corrupt, or stale checkpoint starts "
                            "over from byte 0 — never a wrong result")

    def obs_flags(p):
        p.add_argument("--stats", nargs="?", const="text",
                       choices=["text", "json"], default=None,
                       metavar="FORMAT",
                       help="report parse metrics to stderr after the run "
                            "(--stats for text, --stats=json for JSON)")
        p.add_argument("--trace", nargs="?", const="-", default=None,
                       metavar="FILE",
                       help="stream per-field parse-trace events as JSONL "
                            "to FILE ('-' or omitted: stderr); tracing "
                            "forces the serial path")

    p = sub.add_parser("check", help="parse and typecheck a description")
    common(p, data=False)
    p.set_defaults(fn=cmd_check)

    p = sub.add_parser("compile", help="generate a Python parser module")
    common(p, data=False)
    p.add_argument("-o", "--output")
    p.add_argument("--backend", choices=["source", "ast"], default="source",
                   help="codegen backend; 'ast' requires --dump (its "
                        "module is compiled from a specialized tree and "
                        "has no canonical source)")
    p.add_argument("--dump", action="store_true",
                   help="write the backend's module rendering — for the "
                        "ast backend, ast.unparse of the specialized "
                        "tree (a debugging view, not what runs)")
    p.set_defaults(fn=cmd_compile)

    p = sub.add_parser("accum", help="statistical profile (accumulators)")
    common(p)
    p.add_argument("--record", required=True, help="record type name")
    p.add_argument("--header", help="optional header type name")
    p.add_argument("--field", help="report only this dotted field path")
    p.add_argument("--track", type=int, default=1000,
                   help="distinct values tracked (default 1000)")
    p.add_argument("--top", type=int, default=10,
                   help="values reported (default 10)")
    p.add_argument("--summaries", action="store_true",
                   help="attach streaming histogram/quantile summaries "
                        "(paper Section 9)")
    jobs_flag(p)
    stream_flags(p)
    engine_flag(p)
    backend_flag(p)
    durable_flags(p)
    obs_flags(p)
    p.set_defaults(fn=cmd_accum)

    p = sub.add_parser("fmt", help="delimited formatting")
    common(p)
    p.add_argument("--record", required=True)
    p.add_argument("--delims", default="|")
    p.add_argument("--date-format", default=None)
    p.add_argument("--skip-errors", action="store_true")
    jobs_flag(p)
    stream_flags(p)
    engine_flag(p)
    backend_flag(p)
    durable_flags(p)
    obs_flags(p)
    p.set_defaults(fn=cmd_fmt)

    p = sub.add_parser("xml", help="convert to canonical XML")
    common(p)
    p.add_argument("--record", required=True)
    jobs_flag(p)
    stream_flags(p)
    engine_flag(p)
    backend_flag(p)
    durable_flags(p)
    obs_flags(p)
    p.set_defaults(fn=cmd_xml)

    p = sub.add_parser("count", help="count records (the paper's "
                                     "record-counting floor)")
    common(p)
    jobs_flag(p)
    stream_flags(p)
    engine_flag(p)
    backend_flag(p)
    durable_flags(p)
    obs_flags(p)
    p.set_defaults(fn=cmd_count)

    p = sub.add_parser("plan", help="print the analyzed plan IR (resolved "
                                    "types, widths, terminators, fastpath "
                                    "eligibility)")
    common(p, data=False)
    p.add_argument("--type", help="only this type's plan entry")
    p.set_defaults(fn=cmd_plan)

    p = sub.add_parser("xsd", help="emit the XML Schema")
    common(p, data=False)
    p.add_argument("--type", help="only this type's schema fragment")
    p.set_defaults(fn=cmd_xsd)

    p = sub.add_parser("query", help="run an XQuery-subset query")
    common(p)
    p.add_argument("expr", help="query expression")
    p.add_argument("--root", default="source", help="name of the root node")
    p.add_argument("--record", help="stream record-at-a-time over this type "
                                    "(bind each record to $record)")
    obs_flags(p)
    p.set_defaults(fn=cmd_query)

    p = sub.add_parser("gen", help="generate conforming random data")
    common(p, data=False)
    p.add_argument("--type", help="record type (default: the Psource type)")
    p.add_argument("-n", "--count", type=int, default=10)
    p.add_argument("--seed", type=int, default=None)
    p.add_argument("--error-rate", type=float, default=0.0)
    p.add_argument("-o", "--output")
    p.set_defaults(fn=cmd_gen)

    p = sub.add_parser("drift", help="compare two files' statistical "
                                     "profiles (Altair daily check)")
    common(p)
    p.add_argument("new_data", help="the newer data file")
    p.add_argument("--record", required=True)
    p.set_defaults(fn=cmd_drift)

    p = sub.add_parser("view", help="field-annotated hex view of a record")
    common(p)
    p.add_argument("--record", required=True, help="record type name")
    p.add_argument("--index", type=int, default=0,
                   help="0-based record index (default 0)")
    p.set_defaults(fn=cmd_view)

    p = sub.add_parser("index", help="build or verify the persistent "
                                     "record-boundary index (.padsidx)")
    common(p)
    p.add_argument("--interval", type=int, default=None, metavar="N",
                   help="sample a boundary offset every N records "
                        "(default 1000)")
    p.add_argument("-o", "--output", default=None,
                   help="index file to write/verify (default: "
                        "<data>.padsidx)")
    p.add_argument("--verify", action="store_true",
                   help="validate the existing index against the data "
                        "file (CRCs, source binding) instead of building")
    backend_flag(p)
    obs_flags(p)
    p.set_defaults(fn=cmd_index)

    p = sub.add_parser("fuzz", help="fault-injection sweep: corrupt "
                                    "conforming data, assert never-crash")
    p.add_argument("description", nargs="?",
                   help="PADS description file (omit with --gallery)")
    p.add_argument("--gallery", action="store_true",
                   help="sweep every shipped gallery description")
    p.add_argument("--only", action="append", metavar="NAME",
                   help="with --gallery: restrict to this format "
                        "(repeatable)")
    p.add_argument("--record", help="record type to fuzz")
    p.add_argument("--ambient", default="ascii",
                   choices=["ascii", "binary", "ebcdic"])
    p.add_argument("--records", default="newline",
                   help="record discipline: newline, none, fixed:<n>, "
                        "lenprefix:<n>")
    p.add_argument("--limits", metavar="SPEC",
                   help="resource budget applied during the sweep "
                        "(default: deadline=10,scan=4096)")
    p.add_argument("-n", "--count", type=int, default=12,
                   help="conforming records per corrupted source "
                        "(default 12)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--kill-resume", action="store_true",
                   help="durable-run differential: fork a checkpointed "
                        "run per gallery description, SIGKILL it at a "
                        "random progress point, resume, and assert the "
                        "final report matches an uninterrupted reference")
    p.set_defaults(fn=cmd_fuzz)

    p = sub.add_parser("serve", help="run the multi-tenant parse service "
                                     "(POST descriptions + data over HTTP)")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8712,
                   help="listen port (default 8712; 0 picks an ephemeral "
                        "port and prints it)")
    p.add_argument("--limits", metavar="SPEC",
                   help="default per-request resource budget "
                        "(key=value,... as elsewhere) for tenants without "
                        "an explicit one")
    p.add_argument("--tenant-limits", action="append", metavar="NAME:SPEC",
                   help="per-tenant budget, repeatable (the X-Tenant "
                        "request header selects it), e.g. "
                        "free:deadline=1,errors=10")
    p.add_argument("-j", "--jobs", type=int, default=1, metavar="N",
                   help="worker processes for the parallel engine on "
                        "large payloads (default 1: in-process engines "
                        "only)")
    p.add_argument("--cache", type=int, default=128, dest="cache_size",
                   metavar="N", help="compiled-description cache slots "
                                     "(default 128)")
    p.add_argument("--workers", type=int, default=8, metavar="N",
                   help="parse worker threads (default 8)")
    p.add_argument("--max-body", type=int, default=64 << 20, metavar="BYTES",
                   help="largest accepted request body (default 64 MiB)")
    p.add_argument("--parallel-threshold", type=int, default=1 << 20,
                   metavar="BYTES",
                   help="payload size at which accum/count requests fan "
                        "out to the worker pool (default 1 MiB)")
    p.set_defaults(fn=cmd_serve)

    p = sub.add_parser("cobol", help="translate a Cobol copybook to PADS")
    p.add_argument("copybook")
    p.add_argument("-o", "--output")
    p.set_defaults(fn=cmd_cobol)

    return parser


def _validate_flags(args) -> None:
    """Cross-cutting flag sanity shared by every subcommand that carries
    the flag: out-of-range values exit 2 with one diagnostic line instead
    of tracebacking inside an engine (or silently running serially)."""
    jobs = getattr(args, "jobs", None)
    if jobs is not None and jobs < 1:
        raise PadsError(f"--jobs {jobs} makes no sense; use N >= 1")
    window = getattr(args, "window", None)
    if window is not None and window < 1:
        raise PadsError(f"--window {window} makes no sense; use a positive "
                        "byte count")


def _run(args) -> int:
    """Dispatch a subcommand, wrapped in an observation session when
    ``--stats``/``--trace`` were given.  Stats and trace streams go to
    stderr by default so stdout stays clean for data pipes."""
    _validate_flags(args)
    stats = getattr(args, "stats", None)
    trace = getattr(args, "trace", None)
    if stats is None and trace is None:
        return args.fn(args)
    opened = sink = None
    if trace is not None:
        if trace == "-":
            sink = sys.stderr
        else:
            opened = sink = open(trace, "w", encoding="utf-8")
    try:
        with observe.observed(trace_sink=sink) as obs:
            ret = args.fn(args)
        engine = getattr(args, "_engine_used", None)
        backend = getattr(args, "_backend_used", None)
        if stats == "json":
            doc = obs.stats()
            if engine is not None:
                doc["engine"] = engine
            if backend is not None:
                doc["backend"] = backend
            print(json.dumps(doc, indent=2, sort_keys=True), file=sys.stderr)
        elif stats is not None:
            text = obs.summary()
            if engine is not None:
                text += f"\nengine:  {engine}"
            if backend is not None:
                text += f"\nbackend: {backend}"
            print(text, file=sys.stderr)
        return ret
    finally:
        if opened is not None:
            opened.close()


def main(argv: Optional[list] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return _run(args)
    except (PadsError, OSError) as exc:
        # Usage-level failures (missing/unreadable input, a description
        # that fails to compile, a bad --limits spec) get one diagnostic
        # line and argparse's conventional exit code — never a traceback.
        print(f"padsc: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
