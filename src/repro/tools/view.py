"""Field-annotated record viewer (paper Section 9's data-editor idea).

The paper wants "a graphical binary data editor" generated from
descriptions; the terminal equivalent is a *view*: a hex dump of a record
annotated with the byte span, path and value of every field the parser
recognised.  ``padsc view desc.pads data --record t`` prints it.

Spans are collected by a *shadow tree*: each runtime node is wrapped in a
tracing proxy that records ``(path, start, end, value)`` around the real
parse, with union/opt wrappers discarding the events of losing branch
attempts.  The underlying parsers do all the work, so what the view shows
is exactly what the parser did.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..core.errors import Pd
from ..core.io import Source
from ..core.masks import Mask, P_CheckAndSet
from ..core.types import (
    AppNode,
    ArrayNode,
    BaseNode,
    EnumNode,
    LiteralNode,
    OptNode,
    PType,
    RecordNode,
    StructField,
    StructNode,
    SwitchCaseRT,
    SwitchUnionNode,
    TypedefNode,
    UnionBranch,
    UnionNode,
)
from ..core.values import DateVal


class SpanEvent:
    __slots__ = ("path", "start", "end", "value", "kind")

    def __init__(self, path: str, start: int, end: int, value, kind: str):
        self.path = path
        self.start = start
        self.end = end
        self.value = value
        self.kind = kind

    def __repr__(self):  # pragma: no cover - debugging aid
        return f"SpanEvent({self.path}, {self.start}-{self.end}, {self.value!r})"


class Tracer:
    def __init__(self):
        self.events: List[SpanEvent] = []

    def mark(self) -> int:
        return len(self.events)

    def truncate(self, mark: int) -> None:
        del self.events[mark:]

    def record(self, path: str, start: int, end: int, value, kind: str) -> None:
        self.events.append(SpanEvent(path, start, end, value, kind))


class _TracedLeaf(PType):
    """Wraps a leaf node, recording its span and value."""

    def __init__(self, inner: PType, path: str, tracer: Tracer):
        self.inner = inner
        self.path = path
        self.tracer = tracer
        self.name = inner.name
        self.kind = inner.kind

    def parse(self, src, mask, env):
        start = src.pos
        rep, pd = self.inner.parse(src, mask, env)
        if pd.nerr == 0:
            self.tracer.record(self.path, start, src.pos, rep, self.inner.kind)
        else:
            self.tracer.record(self.path, start, src.pos, None, "error")
        return rep, pd

    def default(self, env):
        return self.inner.default(env)


class _TracedUnion(UnionNode):
    """UnionNode whose losing branch attempts leave no trace events."""

    def __init__(self, name, branches, tracer: Tracer):
        super().__init__(name, branches)
        self.tracer = tracer

    def parse(self, src, mask, env):
        # Same protocol as UnionNode.parse, with event truncation around
        # each backtracked attempt.
        from ..core.errors import ErrCode
        from ..core.types import _eval_constraint
        from ..core.values import UnionVal

        pd = Pd()
        start_loc = src.here()
        for br in self.branches:
            state = src.mark()
            mark = self.tracer.mark()
            value, child = br.node.parse(src, mask.for_field(br.name), env)
            ok = child.nerr == 0
            if ok and br.constraint is not None:
                scope = env.child({br.name: value})
                cok, failed = _eval_constraint(br.constraint, scope)
                ok = cok and not failed
            if ok:
                src.commit(state)
                pd.tag = br.name
                return UnionVal(br.name, value), pd
            src.restore(state)
            self.tracer.truncate(mark)
        pd.record_error(ErrCode.UNION_MATCH_FAILURE, start_loc, panic=True)
        return UnionVal("<none>", None), pd


class _TracedOpt(OptNode):
    def __init__(self, inner, tracer: Tracer):
        super().__init__(inner)
        self.tracer = tracer

    def parse(self, src, mask, env):
        state = src.mark()
        mark = self.tracer.mark()
        value, child = self.inner.parse(src, mask, env)
        if child.nerr == 0:
            src.commit(state)
            pd = Pd()
            pd.tag = "some"
            return value, pd
        src.restore(state)
        self.tracer.truncate(mark)
        pd = Pd()
        pd.tag = "none"
        return None, pd


def _shadow(node: PType, path: str, tracer: Tracer) -> PType:
    """Build the tracing shadow of a runtime node tree."""
    if isinstance(node, RecordNode):
        return RecordNode(_shadow(node.inner, path, tracer))
    if isinstance(node, AppNode):
        return AppNode(node.name, _shadow(node.decl_node, path, tracer),
                       node.param_names, node.arg_exprs, node.global_env)
    if isinstance(node, TypedefNode):
        return TypedefNode(node.name,
                           _TracedLeaf(node.base, path, tracer)
                           if isinstance(node.base, (BaseNode, EnumNode))
                           else _shadow(node.base, path, tracer),
                           node.var, node.constraint)
    if isinstance(node, StructNode):
        fields = []
        for f in node.fields:
            if f.kind == "literal":
                # Literal members are matched inline by StructNode (they
                # need matches_at/scan_from); their bytes show up as the
                # gaps between field spans.
                fields.append(f)
            elif f.kind == "compute":
                fields.append(f)
            else:
                child_path = f"{path}.{f.name}" if path else f.name
                fields.append(StructField("data", name=f.name,
                                          node=_shadow_child(f.node, child_path,
                                                             tracer),
                                          constraint=f.constraint))
        return StructNode(node.name, fields, node.where)
    if isinstance(node, UnionNode) and not isinstance(node, SwitchUnionNode):
        branches = [UnionBranch(br.name,
                                _shadow_child(br.node, f"{path}<{br.name}>",
                                              tracer),
                                br.constraint)
                    for br in node.branches]
        return _TracedUnion(node.name, branches, tracer)
    if isinstance(node, SwitchUnionNode):
        cases = [SwitchCaseRT(c.value_expr, c.name,
                              _shadow_child(c.node, f"{path}<{c.name}>", tracer),
                              c.constraint)
                 for c in node.cases]
        return SwitchUnionNode(node.name, node.selector, cases)
    if isinstance(node, OptNode):
        return _TracedOpt(_shadow_child(node.inner, path, tracer), tracer)
    if isinstance(node, ArrayNode):
        return ArrayNode(node.name,
                         _shadow_child(node.elt, path + "[]", tracer),
                         sep=node.sep, term=node.term,
                         min_size=node.min_size, max_size=node.max_size,
                         last=node.last, ended=node.ended,
                         longest=node.longest, where=node.where)
    return node


def _shadow_child(node: PType, path: str, tracer: Tracer) -> PType:
    if isinstance(node, (BaseNode, EnumNode, LiteralNode)):
        return _TracedLeaf(node, path, tracer)
    return _shadow(node, path, tracer)


def trace_record(description, data, type_name: str,
                 mask: Optional[Mask] = None):
    """Parse one record, returning (rep, pd, events, payload, rec_base)."""
    tracer = Tracer()
    node = description.node(type_name)
    shadowed = _shadow(node, "", tracer)
    if not isinstance(shadowed, RecordNode):
        shadowed = RecordNode(shadowed)
    src = description.open(data)
    # Capture the record's bytes without consuming, so the dump and the
    # span table describe the same record.
    state = src.mark()
    if not src.begin_record():
        src.restore(state)
        raise ValueError("no record at the cursor")
    payload = src.record_bytes()
    rec_base = src.rec_start
    src.restore(state)
    rep, pd = shadowed.parse(src, mask or Mask(P_CheckAndSet),
                             description.env)
    return rep, pd, tracer.events, payload, rec_base


def _printable(b: int) -> str:
    return chr(b) if 32 <= b < 127 else "."


def hex_dump(data: bytes, base: int = 0, width: int = 16) -> str:
    lines = []
    for off in range(0, len(data), width):
        chunk = data[off:off + width]
        hexes = " ".join(f"{b:02x}" for b in chunk).ljust(width * 3 - 1)
        text = "".join(_printable(b) for b in chunk)
        lines.append(f"  {base + off:06x}  {hexes}  |{text}|")
    return "\n".join(lines)


def _value_text(event: SpanEvent) -> str:
    v = event.value
    if event.kind == "error":
        return "<error>"
    if event.kind == "literal":
        return "(literal)"
    if v is None:
        return "(none)"
    if isinstance(v, DateVal):
        return v.raw
    text = repr(v) if isinstance(v, str) else str(v)
    return text if len(text) <= 40 else text[:37] + "..."


def render_record(description, data, type_name: str,
                  mask: Optional[Mask] = None) -> str:
    """The annotated view of the record at ``data``'s cursor."""
    rep, pd, events, payload, rec_base = trace_record(description, data,
                                                      type_name, mask)
    lines = [f"record: {len(payload)} bytes, {pd.summary()}",
             hex_dump(payload, base=0), "",
             f"  {'offset':>9}  {'field':40} value",
             "  " + "-" * 72]
    for event in events:
        span = f"{event.start - rec_base}-{event.end - rec_base}"
        lines.append(f"  {span:>9}  {event.path[:40]:40} {_value_text(event)}")
    return "\n".join(lines)
