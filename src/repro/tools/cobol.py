"""Cobol copybook -> PADS description translator (paper Section 5.2).

AT&T's Altair project receives "roughly 4000 data files per day in various
Cobol formats"; to profile them automatically "we built a tool that
automatically translates Cobol copybooks into PADS descriptions."  This
module reproduces that tool:

* group items become ``Pstruct``s (01-level groups are ``Precord``),
* ``PIC X(n)`` / ``PIC A(n)`` become ``Pstring_FW(:n:)``,
* ``PIC [S]9(n)[V9(m)] DISPLAY`` becomes zoned decimal ``Pzoned_FW``,
* ``COMP-3`` becomes packed decimal ``Pbcd_FW``,
* ``COMP``/``BINARY`` becomes a big-endian binary integer sized by Cobol's
  rules (1-4 digits -> 2 bytes, 5-9 -> 4, 10-18 -> 8),
* ``OCCURS n TIMES`` becomes a fixed-size ``Parray``,
* ``REDEFINES`` becomes a ``Punion`` of the overlaid layouts,
* ``FILLER`` becomes an anonymous fixed-width string field.

The translation targets ambient EBCDIC and fixed-width records;
:func:`translate` also reports the record width so callers can construct
the right :class:`~repro.core.io.FixedWidthRecords` discipline.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..core.errors import PadsError


class CopybookError(PadsError):
    pass


@dataclass
class Picture:
    """A parsed PICTURE clause."""
    category: str          # 'alnum' | 'num'
    digits: int = 0        # digit count for numerics, byte count for alnum
    decimals: int = 0      # digits after the implied decimal point
    signed: bool = False


@dataclass
class Item:
    """One copybook data item."""
    level: int
    name: str
    pic: Optional[Picture] = None
    usage: str = "DISPLAY"  # DISPLAY | COMP | COMP-3
    occurs: int = 0         # 0 = not repeated
    redefines: Optional[str] = None
    children: List["Item"] = field(default_factory=list)

    @property
    def is_group(self) -> bool:
        return self.pic is None

    def byte_width(self) -> int:
        """Physical width in bytes (needed for record disciplines and
        REDEFINES padding)."""
        if self.is_group:
            width = sum(c.byte_width() for c in self.children
                        if c.redefines is None)
        else:
            pic = self.pic
            total = pic.digits + pic.decimals
            if self.usage == "COMP-3":
                width = (total + 2) // 2
            elif self.usage == "COMP":
                width = 2 if total <= 4 else 4 if total <= 9 else 8
            else:
                width = total
        return width * (self.occurs or 1)


_PIC_RE = re.compile(
    r"^(?P<sign>S)?(?P<body>[X9AV()0-9]+)$", re.IGNORECASE)
_RUN_RE = re.compile(r"([XA9V])(?:\((\d+)\))?", re.IGNORECASE)


def parse_picture(text: str) -> Picture:
    m = _PIC_RE.match(text)
    if not m:
        raise CopybookError(f"unsupported PICTURE clause {text!r}")
    signed = m.group("sign") is not None
    body = m.group("body").upper()
    digits = decimals = alnum = 0
    after_v = False
    for sym, count in _RUN_RE.findall(body):
        n = int(count) if count else 1
        sym = sym.upper()
        if sym == "V":
            after_v = True
        elif sym == "9":
            if after_v:
                decimals += n
            else:
                digits += n
        else:  # X or A
            alnum += n
    if alnum and (digits or decimals):
        raise CopybookError(f"mixed alphanumeric/numeric PICTURE {text!r}")
    if alnum:
        return Picture("alnum", alnum)
    if digits + decimals == 0:
        raise CopybookError(f"empty PICTURE {text!r}")
    return Picture("num", digits, decimals, signed)


def _sentences(text: str) -> List[List[str]]:
    """Split copybook text into word lists, one per '.'-terminated entry."""
    # Strip sequence columns / comments: a '*' in column 7 comments the line.
    lines = []
    for line in text.splitlines():
        if len(line) > 6 and line[6] == "*":
            continue
        lines.append(line)
    words = " ".join(lines).replace(".", " . ").split()
    out: List[List[str]] = []
    current: List[str] = []
    for word in words:
        if word == ".":
            if current:
                out.append(current)
                current = []
        else:
            current.append(word)
    if current:
        out.append(current)
    return out


_FILLER_COUNT = 0


def parse_copybook(text: str) -> List[Item]:
    """Parse copybook text into a forest of 01-level items."""
    roots: List[Item] = []
    stack: List[Item] = []
    filler = 0

    for words in _sentences(text):
        if not words:
            continue
        try:
            level = int(words[0])
        except ValueError:
            raise CopybookError(f"expected a level number, found {words[0]!r}")
        if level == 88:
            continue  # condition names carry no physical layout
        idx = 1
        if idx < len(words) and words[idx].upper() not in (
                "PIC", "PICTURE", "REDEFINES", "OCCURS", "USAGE", "COMP",
                "COMP-3", "COMPUTATIONAL", "COMPUTATIONAL-3", "BINARY"):
            name = words[idx].upper()
            idx += 1
        else:
            name = "FILLER"
        if name == "FILLER":
            filler += 1
            name = f"FILLER_{filler}"
        name = name.replace("-", "_").lower()

        item = Item(level=level, name=name)
        while idx < len(words):
            word = words[idx].upper()
            if word in ("PIC", "PICTURE"):
                idx += 1
                if idx < len(words) and words[idx].upper() == "IS":
                    idx += 1
                item.pic = parse_picture(words[idx])
            elif word == "REDEFINES":
                idx += 1
                item.redefines = words[idx].upper().replace("-", "_").lower()
            elif word == "OCCURS":
                idx += 1
                item.occurs = int(words[idx])
                if idx + 1 < len(words) and words[idx + 1].upper() == "TIMES":
                    idx += 1
            elif word == "USAGE":
                pass  # the usage keyword itself
            elif word == "IS":
                pass
            elif word in ("COMP", "COMPUTATIONAL", "BINARY", "COMP-4",
                          "COMPUTATIONAL-4"):
                item.usage = "COMP"
            elif word in ("COMP-3", "COMPUTATIONAL-3", "PACKED-DECIMAL"):
                item.usage = "COMP-3"
            elif word in ("VALUE", "VALUES"):
                idx = len(words)  # initial values don't affect layout
                break
            elif word in ("SYNC", "SYNCHRONIZED", "JUST", "JUSTIFIED",
                          "LEFT", "RIGHT", "DISPLAY", "BLANK", "WHEN",
                          "ZERO", "ZEROS", "ZEROES"):
                pass
            else:
                raise CopybookError(f"unsupported clause {words[idx]!r} "
                                    f"in item {item.name}")
            idx += 1

        while stack and stack[-1].level >= level:
            stack.pop()
        if stack:
            stack[-1].children.append(item)
        else:
            roots.append(item)
        stack.append(item)

    if not roots:
        raise CopybookError("copybook contains no items")
    return roots


# ---------------------------------------------------------------------------
# PADS emission
# ---------------------------------------------------------------------------

def _leaf_type(item: Item) -> str:
    pic = item.pic
    if pic.category == "alnum":
        return f"Pstring_FW(:{pic.digits}:)"
    total = pic.digits + pic.decimals
    if item.usage == "COMP-3":
        if pic.decimals:
            return f"Pbcd_FW(:{total}, {pic.decimals}:)"
        return f"Pbcd_FW(:{total}:)"
    if item.usage == "COMP":
        width = 16 if total <= 4 else 32 if total <= 9 else 64
        return f"Pb_{'int' if pic.signed else 'uint'}{width}_be"
    if pic.decimals:
        return f"Pzoned_FW(:{total}, {pic.decimals}:)"
    return f"Pzoned_FW(:{total}:)"


class _Translator:
    def __init__(self, prefix: str):
        self.prefix = prefix
        self.decls: List[str] = []
        self.counter = 0

    def type_name(self, item: Item) -> str:
        return f"{item.name}_t"

    def emit_item_type(self, item: Item, record: bool = False) -> str:
        """Emit declarations for ``item``; returns the PADS type expression
        to use at its occurrence."""
        if item.is_group:
            base = self._emit_group(item, record)
        else:
            base = _leaf_type(item)
        if item.occurs:
            array_name = f"{item.name}_seq_t"
            self.decls.append(
                f"Parray {array_name} {{\n  {base}[{item.occurs}];\n}};\n")
            return array_name
        return base

    def _emit_group(self, item: Item, record: bool) -> str:
        # Fold REDEFINES runs into unions.
        members: List[Tuple[str, str]] = []  # (field name, type expr)
        redefine_groups: dict = {}
        order: List[str] = []
        for child in item.children:
            target = child.redefines or child.name
            if target not in redefine_groups:
                redefine_groups[target] = []
                order.append(target)
            redefine_groups[target].append(child)

        for target in order:
            group = redefine_groups[target]
            if len(group) == 1:
                child = group[0]
                members.append((child.name, self.emit_item_type(child)))
                continue
            # REDEFINES: a union of the overlaid layouts, widest-first so
            # narrower overlays don't shadow wider ones.
            branches = []
            for child in sorted(group, key=lambda c: -c.byte_width()):
                branches.append((child.name, self.emit_item_type(child)))
            union_name = f"{target}_overlay_t"
            body = "\n".join(f"  {texpr} {fname};" for fname, texpr in branches)
            self.decls.append(f"Punion {union_name} {{\n{body}\n}};\n")
            members.append((target, union_name))

        struct_name = self.type_name(item)
        body = "\n".join(f"  {texpr} {fname};" for fname, texpr in members)
        prefix = "Precord " if record else ""
        self.decls.append(f"{prefix}Pstruct {struct_name} {{\n{body}\n}};\n")
        return struct_name


@dataclass
class Translation:
    """Result of translating a copybook."""
    pads_source: str
    record_type: str
    record_width: int
    #: The analyzed plan of the translated description (None when the
    #: generated source does not round-trip through the front end).
    plan: Optional[object] = None

    def compile(self, **kwargs):
        """Compile the translated description (EBCDIC ambient, fixed-width
        records sized from the copybook)."""
        from ..core.api import compile_description
        from ..core.io import FixedWidthRecords
        kwargs.setdefault("ambient", "ebcdic")
        kwargs.setdefault("discipline", FixedWidthRecords(self.record_width))
        return compile_description(self.pads_source, **kwargs)


def translate(copybook_text: str, source_name: str = "<copybook>") -> Translation:
    """Translate a Cobol copybook into a PADS description."""
    roots = parse_copybook(copybook_text)
    tr = _Translator(prefix="")
    header = (f"/- PADS description translated from Cobol copybook "
              f"{source_name}\n"
              "/- by repro.tools.cobol (compile with ambient='ebcdic',\n"
              "/- FixedWidthRecords(record_width)).\n\n")
    record_types = []
    for root in roots:
        record_types.append(tr.emit_item_type(root, record=True))
    body = "\n".join(tr.decls)
    if len(roots) == 1:
        source_decl = (f"Psource Parray {roots[0].name}_file_t {{\n"
                       f"  {record_types[0]}[];\n}};\n")
    else:
        fields = "\n".join(f"  {t} r{i};" for i, t in enumerate(record_types))
        source_decl = f"Psource Pstruct copybook_file_t {{\n{fields}\n}};\n"
    pads_source = header + body + "\n" + source_decl
    record_type = record_types[0]

    # Record width: prefer the plan's static-width analysis of the
    # translated description (the same fact both engines consume); the
    # copybook's own byte arithmetic is the fallback for layouts the
    # analysis cannot size (e.g. REDEFINES overlays of unequal widths).
    record_width = roots[0].byte_width()
    plan = None
    try:
        from ..dsl.parser import parse_description
        from ..dsl.typecheck import check_description
        from ..plan import analyze
        desc = parse_description(pads_source, source_name)
        check_description(desc, "ebcdic")
        plan = analyze(desc, "ebcdic")
        width = plan.decl(record_type).width
        if width is not None:
            record_width = width
    except Exception:
        plan = None

    return Translation(
        pads_source=pads_source,
        record_type=record_type,
        record_width=record_width,
        plan=plan,
    )
