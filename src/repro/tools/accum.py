"""Accumulators: statistical profiling of ad hoc data (paper Section 5.2).

For each type in a description, an accumulator tracks the number of good
values, the number of bad values, and the distribution of legal values.
By default the first 1000 distinct values are tracked and the top 10
reported, exactly as the paper describes; both knobs are settable.

The rendered report matches the paper's layout::

    <top>.length : uint32
    +++++++++++++++++++++++++++++++++++++++++++
    good: 53544 bad: 3824 pcnt-bad: 6.666
    min: 35 max: 248591 avg: 4090.234
    top 10 values out of 1000 distinct values:
    tracked 99.552% of values

    val: 3082 count: 1254 %-of-good: 2.342
    ...
    . . . . . . . . . . . . . . . . . . . . . .
    SUMMING count: 9655 %-of-good: 18.032

Accumulators mirror the type tree: struct accumulators hold one child per
field, union accumulators track the tag distribution, array accumulators
aggregate over all elements and track lengths.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..core.errors import Pd
from ..core.types import (
    AppNode,
    ArrayNode,
    BaseNode,
    EnumNode,
    OptNode,
    PType,
    RecordNode,
    StructNode,
    SwitchUnionNode,
    TypedefNode,
    UnionNode,
)
from ..core.values import DateVal

DEFAULT_TRACKED = 1000
DEFAULT_REPORTED = 10


def _kind_of(node: PType) -> str:
    while isinstance(node, (RecordNode, TypedefNode, AppNode)):
        node = getattr(node, "inner", None) or getattr(node, "base", None) \
            or getattr(node, "decl_node", None)
    if isinstance(node, BaseNode):
        if node._static is not None:
            return node._static.kind
        return "string"
    if isinstance(node, EnumNode):
        return "enum"
    return node.kind


class ScalarAccum:
    """Tracks one scalar position: good/bad counts, numeric stats, top-K."""

    def __init__(self, kind: str = "string", tracked: int = DEFAULT_TRACKED):
        self.kind = kind
        self.good = 0
        self.bad = 0
        self.tracked_limit = tracked
        self.values: Dict[object, int] = {}
        self.tracked_count = 0  # adds that landed in self.values
        self.min = None
        self.max = None
        self.total = 0.0
        self.err_codes: Dict[str, int] = {}

    def add(self, value, pd: Optional[Pd]) -> None:
        if pd is not None and pd.nerr > 0:
            self.bad += 1
            name = pd.err_code.name
            self.err_codes[name] = self.err_codes.get(name, 0) + 1
            return
        self.good += 1
        key = value.epoch if isinstance(value, DateVal) else value
        if isinstance(key, (int, float)) and not isinstance(key, bool):
            self.total += key
            self.min = key if self.min is None else min(self.min, key)
            self.max = key if self.max is None else max(self.max, key)
        try:
            in_table = key in self.values
        except TypeError:
            return  # unhashable; skip distribution tracking
        if in_table:
            self.values[key] += 1
            self.tracked_count += 1
        elif len(self.values) < self.tracked_limit:
            self.values[key] = 1
            self.tracked_count += 1

    def merge(self, other: "ScalarAccum") -> "ScalarAccum":
        """Combine another scalar accumulator into this one.

        Counts, numeric stats (min/max/sum) and the error-code histogram
        merge exactly: merging accumulators built over any split of a
        record stream gives the same values as accumulating the whole
        stream.  The value-distribution table is exact as long as the
        number of distinct values stays within ``tracked_limit``.  Under
        overflow the merge mirrors the serial first-seen admission policy
        — keep this side's keys, admit the other side's new keys in their
        first-seen order until full — so the tracked key set matches the
        serial run except when a part's own table overflowed before
        seeing a key the serial run would have admitted; every reported
        count is then a lower bound on the true count (the documented
        tolerance).
        """
        self.good += other.good
        self.bad += other.bad
        self.total += other.total
        if other.min is not None:
            self.min = other.min if self.min is None else min(self.min, other.min)
        if other.max is not None:
            self.max = other.max if self.max is None else max(self.max, other.max)
        for name, count in other.err_codes.items():
            self.err_codes[name] = self.err_codes.get(name, 0) + count
        for key, count in other.values.items():
            if key in self.values:
                self.values[key] += count
            elif len(self.values) < self.tracked_limit:
                # dict order is first-seen order, matching serial admission
                self.values[key] = count
        # Invariant maintained by ``add``: tracked_count is the number of
        # adds represented in the table.
        self.tracked_count = sum(self.values.values())
        mine = getattr(self, "summaries", None)
        theirs = getattr(other, "summaries", None)
        if mine is not None and theirs is not None:
            mine.merge(theirs)
        return self

    def __getstate__(self):
        # ``attach_summaries`` rebinds ``add`` to a closure on the
        # instance; drop it so accumulators can cross process boundaries
        # (the unpickled copy is only merged/reported, never fed).
        state = dict(self.__dict__)
        state.pop("add", None)
        return state

    @property
    def total_count(self) -> int:
        return self.good + self.bad

    def pcnt_bad(self) -> float:
        n = self.total_count
        return 100.0 * self.bad / n if n else 0.0

    def top(self, k: int = DEFAULT_REPORTED) -> List:
        return sorted(self.values.items(), key=lambda kv: (-kv[1], str(kv[0])))[:k]

    def report(self, path: str, type_name: str,
               reported: int = DEFAULT_REPORTED) -> str:
        lines = [f"{path} : {type_name}",
                 "+" * 43,
                 f"good: {self.good} bad: {self.bad} "
                 f"pcnt-bad: {self.pcnt_bad():.3f}"]
        if self.kind in ("int", "float", "date") and self.good:
            avg = self.total / self.good
            lines.append(f"min: {_fmt(self.min)} max: {_fmt(self.max)} "
                         f"avg: {avg:.3f}")
        if self.values:
            top = self.top(reported)
            lines.append(f"top {len(top)} values out of "
                         f"{len(self.values)} distinct values:")
            if self.good:
                lines.append(f"tracked {100.0 * self.tracked_count / self.good:.3f}% of values")
            lines.append("")
            summed = 0
            for value, count in top:
                pct = 100.0 * count / self.good if self.good else 0.0
                lines.append(f"val: {_fmt(value)} count: {count} "
                             f"%-of-good: {pct:.3f}")
                summed += count
            lines.append(". " * 21)
            pct = 100.0 * summed / self.good if self.good else 0.0
            lines.append(f"SUMMING count: {summed} %-of-good: {pct:.3f}")
        if self.err_codes:
            lines.append("errors by code: " + ", ".join(
                f"{name}: {count}" for name, count
                in sorted(self.err_codes.items(), key=lambda kv: -kv[1])))
        return "\n".join(lines)


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:g}"
    return str(value)


class Accumulator:
    """A type-shaped accumulator tree (``<type>_acc`` in the paper's
    Figure 6: ``acc_init`` / ``acc_add`` / ``acc_report``)."""

    def __init__(self, node: PType, name: str = "<top>",
                 tracked: int = DEFAULT_TRACKED):
        self.node = node
        self.name = name
        self.tracked = tracked
        self.self_acc = ScalarAccum(_kind_of(node), tracked)
        self.children: Dict[str, Accumulator] = {}
        self.elts: Optional[Accumulator] = None
        self.lengths: Optional[ScalarAccum] = None
        self._build()

    def _build(self) -> None:
        node = self.node
        while isinstance(node, (RecordNode,)):
            node = node.inner
        if isinstance(node, AppNode):
            node = node.decl_node
        if isinstance(node, StructNode):
            # Pcompute fields are derived values, not data positions, so
            # they are not profiled.
            for f in node.fields:
                if f.kind == "data":
                    self.children[f.name] = Accumulator(
                        f.node, f"{self.name}.{f.name}", self.tracked)
        elif isinstance(node, UnionNode):
            for br in node.branches:
                self.children[br.name] = Accumulator(
                    br.node, f"{self.name}.{br.name}", self.tracked)
        elif isinstance(node, SwitchUnionNode):
            for case in node.cases:
                self.children[case.name] = Accumulator(
                    case.node, f"{self.name}.{case.name}", self.tracked)
        elif isinstance(node, OptNode):
            self.children["some"] = Accumulator(
                node.inner, f"{self.name}.some", self.tracked)
        elif isinstance(node, ArrayNode):
            self.elts = Accumulator(node.elt, f"{self.name}[]", self.tracked)
            self.lengths = ScalarAccum("int", self.tracked)
        elif isinstance(node, TypedefNode):
            pass  # scalar behaviour is enough

    # -- adding -----------------------------------------------------------------

    def add(self, rep, pd: Optional[Pd] = None) -> None:
        node = self.node
        while isinstance(node, RecordNode):
            node = node.inner
        if isinstance(node, AppNode):
            node = node.decl_node

        if isinstance(node, StructNode):
            self.self_acc.add(None, pd)
            for name, child in self.children.items():
                try:
                    value = getattr(rep, name)
                except AttributeError:
                    continue
                child.add(value, pd.fields.get(name) if pd else None)
        elif isinstance(node, (UnionNode, SwitchUnionNode)):
            self.self_acc.add(getattr(rep, "tag", None), pd)
            tag = getattr(rep, "tag", None)
            if tag in self.children:
                self.children[tag].add(rep.value, pd.branch if pd else None)
        elif isinstance(node, OptNode):
            if pd is not None and pd.nerr > 0:
                self.self_acc.add(None, pd)
            elif rep is None:
                self.self_acc.add("NONE", None)
            else:
                self.self_acc.add("SOME", None)
                self.children["some"].add(rep, pd.branch if pd else None)
        elif isinstance(node, ArrayNode):
            self.self_acc.add(None, pd)
            if rep is not None:
                self.lengths.add(len(rep), None)
                elt_pds = pd.elts if pd else []
                for i, value in enumerate(rep):
                    elt_pd = elt_pds[i] if i < len(elt_pds) else None
                    self.elts.add(value, elt_pd)
        else:
            self.self_acc.add(rep, pd)

    # -- merging ----------------------------------------------------------------

    def merge(self, other: "Accumulator") -> "Accumulator":
        """Combine another accumulator of the same shape into this one.

        This is the reduce step of parallel accumulation: each worker
        accumulates its chunk independently, then the per-chunk trees are
        merged in chunk order.  See :meth:`ScalarAccum.merge` for the
        exactness guarantees.
        """
        self.self_acc.merge(other.self_acc)
        if self.lengths is not None and other.lengths is not None:
            self.lengths.merge(other.lengths)
        if self.elts is not None and other.elts is not None:
            self.elts.merge(other.elts)
        for name, child in self.children.items():
            theirs = other.children.get(name)
            if theirs is not None:
                child.merge(theirs)
        return self

    def __getstate__(self):
        # Type nodes may close over interpreter environments and are not
        # picklable; a transferred accumulator only needs its counters
        # (the receiving side merges it into a tree that kept its nodes).
        state = dict(self.__dict__)
        state["node"] = None
        return state

    # -- reporting ----------------------------------------------------------------

    def field(self, path: str) -> "Accumulator":
        """Descend to a nested accumulator by dotted path (``[]`` for array
        elements), e.g. ``"es[].header.order_num"``."""
        acc = self
        for part in path.split("."):
            depth = 0
            while part.endswith("[]"):
                part = part[:-2]
                depth += 1
            if part:
                acc = acc.children[part]
            for _ in range(depth):
                acc = acc.elts
        return acc

    def type_label(self) -> str:
        node = self.node
        while isinstance(node, RecordNode):
            node = node.inner
        if isinstance(node, BaseNode):
            label = node.name.split("(")[0]
            return {"Puint32": "uint32", "Puint8": "uint8", "Puint16": "uint16",
                    "Puint64": "uint64", "Pint32": "int32", "Pint64": "int64",
                    }.get(label, label)
        return node.name

    def report(self, reported: int = DEFAULT_REPORTED) -> str:
        return self.self_acc.report(self.name, self.type_label(), reported)

    def full_report(self, reported: int = DEFAULT_REPORTED) -> str:
        """Reports for this node and every nested position, paper-style."""
        chunks = [self.report(reported)]
        if self.lengths is not None and self.lengths.total_count:
            chunks.append(self.lengths.report(f"{self.name}.length",
                                              "array length", reported))
        if self.elts is not None:
            chunks.append(self.elts.full_report(reported))
        for child in self.children.values():
            chunks.append(child.full_report(reported))
        return "\n\n".join(chunks)


def accumulate_records(description, data, record_type: str,
                       mask=None, tracked: int = DEFAULT_TRACKED,
                       header_type: Optional[str] = None):
    """Build an accumulator program from minimal extra information.

    The paper (Section 5.2): "given only the names of the optional header
    type and the record type, the PADS system will generate an accumulator
    program."  Returns ``(record_accumulator, header_accumulator_or_None,
    n_records)``.
    """
    src = description.open(data)
    header_acc = None
    if header_type is not None:
        header_acc = Accumulator(description.node(header_type), "<header>",
                                 tracked)
        rep, pd = description.parse(src, header_type, mask)
        header_acc.add(rep, pd)
    acc = Accumulator(description.node(record_type), "<top>", tracked)
    count = 0
    for rep, pd in description.records(src, record_type, mask):
        acc.add(rep, pd)
        count += 1
    return acc, header_acc, count
