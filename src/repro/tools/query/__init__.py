"""XQuery-subset engine over the PADS data API (paper Section 5.4).

The paper runs XQuery (via Galax) over raw PADS data through a generated
data API.  This package substitutes a compact XQuery-subset implementation
evaluated directly over :class:`~repro.tools.dataapi.PNode` trees:

* path expressions with name tests, ``//``, ``.`` and positional /
  boolean predicates,
* general comparisons with XPath's existential semantics,
* ``for`` / ``let`` / ``where`` / ``order by`` / ``return`` FLWOR cores,
* the functions used in practice: ``count``, ``sum``, ``avg``, ``min``,
  ``max``, ``not``, ``exists``, ``empty``, ``position``, ``last``,
  ``string``, ``number``, ``contains``, ``starts-with``, ``xs:date`` …

The paper's Sirius time-window query runs verbatim (see
``tests/test_query.py`` and ``benchmarks/bench_sec54_query.py``).
"""

from .engine import QueryError, XQuery, query


def query_records(description, data, record_type: str, text: str,
                  mask=None, var: str = "record"):
    """Run a query against each record of a source, streaming.

    The paper notes that querying sources "that can be loaded entirely
    into memory" came first and that "a version that allows the data to
    be read lazily is well underway" — this is that version: the record
    is the unit of residence, so arbitrarily large sources can be queried
    in bounded memory.  The record node is bound to ``$record`` (or
    ``var``); results from all records are concatenated.
    """
    from ..dataapi import PNode

    compiled = XQuery(text)
    node = description.node(record_type)
    for rep, pd in description.records(data, record_type, mask):
        root = PNode(node, rep, pd, var)
        yield from compiled.run(root)


__all__ = ["QueryError", "XQuery", "query", "query_records"]
