"""Lexer, parser and evaluator for the XQuery subset.

Values are XPath-style *sequences* (Python lists) of items; an item is a
:class:`~repro.tools.dataapi.PNode` or an atomic (int, float, str, bool,
DateVal).  General comparisons are existential, effective boolean value
follows XPath 1.0-style rules, and numeric predicates select by position.
"""

from __future__ import annotations

import datetime as _dt
from typing import Dict, List, Optional

from ...core.values import DateVal
from ..dataapi import PNode


class QueryError(Exception):
    pass


# ---------------------------------------------------------------------------
# Lexer
# ---------------------------------------------------------------------------

_KEYWORDS = {"for", "let", "in", "where", "return", "order", "by",
             "ascending", "descending", "and", "or", "div", "mod",
             "if", "then", "else", "some", "every", "satisfies"}

_TWO_CHAR = ["//", ":=", "!=", "<=", ">="]
_ONE_CHAR = list("/[]()$.,*+-=<>@")


class _Tok:
    __slots__ = ("kind", "value", "pos")

    def __init__(self, kind: str, value: str, pos: int):
        self.kind = kind
        self.value = value
        self.pos = pos

    def __repr__(self):  # pragma: no cover
        return f"_Tok({self.kind}, {self.value!r})"


def _lex(text: str) -> List[_Tok]:
    out: List[_Tok] = []
    i, n = 0, len(text)
    while i < n:
        ch = text[i]
        if ch.isspace():
            i += 1
            continue
        if ch == "(" and text.startswith("(:", i):
            depth, i = 1, i + 2
            while i < n and depth:
                if text.startswith("(:", i):
                    depth += 1
                    i += 2
                elif text.startswith(":)", i):
                    depth -= 1
                    i += 2
                else:
                    i += 1
            continue
        if ch in "\"'":
            quote = ch
            j = text.find(quote, i + 1)
            if j < 0:
                raise QueryError(f"unterminated string at {i}")
            out.append(_Tok("string", text[i + 1:j], i))
            i = j + 1
            continue
        if ch.isdigit():
            j = i
            while j < n and (text[j].isdigit() or text[j] == "."):
                j += 1
            out.append(_Tok("number", text[i:j], i))
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (text[j].isalnum() or text[j] in "_-"):
                j += 1
            # QName with prefix (xs:date) — but not a FLWOR `let $x := ...`.
            if j < n and text[j] == ":" and j + 1 < n and \
                    (text[j + 1].isalpha() or text[j + 1] == "_"):
                k = j + 1
                while k < n and (text[k].isalnum() or text[k] in "_-"):
                    k += 1
                out.append(_Tok("name", text[i:k], i))
                i = k
                continue
            word = text[i:j]
            out.append(_Tok("keyword" if word in _KEYWORDS else "name", word, i))
            i = j
            continue
        matched = False
        for op in _TWO_CHAR:
            if text.startswith(op, i):
                out.append(_Tok("op", op, i))
                i += len(op)
                matched = True
                break
        if matched:
            continue
        if ch in _ONE_CHAR:
            out.append(_Tok("op", ch, i))
            i += 1
            continue
        raise QueryError(f"unexpected character {ch!r} at {i}")
    out.append(_Tok("eof", "", n))
    return out


# ---------------------------------------------------------------------------
# AST
# ---------------------------------------------------------------------------

class _N:
    pass


class Lit(_N):
    def __init__(self, value):
        self.value = value


class Var(_N):
    def __init__(self, name):
        self.name = name


class ContextItem(_N):
    pass


class Step(_N):
    """One path step applied to a sequence: child axis name test."""

    def __init__(self, name: str, descendant: bool = False):
        self.name = name  # '*' = any
        self.descendant = descendant


class Path(_N):
    def __init__(self, start: Optional[_N], parts: List[_N]):
        self.start = start  # None => relative to context item
        self.parts = parts  # Step or Predicate


class Predicate(_N):
    def __init__(self, expr: _N):
        self.expr = expr


class Binary(_N):
    def __init__(self, op, left, right):
        self.op = op
        self.left = left
        self.right = right


class Unary(_N):
    def __init__(self, expr):
        self.expr = expr


class Call(_N):
    def __init__(self, name, args):
        self.name = name
        self.args = args


class IfExpr(_N):
    def __init__(self, cond, then, other):
        self.cond = cond
        self.then = then
        self.other = other


class Quantified(_N):
    def __init__(self, kind, var, seq, body):
        self.kind = kind  # 'some' | 'every'
        self.var = var
        self.seq = seq
        self.body = body


class Flwor(_N):
    def __init__(self, clauses, where, order, descending, ret):
        self.clauses = clauses  # list of ('for'|'let', var, expr)
        self.where = where
        self.order = order
        self.descending = descending
        self.ret = ret


class SeqExpr(_N):
    def __init__(self, items):
        self.items = items


# ---------------------------------------------------------------------------
# Parser
# ---------------------------------------------------------------------------

class _Parser:
    def __init__(self, tokens: List[_Tok]):
        self.toks = tokens
        self.i = 0

    def peek(self, k=0) -> _Tok:
        return self.toks[min(self.i + k, len(self.toks) - 1)]

    def next(self) -> _Tok:
        tok = self.toks[self.i]
        if tok.kind != "eof":
            self.i += 1
        return tok

    def at(self, kind, value=None, k=0) -> bool:
        tok = self.peek(k)
        return tok.kind == kind and (value is None or tok.value == value)

    def expect(self, kind, value=None) -> _Tok:
        if not self.at(kind, value):
            tok = self.peek()
            raise QueryError(
                f"expected {value or kind!r}, found {tok.value or tok.kind!r} "
                f"at {tok.pos}")
        return self.next()

    def parse(self) -> _N:
        expr = self.expr()
        self.expect("eof")
        return expr

    def expr(self) -> _N:
        items = [self.expr_single()]
        while self.at("op", ","):
            self.next()
            items.append(self.expr_single())
        return items[0] if len(items) == 1 else SeqExpr(items)

    def expr_single(self) -> _N:
        if self.at("keyword", "for") or self.at("keyword", "let"):
            return self.flwor()
        if self.at("keyword", "if"):
            return self.if_expr()
        if self.at("keyword", "some") or self.at("keyword", "every"):
            return self.quantified()
        return self.or_expr()

    def flwor(self) -> Flwor:
        clauses = []
        while self.at("keyword", "for") or self.at("keyword", "let"):
            kind = self.next().value
            while True:
                self.expect("op", "$")
                var = self.expect("name").value
                if kind == "for":
                    self.expect("keyword", "in")
                else:
                    self.expect("op", ":=")
                clauses.append((kind, var, self.expr_single()))
                if not self.at("op", ","):
                    break
                self.next()
        where = None
        if self.at("keyword", "where"):
            self.next()
            where = self.expr_single()
        order = None
        descending = False
        if self.at("keyword", "order"):
            self.next()
            self.expect("keyword", "by")
            order = self.expr_single()
            if self.at("keyword", "descending"):
                self.next()
                descending = True
            elif self.at("keyword", "ascending"):
                self.next()
        self.expect("keyword", "return")
        return Flwor(clauses, where, order, descending, self.expr_single())

    def if_expr(self) -> IfExpr:
        self.expect("keyword", "if")
        self.expect("op", "(")
        cond = self.expr()
        self.expect("op", ")")
        self.expect("keyword", "then")
        then = self.expr_single()
        self.expect("keyword", "else")
        other = self.expr_single()
        return IfExpr(cond, then, other)

    def quantified(self) -> Quantified:
        kind = self.next().value
        self.expect("op", "$")
        var = self.expect("name").value
        self.expect("keyword", "in")
        seq = self.expr_single()
        self.expect("keyword", "satisfies")
        return Quantified(kind, var, seq, self.expr_single())

    def or_expr(self) -> _N:
        left = self.and_expr()
        while self.at("keyword", "or"):
            self.next()
            left = Binary("or", left, self.and_expr())
        return left

    def and_expr(self) -> _N:
        left = self.cmp_expr()
        while self.at("keyword", "and"):
            self.next()
            left = Binary("and", left, self.cmp_expr())
        return left

    def cmp_expr(self) -> _N:
        left = self.add_expr()
        if self.at("op") and self.peek().value in ("=", "!=", "<", "<=", ">", ">="):
            op = self.next().value
            return Binary(op, left, self.add_expr())
        return left

    def add_expr(self) -> _N:
        left = self.mul_expr()
        while self.at("op") and self.peek().value in ("+", "-"):
            op = self.next().value
            left = Binary(op, left, self.mul_expr())
        return left

    def mul_expr(self) -> _N:
        left = self.unary_expr()
        while (self.at("op", "*")
               or self.at("keyword", "div") or self.at("keyword", "mod")):
            op = self.next().value
            left = Binary(op, left, self.unary_expr())
        return left

    def unary_expr(self) -> _N:
        if self.at("op", "-"):
            self.next()
            return Unary(self.unary_expr())
        return self.path_expr()

    def path_expr(self) -> _N:
        # Leading '/' or '//' — rooted paths (root is the context root).
        parts: List[_N] = []
        start: Optional[_N] = None
        if self.at("op", "/") or self.at("op", "//"):
            start = Var("__root__")
            if self.at("op", "//"):
                self.next()
                parts.append(self.step(descendant=True))
            else:
                self.next()
                if self.at("name") or self.at("op", "*"):
                    parts.append(self.step())
        else:
            start_tok = self.peek()
            if self.at("op", "$"):
                self.next()
                start = Var(self.expect("name").value)
            elif self.at("string"):
                start = Lit(self.next().value)
            elif self.at("number"):
                text = self.next().value
                start = Lit(float(text) if "." in text else int(text))
            elif self.at("op", "("):
                self.next()
                if self.at("op", ")"):  # empty sequence ()
                    self.next()
                    start = SeqExpr([])
                else:
                    start = self.expr()
                    self.expect("op", ")")
            elif self.at("op", "."):
                self.next()
                start = ContextItem()
            elif self.at("name") and self.at("op", "(", 1):
                name = self.next().value
                self.next()  # (
                args = []
                if not self.at("op", ")"):
                    args.append(self.expr_single())
                    while self.at("op", ","):
                        self.next()
                        args.append(self.expr_single())
                self.expect("op", ")")
                start = Call(name, args)
            elif self.at("name") or self.at("op", "*"):
                parts.append(self.step())
            else:
                raise QueryError(
                    f"unexpected token {start_tok.value or start_tok.kind!r} "
                    f"at {start_tok.pos}")

        while True:
            if self.at("op", "/"):
                self.next()
                parts.append(self.step())
            elif self.at("op", "//"):
                self.next()
                parts.append(self.step(descendant=True))
            elif self.at("op", "["):
                self.next()
                parts.append(Predicate(self.expr()))
                self.expect("op", "]")
            else:
                break
        if not parts:
            return start if start is not None else ContextItem()
        return Path(start, parts)

    def step(self, descendant: bool = False) -> Step:
        if self.at("op", "*"):
            self.next()
            return Step("*", descendant)
        name = self.expect("name").value
        return Step(name, descendant)


# ---------------------------------------------------------------------------
# Evaluator
# ---------------------------------------------------------------------------

class _Ctx:
    __slots__ = ("vars", "item", "position", "size")

    def __init__(self, vars: Dict[str, list], item=None,
                 position: int = 1, size: int = 1):
        self.vars = vars
        self.item = item
        self.position = position
        self.size = size

    def with_item(self, item, position, size) -> "_Ctx":
        return _Ctx(self.vars, item, position, size)

    def with_var(self, name, value) -> "_Ctx":
        vars = dict(self.vars)
        vars[name] = value
        return _Ctx(vars, self.item, self.position, self.size)


def _atomize(item):
    if isinstance(item, PNode):
        return item.value()
    return item


def _atomize_seq(seq) -> list:
    return [_atomize(x) for x in seq]


def _ebv(seq) -> bool:
    """Effective boolean value."""
    if not seq:
        return False
    first = seq[0]
    if isinstance(first, PNode):
        return True
    if len(seq) > 1:
        return True
    if isinstance(first, bool):
        return first
    if isinstance(first, (int, float)):
        return first != 0
    if isinstance(first, str):
        return first != ""
    return True


def _coerce_pair(a, b):
    """Best-effort typed comparison coercion (numbers vs numeric strings)."""
    if isinstance(a, DateVal) or isinstance(b, DateVal):
        return a, b
    if isinstance(a, (int, float)) and isinstance(b, str):
        try:
            return a, float(b)
        except ValueError:
            return str(a), b
    if isinstance(b, (int, float)) and isinstance(a, str):
        try:
            return float(a), b
        except ValueError:
            return a, str(b)
    return a, b


_CMP = {
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


def _compare(op: str, left, right) -> bool:
    """General comparison: existential over both sequences."""
    fn = _CMP[op]
    for a in _atomize_seq(left):
        for b in _atomize_seq(right):
            a2, b2 = _coerce_pair(a, b)
            try:
                if fn(a2, b2):
                    return True
            except TypeError:
                continue
    return False


def _numeric(seq, what: str) -> list:
    out = []
    for v in _atomize_seq(seq):
        if isinstance(v, DateVal):
            out.append(v.epoch)
        elif isinstance(v, bool):
            out.append(int(v))
        elif isinstance(v, (int, float)):
            out.append(v)
        elif isinstance(v, str) and v.strip():
            try:
                out.append(float(v))
            except ValueError:
                raise QueryError(f"{what}: non-numeric value {v!r}")
        else:
            raise QueryError(f"{what}: non-numeric value {v!r}")
    return out


class XQuery:
    """A compiled query; evaluate with :meth:`run` against a root PNode."""

    def __init__(self, text: str):
        self.text = text
        self.ast = _Parser(_lex(text)).parse()

    def run(self, root: Optional[PNode] = None, **variables) -> list:
        vars: Dict[str, list] = {}
        if root is not None:
            vars["__root__"] = [root]
            # A conventional default: the root is also bound to $<its name>.
            vars.setdefault(root.name, [root])
        for name, value in variables.items():
            vars[name] = value if isinstance(value, list) else [value]
        return self._eval(self.ast, _Ctx(vars))

    # -- dispatch ------------------------------------------------------------------

    def _eval(self, node: _N, ctx: _Ctx) -> list:
        method = getattr(self, "_eval_" + type(node).__name__)
        return method(node, ctx)

    def _eval_Lit(self, node: Lit, ctx: _Ctx) -> list:
        return [node.value]

    def _eval_SeqExpr(self, node: SeqExpr, ctx: _Ctx) -> list:
        out = []
        for item in node.items:
            out.extend(self._eval(item, ctx))
        return out

    def _eval_Var(self, node: Var, ctx: _Ctx) -> list:
        if node.name not in ctx.vars:
            raise QueryError(f"unbound variable ${node.name}")
        return list(ctx.vars[node.name])

    def _eval_ContextItem(self, node: ContextItem, ctx: _Ctx) -> list:
        return [ctx.item] if ctx.item is not None else []

    def _eval_Unary(self, node: Unary, ctx: _Ctx) -> list:
        values = _numeric(self._eval(node.expr, ctx), "unary -")
        return [-v for v in values]

    def _eval_Binary(self, node: Binary, ctx: _Ctx) -> list:
        op = node.op
        if op == "and":
            return [_ebv(self._eval(node.left, ctx))
                    and _ebv(self._eval(node.right, ctx))]
        if op == "or":
            return [_ebv(self._eval(node.left, ctx))
                    or _ebv(self._eval(node.right, ctx))]
        left = self._eval(node.left, ctx)
        right = self._eval(node.right, ctx)
        if op in _CMP:
            return [_compare(op, left, right)]
        lv = _numeric(left, op)
        rv = _numeric(right, op)
        if not lv or not rv:
            return []
        a, b = lv[0], rv[0]
        if op == "+":
            return [a + b]
        if op == "-":
            return [a - b]
        if op == "*":
            return [a * b]
        if op == "div":
            return [a / b]
        if op == "mod":
            return [a % b]
        raise QueryError(f"unknown operator {op}")

    def _eval_IfExpr(self, node: IfExpr, ctx: _Ctx) -> list:
        if _ebv(self._eval(node.cond, ctx)):
            return self._eval(node.then, ctx)
        return self._eval(node.other, ctx)

    def _eval_Quantified(self, node: Quantified, ctx: _Ctx) -> list:
        seq = self._eval(node.seq, ctx)
        results = (_ebv(self._eval(node.body, ctx.with_var(node.var, [item])))
                   for item in seq)
        return [any(results) if node.kind == "some" else all(results)]

    def _eval_Flwor(self, node: Flwor, ctx: _Ctx) -> list:
        tuples: List[_Ctx] = [ctx]
        for kind, var, expr in node.clauses:
            if kind == "let":
                tuples = [t.with_var(var, self._eval(expr, t)) for t in tuples]
            else:
                expanded: List[_Ctx] = []
                for t in tuples:
                    for item in self._eval(expr, t):
                        expanded.append(t.with_var(var, [item]))
                tuples = expanded
        if node.where is not None:
            tuples = [t for t in tuples if _ebv(self._eval(node.where, t))]
        if node.order is not None:
            def key(t):
                values = _atomize_seq(self._eval(node.order, t))
                v = values[0] if values else None
                return v.epoch if isinstance(v, DateVal) else v
            tuples.sort(key=key, reverse=node.descending)
        out = []
        for t in tuples:
            out.extend(self._eval(node.ret, t))
        return out

    def _eval_Path(self, node: Path, ctx: _Ctx) -> list:
        if node.start is None:
            seq = [ctx.item] if ctx.item is not None else []
        else:
            seq = self._eval(node.start, ctx)
        for part in node.parts:
            if isinstance(part, Step):
                seq = self._apply_step(seq, part)
            else:
                seq = self._apply_predicate(seq, part, ctx)
        return seq

    def _apply_step(self, seq: list, step: Step) -> list:
        out = []
        for item in seq:
            if not isinstance(item, PNode):
                continue
            pool = item.descendants()[1:] if step.descendant else item.children
            if step.name == "*":
                out.extend(pool)
            else:
                out.extend(c for c in pool if c.matches(step.name))
        return out

    def _apply_predicate(self, seq: list, pred: Predicate, ctx: _Ctx) -> list:
        out = []
        size = len(seq)
        for idx, item in enumerate(seq, start=1):
            inner = ctx.with_item(item, idx, size)
            value = self._eval(pred.expr, inner)
            if len(value) == 1 and isinstance(value[0], (int, float)) \
                    and not isinstance(value[0], bool):
                if idx == value[0]:
                    out.append(item)
            elif _ebv(value):
                out.append(item)
        return out

    def _eval_Step(self, node: Step, ctx: _Ctx) -> list:
        return self._apply_step([ctx.item] if ctx.item is not None else [], node)

    # -- functions -------------------------------------------------------------------

    def _eval_Call(self, node: Call, ctx: _Ctx) -> list:
        args = [self._eval(a, ctx) for a in node.args]
        name = node.name

        if name == "count":
            return [len(args[0])]
        if name == "exists":
            return [bool(args[0])]
        if name == "empty":
            return [not args[0]]
        if name == "not":
            return [not _ebv(args[0])]
        if name == "position":
            return [ctx.position]
        if name == "last":
            return [ctx.size]
        if name in ("sum", "avg", "min", "max"):
            values = _numeric(args[0], name)
            if not values:
                return [0] if name == "sum" else []
            if name == "sum":
                return [sum(values)]
            if name == "avg":
                return [sum(values) / len(values)]
            return [min(values) if name == "min" else max(values)]
        if name == "string":
            seq = args[0] if args else ([ctx.item] if ctx.item else [])
            if not seq:
                return [""]
            item = seq[0]
            return [item.text() if isinstance(item, PNode) else str(item)]
        if name == "number":
            values = _numeric(args[0], name)
            return [values[0]] if values else []
        if name == "name":
            seq = args[0] if args else ([ctx.item] if ctx.item else [])
            return [seq[0].name] if seq and isinstance(seq[0], PNode) else [""]
        if name == "contains":
            return [str(_atomize(args[0][0])) .find(str(_atomize(args[1][0]))) >= 0
                    if args[0] and args[1] else False]
        if name == "starts-with":
            return [str(_atomize(args[0][0])).startswith(str(_atomize(args[1][0])))
                    if args[0] and args[1] else False]
        if name == "ends-with":
            return [str(_atomize(args[0][0])).endswith(str(_atomize(args[1][0])))
                    if args[0] and args[1] else False]
        if name == "string-length":
            return [len(str(_atomize(args[0][0])))] if args[0] else [0]
        if name == "distinct-values":
            seen, out = set(), []
            for v in _atomize_seq(args[0]):
                key = v.epoch if isinstance(v, DateVal) else v
                if key not in seen:
                    seen.add(key)
                    out.append(v)
            return out
        if name in ("xs:date", "xs:dateTime"):
            text = str(_atomize(args[0][0]))
            for fmt in ("%Y-%m-%d", "%Y-%m-%dT%H:%M:%S"):
                try:
                    dt = _dt.datetime.strptime(text, fmt)
                    dt = dt.replace(tzinfo=_dt.timezone.utc)
                    return [DateVal.from_datetime(dt, text)]
                except ValueError:
                    continue
            raise QueryError(f"cannot parse {name}({text!r})")
        if name == "xs:integer":
            return [int(_atomize(args[0][0]))]
        raise QueryError(f"unknown function {name}()")


def query(text: str, root: Optional[PNode] = None, **variables) -> list:
    """Parse and run a query in one step."""
    return XQuery(text).run(root, **variables)
