"""The PADS compiler: descriptions -> Python parser modules.

Mirrors the paper's compile-don't-interpret design decision ("we compile
the PADS description rather than simply interpret it to reduce run-time
overhead", Section 1).  The ablation benchmark compares the paths.

Typical use::

    from repro.codegen import compile_generated
    gen = compile_generated(description_text)
    rep, pd = gen.parse(data, "entry_t")

``generate_source`` returns the module source (what ``padsc compile``
writes to disk); ``compile_generated`` compiles the description through
one of the registered codegen backends (:mod:`repro.codegen.backends`)
and wraps the module in a :class:`GeneratedDescription` with the same
API surface as the interpreted
:class:`~repro.core.api.CompiledDescription`.  ``backend`` picks the
compiler: ``"auto"`` (the default) follows the plan's per-description
``codegen_verdict`` — the AST-specializing backend when there is fast
code to specialize, the source emitter otherwise — while ``"source"``
and ``"ast"`` force one.
"""

from __future__ import annotations

from time import perf_counter
from typing import Iterator, Optional, Tuple

from .. import observe
from ..core.errors import ErrCode, PadsError, Pd
from ..core.io import RecordDiscipline, Source
from ..core.limits import ParseLimits, record_guard
from ..core.masks import Mask, P_CheckAndSet
from ..dsl.parser import parse_description
from ..dsl.typecheck import check_description
from ..plan import analyze
from .backends import CompiledModule, get_backend, select_backend
from .backends import load_source as load_module  # noqa: F401 - compat
from .backends.source import generate_source as _emit

__all__ = ["generate_source", "compile_generated", "GeneratedDescription"]


def generate_source(text: str, *, ambient: str = "ascii",
                    filename: str = "<description>",
                    check: bool = True, fastpath: bool = True) -> str:
    """Compile description source to Python module source.

    ``fastpath`` disables the plan-compiled record fast functions and
    fused literal runs (reference mode for differential testing).
    """
    desc = parse_description(text, filename)
    if check:
        check_description(desc, ambient)
    return _emit(desc, ambient, source_text=text, fastpath=fastpath)


def compile_generated(text: str, *, ambient: str = "ascii",
                      discipline: Optional[RecordDiscipline] = None,
                      filename: str = "<description>",
                      check: bool = True,
                      fastpath: bool = True,
                      limits: Optional[ParseLimits] = None,
                      backend: str = "auto") -> "GeneratedDescription":
    """Compile, load and wrap a parser module for ``text``."""
    desc = parse_description(text, filename)
    if check:
        check_description(desc, ambient)
    plan = analyze(desc, ambient)
    chosen, _reason = select_backend(plan, backend, fastpath=fastpath)
    compiled = chosen.compile(desc, plan, source_text=text,
                              fastpath=fastpath)
    return GeneratedDescription(compiled.module, discipline,
                                limits=limits, compiled=compiled)


class GeneratedDescription:
    """Wrapper giving a generated module the same API as the interpreted
    :class:`~repro.core.api.CompiledDescription` (parse / records / write /
    verify), so clients and tests can swap the two freely."""

    def __init__(self, module, discipline: Optional[RecordDiscipline] = None,
                 py_source: Optional[str] = None,
                 limits: Optional[ParseLimits] = None,
                 compiled: Optional[CompiledModule] = None):
        self.module = module
        if compiled is None:
            compiled = CompiledModule(module=module, backend="source",
                                      py_source=py_source or "")
        #: The backend artifact: provenance plus the ``dump()`` view.
        self.compiled = compiled
        #: Which codegen backend built the module ('source' or 'ast').
        self.backend = compiled.backend
        self._py_source: Optional[str] = None
        from ..core.io import NewlineRecords
        self.discipline = discipline or NewlineRecords()
        #: Resource budget attached to every source this description opens.
        self.limits = limits
        module.DISCIPLINE = self.discipline

    @property
    def py_source(self) -> str:
        """A readable rendering of the generated module: the emitted
        source (source backend) or a cached ``ast.unparse`` of the
        specialized tree (AST backend — the ``--dump`` debugging view,
        never what actually ran)."""
        if self._py_source is None:
            self._py_source = self.compiled.dump()
        return self._py_source

    def dump(self) -> str:
        return self.py_source

    # -- introspection ------------------------------------------------------

    @property
    def type_names(self):
        return list(self.module.TYPES)

    @property
    def source_type(self) -> Optional[str]:
        return self.module.SOURCE_TYPE

    def _gen(self, type_name: Optional[str]):
        name = type_name or self.module.SOURCE_TYPE
        if name is None or name not in self.module.TYPES:
            raise PadsError(f"no type named {name!r} in generated module")
        return self.module.TYPES[name]

    def node(self, name: Optional[str] = None):
        """Interpreted node twin (used by the structural tools)."""
        return self.module._interp().node(name)

    # -- sources ---------------------------------------------------------------

    def open(self, data) -> Source:
        if isinstance(data, Source):
            if data.limits is None and self.limits is not None:
                data.set_limits(self.limits)
            return data
        if isinstance(data, str):
            data = data.encode("latin-1")
        return Source.from_bytes(data, self.discipline, limits=self.limits)

    def open_file(self, path: str) -> Source:
        return Source.from_file(path, self.discipline, limits=self.limits)

    # -- API -----------------------------------------------------------------------

    def parse(self, data, type_name: Optional[str] = None,
              mask: Optional[Mask] = None, *params) -> Tuple[object, Pd]:
        if isinstance(type_name, Mask):
            type_name, mask = None, type_name
        gen = self._gen(type_name)
        src = self.open(data)
        obs = observe.CURRENT
        if obs is None:
            return gen.parse(src, mask or Mask(P_CheckAndSet), *params)
        start, t0 = src.pos, perf_counter()
        rep, pd = gen.parse(src, mask or Mask(P_CheckAndSet), *params)
        obs.record_parsed(type_name or self.source_type, pd, src.pos - start,
                          perf_counter() - t0, start=start,
                          record=src.record_idx)
        return rep, pd

    def parse_source(self, data, mask: Optional[Mask] = None):
        return self.parse(data, None, mask)

    def records(self, data, type_name: str,
                mask: Optional[Mask] = None) -> Iterator[Tuple[object, Pd]]:
        gen = self._gen(type_name)
        src = self.open(data)
        use_mask = mask or Mask(P_CheckAndSet)
        # One global load decides between the plain loop and the metered
        # one, keeping the disabled path free of per-record bookkeeping.
        obs = observe.CURRENT
        def parse_bare():
            # Non-record type parsed record-at-a-time: the record scoping
            # (and its limit guards) that a Precord wrapper would provide.
            if not src.begin_record():
                return None
            if src.limits is not None:
                pd = Pd()
                if not record_guard(src, pd):
                    src.note_errors(pd.nerr)
                    return gen.default(), pd
            rep, pd = gen.parse(src, use_mask)
            if not src.at_eor() and (use_mask.bits & 2) and pd.nerr == 0:
                pd.record_error(ErrCode.EXTRA_DATA_AT_EOR, src.here())
            src.end_record()
            if src.limits is not None:
                src.note_errors(pd.nerr)
            return rep, pd

        if obs is None:
            while not src.at_eof():
                if gen.is_record:
                    rep, pd = gen.parse(src, use_mask)
                    if pd.err_code == ErrCode.AT_EOF:
                        return
                else:
                    out = parse_bare()
                    if out is None:
                        return
                    rep, pd = out
                yield rep, pd
            return
        while not src.at_eof():
            start, t0 = src.pos, perf_counter()
            if gen.is_record:
                rep, pd = gen.parse(src, use_mask)
                if pd.err_code == ErrCode.AT_EOF:
                    return
            else:
                out = parse_bare()
                if out is None:
                    return
                rep, pd = out
            obs.record_parsed(type_name, pd, src.pos - start,
                              perf_counter() - t0, start=start,
                              record=src.record_idx)
            yield rep, pd

    def count_records(self, data) -> int:
        """Count records using only the record discipline (no field
        parsing) — the analogue of the paper's record-counting program."""
        src = self.open(data)
        count = 0
        while src.begin_record():
            src.end_record()
            count += 1
        return count

    # -- batch entry points --------------------------------------------------------
    #
    # Vectorized twins (:mod:`repro.batch`): the generated module carries
    # the columnar kernels in its ``BATCH`` table — the codegen twin of
    # the interpreter's materialised plan fragments.

    @property
    def plan(self):
        """The analyzed plan IR (via the cached interpreted twin)."""
        return self.module._interp().plan

    def batch_kernel(self, type_name: str):
        """``(static width, batch kernel)`` for a batch-eligible record
        type, or None."""
        return getattr(self.module, "BATCH", {}).get(type_name)

    def records_batch(self, data, type_name: str,
                      mask: Optional[Mask] = None, *,
                      strict: bool = False):
        """Vectorized record stream (``records`` twin)."""
        from ..batch import records_batch
        return records_batch(self, data, type_name, mask, strict=strict)

    def accumulate_batch(self, data, record_type: str,
                         mask: Optional[Mask] = None, *,
                         tracked: int = 1000, summaries: bool = False,
                         strict: bool = False):
        """Vectorized accumulation: returns ``(acc, tally)``."""
        from ..batch import accumulate_batch
        return accumulate_batch(self, data, record_type, mask,
                                tracked=tracked, summaries=summaries,
                                strict=strict)

    def count_records_batch(self, data, *, strict: bool = False) -> int:
        """Vectorized record counting (``count_records`` twin)."""
        from ..batch import count_records_batch
        return count_records_batch(self, data, strict=strict)

    # -- streaming entry points ---------------------------------------------------
    #
    # Bounded-memory twins (:mod:`repro.stream`): read pipes, sockets and
    # growing files through a sliding window, O(window) memory.

    def records_stream(self, data, type_name: str,
                       mask: Optional[Mask] = None, **opts):
        """Bounded-memory record stream (``records`` twin).  ``opts``:
        ``window``, ``follow``, ``poll_interval``, ``idle_timeout``."""
        from ..stream import records_stream
        return records_stream(self, data, type_name, mask, **opts)

    def accumulate_stream(self, data, record_type: str,
                          mask: Optional[Mask] = None, **opts):
        """Bounded-memory accumulation: returns ``(acc, tally)``."""
        from ..stream import accumulate_stream
        return accumulate_stream(self, data, record_type, mask, **opts)

    def count_records_stream(self, data, **opts) -> int:
        """Bounded-memory record counting (``count_records`` twin)."""
        from ..stream import count_records_stream
        return count_records_stream(self, data, **opts)

    # -- parallel entry points ----------------------------------------------------
    #
    # Chunked map-reduce twins (:mod:`repro.parallel`); workers rebuild
    # this generated module from its embedded SOURCE text, so the fast
    # path runs in every worker.

    @property
    def source_text(self) -> str:
        return self.module.SOURCE

    @property
    def ambient(self) -> str:
        return self.module.AMBIENT

    def records_parallel(self, data, type_name: str,
                         mask: Optional[Mask] = None,
                         *, jobs: Optional[int] = None):
        """Order-preserving parallel record stream (``records`` twin)."""
        from ..parallel import parallel_records
        return parallel_records(self, data, type_name, mask, jobs=jobs)

    def accumulate_parallel(self, data, record_type: str,
                            mask: Optional[Mask] = None,
                            *, jobs: Optional[int] = None,
                            tracked: int = 1000,
                            header_type: Optional[str] = None,
                            summaries: bool = False):
        """Parallel accumulation: returns ``(acc, header_acc, tally)``."""
        from ..parallel import parallel_accumulate
        return parallel_accumulate(self, data, record_type, mask, jobs=jobs,
                                   tracked=tracked, header_type=header_type,
                                   summaries=summaries)

    def count_records_parallel(self, data, *, jobs: Optional[int] = None) -> int:
        """Parallel record counting (``count_records`` twin)."""
        from ..parallel import parallel_count
        return parallel_count(self, data, jobs=jobs)

    def write(self, rep, type_name: Optional[str] = None, *params) -> bytes:
        gen = self._gen(type_name)
        out = []
        gen.write(rep, out, *params)
        return b"".join(out)

    def verify(self, rep, type_name: Optional[str] = None, *params) -> bool:
        return self._gen(type_name).verify(rep, *params)

    def default(self, type_name: Optional[str] = None, *params):
        return self._gen(type_name).default(*params)
