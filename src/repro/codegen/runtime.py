"""Runtime support for generated parser modules.

Generated modules (see :mod:`repro.codegen.backends`) inline their control
flow but share the error-path helpers here, mirroring how the paper's
generated ``.c`` files link against the PADS runtime library.
"""

from __future__ import annotations

from typing import List, Optional

from .. import observe
from ..core.errors import ErrCode, Pd, Pstate
from ..core.io import Source
from ..core.limits import note_limit, record_guard  # noqa: F401 - re-export
from ..core.types import MAX_RESYNC_SCAN


def lit_resync(src: Source, pd: Pd, raw: bytes, start: int) -> bool:
    """Recover from a missing literal: scan forward for it within scope.

    Returns True when resynchronised (PARTIAL); False means the literal is
    unreachable and the caller must panic to end-of-record.
    """
    at = src.scan_for(raw, src.scan_cap(MAX_RESYNC_SCAN))
    if at >= 0:
        observe.count("resync.literal")
        pd.record_error(ErrCode.MISSING_LITERAL, src.loc_from(start))
        src.pos = at + len(raw)
        return True
    pd.record_error(ErrCode.MISSING_LITERAL, src.loc_from(start), panic=True)
    src.skip_to_eor()
    return False


def skip_to_literal(src: Source, raw: bytes) -> bool:
    """Field-error recovery: skip garbage up to (and past) ``raw``."""
    at = src.scan_for(raw, src.scan_cap(MAX_RESYNC_SCAN))
    if at >= 0:
        observe.count("resync.field_skip")
        src.pos = at + len(raw)
        return True
    return False


def array_resync(src: Source, sep: Optional[bytes], term: Optional[bytes]) -> bool:
    """Skip junk to the next separator or terminator; False => panic."""
    candidates = []
    cap = src.scan_cap(MAX_RESYNC_SCAN)
    if sep is not None:
        at = src.scan_for(sep, cap)
        if at >= 0:
            candidates.append(at)
    if term is not None:
        at = src.scan_for(term, cap)
        if at >= 0:
            candidates.append(at)
    if candidates:
        observe.count("resync.array")
        src.pos = min(candidates)
        return True
    if src.in_record:
        src.skip_to_eor()
        return True
    return False


def convert_packed(raw: bytes, digits: int, decimals: int):
    """COMP-3 bytes -> value, or None when invalid (fast-path converter)."""
    nibbles = []
    for b in raw:
        nibbles.append(b >> 4)
        nibbles.append(b & 0x0F)
    sign = nibbles[-1]
    body = nibbles[:-1]
    if len(body) > digits:
        body = body[-digits:]
    if sign not in (0x0C, 0x0D, 0x0F) or any(n > 9 for n in body):
        return None
    value = 0
    for n in body:
        value = value * 10 + n
    if sign == 0x0D:
        value = -value
    if decimals:
        from fractions import Fraction
        return float(Fraction(value, 10 ** decimals))
    return value


def convert_zoned(raw: bytes, digits: int, decimals: int):
    """Zoned-decimal bytes -> value, or None when invalid."""
    value = 0
    negative = False
    last = len(raw) - 1
    for i, b in enumerate(raw):
        zone, digit = b & 0xF0, b & 0x0F
        if digit > 9:
            return None
        if zone == 0xF0:
            pass
        elif i == last and zone == 0xC0:
            pass
        elif i == last and zone == 0xD0:
            negative = True
        else:
            return None
        value = value * 10 + digit
    if negative:
        value = -value
    if decimals:
        from fractions import Fraction
        return float(Fraction(value, 10 ** decimals))
    return value


def begin_record_or_eof(src: Source, pd: Pd) -> bool:
    if src.in_record:
        return True
    if src.begin_record():
        return True
    pd.record_error(ErrCode.AT_EOF, src.here(), panic=True)
    return False
