"""The AST-specializing backend: per-description Python AST, compiled
directly.

The source backend emits module text and ``exec``'s it; this backend
works on the module as a Python **AST** and specializes it per
description before ``compile()``-ing the tree — the code object never
exists as source text (``ast.unparse`` is kept only for the ``--dump``
debugging path).  The staging mirrors llindstrom/pixel's ``expand.py``:
a template, then a sequence of tree transforms.

1. **Template** — the plan-driven emitter output for this description
   is parsed once with ``ast.parse``.  This is a forward lowering (plan
   -> source template -> tree), not a round trip: nothing is unparsed
   back to text on the compile path, and all general parse/write/verify
   code stays shared with the source backend, which is what keeps the
   two backends observationally identical by construction.

2. **``dosem`` specialization** — every record fast function
   ``_fp_<name>(_line, dosem)`` (and each auxiliary element reader
   ``_fpelt_*`` it calls) is cloned into two monomorphic variants with
   the ``dosem`` flag constant-folded away: ``_fp_<name>__sem`` keeps
   the semantic-constraint checks, ``_fp_<name>__nosem`` drops them
   entirely.  Calls into the reader symbol table with a now-constant
   ``dosem`` argument are redirected to the matching pre-specialized
   clone, so the per-element readers are monomorphic too.  The record
   wrapper's fast-path call site is rewritten to pick the variant from
   ``mask.bits & 4`` once per record.

3. **Constant folding** — branch tests decided by the bound constants
   are simplified (``dosem and not (lo <= v <= hi)`` becomes
   ``not (lo <= v <= hi)`` or disappears), and in fixed-width slicing
   functions — which open with a static ``len(_line) != <width>``
   guard, so every literal offset is proven in range — adjacent literal
   ``startswith`` probes are merged into one and single-byte probes are
   folded to integer subscript compares (``_line[k] != 0x7c``).

Everything outside the materialized fast paths is left untouched: the
general parsers, writers and accumulators are byte-for-byte the
template's, which the differential sweep then pins against the source
backend and the interpreter.
"""

from __future__ import annotations

import ast
import copy
from typing import Dict, List, Optional, Tuple

from ...dsl import ast as D
from ...plan import Plan
from .base import CompiledModule, load_tree
from .source import generate_source

#: Clone-name suffixes for the two ``dosem`` specializations.
SEM, NOSEM = "__sem", "__nosem"


def _suffix(dosem: bool) -> str:
    return SEM if dosem else NOSEM


# -- constant folding ---------------------------------------------------------


def _truth(expr: ast.expr) -> Optional[bool]:
    """The truth value of ``expr`` when statically known, else None.

    Only used on branch tests inside generated fast functions, whose
    operands are pure — so boolean-context truth is all that matters.
    """
    if isinstance(expr, ast.Constant):
        return bool(expr.value)
    if isinstance(expr, ast.UnaryOp) and isinstance(expr.op, ast.Not):
        t = _truth(expr.operand)
        return None if t is None else not t
    if isinstance(expr, ast.BoolOp):
        ts = [_truth(v) for v in expr.values]
        if isinstance(expr.op, ast.And):
            if any(t is False for t in ts):
                return False
            if all(t is True for t in ts):
                return True
        else:  # Or
            if any(t is True for t in ts):
                return True
            if all(t is False for t in ts):
                return False
    return None


class _BindDosem(ast.NodeTransformer):
    """Replace reads of the ``dosem`` flag with a constant."""

    def __init__(self, value: bool):
        self.value = value

    def visit_Name(self, node: ast.Name):
        if node.id == "dosem" and isinstance(node.ctx, ast.Load):
            return ast.copy_location(ast.Constant(self.value), node)
        return node


class _FoldBranches(ast.NodeTransformer):
    """Simplify branches whose tests the bound constants decide."""

    def _simplify(self, test: ast.expr) -> ast.expr:
        if isinstance(test, ast.BoolOp):
            keep: List[ast.expr] = []
            for value in (self._simplify(v) for v in test.values):
                t = _truth(value)
                if isinstance(test.op, ast.And) and t is True:
                    continue  # `True and x` == x
                if isinstance(test.op, ast.Or) and t is False:
                    continue  # `False or x` == x
                keep.append(value)
            if not keep:
                return ast.copy_location(
                    ast.Constant(isinstance(test.op, ast.And)), test)
            if len(keep) == 1:
                return keep[0]
            return ast.copy_location(
                ast.BoolOp(op=test.op, values=keep), test)
        return test

    def visit_If(self, node: ast.If):
        self.generic_visit(node)
        node.test = self._simplify(node.test)
        t = _truth(node.test)
        if t is True:
            return node.body
        if t is False:
            return node.orelse or None
        return node


def _repair_empty_bodies(fn: ast.FunctionDef) -> None:
    """Folding may empty a suite Python requires non-empty; pad it."""
    for node in ast.walk(fn):
        for attr in ("body", "orelse", "finalbody"):
            suite = getattr(node, attr, None)
            if suite == [] and attr == "body":
                suite.append(ast.Pass())


# -- literal byte probes ------------------------------------------------------


def _probe(stmt: ast.stmt) -> Optional[Tuple[bytes, int]]:
    """Match a literal probe — ``if not _line.startswith(b'...', k):
    return None`` or its folded single-byte form ``if _line[k] != c:
    return None`` — and return ``(literal, offset)``; None when the
    statement is anything else."""
    if not (isinstance(stmt, ast.If) and not stmt.orelse
            and len(stmt.body) == 1):
        return None
    ret = stmt.body[0]
    if not (isinstance(ret, ast.Return) and isinstance(ret.value, ast.Constant)
            and ret.value.value is None):
        return None
    test = stmt.test
    if (isinstance(test, ast.Compare) and len(test.ops) == 1
            and isinstance(test.ops[0], ast.NotEq)
            and isinstance(test.left, ast.Subscript)
            and isinstance(test.left.value, ast.Name)
            and test.left.value.id == "_line"
            and isinstance(test.left.slice, ast.Constant)
            and isinstance(test.left.slice.value, int)
            and isinstance(test.comparators[0], ast.Constant)
            and isinstance(test.comparators[0].value, int)):
        return (bytes([test.comparators[0].value]), test.left.slice.value)
    if not (isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not)):
        return None
    call = test.operand
    if not (isinstance(call, ast.Call) and isinstance(call.func, ast.Attribute)
            and call.func.attr == "startswith"
            and isinstance(call.func.value, ast.Name)
            and call.func.value.id == "_line"
            and len(call.args) == 2 and not call.keywords
            and isinstance(call.args[0], ast.Constant)
            and isinstance(call.args[0].value, bytes)
            and isinstance(call.args[1], ast.Constant)
            and isinstance(call.args[1].value, int)):
        return None
    return call.args[0].value, call.args[1].value


def _make_probe(template: ast.stmt, lit: bytes, off: int) -> ast.stmt:
    """``if not _line.startswith(lit, off): return None`` — or, for a
    single byte, the cheaper ``if _line[off] != <int>: return None``."""
    if len(lit) == 1:
        test: ast.expr = ast.Compare(
            left=ast.Subscript(value=ast.Name("_line", ast.Load()),
                               slice=ast.Constant(off), ctx=ast.Load()),
            ops=[ast.NotEq()], comparators=[ast.Constant(lit[0])])
    else:
        test = ast.UnaryOp(op=ast.Not(), operand=ast.Call(
            func=ast.Attribute(value=ast.Name("_line", ast.Load()),
                               attr="startswith", ctx=ast.Load()),
            args=[ast.Constant(lit), ast.Constant(off)], keywords=[]))
    return ast.copy_location(
        ast.If(test=test, body=[ast.Return(ast.Constant(None))], orelse=[]),
        template)


def _slice_guard_width(fn: ast.FunctionDef) -> Optional[int]:
    """The static record width when ``fn`` opens with the slicing
    backend's ``if len(_line) != N: return None`` guard, else None."""
    body = fn.body
    if body and isinstance(body[0], ast.Expr):  # docstring
        body = body[1:]
    if not body or not isinstance(body[0], ast.If):
        return None
    test = body[0].test
    if (isinstance(test, ast.Compare) and len(test.ops) == 1
            and isinstance(test.ops[0], ast.NotEq)
            and isinstance(test.left, ast.Call)
            and isinstance(test.left.func, ast.Name)
            and test.left.func.id == "len"
            and isinstance(test.comparators[0], ast.Constant)
            and isinstance(test.comparators[0].value, int)):
        return test.comparators[0].value
    return None


def _fold_probes(fn: ast.FunctionDef) -> None:
    """Merge runs of adjacent literal probes and byte-compare the
    single-byte ones.  Only called on fixed-width slicing fast
    functions, whose leading length guard proves every probe offset in
    range (so ``_line[k]`` can never raise where ``startswith`` would
    have returned False)."""
    width = _slice_guard_width(fn)
    if width is None:
        return

    def rewrite(suite: List[ast.stmt]) -> List[ast.stmt]:
        out: List[ast.stmt] = []
        for stmt in suite:
            for attr in ("body", "orelse", "finalbody"):
                inner = getattr(stmt, attr, None)
                if inner:
                    setattr(stmt, attr, rewrite(inner))
            p = _probe(stmt)
            if p is not None and p[1] + len(p[0]) <= width:
                if out:
                    q = _probe(out[-1])
                    if q is not None and q[1] + len(q[0]) == p[1]:
                        out[-1] = _make_probe(stmt, q[0] + p[0], q[1])
                        continue
                out.append(_make_probe(stmt, p[0], p[1]))
                continue
            out.append(stmt)
        return out

    fn.body = rewrite(fn.body)


# -- reader specialization ----------------------------------------------------


class _RedirectReaders(ast.NodeTransformer):
    """Point calls whose trailing ``dosem`` argument is now a constant
    at the matching monomorphic clone from the reader symbol table."""

    def __init__(self, symtab: Dict[str, ast.FunctionDef]):
        self.symtab = symtab

    def visit_Call(self, node: ast.Call):
        self.generic_visit(node)
        if (isinstance(node.func, ast.Name) and node.func.id in self.symtab
                and node.args and not node.keywords
                and isinstance(node.args[-1], ast.Constant)
                and isinstance(node.args[-1].value, bool)):
            node.func = ast.copy_location(
                ast.Name(node.func.id + _suffix(node.args[-1].value),
                         ast.Load()), node.func)
            node.args = node.args[:-1]
        return node


def _strip_docstring(fn: ast.FunctionDef) -> None:
    if (fn.body and isinstance(fn.body[0], ast.Expr)
            and isinstance(fn.body[0].value, ast.Constant)
            and isinstance(fn.body[0].value.value, str)):
        del fn.body[0]


def _specialize_reader(fn: ast.FunctionDef, dosem: bool,
                       symtab: Dict[str, ast.FunctionDef],
                       fold_literals: bool) -> ast.FunctionDef:
    """One monomorphic clone of a ``(.., dosem)`` reader function."""
    clone = copy.deepcopy(fn)
    clone.name = fn.name + _suffix(dosem)
    assert clone.args.args and clone.args.args[-1].arg == "dosem"
    del clone.args.args[-1]
    _strip_docstring(clone)
    _BindDosem(dosem).visit(clone)
    _FoldBranches().visit(clone)
    _RedirectReaders(symtab).visit(clone)
    if fold_literals:
        _fold_probes(clone)
    _repair_empty_bodies(clone)
    return clone


class _RewriteFastCall(ast.NodeTransformer):
    """In a record wrapper, split the polymorphic fast-path call

        _rep = _fp_<name>(src.record_bytes(), (mask.bits & 4) != 0)

    into a two-way branch on ``mask.bits & 4`` calling the monomorphic
    clones, hoisting the per-record ``dosem`` computation out of the
    fast function entirely."""

    def __init__(self, fast_names: Dict[str, str]):
        self.fast_names = fast_names  # fast fn name -> itself (a set-ish map)
        self.rewrote = 0

    def visit_Assign(self, node: ast.Assign):
        call = node.value
        if not (isinstance(call, ast.Call) and isinstance(call.func, ast.Name)
                and call.func.id in self.fast_names
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and node.targets[0].id == "_rep"):
            return node
        fast = call.func.id
        line_arg = call.args[0]

        def variant(dosem: bool) -> ast.stmt:
            return ast.Assign(
                targets=[ast.Name("_rep", ast.Store())],
                value=ast.Call(func=ast.Name(fast + _suffix(dosem),
                                             ast.Load()),
                               args=[copy.deepcopy(line_arg)], keywords=[]))

        gate = ast.BinOp(
            left=ast.Attribute(value=ast.Name("mask", ast.Load()),
                               attr="bits", ctx=ast.Load()),
            op=ast.BitAnd(), right=ast.Constant(4))
        self.rewrote += 1
        return ast.copy_location(
            ast.If(test=gate, body=[variant(True)], orelse=[variant(False)]),
            node)


# -- the backend --------------------------------------------------------------


def specialize(desc: D.Description, plan: Plan, *, source_text: str = "",
               fastpath: bool = True) -> ast.Module:
    """Build the specialized module AST for ``desc`` under ``plan``."""
    template = generate_source(desc, plan.ambient, source_text=source_text,
                               plan=plan, fastpath=fastpath)
    tree = ast.parse(template)
    if fastpath:
        _specialize_tree(tree, plan)
    ast.fix_missing_locations(tree)
    return tree


def _specialize_tree(tree: ast.Module, plan: Plan) -> None:
    fast_names = {dp.fast_fn[0] for dp in plan.decls.values()
                  if dp.verdict.eligible and dp.fast_fn is not None}
    slicing = {dp.fast_fn[0] for dp in plan.decls.values()
               if dp.verdict.eligible and dp.fast_fn is not None
               and "slicing" in dp.verdict.reason}
    if not fast_names:
        return

    # The reader symbol table: the record fast functions plus every
    # auxiliary element reader they emitted (all take a trailing
    # ``dosem`` flag and are monomorphized against it).
    symtab: Dict[str, ast.FunctionDef] = {}
    for node in tree.body:
        if isinstance(node, ast.FunctionDef) and (
                node.name in fast_names
                or node.name.startswith("_fpelt_")):
            if node.args.args and node.args.args[-1].arg == "dosem":
                symtab[node.name] = node

    body: List[ast.stmt] = []
    for node in tree.body:
        if isinstance(node, ast.FunctionDef) and node.name in symtab:
            fold = node.name in slicing
            body.append(_specialize_reader(node, True, symtab, fold))
            body.append(_specialize_reader(node, False, symtab, fold))
            continue  # the polymorphic original is dead code: drop it
        body.append(node)
    tree.body = body

    rewriter = _RewriteFastCall({name: name for name in fast_names})
    rewriter.visit(tree)
    # Every fast function the plan materialized has exactly one wrapper
    # call site; a miss means the emitter's shape changed under us.
    assert rewriter.rewrote == len(fast_names), \
        (rewriter.rewrote, sorted(fast_names))


class AstBackend:
    """The :class:`~repro.codegen.backends.base.Compilable` AST backend."""

    name = "ast"

    def compile(self, desc: D.Description, plan: Plan, *,
                source_text: str = "", fastpath: bool = True,
                module_name: Optional[str] = None) -> CompiledModule:
        tree = specialize(desc, plan, source_text=source_text,
                          fastpath=fastpath)
        module = load_tree(tree, module_name)
        return CompiledModule(module=module, backend=self.name,
                              py_source=None, tree=tree)
