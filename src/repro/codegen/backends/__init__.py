"""Codegen backends: interchangeable compilers over the plan IR.

The plan layer (:mod:`repro.plan`) analyzes a description once; a
*backend* turns that analyzed plan into an executable parser module.
Backends implement the tiny :class:`Compilable` protocol
(:mod:`repro.codegen.backends.base`) and are registered here:

``source``
    The original string emitter (:mod:`repro.codegen.backends.source`):
    generates module source text and ``exec``'s it.  Always available,
    handles every description.

``ast``
    The AST-specializing backend
    (:mod:`repro.codegen.backends.astspec`): specializes the module as
    a Python AST — monomorphic ``dosem`` clones of the record fast
    functions, constant-folded branch tests, merged/byte-compare
    literal probes — and ``compile()``s the tree directly.

Selection is per-description and plan-driven: ``select_backend`` reads
the ``codegen_verdict`` the plan records next to its fastpath/batch
verdicts and picks ``ast`` only when there is straight-line fast-path
code to specialize.  ``auto`` is the default everywhere; explicit
``backend="source"``/``"ast"`` overrides are threaded through
:func:`repro.codegen.compile_generated`,
:func:`repro.core.api.compile_description` and ``padsc --backend``.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ...plan import Plan
from .astspec import AstBackend
from .base import Compilable, CompiledModule, load_source, load_tree
from .source import SourceBackend

__all__ = [
    "Compilable", "CompiledModule", "AstBackend", "SourceBackend",
    "BACKENDS", "get_backend", "select_backend",
    "load_source", "load_tree",
]

#: The backend registry; every entry satisfies :class:`Compilable`.
BACKENDS: Dict[str, Compilable] = {
    backend.name: backend for backend in (SourceBackend(), AstBackend())
}


def get_backend(name: str) -> Compilable:
    """The registered backend called ``name`` ('source' or 'ast')."""
    try:
        return BACKENDS[name]
    except KeyError:
        known = ", ".join(sorted(BACKENDS))
        raise ValueError(
            f"unknown codegen backend {name!r} (known: {known})") from None


def select_backend(plan: Plan, choice: str = "auto",
                   fastpath: bool = True) -> Tuple[Compilable, str]:
    """Resolve ``choice`` to a backend, returning ``(backend, reason)``.

    ``auto`` follows the plan's per-declaration ``codegen_verdict``:
    the AST backend when any declaration carries specializable fast
    code, the source backend otherwise (or when fast paths are disabled
    — reference mode has nothing to specialize).
    """
    if choice != "auto":
        return get_backend(choice), f"forced by backend={choice!r}"
    if not fastpath:
        return BACKENDS["source"], "reference mode (fastpath disabled)"
    eligible = [name for name, dp in plan.decls.items()
                if dp.codegen_verdict.eligible]
    if eligible:
        return (BACKENDS["ast"],
                f"plan: specializable fast code in {', '.join(eligible)}")
    return BACKENDS["source"], "plan: no declaration has fast code"
