"""The ``Compilable`` backend protocol and its compiled-module artifact.

A codegen backend turns one analyzed plan (plus the checked description
it came from) into an executable Python module carrying the generated
parser surface (``TYPES``, ``BATCH``, ``SOURCE`` ...).  Backends differ
only in *how* they build that module — the source backend emits and
``exec``'s module source text, the AST backend specializes a Python AST
and compiles the tree directly — so the protocol is deliberately tiny:
a ``name`` and one ``compile`` method over plan nodes.
"""

from __future__ import annotations

import ast as _ast
import types as _types
from dataclasses import dataclass, field
from typing import Optional, Protocol, runtime_checkable

from ...dsl import ast as D
from ...plan import Plan

_counter = 0


def _fresh_module(module_name: Optional[str] = None) -> _types.ModuleType:
    """An empty module with a unique name for generated code to live in."""
    global _counter
    if module_name is None:
        _counter += 1
        module_name = f"_pads_generated_{_counter}"
    module = _types.ModuleType(module_name)
    module.__dict__["__name__"] = module_name
    return module


def load_source(py_source: str,
                module_name: Optional[str] = None) -> _types.ModuleType:
    """``exec`` a generated module's source and return the module object."""
    module = _fresh_module(module_name)
    code = compile(py_source, f"<{module.__name__}>", "exec")
    exec(code, module.__dict__)  # noqa: S102 - code we just generated
    return module


def load_tree(tree: _ast.Module,
              module_name: Optional[str] = None) -> _types.ModuleType:
    """Compile a specialized module AST and return the module object —
    the tree is never round-tripped through source text."""
    module = _fresh_module(module_name)
    code = compile(tree, f"<{module.__name__} ast>", "exec")
    exec(code, module.__dict__)  # noqa: S102 - code we just generated
    return module


@dataclass
class CompiledModule:
    """What a backend hands back: the loaded module plus provenance.

    ``py_source`` is the module source for backends that have one (the
    source backend); the AST backend sets it to ``None`` and exposes its
    specialized tree instead.  ``dump()`` always produces *something*
    readable: the source text when it exists, otherwise ``ast.unparse``
    of the tree (the debugging path — never on the compile path).
    """

    module: _types.ModuleType
    backend: str
    py_source: Optional[str] = None
    tree: Optional[_ast.Module] = field(default=None, repr=False)

    def dump(self) -> str:
        if self.py_source is not None:
            return self.py_source
        if self.tree is None:
            raise ValueError("compiled module carries neither source nor AST")
        return (f"# {self.backend} backend: ast.unparse of the specialized "
                f"module tree (debugging view)\n" + _ast.unparse(self.tree))


@runtime_checkable
class Compilable(Protocol):
    """A codegen backend: compiles plan nodes to a loaded parser module."""

    name: str

    def compile(self, desc: D.Description, plan: Plan, *,
                source_text: str = "", fastpath: bool = True,
                module_name: Optional[str] = None) -> CompiledModule:
        """Build the generated module for ``desc`` under ``plan``."""
        ...
