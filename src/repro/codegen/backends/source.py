"""Compile an analyzed plan to Python source.

The paper's compiler turns a description into ``.h``/``.c`` files; this
emitter turns one into a single importable Python module.  It consumes
the plan IR (:mod:`repro.plan`) — the same analyzed middle layer the
interpreter binds from — so encodings, resolved base types, literal
byte forms, fused literal runs and fastpath verdicts are derived once,
not re-computed here.  Per declared type it generates:

* ``<name>_parse(src, mask, *params)`` — a specialised parser with the
  struct/union/array control flow, constraint checks, masks and error
  recovery *inlined* (constraints are compiled to Python expressions via
  :mod:`repro.expr.pycompile`),
* ``<name>_write(rep, out, *params)``, ``<name>_verify(rep, *params)``
  and ``<name>_default(*params)``,
* the Figure 6 tool surface: ``<name>_m_init``, ``<name>_read``,
  ``<name>_write2io``, ``<name>_fmt2io``, ``<name>_write_xml_2io``,
  ``<name>_acc_init`` / ``_acc_add`` / ``_acc_report``,
  ``<name>_node_new`` / ``<name>_node_kthChild``.

Generated parsers must be observationally identical to the interpreted
combinators in :mod:`repro.core.types`; ``tests/test_codegen.py`` holds
property tests pinning the two against each other.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ...dsl import ast as D
from ...expr import ast as E
from ...expr.pycompile import compile_function
from ...plan import analyze
from ...plan.ir import (
    ArrayPlan,
    BaseUse,
    ComputeItem,
    DataItem,
    DeclPlan,
    EnumPlan,
    LitItem,
    OptUse,
    Plan,
    RefUse,
    RegexUse,
    StructPlan,
    SwitchPlan,
    TypedefPlan,
    UnionPlan,
    Use,
)
from .base import CompiledModule, load_source


class _W:
    """Indented source writer."""

    def __init__(self):
        self.lines: List[str] = []
        self.depth = 0

    def w(self, text: str = "") -> None:
        if not text:
            self.lines.append("")
        else:
            self.lines.append("    " * self.depth + text)

    def block(self, header: str) -> "_Indent":
        self.w(header)
        return _Indent(self)

    def source(self) -> str:
        return "\n".join(self.lines) + "\n"


class _Indent:
    def __init__(self, w: _W):
        self.w = w

    def __enter__(self):
        self.w.depth += 1

    def __exit__(self, *exc):
        self.w.depth -= 1


class Emitter:
    def __init__(self, desc: D.Description, ambient: str = "ascii",
                 module_name: str = "pads_generated",
                 source_text: str = "", plan: Optional[Plan] = None,
                 fastpath: bool = True):
        self.desc = desc
        self.ambient = ambient
        self.plan = plan if plan is not None else analyze(desc, ambient)
        self.encoding = self.plan.encoding
        self.module_name = module_name
        self.source_text = source_text
        self.fastpath = fastpath
        self.functions = self.plan.functions
        self.enum_literals = self.plan.enum_literals
        self._const_count = 0
        self._consts: List[str] = []  # module-level constant definitions
        self._tmp = 0
        self._fastpaths: Dict[str, str] = {}  # type name -> fast fn name
        #: type name -> (static width, batch kernel name); the BATCH table.
        self._batchpaths: Dict[str, Tuple[int, str]] = {}

    # -- small helpers ------------------------------------------------------

    def tmp(self, stem: str) -> str:
        self._tmp += 1
        return f"_{stem}{self._tmp}"

    def const(self, expr: str) -> str:
        name = f"_c{self._const_count}"
        self._const_count += 1
        self._consts.append(f"{name} = {expr}")
        return name

    def resolver(self, scope: Dict[str, str]):
        return self.plan.resolver(scope)

    def cexpr(self, expr: E.Expr, scope: Dict[str, str]) -> str:
        return self.plan.cexpr(expr, scope)

    # -- type uses -------------------------------------------------------------

    def static_const(self, use: BaseUse) -> Optional[str]:
        """Module-level constant for a statically resolved base-type use."""
        if use.static is None:
            return None
        return self.const(f"_resolve({use.name!r}, {use.static_args!r}, "
                          "AMBIENT)")

    def emit_use_parse(self, w: _W, use: Use, mask_expr: str,
                       val: str, pd: str, scope: Dict[str, str]) -> None:
        """Emit code assigning ``val`` (value) and ``pd`` (child Pd) for a
        parse of the type-use ``use`` at the cursor."""
        if isinstance(use, OptUse):
            inner_val = self.tmp("ov")
            inner_pd = self.tmp("opd")
            state = self.tmp("st")
            w.w(f"{state} = src.mark()")
            self.emit_use_parse(w, use.inner, mask_expr, inner_val, inner_pd, scope)
            with w.block(f"if {inner_pd}.nerr == 0:"):
                w.w(f"src.commit({state})")
                w.w(f"{pd} = Pd()")
                w.w(f"{pd}.tag = 'some'")
                w.w(f"{val} = {inner_val}")
            with w.block("else:"):
                w.w(f"src.restore({state})")
                w.w(f"{pd} = Pd()")
                w.w(f"{pd}.tag = 'none'")
                w.w(f"{val} = None")
            return

        if isinstance(use, RegexUse):
            inst = self.const(f"_RegexME({use.pattern!r})")
            self._emit_base_parse(w, inst, mask_expr, val, pd)
            return

        if isinstance(use, RefUse):
            name, args = use.name, use.args
            arg_code = ", ".join(self.cexpr(a, scope) for a in args)
            call = f"{name}_parse(src, {mask_expr}" + (f", {arg_code}" if arg_code else "") + ")"
            if args:
                with w.block("try:"):
                    w.w(f"{val}, {pd} = {call}")
                with w.block("except Exception:"):
                    w.w(f"{val} = None")
                    w.w(f"{pd} = Pd()")
                    w.w(f"{pd}.record_error(ErrCode.USER_CONSTRAINT_VIOLATION, "
                        "src.here(), panic=True)")
            else:
                w.w(f"{val}, {pd} = {call}")
            return

        assert isinstance(use, BaseUse)
        static = self.static_const(use)
        if static is not None:
            self._emit_base_parse(w, static, mask_expr, val, pd)
            return

        # Dynamic base-type parameters.
        inst = self.tmp("bt")
        arg_code = ", ".join(self.cexpr(a, scope) for a in use.args)
        w.w(f"{pd} = Pd()")
        with w.block("try:"):
            w.w(f"{inst} = _resolve({use.name!r}, ({arg_code},), AMBIENT)")
        with w.block("except Exception:"):
            w.w(f"{inst} = None")
            w.w(f"{pd}.record_error(ErrCode.USER_CONSTRAINT_VIOLATION, "
                "src.here(), panic=True)")
            w.w(f"{val} = None")
        with w.block(f"if {inst} is not None:"):
            start = self.tmp("sp")
            code = self.tmp("cd")
            w.w(f"{start} = src.pos")
            w.w(f"{val}, {code} = {inst}.parse(src, bool({mask_expr}.bits & 4))")
            with w.block(f"if {code}:"):
                w.w(f"{pd}.record_error({code}, src.loc_from({start}))")
            with w.block(f"elif not ({mask_expr}.bits & 1):"):
                w.w(f"{val} = {inst}.default()")

    def _emit_base_parse(self, w: _W, inst: str, mask_expr: str,
                         val: str, pd: str) -> None:
        start = self.tmp("sp")
        code = self.tmp("cd")
        w.w(f"{start} = src.pos")
        w.w(f"{val}, {code} = {inst}.parse(src, bool({mask_expr}.bits & 4))")
        w.w(f"{pd} = Pd()")
        with w.block(f"if {code}:"):
            w.w(f"{pd}.record_error({code}, src.loc_from({start}))")
        with w.block(f"elif not ({mask_expr}.bits & 1):"):
            w.w(f"{val} = {inst}.default()")

    def emit_use_write(self, w: _W, use: Use, val: str,
                       scope: Dict[str, str]) -> None:
        if isinstance(use, OptUse):
            with w.block(f"if {val} is not None:"):
                self.emit_use_write(w, use.inner, val, scope)
            return
        if isinstance(use, RegexUse):
            inst = self.const(f"_RegexME({use.pattern!r})")
            w.w(f"out.append({inst}.write({val}))")
            return
        if isinstance(use, RefUse):
            arg_code = ", ".join(self.cexpr(a, scope) for a in use.args)
            w.w(f"{use.name}_write({val}, out" + (f", {arg_code}" if arg_code else "") + ")")
            return
        assert isinstance(use, BaseUse)
        static = self.static_const(use)
        if static is not None:
            w.w(f"out.append({static}.write({val}))")
            return
        arg_code = ", ".join(self.cexpr(a, scope) for a in use.args)
        w.w(f"out.append(_resolve({use.name!r}, ({arg_code},), AMBIENT).write({val}))")

    def emit_use_verify(self, w: _W, use: Use, val: str,
                        scope: Dict[str, str]) -> None:
        """Emit ``return False`` paths for a nested verification."""
        if isinstance(use, OptUse):
            sub = _W()
            sub.depth = w.depth + 1
            self.emit_use_verify(sub, use.inner, val, scope)
            if sub.lines:
                w.w(f"if {val} is not None:")
                w.lines.extend(sub.lines)
            return
        if isinstance(use, RefUse):
            arg_code = ", ".join(self.cexpr(a, scope) for a in use.args)
            call = f"{use.name}_verify({val}" + (f", {arg_code}" if arg_code else "") + ")"
            with w.block(f"if not {call}:"):
                w.w("return False")

    def use_default_expr(self, use: Use, scope: Dict[str, str]) -> str:
        if isinstance(use, OptUse):
            return "None"
        if isinstance(use, RegexUse):
            return "''"
        if isinstance(use, RefUse):
            arg_code = ", ".join(self.cexpr(a, scope) for a in use.args)
            return f"_safe_default(lambda: {use.name}_default({arg_code}))"
        assert isinstance(use, BaseUse)
        static = self.static_const(use)
        if static is not None:
            return f"{static}.default()"
        arg_code = ", ".join(self.cexpr(a, scope) for a in use.args)
        return (f"_safe_default(lambda: _resolve({use.name!r}, ({arg_code},), "
                "AMBIENT).default())")

    # -- declarations -----------------------------------------------------------

    def emit_module(self) -> str:
        w = _W()
        body = _W()
        for kind, entry in self.plan.order:
            body.w()
            body.w()
            if kind == "func":
                self.emit_function(body, entry)
                continue
            dp = entry
            if self.fastpath and dp.verdict.eligible and dp.fast_fn is not None:
                fn_name, lines = dp.fast_fn
                self._fastpaths[dp.name] = fn_name
                body.lines.extend(lines)
                body.w()
            if self.fastpath and dp.batch_verdict.eligible \
                    and dp.batch_fn is not None:
                bt_name, bt_lines = dp.batch_fn
                self._batchpaths[dp.name] = (dp.width, bt_name)
                body.lines.extend(bt_lines)
                body.w()
            if isinstance(dp, StructPlan):
                self.emit_struct(body, dp)
            elif isinstance(dp, SwitchPlan):
                self.emit_switch_union(body, dp)
            elif isinstance(dp, UnionPlan):
                self.emit_union(body, dp)
            elif isinstance(dp, ArrayPlan):
                self.emit_array(body, dp)
            elif isinstance(dp, EnumPlan):
                self.emit_enum(body, dp)
            elif isinstance(dp, TypedefPlan):
                self.emit_typedef(body, dp)
            self.emit_tool_surface(body, dp)

        self._emit_preamble(w)
        for line in self._consts:
            w.w(line)
        w.lines.extend(body.lines)
        self._emit_registry(w)
        return w.source()

    def _emit_preamble(self, w: _W) -> None:
        w.w(f'"""Generated by padsc (repro PADS compiler) — do not edit.')
        w.w("")
        w.w(f"Source description: {self.desc.filename}")
        w.w(f"Ambient coding: {self.ambient}")
        w.w('"""')
        w.w("")
        w.w("from repro.core.errors import ErrCode, Loc, Pd, Pstate")
        w.w("from repro.core.io import Source")
        w.w("from repro.core.masks import Mask, MaskFlag, P_CheckAndSet")
        w.w("from repro.core.values import DateVal, EnumVal, FloatVal, Rec, UnionVal")
        w.w("from repro.plan import resolve_base as _resolve")
        w.w("from repro.core.basetypes.strings import RegexMatchString as _RegexME")
        w.w("from repro.expr.runtime import cdiv as _cdiv, cmod as _cmod, "
            "getmember as _member, builtins_table as _B")
        w.w("from repro.codegen.runtime import (lit_resync as _lit_resync, "
            "skip_to_literal as _skip_to_lit, array_resync as _array_resync, "
            "convert_packed as _fp_packed, convert_zoned as _fp_zoned, "
            "record_guard as _record_guard, note_limit as _note_limit)")
        w.w("from repro.core.basetypes.temporal import parse_date_text "
            "as _parse_date_text")
        w.w("")
        w.w(f"AMBIENT = {self.ambient!r}")
        w.w("DISCIPLINE = None  # set by the loader; None means newline records")
        w.w(f"SOURCE = {self.source_text!r}")
        w.w("_INTERP = None")
        w.w("")
        with w.block("def _interp():"):
            w.w('"""Interpreted twin used by the structural tools '
                '(fmt/xml/acc/query)."""')
            w.w("global _INTERP")
            with w.block("if _INTERP is None:"):
                w.w("from repro.core.api import compile_description")
                w.w("_INTERP = compile_description(SOURCE, ambient=AMBIENT, "
                    "discipline=DISCIPLINE)")
            w.w("return _INTERP")
        w.w("")
        with w.block("def _safe_default(thunk):"):
            with w.block("try:"):
                w.w("return thunk()")
            with w.block("except Exception:"):
                w.w("return None")
        w.w("")
        with w.block("def _fp_parse_date(text):"):
            w.w('"""Fast-path date conversion: datetime -> DateVal."""')
            w.w("_dt = _parse_date_text(text)")
            with w.block("if _dt is None:"):
                w.w("return None")
            w.w("return DateVal.from_datetime(_dt, text)")
        w.w("")
        for name, (lit, code, phys) in self.enum_literals.items():
            w.w(f"E_{name} = EnumVal({lit!r}, {code}, {phys!r})")
        w.w("")

    def emit_function(self, w: _W, decl: D.FuncDecl) -> None:
        src = compile_function(decl.func, self.resolver({}), name_prefix="fn_")
        for line in src.split("\n"):
            w.w(line)

    def params_sig(self, decl: DeclPlan) -> str:
        return "".join(f", p_{p}" for _, p in decl.params)

    def params_scope(self, decl: DeclPlan) -> Dict[str, str]:
        return {p: f"p_{p}" for _, p in decl.params}

    def _mask_param(self, decl: DeclPlan) -> str:
        # A required `mask` cannot be defaulted when value parameters
        # follow it positionally.
        return "mask" if decl.params else "mask=None"

    def _default_call(self, decl: DeclPlan) -> str:
        args = ", ".join(f"p_{p}" for _, p in decl.params)
        return f"_safe_default(lambda: {decl.name}_default({args}))"

    def _begin_depth_guard(self, w: _W, decl: DeclPlan) -> "_Indent":
        """Open a compound parse body: fresh pd, ``max_depth`` entry check,
        and a ``try:`` whose matching ``finally:`` (written by
        :meth:`_end_depth_guard`) releases the nesting level on every exit
        path.  Mirrors the interpreter's ``_depth_guarded`` wrapper."""
        w.w("pd = Pd()")
        with w.block("if src.limits is not None and not src.push_depth(pd):"):
            w.w(f"return {self._default_call(decl)}, pd")
        cm = w.block("try:")
        cm.__enter__()
        return cm

    def _end_depth_guard(self, w: _W, cm: "_Indent") -> None:
        cm.__exit__(None, None, None)
        with w.block("finally:"):
            w.w("if src.limits is not None: src.pop_depth()")

    def _emit_record_wrapper(self, w: _W, decl: DeclPlan) -> str:
        """For Precord types, the public parse wraps an inner body."""
        name = decl.name
        sig = self.params_sig(decl)
        args = "".join(f", p_{p}" for _, p in decl.params)
        fast = self._fastpaths.get(name)
        with w.block(f"def {name}_parse(src, {self._mask_param(decl)}{sig}):"):
            w.w(f'"""Parse one {name} (Precord: occupies a whole record)."""')
            w.w("if mask is None: mask = Mask(P_CheckAndSet)")
            with w.block("if src.in_record:"):
                w.w(f"return _{name}_body(src, mask{args})")
            with w.block("if not src.begin_record():"):
                w.w("pd = Pd()")
                w.w("pd.record_error(ErrCode.AT_EOF, src.here(), panic=True)")
                w.w(f"return _safe_default(lambda: {name}_default({args.lstrip(', ')})), pd")
            with w.block("if src.limits is not None:"):
                w.w("pd = Pd()")
                with w.block("if not _record_guard(src, pd):"):
                    w.w("src.note_errors(pd.nerr)")
                    w.w(f"return _safe_default(lambda: {name}_default({args.lstrip(', ')})), pd")
            if fast is not None:
                # Uniform, value-materialising masks take the compiled
                # one-regex route; None means "let the general parser decide".
                with w.block("if (mask.bits & 1) and not mask.fields "
                             "and mask.compound_level is None "
                             "and mask.elts is None "
                             "and (src.limits is None "
                             "or src.limits.fastpath_safe):"):
                    w.w(f"_rep = {fast}(src.record_bytes(), "
                        "(mask.bits & 4) != 0)")
                    with w.block("if _rep is not None:"):
                        w.w("src.pos = src.rec_end")
                        w.w("src.end_record()")
                        w.w("return _rep, Pd()")
            w.w(f"rep, pd = _{name}_body(src, mask{args})")
            with w.block("if not src.at_eor() and (mask.bits & 2) and pd.nerr == 0:"):
                w.w("pd.record_error(ErrCode.EXTRA_DATA_AT_EOR, src.here())")
            w.w("src.end_record()")
            w.w("if src.limits is not None: src.note_errors(pd.nerr)")
            w.w("return rep, pd")
        w.w()
        return f"_{name}_body"

    def _parse_header(self, w: _W, decl: DeclPlan) -> str:
        """Emit the def line for the parse function; returns its name."""
        if decl.is_record:
            inner = self._emit_record_wrapper(w, decl)
            w.w(f"def {inner}(src, mask{self.params_sig(decl)}):")
            return inner
        w.w(f"def {decl.name}_parse(src, {self._mask_param(decl)}"
            f"{self.params_sig(decl)}):")
        return f"{decl.name}_parse"

    # -- Pstruct ------------------------------------------------------------------

    def emit_struct(self, w: _W, decl: StructPlan) -> None:
        name = decl.name
        scope = self.params_scope(decl)
        self._parse_header(w, decl)
        runs: Dict[int, tuple] = {}
        if self.fastpath:
            runs = {start: (end, raw) for start, end, raw in decl.fused_runs}
        with _Indent(w):
            if not decl.is_record:
                w.w(f'"""Parse one {name}."""')
                w.w("if mask is None: mask = Mask(P_CheckAndSet)")
            _guard = self._begin_depth_guard(w, decl)
            w.w("_panic = False")
            w.w("_skip = 0")
            members = decl.items
            i = 0
            run_id = 0
            while i < len(members):
                if i in runs:
                    end, raw = runs[i]
                    run_id += 1
                    flag = f"_lrun{run_id}"
                    raw_c = self.const(repr(raw))
                    w.w(f"# fused literal run: members {i}..{end}")
                    w.w(f"{flag} = (not _panic and _skip == 0) "
                        f"and src.match_bytes({raw_c})")
                    with w.block(f"if not {flag}:"):
                        for j in range(i, end + 1):
                            self._emit_struct_member(w, decl, members, j, scope)
                    i = end + 1
                    continue
                self._emit_struct_member(w, decl, members, i, scope)
                i += 1
            # Build the rep.
            field_args = ", ".join(
                f"{f.name}=v_{f.name}" for f in members
                if isinstance(f, (DataItem, ComputeItem)))
            w.w(f"rep = Rec({field_args})")
            if decl.where is not None:
                wscope = dict(scope)
                for f in members:
                    if isinstance(f, (DataItem, ComputeItem)):
                        wscope[f.name] = f"v_{f.name}"
                with w.block("if (int(mask.level) & 4) and pd.nerr == 0:"):
                    self._emit_bool_check(w, decl.where, wscope,
                                          "pd.record_error(ErrCode."
                                          "WHERE_CLAUSE_VIOLATION, src.here())")
            w.w("return rep, pd")
            self._end_depth_guard(w, _guard)
        w.w()
        self._emit_struct_write(w, decl)
        self._emit_struct_verify(w, decl)
        self._emit_struct_default(w, decl)

    def _emit_bool_check(self, w: _W, expr: E.Expr, scope: Dict[str, str],
                         on_fail: str) -> None:
        ok = self.tmp("ok")
        with w.block("try:"):
            w.w(f"{ok} = bool({self.cexpr(expr, scope)})")
        with w.block("except Exception:"):
            w.w(f"{ok} = False")
        with w.block(f"if not {ok}:"):
            w.w(on_fail)

    def _next_literal_info(self, members, i: int):
        """(block_distance, literal plan) for the next scannable literal."""
        for j in range(i + 1, len(members)):
            item = members[j]
            if isinstance(item, LitItem) and item.literal.scannable:
                return j - i, item.literal
        return None

    def _emit_struct_member(self, w: _W, decl: StructPlan, members,
                            i: int, scope: Dict[str, str]) -> None:
        item = members[i]
        w.w(f"# member {i}: {_member_label(item)}")
        if isinstance(item, LitItem):
            lit = item.literal
            if lit.kind in ("char", "string"):
                raw_bytes = lit.raw
                raw = self.const(repr(raw_bytes))
                with w.block("if _skip > 0:"):
                    w.w("_skip -= 1")
                with w.block("elif not _panic:"):
                    if len(raw_bytes) == 1:
                        match = f"src.first_byte() == {raw_bytes[0]}"
                        consume = "src.pos += 1"
                    else:
                        match = f"src.match_bytes({raw})"
                        consume = "pass"
                    with w.block(f"if {match}:"):
                        w.w(consume)
                    with w.block("else:"):
                        w.w("_lstart = src.pos")
                        with w.block(f"if not _lit_resync(src, pd, {raw}, _lstart):"):
                            w.w("_panic = True")
            elif lit.kind == "regex":
                rx = self.const(f"__import__('re').compile({lit.raw!r})")
                with w.block("if _skip > 0:"):
                    w.w("_skip -= 1")
                with w.block("elif not _panic:"):
                    w.w(f"_m = {rx}.match(src.scope_bytes())")
                    with w.block("if _m is not None:"):
                        w.w("src.skip(_m.end())")
                    with w.block("else:"):
                        w.w("pd.record_error(ErrCode.MISSING_LITERAL, "
                            "src.here(), panic=True)")
                        w.w("src.skip_to_eor()")
                        w.w("_panic = True")
            else:  # eor / eof markers inside structs: positional checks
                check = "src.at_end()" if lit.kind == "eor" else "src.at_eof()"
                with w.block("if _skip > 0:"):
                    w.w("_skip -= 1")
                with w.block(f"elif not _panic and not {check}:"):
                    w.w("pd.record_error(ErrCode.MISSING_LITERAL, src.here(), "
                        "panic=True)")
                    w.w("src.skip_to_eor()")
                    w.w("_panic = True")
            return

        if isinstance(item, ComputeItem):
            with w.block("if _panic or _skip > 0:"):
                w.w("_skip = _skip - 1 if _skip > 0 else _skip")
                w.w(f"v_{item.name} = None")
            with w.block("else:"):
                with w.block("try:"):
                    w.w(f"v_{item.name} = {self.cexpr(item.expr, scope)}")
                with w.block("except Exception:"):
                    w.w(f"v_{item.name} = None")
                    w.w("pd.record_error(ErrCode.USER_CONSTRAINT_VIOLATION, "
                        "src.here())")
                scope[item.name] = f"v_{item.name}"
                if item.constraint is not None:
                    with w.block(f"if (mask.bits & 4) and "
                                 f"v_{item.name} is not None:"):
                        self._emit_bool_check(
                            w, item.constraint, dict(scope),
                            "pd.record_error(ErrCode."
                            "USER_CONSTRAINT_VIOLATION, src.here())")
            scope[item.name] = f"v_{item.name}"
            return

        assert isinstance(item, DataItem)
        fname = item.name
        default = self.use_default_expr(item.type, scope)
        with w.block("if _panic or _skip > 0:"):
            w.w("_skip = _skip - 1 if _skip > 0 else _skip")
            w.w(f"v_{fname} = {default}")
            w.w("_cpd = Pd()")
            w.w("_cpd.pstate = Pstate.PANIC")
            w.w(f"pd.fields[{fname!r}] = _cpd")
        with w.block("else:"):
            w.w(f"_fm = mask.for_field({fname!r})")
            w.w("_fstart = src.pos")
            self.emit_use_parse(w, item.type, "_fm", f"v_{fname}", "_cpd", scope)
            scope[fname] = f"v_{fname}"
            if item.constraint is not None:
                cscope = dict(scope)
                with w.block("if (_fm.bits & 4) and _cpd.nerr == 0:"):
                    self._emit_bool_check(
                        w, item.constraint, cscope,
                        "_cpd.record_error(ErrCode.USER_CONSTRAINT_VIOLATION, "
                        "src.loc_from(_fstart))")
            with w.block("if _cpd.nerr:"):
                w.w(f"pd.fields[{fname!r}] = _cpd")
                w.w("pd.absorb(_cpd)")
            with w.block("if _cpd.nerr and _cpd.err_code.is_syntactic() "
                         "and src.pos == _fstart:"):
                nxt = self._next_literal_info(members, i)
                if nxt is not None:
                    distance, lit = nxt
                    raw = self.const(repr(lit.raw))
                    with w.block(f"if _skip_to_lit(src, {raw}):"):
                        w.w(f"_skip = {distance}")
                    with w.block("else:"):
                        w.w("pd.pstate |= Pstate.PANIC")
                        w.w("src.skip_to_eor()")
                        w.w("_panic = True")
                else:
                    w.w("pd.pstate |= Pstate.PANIC")
                    w.w("src.skip_to_eor()")
                    w.w("_panic = True")
        scope[fname] = f"v_{fname}"

    def _emit_record_write_prologue(self, w: _W, is_record: bool) -> None:
        """Shadow ``out`` with a fresh list for Precord types so the body
        below needs no target rewriting."""
        if is_record:
            w.w("_outer = out")
            w.w("out = []")

    def _emit_record_write_epilogue(self, w: _W, is_record: bool) -> None:
        if is_record:
            w.w("_content = b''.join(out)")
            with w.block("if DISCIPLINE is None:"):
                w.w("_outer.append(_content + b'\\n')")
            with w.block("else:"):
                w.w("_outer.append(DISCIPLINE.header(_content) + _content + "
                    "DISCIPLINE.trailer(_content))")

    def _emit_struct_write(self, w: _W, decl: StructPlan) -> None:
        name = decl.name
        scope = self.params_scope(decl)
        with w.block(f"def {name}_write(rep, out{self.params_sig(decl)}):"):
            w.w(f'"""Append {name}\'s physical form to ``out``."""')
            self._emit_record_write_prologue(w, decl.is_record)
            self._struct_write_body(w, decl, scope)
            self._emit_record_write_epilogue(w, decl.is_record)
        w.w()

    def _struct_write_body(self, w: _W, decl: StructPlan,
                           scope: Dict[str, str]) -> None:
        scope = dict(scope)
        for item in decl.items:
            if isinstance(item, LitItem):
                lit = item.literal
                if lit.kind in ("char", "string"):
                    raw = self.const(repr(lit.raw))
                    w.w(f"out.append({raw})")
                elif lit.kind == "regex":
                    w.w("raise ValueError('cannot write a regex literal')")
            elif isinstance(item, ComputeItem):
                scope[item.name] = f"rep.{item.name}"
            else:
                w.w(f"v_{item.name} = rep.{item.name}")
                scope[item.name] = f"v_{item.name}"
                self.emit_use_write(w, item.type, f"v_{item.name}", scope)
        if not decl.items:
            w.w("pass")

    def _emit_struct_verify(self, w: _W, decl: StructPlan) -> None:
        name = decl.name
        scope = self.params_scope(decl)
        with w.block(f"def {name}_verify(rep{self.params_sig(decl)}):"):
            w.w(f'"""Re-check {name}\'s semantic constraints '
                '(Figure 7\'s entry_t_verify)."""')
            scope = dict(scope)
            for item in decl.items:
                if isinstance(item, LitItem):
                    continue
                with w.block("try:"):
                    w.w(f"v_{item.name} = rep.{item.name}")
                with w.block("except AttributeError:"):
                    w.w("return False")
                scope[item.name] = f"v_{item.name}"
                if isinstance(item, DataItem):
                    self.emit_use_verify(w, item.type, f"v_{item.name}", scope)
                if item.constraint is not None:
                    self._emit_bool_check(w, item.constraint, scope,
                                          "return False")
            if decl.where is not None:
                self._emit_bool_check(w, decl.where, scope, "return False")
            w.w("return True")
        w.w()

    def _emit_struct_default(self, w: _W, decl: StructPlan) -> None:
        name = decl.name
        scope = self.params_scope(decl)
        with w.block(f"def {name}_default({self.params_sig(decl).lstrip(', ')}):"):
            scope = dict(scope)
            args = []
            for item in decl.items:
                if isinstance(item, LitItem):
                    continue
                if isinstance(item, ComputeItem):
                    w.w(f"v_{item.name} = None")
                else:
                    w.w(f"v_{item.name} = {self.use_default_expr(item.type, scope)}")
                scope[item.name] = f"v_{item.name}"
                args.append(f"{item.name}=v_{item.name}")
            w.w(f"return Rec({', '.join(args)})")
        w.w()

    # -- Punion ----------------------------------------------------------------------

    def emit_union(self, w: _W, decl: UnionPlan) -> None:
        name = decl.name
        scope = self.params_scope(decl)
        self._parse_header(w, decl)
        with _Indent(w):
            if not decl.is_record:
                w.w(f'"""Parse one {name} (first branch that parses without '
                    'error wins)."""')
                w.w("if mask is None: mask = Mask(P_CheckAndSet)")
            _guard = self._begin_depth_guard(w, decl)
            w.w("_uloc = src.here()")
            for br in decl.branches:
                w.w(f"# branch {br.name}")
                w.w("_bst = src.mark()")
                w.w(f"_bm = mask.for_field({br.name!r})")
                self.emit_use_parse(w, br.type, "_bm", "_bv", "_bpd", scope)
                w.w("_ok = _bpd.nerr == 0")
                if br.constraint is not None:
                    bscope = dict(scope)
                    bscope[br.name] = "_bv"
                    with w.block("if _ok:"):
                        with w.block("try:"):
                            w.w(f"_ok = bool({self.cexpr(br.constraint, bscope)})")
                        with w.block("except Exception:"):
                            w.w("_ok = False")
                with w.block("if _ok:"):
                    w.w("src.commit(_bst)")
                    w.w(f"pd.tag = {br.name!r}")
                    w.w(f"return UnionVal({br.name!r}, _bv), pd")
                w.w("src.restore(_bst)")
            w.w("pd.record_error(ErrCode.UNION_MATCH_FAILURE, _uloc, panic=True)")
            w.w("return UnionVal('<none>', None), pd")
            self._end_depth_guard(w, _guard)
        w.w()
        self._emit_union_write(w, decl, decl.branches)
        self._emit_union_verify(w, decl)
        self._emit_union_default(w, decl, decl.branches[0])

    def emit_switch_union(self, w: _W, decl: SwitchPlan) -> None:
        name = decl.name
        scope = self.params_scope(decl)
        self._parse_header(w, decl)
        cases = decl.cases
        default_idx = next((k for k, c in enumerate(cases) if c.value is None), -1)
        with _Indent(w):
            if not decl.is_record:
                w.w(f'"""Parse one {name} (Pswitch on a selector '
                    'expression)."""')
                w.w("if mask is None: mask = Mask(P_CheckAndSet)")
            _guard = self._begin_depth_guard(w, decl)
            w.w("_case = None")
            with w.block("try:"):
                w.w(f"_sel = {self.cexpr(decl.selector, scope)}")
            with w.block("except Exception:"):
                w.w("_case = -1")
            with w.block("if _case is None:"):
                for k, case in enumerate(cases):
                    if case.value is None:
                        continue
                    with w.block("try:"):
                        with w.block(f"if _case is None and _sel == "
                                     f"{self.cexpr(case.value, scope)}:"):
                            w.w(f"_case = {k}")
                    with w.block("except Exception:"):
                        w.w("pass")
                with w.block("if _case is None:"):
                    w.w(f"_case = {default_idx}")
            with w.block("if _case == -1:"):
                w.w("pd.record_error(ErrCode.SWITCH_NO_CASE, src.here(), "
                    "panic=True)")
                w.w("return UnionVal('<none>', None), pd")
            for k, case in enumerate(cases):
                with w.block(f"if _case == {k}:"):
                    w.w(f"_cm = mask.for_field({case.name!r})")
                    self.emit_use_parse(w, case.type, "_cm", "_cv", "_cpd", scope)
                    w.w("pd.branch = _cpd")
                    w.w(f"pd.tag = {case.name!r}")
                    w.w("pd.absorb(_cpd)")
                    if case.constraint is not None:
                        cscope = dict(scope)
                        cscope[case.name] = "_cv"
                        with w.block("if (mask.bits & 4) and _cpd.nerr == 0:"):
                            self._emit_bool_check(
                                w, case.constraint, cscope,
                                "pd.record_error(ErrCode."
                                "USER_CONSTRAINT_VIOLATION, src.here())")
                    w.w(f"return UnionVal({case.name!r}, _cv), pd")
            w.w("pd.record_error(ErrCode.SWITCH_NO_CASE, src.here(), panic=True)")
            w.w("return UnionVal('<none>', None), pd")
            self._end_depth_guard(w, _guard)
        w.w()
        self._emit_union_write(w, decl, cases)
        self._emit_switch_verify(w, decl)
        self._emit_union_default(w, decl, cases[0])

    def _emit_union_write(self, w: _W, decl: DeclPlan, branches) -> None:
        name = decl.name
        scope = self.params_scope(decl)
        with w.block(f"def {name}_write(rep, out{self.params_sig(decl)}):"):
            w.w(f'"""Append {name}\'s physical form to ``out``."""')
            self._emit_record_write_prologue(w, decl.is_record)
            for br in branches:
                with w.block(f"if rep.tag == {br.name!r}:"):
                    w.w("_v = rep.value")
                    self.emit_use_write(w, br.type, "_v", dict(scope))
                    self._emit_record_write_epilogue(w, decl.is_record)
                    w.w("return")
            w.w(f"raise ValueError('unknown union branch %r for {name}' % (rep.tag,))")
        w.w()

    def _emit_union_verify(self, w: _W, decl: UnionPlan) -> None:
        name = decl.name
        scope = self.params_scope(decl)
        with w.block(f"def {name}_verify(rep{self.params_sig(decl)}):"):
            for br in decl.branches:
                with w.block(f"if rep.tag == {br.name!r}:"):
                    w.w("_v = rep.value")
                    self.emit_use_verify(w, br.type, "_v", dict(scope))
                    if br.constraint is not None:
                        bscope = dict(scope)
                        bscope[br.name] = "_v"
                        self._emit_bool_check(w, br.constraint, bscope,
                                              "return False")
                    w.w("return True")
            w.w("return False")
        w.w()

    def _emit_switch_verify(self, w: _W, decl: SwitchPlan) -> None:
        name = decl.name
        scope = self.params_scope(decl)
        cases = decl.cases
        default_idx = next((k for k, c in enumerate(cases) if c.value is None), -1)
        with w.block(f"def {name}_verify(rep{self.params_sig(decl)}):"):
            w.w("_case = None")
            with w.block("try:"):
                w.w(f"_sel = {self.cexpr(decl.selector, scope)}")
            with w.block("except Exception:"):
                w.w("return False")
            for k, case in enumerate(cases):
                if case.value is None:
                    continue
                with w.block("try:"):
                    with w.block(f"if _case is None and _sel == "
                                 f"{self.cexpr(case.value, scope)}:"):
                        w.w(f"_case = {k}")
                with w.block("except Exception:"):
                    w.w("pass")
            with w.block("if _case is None:"):
                w.w(f"_case = {default_idx}")
            with w.block("if _case == -1:"):
                w.w("return False")
            for k, case in enumerate(cases):
                with w.block(f"if _case == {k}:"):
                    with w.block(f"if rep.tag != {case.name!r}:"):
                        w.w("return False")
                    w.w("_v = rep.value")
                    self.emit_use_verify(w, case.type, "_v", dict(scope))
                    w.w("return True")
            w.w("return False")
        w.w()

    def _emit_union_default(self, w: _W, decl: DeclPlan, first) -> None:
        name = decl.name
        scope = self.params_scope(decl)
        with w.block(f"def {name}_default({self.params_sig(decl).lstrip(', ')}):"):
            w.w(f"return UnionVal({first.name!r}, "
                f"{self.use_default_expr(first.type, dict(scope))})")
        w.w()

    # -- Parray ---------------------------------------------------------------------

    def _term_check_expr(self, decl: ArrayPlan) -> Optional[str]:
        term = decl.term
        if term is None:
            return None
        if term.kind in ("char", "string"):
            raw_bytes = term.raw
            if len(raw_bytes) == 1:
                return f"src.first_byte() == {raw_bytes[0]}"
            raw = self.const(repr(raw_bytes))
            return f"src.peek({len(raw_bytes)}) == {raw}"
        if term.kind == "regex":
            rx = self.const(f"__import__('re').compile({term.raw!r})")
            return f"{rx}.match(src.scope_bytes()) is not None"
        if term.kind == "eor":
            return "src.at_end()"
        return "src.at_eof()"

    def emit_array(self, w: _W, decl: ArrayPlan) -> None:
        name = decl.name
        scope = self.params_scope(decl)
        ascope = dict(scope)
        ascope["elts"] = "elts"
        ascope["length"] = "_length"
        self._parse_header(w, decl)
        sep_raw = None
        if decl.sep is not None and decl.sep.kind in ("char", "string"):
            sep_raw = self.const(repr(decl.sep.raw))
        sep_rx = None
        if decl.sep is not None and decl.sep.kind == "regex":
            sep_rx = self.const(f"__import__('re').compile({decl.sep.raw!r})")
        term_raw = "None"
        if decl.term is not None and decl.term.kind in ("char", "string"):
            term_raw = self.const(repr(decl.term.raw))
        term_check = self._term_check_expr(decl)

        with _Indent(w):
            if not decl.is_record:
                w.w(f'"""Parse one {name} array."""')
                w.w("if mask is None: mask = Mask(P_CheckAndSet)")
            _guard = self._begin_depth_guard(w, decl)
            w.w("_em = mask.for_elements()")
            w.w("elts = []")
            with w.block("try:"):
                if decl.min_size is not None:
                    w.w(f"_lo = int({self.cexpr(decl.min_size, scope)})")
                else:
                    w.w("_lo = None")
                if decl.max_size is not None:
                    w.w(f"_hi = int({self.cexpr(decl.max_size, scope)})")
                else:
                    w.w("_hi = None")
            with w.block("except Exception:"):
                w.w("pd.record_error(ErrCode.ARRAY_SIZE_ERR, src.here(), "
                    "panic=True)")
                w.w("return [], pd")
            w.w("_alim = src.limits.max_array_elems "
                "if src.limits is not None else None")
            w.w("_first = True")
            with w.block("while True:"):
                with w.block("if _alim is not None and len(elts) >= _alim:"):
                    w.w("_note_limit(pd, ErrCode.ARRAY_LIMIT, src.here())")
                    w.w("break")
                with w.block("if _hi is not None and len(elts) >= _hi:"):
                    w.w("break")
                if decl.ended is not None:
                    w.w("_length = len(elts)")
                    ok = self.tmp("ok")
                    with w.block("try:"):
                        w.w(f"{ok} = bool({self.cexpr(decl.ended, ascope)})")
                    with w.block("except Exception:"):
                        w.w(f"{ok} = False")
                    with w.block(f"if {ok}:"):
                        w.w("break")
                if term_check is not None:
                    with w.block(f"if {term_check}:"):
                        w.w("break")
                with w.block("if src.at_end():"):
                    w.w("break")
                if decl.sep is not None:
                    with w.block("if not _first:"):
                        if sep_raw is not None:
                            sep_bytes = decl.sep.raw
                            if len(sep_bytes) == 1:
                                with w.block(f"if src.first_byte() == {sep_bytes[0]}:"):
                                    w.w("src.pos += 1")
                                with w.block("else:"):
                                    w.w("break")
                            else:
                                with w.block(f"if not src.match_bytes({sep_raw}):"):
                                    w.w("break")
                        else:
                            w.w(f"_sm = {sep_rx}.match(src.scope_bytes())")
                            with w.block("if _sm is not None and _sm.end() > 0:"):
                                w.w("src.skip(_sm.end())")
                            with w.block("else:"):
                                w.w("break")
                w.w("_before = src.pos")
                if decl.longest:
                    w.w("_ast = src.mark()")
                    self.emit_use_parse(w, decl.elt, "_em", "_ev", "_epd",
                                        dict(ascope))
                    with w.block("if _epd.nerr > 0:"):
                        w.w("src.restore(_ast)")
                        w.w("break")
                    w.w("src.commit(_ast)")
                else:
                    self.emit_use_parse(w, decl.elt, "_em", "_ev", "_epd",
                                        dict(ascope))
                with w.block("if _epd.nerr > 0:"):
                    w.w("pd.neerr += 1")
                    with w.block("if pd.first_error < 0:"):
                        w.w("pd.first_error = len(elts)")
                    w.w("pd.absorb(_epd)")
                    with w.block("if _epd.err_code.is_syntactic() and "
                                 "src.pos == _before:"):
                        with w.block(f"if not _array_resync(src, "
                                     f"{sep_raw or 'None'}, {term_raw}):"):
                            w.w("pd.pstate |= Pstate.PANIC")
                            w.w("break")
                w.w("pd.elts.append(_epd)")
                w.w("elts.append(_ev)")
                w.w("_first = False")
                if decl.last is not None:
                    w.w("_length = len(elts)")
                    ok = self.tmp("ok")
                    with w.block("try:"):
                        w.w(f"{ok} = bool({self.cexpr(decl.last, ascope)})")
                    with w.block("except Exception:"):
                        w.w(f"{ok} = False")
                    with w.block(f"if {ok}:"):
                        w.w("break")
                if decl.sep is None:
                    with w.block("if src.pos == _before:"):
                        w.w("break")
            with w.block("if _lo is not None and len(elts) < _lo and "
                         "(mask.bits & 2):"):
                w.w("pd.record_error(ErrCode.ARRAY_SIZE_ERR, src.here())")
            if decl.where is not None:
                with w.block("if (int(mask.level) & 4) and pd.nerr == 0:"):
                    w.w("_length = len(elts)")
                    self._emit_bool_check(w, decl.where, ascope,
                                          "pd.record_error(ErrCode."
                                          "WHERE_CLAUSE_VIOLATION, src.here())")
            w.w("return elts, pd")
            self._end_depth_guard(w, _guard)
        w.w()
        self._emit_array_write(w, decl)
        self._emit_array_verify(w, decl)
        with w.block(f"def {name}_default({self.params_sig(decl).lstrip(', ')}):"):
            w.w("return []")
        w.w()

    def _emit_array_write(self, w: _W, decl: ArrayPlan) -> None:
        name = decl.name
        scope = self.params_scope(decl)
        with w.block(f"def {name}_write(rep, out{self.params_sig(decl)}):"):
            w.w(f'"""Append {name}\'s physical form to ``out``."""')
            self._emit_record_write_prologue(w, decl.is_record)
            with w.block("for _i, _v in enumerate(rep):"):
                if decl.sep is not None and decl.sep.kind in ("char", "string"):
                    raw = self.const(repr(decl.sep.raw))
                    with w.block("if _i:"):
                        w.w(f"out.append({raw})")
                self.emit_use_write(w, decl.elt, "_v", dict(scope))
            self._emit_record_write_epilogue(w, decl.is_record)
        w.w()

    def _emit_array_verify(self, w: _W, decl: ArrayPlan) -> None:
        name = decl.name
        scope = self.params_scope(decl)
        ascope = dict(scope)
        ascope["elts"] = "rep"
        ascope["length"] = "len(rep)"
        with w.block(f"def {name}_verify(rep{self.params_sig(decl)}):"):
            with w.block("try:"):
                lo = self.cexpr(decl.min_size, scope) if decl.min_size is not None else "None"
                hi = self.cexpr(decl.max_size, scope) if decl.max_size is not None else "None"
                w.w(f"_lo = {lo}")
                w.w(f"_hi = {hi}")
            with w.block("except Exception:"):
                w.w("return False")
            with w.block("if _lo is not None and len(rep) < int(_lo):"):
                w.w("return False")
            with w.block("if _hi is not None and len(rep) > int(_hi):"):
                w.w("return False")
            with w.block("for _v in rep:"):
                sub = _W()
                sub.depth = w.depth
                self.emit_use_verify(sub, decl.elt, "_v", dict(scope))
                if sub.lines:
                    w.lines.extend(sub.lines)
                else:
                    w.w("pass")
            if decl.where is not None:
                self._emit_bool_check(w, decl.where, ascope, "return False")
            w.w("return True")
        w.w()

    # -- Penum ----------------------------------------------------------------------

    def emit_enum(self, w: _W, decl: EnumPlan) -> None:
        name = decl.name
        items = decl.items
        self._parse_header(w, decl)
        with _Indent(w):
            if not decl.is_record:
                w.w(f'"""Parse one {name} literal (longest spelling wins)."""')
                w.w("if mask is None: mask = Mask(P_CheckAndSet)")
            w.w("pd = Pd()")
            for item in decl.ordered:
                raw = self.const(repr(item.raw))
                with w.block(f"if src.match_bytes({raw}):"):
                    w.w(f"return E_{item.name}, pd")
            w.w("pd.record_error(ErrCode.INVALID_ENUM, src.here())")
            w.w(f"return E_{items[0].name}, pd")
        w.w()
        with w.block(f"def {name}_write(rep, out):"):
            mapping = {it.name: it.physical for it in items}
            w.w(f"_phys = {mapping!r}.get(str(rep))")
            with w.block("if _phys is None:"):
                w.w(f"raise ValueError('%r is not a member of {name}' % (rep,))")
            w.w(f"out.append(_phys.encode({self.encoding!r}))")
        w.w()
        with w.block(f"def {name}_verify(rep):"):
            w.w(f"return str(rep) in {set(it.name for it in items)!r}")
        w.w()
        with w.block(f"def {name}_default():"):
            w.w(f"return E_{items[0].name}")
        w.w()

    # -- Ptypedef --------------------------------------------------------------------

    def emit_typedef(self, w: _W, decl: TypedefPlan) -> None:
        name = decl.name
        scope = self.params_scope(decl)
        self._parse_header(w, decl)
        with _Indent(w):
            if not decl.is_record:
                w.w(f'"""Parse one {name} (constrained '
                    f'{_type_label(decl.base)})."""')
                w.w("if mask is None: mask = Mask(P_CheckAndSet)")
            w.w("_tstart = src.pos")
            self.emit_use_parse(w, decl.base, "mask", "_tv", "pd", dict(scope))
            if decl.constraint is not None:
                cscope = dict(scope)
                cscope[decl.var] = "_tv"
                with w.block("if (mask.base & 4) and pd.nerr == 0:"):
                    self._emit_bool_check(
                        w, decl.constraint, cscope,
                        "pd.record_error(ErrCode.TYPEDEF_CONSTRAINT_VIOLATION, "
                        "src.loc_from(_tstart))")
            w.w("return _tv, pd")
        w.w()
        with w.block(f"def {name}_write(rep, out{self.params_sig(decl)}):"):
            self.emit_use_write(w, decl.base, "rep", dict(scope))
        w.w()
        with w.block(f"def {name}_verify(rep{self.params_sig(decl)}):"):
            self.emit_use_verify(w, decl.base, "rep", dict(scope))
            if decl.constraint is not None:
                cscope = dict(scope)
                cscope[decl.var] = "rep"
                self._emit_bool_check(w, decl.constraint, cscope, "return False")
            w.w("return True")
        w.w()
        with w.block(f"def {name}_default({self.params_sig(decl).lstrip(', ')}):"):
            w.w(f"return {self.use_default_expr(decl.base, dict(scope))}")
        w.w()

    # -- Figure 6 tool surface ----------------------------------------------------------

    def emit_tool_surface(self, w: _W, decl: DeclPlan) -> None:
        name = decl.name
        w.w()
        with w.block(f"def {name}_m_init(flag=P_CheckAndSet):"):
            w.w('"""Fresh mask tree (Figure 6: <type>_m_init)."""')
            w.w("return Mask(flag)")
        w.w()
        with w.block(f"def {name}_read(pads_src, {self._mask_param(decl)}"
                     f"{self.params_sig(decl)}):"):
            w.w('"""Figure 6 naming alias for the parse function."""')
            w.w(f"return {name}_parse(pads_src, mask"
                + "".join(f", p_{p}" for _, p in decl.params) + ")")
        w.w()
        with w.block(f"def {name}_write2io(io, rep{self.params_sig(decl)}):"):
            w.w('"""Write the physical form to a binary file object."""')
            w.w("_out = []")
            w.w(f"{name}_write(rep, _out"
                + "".join(f", p_{p}" for _, p in decl.params) + ")")
            w.w("data = b''.join(_out)")
            w.w("io.write(data)")
            w.w("return len(data)")
        w.w()
        with w.block(f"def {name}_fmt2io(io, rep, delims=('|',), "
                     "date_format=None, mask=None):"):
            w.w('"""Delimited formatting (Figure 6: <type>_fmt2io)."""')
            w.w("from repro.tools.fmt import format_value")
            w.w(f"text = format_value(_interp().node({name!r}), rep, "
                "delims=delims, date_format=date_format, mask=mask)")
            # Not a plain utf-8 encode: the runtime is byte-transparent
            # (bytes 0-255 <-> code points) and utf-8 would double-encode
            # byte-string fields above 127.
            w.w("from repro.core.io import transparent_encode")
            w.w("io.write(transparent_encode(text))")
            w.w("return len(text)")
        w.w()
        with w.block(f"def {name}_write_xml_2io(io, rep, pd=None, "
                     f"tag={decl.name!r}, indent=0):"):
            w.w('"""Canonical XML output (Figure 6: <type>_write_xml_2io)."""')
            w.w("from repro.tools.xml_out import to_xml")
            w.w(f"text = to_xml(_interp().node({name!r}), rep, pd, tag, indent)")
            w.w("from repro.core.io import transparent_encode")
            w.w("io.write(transparent_encode(text))")
            w.w("return len(text)")
        w.w()
        with w.block(f"def {name}_acc_init(tracked=1000):"):
            w.w('"""Fresh accumulator (Figure 6: <type>_acc_init)."""')
            w.w("from repro.tools.accum import Accumulator")
            w.w(f"return Accumulator(_interp().node({name!r}), '<top>', tracked)")
        w.w()
        with w.block(f"def {name}_acc_add(acc, pd, rep):"):
            w.w("acc.add(rep, pd)")
        w.w()
        with w.block(f"def {name}_acc_report(acc, prefix='<top>'):"):
            w.w("return acc.full_report()")
        w.w()
        with w.block(f"def {name}_node_new(rep, pd=None, name={decl.name!r}):"):
            w.w('"""Data-API root (Figure 6: <type>_node_new)."""')
            w.w("from repro.tools.dataapi import PNode")
            w.w(f"return PNode(_interp().node({name!r}), rep, pd, name)")
        w.w()
        with w.block(f"def {name}_node_kthChild(node, idx):"):
            w.w('"""Data-API child access (Figure 6: node_kthChild)."""')
            w.w("return node.kth_child(idx)")

    def _emit_registry(self, w: _W) -> None:
        w.w()
        w.w()
        with w.block("class _GenType:"):
            w.w("__slots__ = ('parse', 'write', 'verify', 'default', "
                "'params', 'is_record')")
            with w.block("def __init__(self, parse, write, verify, default, "
                         "params, is_record):"):
                w.w("self.parse = parse")
                w.w("self.write = write")
                w.w("self.verify = verify")
                w.w("self.default = default")
                w.w("self.params = params")
                w.w("self.is_record = is_record")
        w.w()
        w.w("TYPES = {")
        with _Indent(w):
            for kind, entry in self.plan.order:
                if kind != "type":
                    continue
                n = entry.name
                params = entry.param_names
                w.w(f"{n!r}: _GenType({n}_parse, {n}_write, {n}_verify, "
                    f"{n}_default, {params!r}, {entry.is_record!r}),")
        w.w("}")
        w.w()
        w.w("# Batch-eligible record types: name -> (static width, kernel).")
        w.w("BATCH = {")
        with _Indent(w):
            for name, (width, bt_name) in self._batchpaths.items():
                w.w(f"{name!r}: ({width}, {bt_name}),")
        w.w("}")
        src_name = self.plan.source_name
        w.w(f"SOURCE_TYPE = {src_name!r}" if src_name is not None
            else "SOURCE_TYPE = None")


def _member_label(item) -> str:
    if isinstance(item, LitItem):
        return f"literal {item.literal.describe()}"
    if isinstance(item, ComputeItem):
        return f"Pcompute {item.name}"
    return f"field {item.name}"


def _type_label(use: Use) -> str:
    if isinstance(use, (RefUse, BaseUse)):
        return use.name
    if isinstance(use, OptUse):
        return f"Popt {_type_label(use.inner)}"
    return "Pre"


def generate_source(desc: D.Description, ambient: str = "ascii",
                    module_name: str = "pads_generated",
                    source_text: str = "", plan: Optional[Plan] = None,
                    fastpath: bool = True) -> str:
    """Generate a standalone Python module from a checked description."""
    return Emitter(desc, ambient, module_name, source_text, plan,
                   fastpath).emit_module()


class SourceBackend:
    """The string-emitting backend: :class:`Emitter` output, ``exec``'d.

    This is the original code path, refactored behind the
    :class:`~repro.codegen.backends.base.Compilable` protocol — its
    emitted module source is byte-identical to the pre-refactor
    ``repro.codegen.emitter`` output.
    """

    name = "source"

    def compile(self, desc: D.Description, plan: Plan, *,
                source_text: str = "", fastpath: bool = True,
                module_name: Optional[str] = None) -> CompiledModule:
        py_source = generate_source(desc, plan.ambient,
                                    source_text=source_text, plan=plan,
                                    fastpath=fastpath)
        module = load_source(py_source, module_name)
        return CompiledModule(module=module, backend=self.name,
                              py_source=py_source)
