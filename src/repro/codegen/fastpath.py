"""Compatibility shim: the record fast path now lives in the plan layer.

The fast-path compiler (one anchored regex or fixed-width slicer per
eligible ``Precord`` type, paper Section 9's partial-evaluation idea)
moved to :mod:`repro.plan.fastpath` so that *both* engines share the
compiled fast functions: the emitter splices them into generated
modules verbatim, and the interpreter materialises them via
:func:`repro.plan.runtime.materialize_fast_fns`.

Eligibility is decided once per declaration during plan analysis
(:func:`repro.plan.analyze`); consult ``DeclPlan.verdict`` /
``DeclPlan.fast_fn`` — or ``padsc plan <desc>`` — instead of calling a
compiler here.
"""

from __future__ import annotations

from ..plan.fastpath import FastPath, NotEligible, SlicePath, compile_fast

__all__ = ["FastPath", "SlicePath", "NotEligible", "compile_fast"]
