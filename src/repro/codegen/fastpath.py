"""Record-level fast path: compile a whole record type to one regex.

The paper's Section 9 proposes "partially evaluating the current PADS
library" to produce application-specific instances.  This module does
exactly that for the overwhelmingly common case — a uniform mask over a
``Precord`` type: the record grammar is compiled into a single anchored
regular expression (using Python 3.11 atomic groups ``(?>...)`` to emulate
the parser's maximal-munch/ordered-choice commitments) plus a generated
*converter* that builds the in-memory representation and evaluates the
semantic constraints.

The contract is conservative: the fast path either returns a rep that the
general parser would have produced **with a clean parse descriptor**, or
``None`` — in which case the caller re-parses the record with the general
(error-reporting) parser.  Errors therefore cost one extra parse, while
clean records — the vast majority in the paper's workloads — run at
C-regex speed.  ``tests/test_fastpath.py`` property-tests the equivalence.

Eligibility is structural; anything out of scope (switched unions,
parameterised types, dynamic sizes, mid-record arrays, regex terminators)
simply keeps the general path.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from ..core.basetypes import cobol as _cobol
from ..core.basetypes import integers as _ints
from ..core.basetypes import misc as _misc
from ..core.basetypes import network as _net
from ..core.basetypes import strings as _strs
from ..core.basetypes import temporal as _tmp
from ..core.basetypes.base import resolve_base_type
from ..dsl import ast as D
from ..expr import ast as E

_HOST_GUARD = rb"(?![A-Za-z0-9.\-])"


class NotEligible(Exception):
    """Raised (internally) when a construct is outside the fast-path subset."""


class _W:
    def __init__(self, depth: int = 0):
        self.lines: List[str] = []
        self.depth = depth

    def w(self, text: str) -> None:
        self.lines.append("    " * self.depth + text)

    def block(self, header: str):
        self.w(header)
        return _I(self)


class _I:
    def __init__(self, w):
        self.w = w

    def __enter__(self):
        self.w.depth += 1

    def __exit__(self, *exc):
        self.w.depth -= 1


def _cls(value: bytes) -> bytes:
    """Escape one byte for use inside a character class."""
    return re.escape(value)


class FastPath:
    """Compiles one record declaration; ``build()`` returns module source
    fragments or None when the type is not eligible."""

    def __init__(self, emitter, decl: D.StructDecl):
        self.em = emitter
        self.decl = decl
        self.gid = 0
        self.tmpid = 0
        self.aux: List[str] = []  # extra module-level sources

    # -- small helpers ---------------------------------------------------------

    def group(self) -> str:
        self.gid += 1
        return f"g{self.gid}"

    def temp(self) -> str:
        self.tmpid += 1
        return f"_t{self.tmpid}"

    def enc(self, text: str) -> bytes:
        return text.encode(self.em.encoding)

    def cexpr(self, expr: E.Expr, scope: Dict[str, str]) -> str:
        return self.em.cexpr(expr, scope)

    # -- entry point -----------------------------------------------------------

    def build(self) -> Optional[Tuple[str, List[str]]]:
        """Returns (fast function name, module source lines) or None."""
        decl = self.decl
        if decl.params or not isinstance(decl, D.StructDecl):
            return None
        w = _W(depth=2)  # inside def + try
        try:
            var = self.temp()
            pattern = self.compile_struct_body(decl.items, decl.where, var,
                                               w, is_tail=True)
        except NotEligible:
            return None

        name = decl.name
        rx_name = f"_fprx_{name}"
        fn_name = f"_fp_{name}"
        full = b"(?s:" + pattern + b")"
        compiled = re.compile(full)  # fail generation, not import
        out: List[str] = []
        out.append(f"{rx_name} = __import__('re').compile({full!r})")
        out.append(f"def {fn_name}(_line, dosem):")
        out.append(f'    """Compiled fast path for {name}: one anchored regex '
                   'plus conversion."""')
        out.append(f"    _m = {rx_name}.fullmatch(_line)")
        out.append("    if _m is None:")
        out.append("        return None")
        out.append("    _gs = _m.groups()")
        out.append("    try:")
        out.extend(_index_groups(w.lines, compiled.groupindex))
        out.append(f"        return {var}")
        out.append("    except Exception:")
        out.append("        return None")
        out.extend(self.aux)
        return fn_name, out

    # -- struct ------------------------------------------------------------------

    def compile_struct_body(self, items, where: Optional[E.Expr], var: str,
                            w: _W, is_tail: bool,
                            outer_scope: Optional[Dict[str, str]] = None) -> bytes:
        pattern = b""
        scope: Dict[str, str] = dict(outer_scope or {})
        field_vars: List[Tuple[str, str]] = []
        last_idx = len(items) - 1
        for i, item in enumerate(items):
            tail_here = is_tail and i == last_idx
            if isinstance(item, D.LiteralField):
                lit = item.literal
                if lit.kind == "char" or lit.kind == "string":
                    pattern += re.escape(self.enc(lit.value))
                elif lit.kind == "eor":
                    pass  # end-of-record is the fullmatch anchor
                else:
                    raise NotEligible(f"literal kind {lit.kind}")
                continue
            if isinstance(item, D.ComputeField):
                fvar = self.temp()
                w.w(f"{fvar} = {self.cexpr(item.expr, scope)}")
                scope[item.name] = fvar
                field_vars.append((item.name, fvar))
                if item.constraint is not None:
                    with w.block(f"if dosem and not "
                                 f"({self.cexpr(item.constraint, scope)}):"):
                        w.w("return None")
                continue
            assert isinstance(item, D.DataField)
            fvar = self.temp()
            pattern += self.compile_use(item.type, fvar, w, scope, tail_here)
            scope[item.name] = fvar
            field_vars.append((item.name, fvar))
            if item.constraint is not None:
                with w.block(f"if dosem and not "
                             f"({self.cexpr(item.constraint, scope)}):"):
                    w.w("return None")
        # Direct construction: adopt a dict literal as the instance dict,
        # skipping the kwargs-packing __init__ call (~2x faster).
        entries = ", ".join(f"{n!r}: {v}" for n, v in field_vars)
        w.w(f"{var} = Rec.__new__(Rec)")
        w.w(f"{var}.__dict__ = {{{entries}}}")
        if where is not None:
            with w.block(f"if dosem and not ({self.cexpr(where, scope)}):"):
                w.w("return None")
        return pattern

    # -- type uses ----------------------------------------------------------------

    def compile_use(self, texpr: D.TypeExpr, var: str, w: _W,
                    scope: Dict[str, str], is_tail: bool) -> bytes:
        if isinstance(texpr, D.OptType):
            return self.compile_opt(texpr, var, w, scope, is_tail)
        if isinstance(texpr, D.RegexType):
            return self.compile_regex_type(texpr.pattern, var, w)
        assert isinstance(texpr, D.TypeRef)
        name, args = texpr.name, texpr.args
        if name in self.em.declared:
            decl = self.em.declared[name]
            if decl.params or decl.is_record:
                raise NotEligible(f"nested {name}")
            return self.compile_decl_use(decl, var, w, scope, is_tail)
        # Base type: literal parameters only.
        if not all(isinstance(a, (E.IntLit, E.StrLit, E.CharLit)) for a in args):
            raise NotEligible(f"dynamic parameters on {name}")
        inst = resolve_base_type(name, tuple(a.value for a in args),
                                 self.em.ambient)
        return self.base_fragment(inst, var, w, capture=True)

    def compile_decl_use(self, decl: D.Decl, var: str, w: _W,
                         scope: Dict[str, str], is_tail: bool) -> bytes:
        if isinstance(decl, D.BitfieldsDecl):
            decl = D.lower_bitfields(decl)
        if isinstance(decl, D.StructDecl):
            return self.compile_struct_body(decl.items, decl.where, var, w,
                                            is_tail)
        if isinstance(decl, D.UnionDecl):
            return self.compile_union(decl, var, w, is_tail)
        if isinstance(decl, D.ArrayDecl):
            return self.compile_array(decl, var, w, is_tail)
        if isinstance(decl, D.EnumDecl):
            return self.compile_enum(decl, var, w)
        if isinstance(decl, D.TypedefDecl):
            return self.compile_typedef(decl, var, w, scope, is_tail)
        raise NotEligible(type(decl).__name__)

    # -- Popt / Punion ---------------------------------------------------------------

    def compile_opt(self, texpr: D.OptType, var: str, w: _W,
                    scope: Dict[str, str], is_tail: bool) -> bytes:
        g = self.group()
        inner = self.temp()
        sub = _W(w.depth + 1)
        pattern = self.compile_use(texpr.inner, inner, sub, dict(scope), False)
        w.w(f"if _m.group({g!r}) is not None:")
        w.lines.extend(sub.lines)
        with _I(w):
            w.w(f"{var} = {inner}")
        with w.block("else:"):
            w.w(f"{var} = None")
        return b"(?:(?P<" + g.encode() + b">" + pattern + b"))?"

    def compile_union(self, decl: D.UnionDecl, var: str, w: _W,
                      is_tail: bool) -> bytes:
        if decl.is_switched:
            raise NotEligible("switched union")
        alts: List[bytes] = []
        first = True
        for br in decl.branches:
            g = self.group()
            bvar = self.temp()
            sub = _W(w.depth + 1)
            substituted = False
            lit = _guard_literal(br.constraint, br.name)
            if lit is not None and isinstance(lit, str):
                # `branch == 'literal'` guard on a char/string branch:
                # bake the literal into the pattern.
                kind = _string_kind(br.type, self.em)
                if kind is not None:
                    pattern = b"(?>" + re.escape(self.enc(lit)) + b")"
                    sub.w(f"{bvar} = {lit!r}")
                    substituted = True
            if not substituted:
                pattern = self.compile_use(br.type, bvar, sub, {}, False)
                if br.constraint is not None:
                    # Branch guards steer *selection*; a guard failure means
                    # the general parser would pick a later branch, so the
                    # fast path must bail out.
                    bscope = {br.name: bvar}
                    sub.w(f"if not ({self.cexpr(br.constraint, bscope)}):")
                    sub.w("    return None")
            header = "if" if first else "elif"
            w.w(f"{header} _m.group({g!r}) is not None:")
            w.lines.extend(sub.lines)
            with _I(w):
                w.w(f"{var} = UnionVal({br.name!r}, {bvar})")
            alts.append(b"(?P<" + g.encode() + b">" + pattern + b")")
            first = False
        with w.block("else:"):
            w.w("return None")
        return b"(?>" + b"|".join(alts) + b")"

    # -- Parray ------------------------------------------------------------------------

    def compile_array(self, decl: D.ArrayDecl, var: str, w: _W,
                      is_tail: bool) -> bytes:
        if decl.last is not None or decl.ended is not None or decl.longest:
            raise NotEligible("predicate-terminated array")
        if decl.sep is not None and (decl.sep.kind != "char"):
            raise NotEligible("non-char array separator")
        sep = self.enc(decl.sep.value) if decl.sep is not None else None

        # Tail arrays: Pterm(Peor), no size bounds, last member of the record.
        if decl.term is not None and decl.term.kind == "eor" and is_tail \
                and decl.min_size is None and decl.max_size is None:
            return self._tail_array(decl, sep, var, w)

        # Fixed-count arrays of fixed-width elements (Cobol OCCURS):
        # one .{k*n} span sliced into k-byte chunks by the converter.
        if (decl.term is None and decl.sep is None
                and isinstance(decl.min_size, E.IntLit)
                and isinstance(decl.max_size, E.IntLit)
                and decl.min_size.value == decl.max_size.value):
            return self._fixed_array(decl, decl.min_size.value, var, w)
        raise NotEligible("array outside the supported forms")

    def _tail_array(self, decl: D.ArrayDecl, sep: Optional[bytes],
                    var: str, w: _W) -> bytes:
        g = self.group()
        # Standalone anchored element regex + converter function.
        evar = "_ev"
        sub = _W(2)
        elt_pattern = self.compile_use(decl.elt_type, evar, sub, {}, False)
        conv_name = f"_fpelt_{g}"
        rx_name = f"_fperx_{g}"
        elt_full = b"(?s:" + elt_pattern + b")"
        elt_compiled = re.compile(elt_full)
        self.aux.append(f"{rx_name} = __import__('re').compile({elt_full!r})")
        self.aux.append(f"def {conv_name}(_m, dosem):")
        self.aux.append("    _gs = _m.groups()")
        self.aux.append("    try:")
        self.aux.extend(_index_groups(sub.lines, elt_compiled.groupindex))
        self.aux.append(f"        return (True, {evar})")
        self.aux.append("    except Exception:")
        self.aux.append("        return (False, None)")

        span_var = self.temp()
        w.w(f"{span_var} = _m.group({g!r})")
        w.w(f"{var} = []")
        with w.block(f"if {span_var}:"):
            w.w("_apos = 0")
            w.w(f"_alen = len({span_var})")
            with w.block("while True:"):
                w.w(f"_aem = {rx_name}.match({span_var}, _apos)")
                with w.block("if _aem is None or _aem.end() == _apos and _alen > _apos:"):
                    w.w("return None")
                w.w(f"_aok, _aval = {conv_name}(_aem, dosem)")
                with w.block("if not _aok:"):
                    w.w("return None")
                w.w(f"{var}.append(_aval)")
                w.w("_apos = _aem.end()")
                with w.block("if _apos >= _alen:"):
                    w.w("break")
                if sep is not None:
                    with w.block(f"if not {span_var}.startswith({sep!r}, _apos):"):
                        w.w("return None")
                    w.w(f"_apos += {len(sep)}")
        if decl.where is not None:
            ascope = {"elts": var, "length": f"len({var})"}
            with w.block(f"if dosem and not "
                         f"({self.cexpr(decl.where, ascope)}):"):
                w.w("return None")
        # The span is everything to end-of-record.
        return b"(?P<" + g.encode() + b">.*)"

    def _fixed_width_base(self, texpr: D.TypeExpr):
        """The base-type instance and its byte width, when the element is a
        fixed-width atomic type; None otherwise."""
        if not isinstance(texpr, D.TypeRef) or texpr.name in self.em.declared:
            return None
        if not all(isinstance(a, (E.IntLit, E.StrLit, E.CharLit))
                   for a in texpr.args):
            return None
        try:
            inst = resolve_base_type(texpr.name,
                                     tuple(a.value for a in texpr.args),
                                     self.em.ambient)
        except Exception:
            return None
        if isinstance(inst, (_ints.BinaryInt, _ints.BinaryFloat,
                             _ints.BinaryRaw, _cobol.PackedDecimal)):
            return inst, inst.nbytes
        if isinstance(inst, _cobol.ZonedDecimal):
            return inst, inst.digits
        if isinstance(inst, (_strs.FixedString,)):
            return inst, inst.nchars
        if isinstance(inst, (_strs.AsciiChar, _strs.EbcdicChar)):
            return inst, 1
        if isinstance(inst, _ints.AsciiIntFW):
            return inst, inst.nchars
        return None

    def _fixed_array(self, decl: D.ArrayDecl, count: int, var: str,
                     w: _W) -> bytes:
        fixed = self._fixed_width_base(decl.elt_type)
        if fixed is None:
            raise NotEligible("fixed-count array of variable-width elements")
        inst, width = fixed
        if count <= 0:
            raise NotEligible("empty fixed array")
        g = self.group()
        span = self.temp()
        w.w(f"{span} = _m.group({g!r})")
        w.w(f"{var} = []")
        raw = self.temp()
        with w.block(f"for _ai in range({count}):"):
            w.w(f"{raw} = {span}[_ai * {width}:(_ai + 1) * {width}]")
            evar = self.temp()
            sub = _W(w.depth)
            self.base_conv(inst, evar, raw, sub)
            w.lines.extend(sub.lines)
            w.w(f"{var}.append({evar})")
        if decl.where is not None:
            ascope = {"elts": var, "length": f"len({var})"}
            with w.block(f"if dosem and not "
                         f"({self.cexpr(decl.where, ascope)}):"):
                w.w("return None")
        return (b"(?P<" + g.encode() + b">" +
                b".{%d}" % (width * count) + b")")

    def base_conv(self, inst, var: str, ref: str, w: _W) -> None:
        """Conversion code for a fixed-width base type from raw bytes in
        ``ref`` (used by fixed-array slicing; mirrors base_fragment)."""
        if isinstance(inst, _ints.BinaryInt):
            w.w(f"{var} = int.from_bytes({ref}, {inst.byteorder!r}, "
                f"signed={inst.signed})")
        elif isinstance(inst, _ints.BinaryRaw):
            w.w(f"{var} = int.from_bytes({ref}, 'big')")
        elif isinstance(inst, _ints.BinaryFloat):
            w.w(f"{var} = __import__('struct').unpack({inst.fmt!r}, {ref})[0]")
        elif isinstance(inst, _cobol.PackedDecimal):
            w.w(f"{var} = _fp_packed({ref}, {inst.digits}, {inst.decimals})")
            with w.block(f"if {var} is None:"):
                w.w("return None")
        elif isinstance(inst, _cobol.ZonedDecimal):
            w.w(f"{var} = _fp_zoned({ref}, {inst.digits}, {inst.decimals})")
            with w.block(f"if {var} is None:"):
                w.w("return None")
        elif isinstance(inst, _strs.FixedString):
            w.w(f"{var} = {ref}.decode({inst.encoding!r})")
        elif isinstance(inst, (_strs.AsciiChar,)):
            w.w(f"{var} = {ref}.decode('latin-1')")
        elif isinstance(inst, (_strs.EbcdicChar,)):
            w.w(f"{var} = {ref}.decode('cp037')")
        elif isinstance(inst, _ints.AsciiIntFW):
            w.w(f"{var} = int({ref}.decode('ascii', 'replace').strip(), 10)")
            if not inst.signed:
                with w.block(f"if {var} < 0:"):
                    w.w("return None")
            with w.block(f"if dosem and not "
                         f"({inst.lo} <= {var} <= {inst.hi}):"):
                w.w("return None")
        else:
            raise NotEligible(type(inst).__name__)

    # -- Penum / Ptypedef ---------------------------------------------------------------

    def compile_enum(self, decl: D.EnumDecl, var: str, w: _W) -> bytes:
        items = []
        for pos, item in enumerate(decl.items):
            code = item.value if item.value is not None else pos
            phys = item.physical if item.physical is not None else item.name
            items.append((item.name, code, phys))
        ordered = sorted(items, key=lambda it: -len(it[2]))
        g = self.group()
        map_name = f"_fpenum_{g}"
        entries = ", ".join(f"{self.enc(phys)!r}: E_{name}"
                            for name, _, phys in ordered)
        self.aux.append(f"{map_name} = {{{entries}}}")
        alternation = b"|".join(re.escape(self.enc(phys))
                                for _, _, phys in ordered)
        w.w(f"{var} = {map_name}[_m.group({g!r})]")
        return b"(?P<" + g.encode() + b">(?>" + alternation + b"))"

    def compile_typedef(self, decl: D.TypedefDecl, var: str, w: _W,
                        scope: Dict[str, str], is_tail: bool) -> bytes:
        pattern = self.compile_use(decl.base, var, w, scope, is_tail)
        if decl.constraint is not None:
            cscope = {decl.var: var}
            with w.block(f"if dosem and not "
                         f"({self.cexpr(decl.constraint, cscope)}):"):
                w.w("return None")
        return pattern

    # -- regex-typed fields -------------------------------------------------------------

    def compile_regex_type(self, pattern: str, var: str, w: _W) -> bytes:
        raw = pattern.encode(self.em.encoding)
        if b"(" in raw.replace(b"(?:", b"").replace(b"\\(", b""):
            raise NotEligible("regex field with groups")
        if re.compile(raw).match(b""):
            raise NotEligible("regex field matching empty")
        g = self.group()
        w.w(f"{var} = _m.group({g!r}).decode({self.em.encoding!r})")
        return b"(?P<" + g.encode() + b">(?>" + raw + b"))"

    # -- base types -------------------------------------------------------------------------

    def base_fragment(self, inst, var: str, w: _W, capture: bool) -> bytes:
        g = self.group()
        ref = f"_m.group({g!r})"

        def grp(body: bytes) -> bytes:
            return b"(?P<" + g.encode() + b">" + body + b")"

        if isinstance(inst, _ints.AsciiInt):
            body = b"(?>[-+]?\\d+)" if inst.signed else b"(?>\\d+)"
            w.w(f"{var} = int({ref})")
            if inst.lo is not None:
                with w.block(f"if dosem and not "
                             f"({inst.lo} <= {var} <= {inst.hi}):"):
                    w.w("return None")
            return grp(body)

        if isinstance(inst, _ints.AsciiIntFW):
            body = b".{%d}" % inst.nchars
            raw = self.temp()
            w.w(f"{raw} = {ref}.decode('ascii', 'replace').strip()")
            w.w(f"{var} = int({raw}, 10)")
            if not inst.signed:
                with w.block(f"if {var} < 0:"):
                    w.w("return None")
            with w.block(f"if dosem and not ({inst.lo} <= {var} <= {inst.hi}):"):
                w.w("return None")
            return grp(body)

        if isinstance(inst, _ints.BinaryInt):
            body = b".{%d}" % inst.nbytes
            w.w(f"{var} = int.from_bytes({ref}, {inst.byteorder!r}, "
                f"signed={inst.signed})")
            return grp(body)

        if isinstance(inst, _ints.BinaryRaw):
            body = b".{%d}" % inst.nbytes
            w.w(f"{var} = int.from_bytes({ref}, 'big')")
            return grp(body)

        if isinstance(inst, _ints.EbcdicInt):
            digits = b"[\\xf0-\\xf9]"
            sign = b"[\\x60\\x4e]?" if inst.signed else b""
            w.w(f"{var} = int({ref}.decode('cp037'))")
            with w.block(f"if dosem and not ({inst.lo} <= {var} <= {inst.hi}):"):
                w.w("return None")
            return grp(b"(?>" + sign + digits + b"+)")

        if isinstance(inst, _ints.AsciiFloat):
            body = b"(?>[-+]?(?:\\d+(?:\\.\\d+)?|\\.\\d+)(?:[eE][-+]?\\d+)?)"
            w.w(f"{var} = FloatVal(float({ref}), {ref}.decode('ascii'))")
            return grp(body)

        if isinstance(inst, _ints.BinaryFloat):
            body = b".{%d}" % inst.nbytes
            w.w(f"{var} = __import__('struct').unpack({inst.fmt!r}, {ref})[0]")
            return grp(body)

        if isinstance(inst, _strs.AsciiChar) or isinstance(inst, _strs.EbcdicChar):
            codec = "cp037" if isinstance(inst, _strs.EbcdicChar) else "latin-1"
            w.w(f"{var} = {ref}.decode({codec!r})")
            return grp(b".")

        if isinstance(inst, _strs.TerminatedString):
            cls = b"[^" + _cls(inst.term) + b"]"
            w.w(f"{var} = {ref}.decode({inst.encoding!r})")
            return grp(b"(?>" + cls + b"*)")

        if isinstance(inst, _strs.FixedString):
            w.w(f"{var} = {ref}.decode({inst.encoding!r})")
            return grp(b".{%d}" % inst.nchars)

        if isinstance(inst, _strs.RegexMatchString):
            raw = inst.pattern.encode("latin-1")
            if b"(" in raw.replace(b"(?:", b"").replace(b"\\(", b""):
                raise NotEligible("regex base with groups")
            if re.compile(raw).match(b""):
                raise NotEligible("regex base matching empty")
            w.w(f"{var} = {ref}.decode('latin-1')")
            return grp(b"(?>" + raw + b")")

        if isinstance(inst, _strs.RestOfRecord):
            w.w(f"{var} = {ref}.decode('latin-1')")
            return grp(b"(?>.*)")

        if isinstance(inst, _tmp.AsciiDate):
            if inst.term is not None:
                body = b"(?>[^" + _cls(inst.term) + b"]*)"
            else:
                body = b"(?>.*)"
            raw = self.temp()
            w.w(f"{raw} = {ref}.decode({inst.encoding!r})")
            w.w(f"{var} = _fp_parse_date({raw})")
            with w.block(f"if {var} is None:"):
                w.w("return None")
            return grp(body)

        if isinstance(inst, _tmp.EpochSeconds):
            w.w(f"{var} = DateVal(int({ref}), {ref}.decode('ascii'))")
            return grp(b"(?>\\d+)")

        if isinstance(inst, _net.Ipv4):
            body = (b"(?>\\d{1,3}\\.\\d{1,3}\\.\\d{1,3}\\.\\d{1,3})"
                    + _HOST_GUARD)
            w.w(f"{var} = {ref}.decode('ascii')")
            with w.block(f"if any(int(_o) > 255 for _o in {var}.split('.')):"):
                w.w("return None")
            return grp(body)

        if isinstance(inst, _net.Hostname):
            body = b"(?>[A-Za-z0-9.\\-]+)" + _HOST_GUARD
            w.w(f"{var} = {ref}.decode('ascii')")
            with w.block(f"if not any(_c.isalpha() for _c in {var}) or "
                         f"{var}.startswith('.') or {var}.endswith('.'):"):
                w.w("return None")
            return grp(body)

        if isinstance(inst, _net.ZipCode):
            body = b"(?>\\d{5}(?:-\\d{4})?(?!\\d))"
            w.w(f"{var} = {ref}.decode('ascii')")
            return grp(body)

        if isinstance(inst, _net.PhoneNumber):
            w.w(f"{var} = int({ref})")
            with w.block(f"if dosem and len({ref}) not in (1, 10):"):
                w.w("return None")
            return grp(b"(?>\\d+)")

        if isinstance(inst, _cobol.PackedDecimal):
            w.w(f"{var} = _fp_packed({ref}, {inst.digits}, {inst.decimals})")
            with w.block(f"if {var} is None:"):
                w.w("return None")
            return grp(b".{%d}" % inst.nbytes)

        if isinstance(inst, _cobol.ZonedDecimal):
            w.w(f"{var} = _fp_zoned({ref}, {inst.digits}, {inst.decimals})")
            with w.block(f"if {var} is None:"):
                w.w("return None")
            return grp(b".{%d}" % inst.digits)

        if isinstance(inst, _misc.Empty):
            w.w(f"{var} = None")
            return b""

        raise NotEligible(type(inst).__name__)


_GROUP_REF = re.compile(r"_m\.group\('(g\d+)'\)")


def _index_groups(lines: List[str], groupindex: Dict[str, int]) -> List[str]:
    """Rewrite ``_m.group('gk')`` references to positional ``_gs[i]``
    tuple indexing — one C-level ``groups()`` call per record instead of a
    named lookup per field."""

    def repl(m: "re.Match") -> str:
        return f"_gs[{groupindex[m.group(1)] - 1}]"

    return [_GROUP_REF.sub(repl, line) for line in lines]


def _guard_literal(constraint: Optional[E.Expr], name: str):
    """Value of an equality-with-literal branch guard, else None."""
    if constraint is None or not isinstance(constraint, E.Binary) \
            or constraint.op != "==":
        return None
    for a, b in ((constraint.left, constraint.right),
                 (constraint.right, constraint.left)):
        if isinstance(a, E.Name) and a.ident == name and \
                isinstance(b, (E.StrLit, E.CharLit)):
            return b.value
    return None


def _string_kind(texpr: D.TypeExpr, emitter) -> Optional[str]:
    """'char'/'string' when the branch type's value is its own spelling."""
    if not isinstance(texpr, D.TypeRef) or texpr.name in emitter.declared:
        return None
    if texpr.args and not all(isinstance(a, (E.IntLit, E.StrLit, E.CharLit))
                              for a in texpr.args):
        return None
    try:
        inst = resolve_base_type(texpr.name,
                                 tuple(a.value for a in texpr.args),
                                 emitter.ambient)
    except Exception:
        return None
    if isinstance(inst, (_strs.AsciiChar, _strs.EbcdicChar)):
        return "char"
    if isinstance(inst, (_strs.TerminatedString, _strs.FixedString)):
        return "string"
    return None


def try_fastpath(emitter, decl) -> Optional[Tuple[str, List[str]]]:
    """Build the fast path for a Precord struct declaration, or None."""
    if not isinstance(decl, D.StructDecl) or not decl.is_record or decl.params:
        return None
    return FastPath(emitter, decl).build()
