"""``repro.serve`` — a long-running multi-tenant parse service.

The paper's thesis is that a PADS description is written once and reused
by every tool that touches the data.  The production endpoint of that
idea is a service: the description travels to the server, is compiled
*once*, and then serves parse requests from many concurrent clients —
the same move FuncADL makes for analysis DSLs.  Everything here is
composition of existing library pieces:

* **compile-once** — requests resolve through a content-hash-keyed
  :class:`~repro.core.api.DescriptionCache` whose key covers source
  text, ambient coding, record discipline, codegen backend and fastpath
  mode (hashing only the source would let one tenant's compile poison
  another's: identical source, different backend, one shared module);
* **tenancy / QoS** — each tenant (the ``X-Tenant`` header) gets a
  :class:`~repro.core.limits.ParseLimits` budget attached per-*source*,
  so one cached description serves every budget; a limit hit fails the
  request with a structured 4xx/5xx body, it never takes the server down;
* **execution** — small payloads parse on a thread-pool executor through
  the cursor engines (the event loop never blocks on a parse); large
  payloads route through the self-healing parallel pool
  (:mod:`repro.parallel`), which persists across requests;
* **observability** — each request meters into its *own*
  :class:`~repro.observe.MetricsRegistry`, merged into the
  server-lifetime registry on the event loop at request completion (the
  PR-1 reduce path).  Sharing one registry across handlers would
  interleave read-modify-write on counters — the registry is built for
  merge-after-fork, not shared mutation.  ``GET /metrics`` renders the
  server registry in the Prometheus text format.

Wire protocol (all request/response JSON is UTF-8; byte-carrying string
fields use the runtime's latin-1 convention — code point *n* < 256 is
byte *n*; ``format: "text"`` responses are raw bytes rendered through
:func:`~repro.core.io.transparent_encode`):

``POST /v1/descriptions``
    ``{"source": ..., "ambient": "ascii", "records": "newline",``
    ``"backend": null|"auto"|"source"|"ast", "fastpath": true}`` —
    compile (through the cache) and pin a description; returns its
    content-hash ``id``.

``POST /v1/parse``
    ``{"id": ...}`` or inline ``{"source": ..., ...}`` plus
    ``{"data": str | "data_b64": base64, "type": record_type,``
    ``"mode": "records"|"accum"|"count", "format": "json"|"text"}``.

``GET /metrics`` — Prometheus text exposition.  ``GET /healthz`` — ok.

Start one with ``padsc serve --port 8080 --limits deadline=5`` or
programmatically via :class:`ServerThread` (tests, benchmarks).
"""

from __future__ import annotations

import asyncio
import base64
import binascii
import copy
import json
import os
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from time import perf_counter
from typing import Dict, Optional, Tuple

from . import observe
from .core.api import DescriptionCache
from .core.errors import DescriptionError, ErrorTally, PadsError, Pstate
from .core.io import Source, discipline_from_spec, transparent_encode
from .core.limits import ParseLimits
from .observe import MetricsRegistry, SIZE_BUCKETS, to_prometheus
from .tools.accum import Accumulator
from .tools.fmt import format_value

__all__ = ["ServeConfig", "ParseServer", "ServerThread", "run_server",
           "LIMIT_STATUS"]

#: LIMIT_EXCEEDED family -> HTTP status.  Size-shaped budgets (a record,
#: array or nesting deeper than the tenant's plan allows) are the
#: client's payload being too large (413); an exhausted wall-clock
#: deadline is the service declining work (503); an exhausted error
#: budget is data the tenant's policy refuses to process (422).
LIMIT_STATUS: Dict[str, int] = {
    "RECORD_LIMIT": 413,
    "ARRAY_LIMIT": 413,
    "NEST_LIMIT": 413,
    "DEADLINE_EXCEEDED": 503,
    "ERROR_BUDGET_EXCEEDED": 422,
    "LIMIT_EXCEEDED": 400,
}

_REASONS = {200: "OK", 400: "Bad Request", 404: "Not Found",
            405: "Method Not Allowed", 413: "Payload Too Large",
            422: "Unprocessable Entity", 429: "Too Many Requests",
            500: "Internal Server Error", 503: "Service Unavailable"}

#: Default cap on records echoed back by ``mode: records``.
DEFAULT_MAX_RECORDS = 10_000


class HttpError(Exception):
    """A structured request failure: status + machine-readable code."""

    def __init__(self, status: int, code: str, message: str):
        super().__init__(message)
        self.status = status
        self.code = code
        self.message = message


class LimitExceeded(HttpError):
    """A tenant budget was hit mid-request (QoS isolation, not a bug)."""

    def __init__(self, code: str, records_parsed: int):
        super().__init__(LIMIT_STATUS.get(code, 400), "LIMIT_EXCEEDED",
                         f"tenant budget exceeded: {code}")
        self.limit_code = code
        self.records_parsed = records_parsed


@dataclass
class ServeConfig:
    """Everything a server instance needs, CLI-shaped."""

    host: str = "127.0.0.1"
    port: int = 0  # 0: ephemeral (the bound port is on ParseServer.port)
    #: Worker processes for the parallel engine on large payloads; 1
    #: pins every request to the in-process cursor engines.
    jobs: int = 1
    #: Payload bytes at and above which accum/count requests fan out to
    #: the parallel pool (when ``jobs > 1`` and the pool is free).
    parallel_threshold: int = 1 << 20
    #: Hard cap on request bodies (decoded JSON included).
    max_body: int = 64 << 20
    #: Compiled-description cache slots.
    cache_size: int = 128
    #: Default ParseLimits for tenants without an explicit budget.
    default_limits: Optional[ParseLimits] = None
    #: Per-tenant budgets: tenant name -> ParseLimits.
    tenant_limits: Dict[str, ParseLimits] = field(default_factory=dict)
    #: Threads executing parse work off the event loop.
    workers: int = 8
    #: Seconds an idle keep-alive connection may sit before close.
    idle_timeout: float = 60.0


class ParseServer:
    """The asyncio service.  One instance owns a description cache, a
    server-lifetime metrics registry and a thread-pool executor; request
    handlers are coroutines that push blocking parse work onto the
    executor and merge per-request metrics on the event loop."""

    def __init__(self, config: Optional[ServeConfig] = None, **kwargs):
        self.config = config or ServeConfig(**kwargs)
        self.cache = DescriptionCache(self.config.cache_size)
        #: Server-lifetime registry.  Only the event-loop thread mutates
        #: it (request registries merge at completion; scrapes snapshot
        #: it), so counter read-modify-writes never interleave.
        self.metrics = MetricsRegistry()
        self._descriptions: Dict[str, tuple] = {}
        self._desc_lock = threading.Lock()
        self._executor = ThreadPoolExecutor(
            max_workers=self.config.workers,
            thread_name_prefix="pads-serve")
        #: The parallel pool is one shared resource: the first large
        #: request in takes it, concurrent ones fall back to the cursor
        #: engines instead of queueing behind it.
        self._parallel_gate = threading.Lock()
        self._server: Optional[asyncio.AbstractServer] = None
        self._conn_tasks: set = set()
        self._active = 0

    # -- lifecycle ---------------------------------------------------------

    @property
    def port(self) -> int:
        if self._server is None:
            raise PadsError("server is not started")
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_client, self.config.host, self.config.port)

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # Idle keep-alive connections hold parked handler tasks; cancel
        # them so shutdown is clean, not "task was destroyed but it is
        # pending" noise at loop close.
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)
        self._executor.shutdown(wait=False, cancel_futures=True)

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        async with self._server:
            await self._server.serve_forever()

    # -- HTTP plumbing -----------------------------------------------------

    async def _handle_client(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        try:
            while True:
                try:
                    request = await asyncio.wait_for(
                        self._read_request(reader),
                        timeout=self.config.idle_timeout)
                except (asyncio.TimeoutError, asyncio.IncompleteReadError,
                        ConnectionError):
                    return
                except HttpError as exc:
                    # A request we refuse to even read (oversized body,
                    # malformed request line) still gets a structured
                    # response; the connection closes because the unread
                    # body would desynchronize keep-alive framing.
                    self.metrics.counter("serve.requests", "<refused>",
                                         str(exc.status)).inc()
                    await self._respond(
                        writer, exc.status, "application/json",
                        self._json_body({"error": exc.code,
                                         "message": exc.message}),
                        keep=False)
                    return
                if request is None:
                    return
                method, path, headers, body = request
                keep = headers.get("connection", "keep-alive") != "close"
                t0 = perf_counter()
                self._active += 1
                self.metrics.gauge("serve.active.high_water").set(
                    max(self._active,
                        self.metrics.value("serve.active.high_water")))
                try:
                    status, ctype, payload = await self._dispatch(
                        method, path, headers, body)
                finally:
                    self._active -= 1
                route = path.split("?", 1)[0]
                self.metrics.counter("serve.requests", route,
                                     str(status)).inc()
                self.metrics.histogram("serve.latency", route,
                                       timing=True).observe(
                    perf_counter() - t0)
                await self._respond(writer, status, ctype, payload, keep)
                if not keep:
                    return
        finally:
            if task is not None:
                self._conn_tasks.discard(task)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass

    async def _read_request(self, reader: asyncio.StreamReader):
        line = await reader.readline()
        if not line:
            return None
        try:
            method, target, _version = line.decode("latin-1").split(None, 2)
        except ValueError:
            raise HttpError(400, "BAD_REQUEST", "malformed request line")
        headers: Dict[str, str] = {}
        while True:
            raw = await reader.readline()
            if raw in (b"\r\n", b"\n", b""):
                break
            name, _sep, value = raw.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        if headers.get("transfer-encoding"):
            raise HttpError(400, "BAD_REQUEST",
                            "chunked request bodies are not supported")
        length = int(headers.get("content-length", "0") or "0")
        if length > self.config.max_body:
            raise HttpError(413, "REQUEST_TOO_LARGE",
                            f"request body over {self.config.max_body} bytes")
        body = await reader.readexactly(length) if length else b""
        return method.upper(), target, headers, body

    async def _respond(self, writer, status: int, ctype: str, body: bytes,
                       keep: bool) -> None:
        reason = _REASONS.get(status, "OK")
        head = (f"HTTP/1.1 {status} {reason}\r\n"
                f"Content-Type: {ctype}\r\n"
                f"Content-Length: {len(body)}\r\n"
                f"Connection: {'keep-alive' if keep else 'close'}\r\n"
                "\r\n")
        writer.write(head.encode("latin-1") + body)
        await writer.drain()

    @staticmethod
    def _json_body(doc: dict) -> bytes:
        # ensure_ascii keeps the wire format pure ASCII: byte-carrying
        # string fields travel as \u00XX escapes, so clients recover the
        # exact bytes with str.encode("latin-1") after json parsing.
        return transparent_encode(json.dumps(doc, sort_keys=True))

    # -- dispatch ----------------------------------------------------------

    async def _dispatch(self, method: str, path: str, headers: dict,
                        body: bytes) -> Tuple[int, str, bytes]:
        route = path.split("?", 1)[0]
        try:
            if route == "/healthz":
                if method != "GET":
                    raise HttpError(405, "METHOD_NOT_ALLOWED", "GET only")
                return 200, "application/json", self._json_body(
                    {"status": "ok"})
            if route == "/metrics":
                if method != "GET":
                    raise HttpError(405, "METHOD_NOT_ALLOWED", "GET only")
                text = to_prometheus(self.metrics)
                return (200, "text/plain; version=0.0.4; charset=utf-8",
                        transparent_encode(text))
            if route == "/v1/descriptions":
                if method != "POST":
                    raise HttpError(405, "METHOD_NOT_ALLOWED", "POST only")
                return await self._handle_register(headers, body)
            if route == "/v1/parse":
                if method != "POST":
                    raise HttpError(405, "METHOD_NOT_ALLOWED", "POST only")
                return await self._handle_parse(headers, body)
            raise HttpError(404, "NOT_FOUND", f"no route {route!r}")
        except LimitExceeded as exc:
            tenant = headers.get("x-tenant", "default")
            self.metrics.counter("serve.limited", tenant,
                                 exc.limit_code).inc()
            return exc.status, "application/json", self._json_body({
                "error": exc.code, "code": exc.limit_code,
                "tenant": tenant, "records_parsed": exc.records_parsed,
                "message": exc.message})
        except HttpError as exc:
            return exc.status, "application/json", self._json_body(
                {"error": exc.code, "message": exc.message})
        except (DescriptionError, PadsError) as exc:
            return 400, "application/json", self._json_body(
                {"error": "PADS_ERROR", "message": str(exc)})
        except Exception as exc:  # never let a bug tear the server down
            self.metrics.counter("serve.errors.internal").inc()
            return 500, "application/json", self._json_body(
                {"error": "INTERNAL", "message": f"{type(exc).__name__}: "
                                                 f"{exc}"})

    @staticmethod
    def _payload(body: bytes) -> dict:
        try:
            doc = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise HttpError(400, "BAD_JSON", f"request body: {exc}")
        if not isinstance(doc, dict):
            raise HttpError(400, "BAD_JSON", "request body must be an object")
        return doc

    # -- description resolution --------------------------------------------

    def _compile(self, payload: dict):
        """``(description, id, cache_hit)`` from inline compile fields."""
        source = payload.get("source")
        if not isinstance(source, str) or not source:
            raise HttpError(400, "MISSING_SOURCE",
                            "request needs 'source' or a registered 'id'")
        ambient = payload.get("ambient", "ascii")
        if ambient not in ("ascii", "binary", "ebcdic"):
            raise HttpError(400, "BAD_AMBIENT",
                            f"unknown ambient {ambient!r}")
        backend = payload.get("backend")
        if backend not in (None, "auto", "source", "ast"):
            raise HttpError(400, "BAD_BACKEND",
                            f"unknown backend {backend!r}")
        discipline = discipline_from_spec(payload.get("records", "newline"))
        fastpath = bool(payload.get("fastpath", True))
        return self.cache.get_or_compile(
            source, ambient=ambient, discipline=discipline,
            backend=backend, fastpath=fastpath, filename="<request>")

    def _resolve(self, payload: dict):
        """Resolve a request to ``(description, id, cache_hit)`` by
        registered id or by inline source through the compile cache."""
        desc_id = payload.get("id")
        if desc_id is not None:
            with self._desc_lock:
                entry = self._descriptions.get(desc_id)
            if entry is None:
                raise HttpError(404, "UNKNOWN_DESCRIPTION",
                                f"no registered description {desc_id!r}")
            return entry[0], desc_id, True
        return self._compile(payload)

    async def _handle_register(self, headers: dict,
                               body: bytes) -> Tuple[int, str, bytes]:
        payload = self._payload(body)
        loop = asyncio.get_running_loop()
        desc, key, hit = await loop.run_in_executor(
            self._executor, self._compile, payload)
        self._note_cache(hit)
        with self._desc_lock:
            self._descriptions[key] = (desc, payload.get("records",
                                                         "newline"))
            self.metrics.gauge("serve.descriptions").set(
                len(self._descriptions))
        doc = {"id": key, "cached": hit,
               "backend": getattr(desc, "backend", "interp"),
               "source_type": desc.source_type,
               "types": desc.type_names}
        return 200, "application/json", self._json_body(doc)

    def _note_cache(self, hit: bool) -> None:
        if hit:
            self.metrics.counter("serve.cache.hits").inc()
        else:
            self.metrics.counter("serve.cache.misses").inc()
            self.metrics.counter("serve.compile").inc()

    # -- parse requests ----------------------------------------------------

    async def _handle_parse(self, headers: dict,
                            body: bytes) -> Tuple[int, str, bytes]:
        payload = self._payload(body)
        tenant = headers.get("x-tenant", "default")
        limits = self.config.tenant_limits.get(tenant,
                                               self.config.default_limits)
        loop = asyncio.get_running_loop()
        registry = MetricsRegistry()  # this request's private registry
        try:
            doc, raw, hit = await loop.run_in_executor(
                self._executor, self._execute, payload, tenant, limits,
                registry)
        finally:
            # Merge-at-completion, on the event loop: the reduce path the
            # registry algebra is built for.  Failed and limited requests
            # still account their partial work (including the compile
            # they may have triggered before hitting their budget).
            self.metrics.merge(registry)
        self.metrics.counter("serve.tenant.requests", tenant).inc()
        if raw is not None:
            return 200, "text/plain; charset=latin-1", raw
        return 200, "application/json", self._json_body(doc)

    def _execute(self, payload: dict, tenant: str,
                 limits: Optional[ParseLimits],
                 registry: MetricsRegistry):
        """Blocking request execution (runs on the executor).

        Returns ``(json_doc, raw_body_or_None, cache_hit)``; raises
        :class:`LimitExceeded` when the tenant budget is hit.
        """
        desc, key, hit = self._resolve(payload)
        if hit:
            registry.counter("serve.cache.hits").inc()
        else:
            registry.counter("serve.cache.misses").inc()
            registry.counter("serve.compile").inc()
        data = self._data_bytes(payload)
        mode = payload.get("mode", "records")
        out_format = payload.get("format", "json")
        if mode not in ("records", "accum", "count"):
            raise HttpError(400, "BAD_MODE", f"unknown mode {mode!r}")
        if out_format not in ("json", "text"):
            raise HttpError(400, "BAD_FORMAT",
                            f"unknown format {out_format!r}")
        t0 = perf_counter()
        if mode == "count":
            doc, text = self._run_count(desc, data, limits, registry)
        else:
            type_name = payload.get("type") or desc.source_type
            if not type_name:
                raise HttpError(400, "MISSING_TYPE",
                                "request needs 'type' (no Psource type)")
            if type_name not in desc.type_names:
                raise HttpError(400, "UNKNOWN_TYPE",
                                f"no type named {type_name!r}")
            if mode == "accum":
                doc, text = self._run_accum(desc, data, type_name, payload,
                                            limits, registry)
            else:
                doc, text = self._run_records(desc, data, type_name, payload,
                                              limits, registry)
        registry.counter("bytes.total").inc(len(data))
        registry.histogram("serve.request_bytes",
                           bounds=SIZE_BUCKETS).observe(len(data))
        registry.histogram("serve.parse_seconds", timing=True).observe(
            perf_counter() - t0)
        registry.counter("serve.tenant.bytes", tenant).inc(len(data))
        doc.update({"id": key, "cached": hit, "tenant": tenant,
                    "mode": mode})
        if out_format == "text":
            # Raw bodies carry parsed field bytes; they must round-trip
            # through transparent_encode (utf-8 re-encoding latin-1 field
            # bytes is the PR-5 report-rendering bug all over again).
            return doc, transparent_encode(text), hit
        return doc, None, hit

    @staticmethod
    def _data_bytes(payload: dict) -> bytes:
        if "data_b64" in payload:
            try:
                return base64.b64decode(payload["data_b64"], validate=True)
            except (binascii.Error, TypeError) as exc:
                raise HttpError(400, "BAD_DATA", f"data_b64: {exc}")
        data = payload.get("data")
        if not isinstance(data, str):
            raise HttpError(400, "BAD_DATA",
                            "request needs 'data' (str) or 'data_b64'")
        # The latin-1 convention: JSON code points < 256 are the bytes.
        return transparent_encode(data)

    def _open(self, desc, data: bytes, limits: Optional[ParseLimits]):
        """A fresh per-request Source with the *tenant's* budget (the
        cached description itself stays limits-free)."""
        return Source.from_bytes(data, desc.discipline, limits=limits)

    def _with_limits(self, desc, limits: Optional[ParseLimits]):
        """A shallow twin of a cached description carrying the tenant
        budget, for engines that read ``description.limits``."""
        if limits is None:
            return desc
        twin = copy.copy(desc)
        twin.limits = limits
        return twin

    def _use_parallel(self, data: bytes) -> bool:
        return (self.config.jobs > 1
                and len(data) >= self.config.parallel_threshold)

    @staticmethod
    def _check_limit(pd, tally: ErrorTally) -> None:
        if not int(pd.pstate) & int(Pstate.LIMIT):
            return
        code = pd.err_code.name if pd.err_code.value >= 500 else None
        if code is None:
            for _path, err, _n in pd.iter_errors("<record>"):
                if err.value >= 500:
                    code = err.name
                    break
        raise LimitExceeded(code or "LIMIT_EXCEEDED", tally.records)

    @staticmethod
    def _tally_limit(tally: ErrorTally) -> None:
        for name in tally.by_code:
            if name in LIMIT_STATUS:
                raise LimitExceeded(name, tally.records)

    def _fold_tally(self, tally: ErrorTally,
                    registry: MetricsRegistry) -> dict:
        registry.counter("records.total").inc(tally.records)
        registry.counter("records.bad").inc(tally.bad_records)
        registry.counter("errors.total").inc(tally.total_errors)
        for code, n in tally.by_code.items():
            registry.counter("errors.by_code", code).inc(n)
        stats = {"records": tally.records, "bad": tally.bad_records,
                 "errors": tally.total_errors,
                 "by_code": dict(sorted(tally.by_code.items()))}
        if tally.first_error_code is not None:
            stats["first_error"] = {
                "code": tally.first_error_code.name,
                "offset": getattr(tally.first_error_loc, "offset", None)}
        return stats

    # -- the three modes ---------------------------------------------------

    def _run_count(self, desc, data: bytes, limits, registry):
        if self._use_parallel(data) and self._parallel_gate.acquire(
                blocking=False):
            try:
                registry.counter("serve.parallel_runs").inc()
                n = self._with_limits(desc, limits).count_records_parallel(
                    data, jobs=self.config.jobs)
            finally:
                self._parallel_gate.release()
        else:
            n = desc.count_records(self._open(desc, data, limits))
        registry.counter("records.total").inc(n)
        return {"count": n}, f"{n}\n"

    def _run_accum(self, desc, data: bytes, type_name: str, payload: dict,
                   limits, registry):
        tracked = int(payload.get("tracked", 1000))
        top = int(payload.get("top", 10))
        tally = ErrorTally()
        if self._use_parallel(data) and self._parallel_gate.acquire(
                blocking=False):
            try:
                registry.counter("serve.parallel_runs").inc()
                acc, _header, tally = self._with_limits(
                    desc, limits).accumulate_parallel(
                    data, type_name, jobs=self.config.jobs, tracked=tracked)
            finally:
                self._parallel_gate.release()
            self._tally_limit(tally)
        else:
            acc = Accumulator(desc.node(type_name), "<top>", tracked)
            src = self._open(desc, data, limits)
            for rep, pd in desc.records(src, type_name):
                acc.add(rep, pd)
                tally.add(pd)
                self._check_limit(pd, tally)
        report = acc.full_report(top)
        stats = self._fold_tally(tally, registry)
        return {"report": report, "count": tally.records,
                "stats": stats}, report

    def _run_records(self, desc, data: bytes, type_name: str, payload: dict,
                     limits, registry):
        delims = list(str(payload.get("delims", "|")))
        max_records = int(payload.get("max_records", DEFAULT_MAX_RECORDS))
        node = desc.node(type_name)
        tally = ErrorTally()
        lines = []
        truncated = False
        src = self._open(desc, data, limits)
        for rep, pd in desc.records(src, type_name):
            tally.add(pd)
            self._check_limit(pd, tally)
            if len(lines) < max_records:
                lines.append(format_value(node, rep, delims=delims))
            else:
                truncated = True
        stats = self._fold_tally(tally, registry)
        doc = {"records": lines, "count": tally.records, "stats": stats}
        if truncated:
            doc["truncated"] = True
        return doc, "".join(line + "\n" for line in lines)


# -- entry points ---------------------------------------------------------------


def run_server(config: ServeConfig) -> int:
    """Run a server in the foreground until SIGINT/SIGTERM (the
    ``padsc serve`` body).  Returns 0 on clean shutdown."""
    import signal

    async def _main() -> int:
        server = ParseServer(config)
        await server.start()
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(sig, stop.set)
            except NotImplementedError:  # non-Unix event loops
                pass
        print(f"padsc serve: listening on "
              f"http://{config.host}:{server.port} "
              f"(jobs={config.jobs}, cache={config.cache_size})",
              flush=True)
        try:
            await stop.wait()
        finally:
            await server.stop()
        return 0

    return asyncio.run(_main())


class ServerThread:
    """A server on a background thread with its own event loop — the
    harness tests and benchmarks drive real sockets through this."""

    def __init__(self, config: Optional[ServeConfig] = None, **kwargs):
        self.server = ParseServer(config, **kwargs)
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._failure: Optional[BaseException] = None

    @property
    def port(self) -> int:
        return self.server.port

    @property
    def metrics(self) -> MetricsRegistry:
        return self.server.metrics

    def __enter__(self) -> "ServerThread":
        self.start()
        return self

    def __exit__(self, *_exc) -> None:
        self.stop()

    def start(self) -> "ServerThread":
        def _run():
            loop = asyncio.new_event_loop()
            asyncio.set_event_loop(loop)
            self._loop = loop
            try:
                loop.run_until_complete(self.server.start())
            except BaseException as exc:  # bind failure -> surface in start()
                self._failure = exc
                self._ready.set()
                return
            self._ready.set()
            try:
                loop.run_forever()
            finally:
                loop.run_until_complete(self.server.stop())
                loop.close()

        self._thread = threading.Thread(target=_run, name="pads-serve",
                                        daemon=True)
        self._thread.start()
        self._ready.wait(timeout=10)
        if self._failure is not None:
            raise self._failure
        if not self._ready.is_set():
            raise PadsError("server failed to start within 10s")
        return self

    def stop(self) -> None:
        if self._loop is not None and self._thread is not None \
                and self._thread.is_alive():
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout=10)
        self._loop = None
        self._thread = None
