"""The single ambient-coding table (paper Section 3.1).

A PADS description is interpreted relative to an *ambient coding* —
ASCII, EBCDIC or raw binary — which selects both the base-type aliases
(``Pint`` means ``Pa_int`` under ASCII, ``Pe_int`` under EBCDIC) and the
character encoding used for literals and enum spellings.  Every engine
and tool used to carry its own copy of this table; it now lives here,
in the plan layer, and nowhere else.
"""

from __future__ import annotations

from typing import Dict

ENCODINGS: Dict[str, str] = {
    "ascii": "latin-1",
    "binary": "latin-1",
    "ebcdic": "cp037",
}


def encoding_for(ambient: str) -> str:
    """Python codec name for an ambient coding ('ascii'/'binary'/'ebcdic')."""
    try:
        return ENCODINGS[ambient]
    except KeyError:
        raise ValueError(
            f"unknown ambient coding {ambient!r}; "
            f"expected one of {sorted(ENCODINGS)}") from None
