"""repro.plan — the analyzed middle layer between the DSL AST and the engines.

A type-checked description is lowered **once** (:func:`analyze`) into a
typed IR (:mod:`repro.plan.ir`) carrying every derived fact the
consumers used to re-compute independently: the ambient-coding table,
resolved base types, literal byte forms and resync sets, terminators
and separators, static-width analysis, fused literal runs, and
per-record fastpath verdicts with compiled fast functions.

Consumers:

* :mod:`repro.core.binding` — builds interpreter nodes from plan nodes;
* :mod:`repro.codegen.backends` — the codegen backends compile plan
  nodes to parser modules (including the fast functions, verbatim in
  the source backend, ``dosem``-specialized in the AST backend);
* :mod:`repro.plan.runtime` — materialises the same fast functions for
  the interpreter;
* the AST-walking tools (``tools/xsd.py``, ``tools/datagen.py``,
  ``tools/cobol.py``) and the ``padsc plan`` pretty-printer.

See ``docs/ARCHITECTURE.md`` for the full layering.
"""

from __future__ import annotations

from typing import Any, Tuple

from .analyze import analyze
from .encodings import ENCODINGS, encoding_for
from .ir import (
    ArrayPlan,
    BaseUse,
    BranchPlan,
    CasePlan,
    ComputeItem,
    DataItem,
    DeclPlan,
    EnumItemPlan,
    EnumPlan,
    LitItem,
    LitPlan,
    OptUse,
    Plan,
    RefUse,
    RegexUse,
    StructPlan,
    SwitchPlan,
    TypedefPlan,
    UnionPlan,
    Use,
    Verdict,
)
from .pprint import describe_use, format_plan


def resolve_base(name: str, args: Tuple[Any, ...] = (),
                 ambient: str = "ascii") -> Any:
    """Resolve a base-type use under an ambient coding.

    The sanctioned route into the base-type registry for everything
    outside :mod:`repro.core.basetypes` — engine consumers and generated
    modules import this instead of reaching into the registry directly.
    """
    from ..core.basetypes.base import resolve_base_type
    return resolve_base_type(name, args, ambient)


__all__ = [
    "ENCODINGS",
    "encoding_for",
    "analyze",
    "resolve_base",
    "format_plan",
    "describe_use",
    "Plan",
    "Verdict",
    "DeclPlan",
    "StructPlan",
    "UnionPlan",
    "SwitchPlan",
    "ArrayPlan",
    "EnumPlan",
    "TypedefPlan",
    "BranchPlan",
    "CasePlan",
    "EnumItemPlan",
    "LitItem",
    "ComputeItem",
    "DataItem",
    "LitPlan",
    "Use",
    "BaseUse",
    "RegexUse",
    "OptUse",
    "RefUse",
]
