"""Pretty-print an analyzed plan (the ``padsc plan`` subcommand).

Shows, per declaration, what the analysis derived: resolved base types,
static byte widths, separators/terminators, resync literal sets, fused
literal runs, and the fastpath-eligibility verdict with its reason —
the answer to "why did (or didn't) my description get the fast path?".
"""

from __future__ import annotations

from typing import List, Optional

from .ir import (
    ArrayPlan,
    BaseUse,
    ComputeItem,
    DataItem,
    EnumPlan,
    LitItem,
    LitPlan,
    OptUse,
    Plan,
    RefUse,
    RegexUse,
    StructPlan,
    SwitchPlan,
    TypedefPlan,
    UnionPlan,
    Use,
)

_KEYWORDS = {
    "struct": "Pstruct",
    "union": "Punion",
    "switch": "Punion(Pswitch)",
    "array": "Parray",
    "enum": "Penum",
    "typedef": "Ptypedef",
}


def _width(w: Optional[int]) -> str:
    return "dynamic" if w is None else f"{w} bytes"


def describe_use(use: Use) -> str:
    if isinstance(use, OptUse):
        return f"Popt {describe_use(use.inner)}"
    if isinstance(use, RegexUse):
        return f"Pre {use.pattern!r}"
    if isinstance(use, RefUse):
        if use.args:
            return f"{use.name}(:{len(use.args)} arg(s):)"
        return use.name
    assert isinstance(use, BaseUse)
    text = use.name
    if use.static_args:
        text += "(:" + ", ".join(repr(v) for v in use.static_args) + ":)"
    elif use.args:
        text += f"(:{len(use.args)} dynamic arg(s):)"
    if use.static is not None:
        text += f" -> {type(use.static).__name__}"
    return text


def _lit_text(lit: LitPlan) -> str:
    text = lit.describe()
    if lit.raw is not None and lit.kind in ("char", "string"):
        text += f" = {lit.raw!r}"
    return text


def _decl_lines(dp) -> List[str]:
    head = f"{_KEYWORDS.get(dp.kind, dp.kind)} {dp.name}"
    if dp.params:
        head += "(:" + ", ".join(n for _, n in dp.params) + ":)"
    flags = []
    if dp.is_record:
        flags.append("Precord")
    if dp.is_source:
        flags.append("Psource")
    if flags:
        head += "  [" + " ".join(flags) + "]"
    lines = [head,
             f"  width: {_width(dp.width)}",
             f"  fastpath: {dp.verdict}",
             f"  batch: {dp.batch_verdict}",
             f"  codegen: {dp.codegen_verdict}"]

    if isinstance(dp, StructPlan):
        for i, item in enumerate(dp.items):
            if isinstance(item, LitItem):
                lines.append(f"  [{i}] literal {_lit_text(item.literal)}")
            elif isinstance(item, ComputeItem):
                lines.append(f"  [{i}] Pcompute {item.name} : {item.type_name}")
            else:
                assert isinstance(item, DataItem)
                w = f"  ({_width(item.type.width)})"
                lines.append(f"  [{i}] {item.name} : "
                             f"{describe_use(item.type)}{w}")
        if dp.scan_literals:
            lits = ", ".join(repr(b) for b in dp.scan_literals)
            lines.append(f"  resync literals: {lits}")
        for start, end, raw in dp.fused_runs:
            lines.append(f"  fused literal run: items {start}..{end} -> {raw!r}")
    elif isinstance(dp, SwitchPlan):
        lines.append("  switched on a selector expression")
        for c in dp.cases:
            label = "Pdefault" if c.value is None else "Pcase"
            lines.append(f"  {label} {c.name} : {describe_use(c.type)}")
    elif isinstance(dp, UnionPlan):
        for br in dp.branches:
            guard = "  (guarded)" if br.constraint is not None else ""
            lines.append(f"  | {br.name} : {describe_use(br.type)}{guard}")
    elif isinstance(dp, ArrayPlan):
        lines.append(f"  element: {describe_use(dp.elt)} "
                     f"({_width(dp.elt.width)})")
        if dp.sep is not None:
            lines.append(f"  separator: {_lit_text(dp.sep)}")
        if dp.term is not None:
            lines.append(f"  terminator: {_lit_text(dp.term)}")
        if dp.fixed_count is not None:
            lines.append(f"  count: {dp.fixed_count} (static)")
        elif dp.min_size is not None or dp.max_size is not None:
            lines.append("  count: bounded (dynamic)")
        if dp.longest:
            lines.append("  termination: Plongest")
        if dp.last is not None:
            lines.append("  termination: Plast predicate")
        if dp.ended is not None:
            lines.append("  termination: Pended predicate")
    elif isinstance(dp, EnumPlan):
        for item in dp.items:
            lines.append(f"  {item.name} = {item.code}  "
                         f"(physical {item.physical!r} = {item.raw!r})")
    elif isinstance(dp, TypedefPlan):
        constrained = " (constrained)" if dp.constraint is not None else ""
        lines.append(f"  base: {describe_use(dp.base)}{constrained}")
    return lines


def format_plan(plan: Plan, type_name: Optional[str] = None) -> str:
    """Human-readable rendering of the analyzed IR; ``type_name``
    restricts the output to one declaration."""
    out: List[str] = [
        f"plan: ambient={plan.ambient} encoding={plan.encoding} "
        f"source={plan.source_name or '<none>'}",
        "",
    ]
    if type_name is not None:
        if type_name not in plan.decls:
            raise KeyError(f"no declaration named {type_name!r}")
        out.extend(_decl_lines(plan.decls[type_name]))
        return "\n".join(out) + "\n"
    for kind, entry in plan.order:
        if kind == "func":
            out.append(f"Pfunction {entry.name}")
            out.append("")
            continue
        out.extend(_decl_lines(entry))
        out.append("")
    return "\n".join(out).rstrip("\n") + "\n"
