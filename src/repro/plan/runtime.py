"""Materialise plan-compiled fast functions for the interpreter.

The fast-path compilers in :mod:`repro.plan.fastpath` emit plain source
fragments over a small runtime namespace (``Rec``, ``UnionVal``, enum
constants, helper functions, the packed/zoned/date converters).  In a
generated module that namespace *is* the module globals; here the same
fragments are exec'd into an equivalent namespace so the interpreted
engine gets the identical fast functions — the record-level speedups no
longer belong to codegen alone.
"""

from __future__ import annotations

from typing import Any, Callable, Dict

from .ir import Plan


def runtime_namespace(plan: Plan) -> Dict[str, Any]:
    """Globals a plan-compiled fast function needs, mirroring the
    preamble of a generated module."""
    # Lazy imports: repro.codegen imports repro.plan at module level, so
    # this module must not import it back until call time.
    from ..codegen.runtime import convert_packed, convert_zoned
    from ..core.basetypes.temporal import parse_date_text
    from ..core.values import DateVal, EnumVal, FloatVal, Rec, UnionVal
    from ..expr.pycompile import compile_function
    from ..expr.runtime import builtins_table, cdiv, cmod, getmember

    def _fp_parse_date(text):
        """Fast-path date conversion: datetime -> DateVal."""
        dt = parse_date_text(text)
        if dt is None:
            return None
        return DateVal.from_datetime(dt, text)

    ns: Dict[str, Any] = {
        "Rec": Rec,
        "UnionVal": UnionVal,
        "FloatVal": FloatVal,
        "DateVal": DateVal,
        "EnumVal": EnumVal,
        "_B": builtins_table,
        "_cdiv": cdiv,
        "_cmod": cmod,
        "_member": getmember,
        "_fp_packed": convert_packed,
        "_fp_zoned": convert_zoned,
        "_fp_parse_date": _fp_parse_date,
    }
    for name, (lit, code, phys) in plan.enum_literals.items():
        ns[f"E_{name}"] = EnumVal(lit, code, phys)
    for fn in plan.functions.values():
        exec(compile_function(fn, plan.resolver({}), name_prefix="fn_"), ns)
    return ns


def materialize_fast_fns(plan: Plan) -> Dict[str, Callable]:
    """``{type name: fast function}`` for every eligible record plan."""
    fns: Dict[str, Callable] = {}
    ns: Dict[str, Any] = {}
    for dp in plan.decls.values():
        if dp.fast_fn is None or not dp.verdict.eligible:
            continue
        if not ns:
            ns = runtime_namespace(plan)
        name, lines = dp.fast_fn
        exec("\n".join(lines), ns)
        fns[dp.name] = ns[name]
    return fns


def materialize_batch_fns(plan: Plan) -> Dict[str, Callable]:
    """``{type name: batch kernel}`` for every batch-eligible record
    plan — the interpreter twin of the ``_bt_*`` functions a generated
    module carries in its ``BATCH`` table."""
    fns: Dict[str, Callable] = {}
    ns: Dict[str, Any] = {}
    for dp in plan.decls.values():
        if dp.batch_fn is None or not dp.batch_verdict.eligible:
            continue
        if not ns:
            ns = runtime_namespace(plan)
        name, lines = dp.batch_fn
        exec("\n".join(lines), ns)
        fns[dp.name] = ns[name]
    return fns
