"""Record-level fast paths compiled from the plan IR.

The paper's Section 9 proposes "partially evaluating the current PADS
library" to produce application-specific instances.  This module does
exactly that for the overwhelmingly common case — a uniform mask over a
``Precord`` type — in two flavours, tried in order:

* **Fixed-width slicing** (:class:`SlicePath`): when the size analysis
  proves the whole record static, the grammar compiles to straight-line
  code — a length check, literal ``startswith`` probes, and byte-slice
  conversions at constant offsets.  This is the Cobol/binary layout
  case (the paper's ``Pb_`` and ``Pebc_``/``Pbcd_`` families).
* **Anchored regex** (:class:`FastPath`): otherwise the record grammar
  is compiled into a single anchored regular expression (Python 3.11
  atomic groups ``(?>...)`` emulate the parser's maximal-munch /
  ordered-choice commitments) plus a generated *converter* that builds
  the in-memory representation and evaluates semantic constraints.

Both compilers share one conservative contract: the fast function
either returns a rep the general parser would have produced **with a
clean parse descriptor**, or ``None`` — in which case the caller
re-parses the record with the general (error-reporting) parser.  Errors
therefore cost one extra parse, while clean records — the vast majority
in the paper's workloads — run at compiled speed.  The compiled
function is a plain source fragment over a small runtime namespace, so
the *same* fast function serves the generated module (where the
namespace is the module globals) and the interpreter (where
:mod:`repro.plan.runtime` materialises it).

Eligibility is decided here, once, and recorded on the plan node as a
:class:`~repro.plan.ir.Verdict` with a human-readable reason; anything
out of scope (switched unions, parameterised types, dynamic sizes,
mid-record arrays, regex terminators) simply keeps the general path.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from ..core.basetypes import cobol as _cobol
from ..core.basetypes import integers as _ints
from ..core.basetypes import misc as _misc
from ..core.basetypes import network as _net
from ..core.basetypes import strings as _strs
from ..core.basetypes import temporal as _tmp
from ..expr import ast as E
from .ir import (
    ArrayPlan,
    BaseUse,
    ComputeItem,
    DataItem,
    EnumPlan,
    LitItem,
    OptUse,
    Plan,
    RefUse,
    RegexUse,
    StructPlan,
    SwitchPlan,
    TypedefPlan,
    UnionPlan,
    Use,
)
from .passes import fixed_width_of

_HOST_GUARD = rb"(?![A-Za-z0-9.\-])"


class NotEligible(Exception):
    """Raised when a construct is outside the fast-path subset; the
    message becomes the plan verdict's reason."""


class _NotFixed(Exception):
    """Internal: the slicing compiler hit a construct it cannot lay out
    at constant offsets; fall back to the regex compiler (which decides
    real eligibility)."""


class _W:
    def __init__(self, depth: int = 0):
        self.lines: List[str] = []
        self.depth = depth

    def w(self, text: str) -> None:
        self.lines.append("    " * self.depth + text)

    def block(self, header: str):
        self.w(header)
        return _I(self)


class _I:
    def __init__(self, w):
        self.w = w

    def __enter__(self):
        self.w.depth += 1

    def __exit__(self, *exc):
        self.w.depth -= 1


def _cls(value: bytes) -> bytes:
    """Escape one byte for use inside a character class."""
    return re.escape(value)


def base_conv(inst, var: str, ref: str, w: _W, exc=NotEligible) -> None:
    """Conversion code for a fixed-width base type from raw bytes in
    ``ref`` (slicing fast path and fixed-array elements)."""
    if isinstance(inst, _ints.BinaryInt):
        w.w(f"{var} = int.from_bytes({ref}, {inst.byteorder!r}, "
            f"signed={inst.signed})")
    elif isinstance(inst, _ints.BinaryRaw):
        w.w(f"{var} = int.from_bytes({ref}, 'big')")
    elif isinstance(inst, _ints.BinaryFloat):
        w.w(f"{var} = __import__('struct').unpack({inst.fmt!r}, {ref})[0]")
    elif isinstance(inst, _cobol.PackedDecimal):
        w.w(f"{var} = _fp_packed({ref}, {inst.digits}, {inst.decimals})")
        with w.block(f"if {var} is None:"):
            w.w("return None")
    elif isinstance(inst, _cobol.ZonedDecimal):
        w.w(f"{var} = _fp_zoned({ref}, {inst.digits}, {inst.decimals})")
        with w.block(f"if {var} is None:"):
            w.w("return None")
    elif isinstance(inst, _strs.FixedString):
        w.w(f"{var} = {ref}.decode({inst.encoding!r})")
    elif isinstance(inst, _strs.AsciiChar):
        w.w(f"{var} = {ref}.decode('latin-1')")
    elif isinstance(inst, _strs.EbcdicChar):
        w.w(f"{var} = {ref}.decode('cp037')")
    elif isinstance(inst, _ints.AsciiIntFW):
        w.w(f"{var} = int({ref}.decode('ascii', 'replace').strip(), 10)")
        if not inst.signed:
            with w.block(f"if {var} < 0:"):
                w.w("return None")
        with w.block(f"if dosem and not "
                     f"({inst.lo} <= {var} <= {inst.hi}):"):
            w.w("return None")
    else:
        raise exc(type(inst).__name__)


def _static_fixed(use: Use) -> Optional[Tuple[object, int]]:
    """(base instance, byte width) when ``use`` is a statically resolved
    fixed-width atomic base type of nonzero width; None otherwise."""
    if not isinstance(use, BaseUse) or use.static is None:
        return None
    width = fixed_width_of(use.static)
    if not width:
        return None
    return use.static, width


class FastPath:
    """Compiles one record plan to an anchored regex plus converter."""

    def __init__(self, plan: Plan, decl: StructPlan):
        self.plan = plan
        self.decl = decl
        self.gid = 0
        self.tmpid = 0
        self.aux: List[str] = []  # extra module-level sources

    # -- small helpers -------------------------------------------------------

    def group(self) -> str:
        self.gid += 1
        return f"g{self.gid}"

    def temp(self) -> str:
        self.tmpid += 1
        return f"_t{self.tmpid}"

    def auxname(self, stem: str, g: str) -> str:
        # Namespaced by record type so two records in one module never
        # collide on their auxiliary maps/regexes.
        return f"_{stem}_{self.decl.name}_{g}"

    def cexpr(self, expr: E.Expr, scope: Dict[str, str]) -> str:
        return self.plan.cexpr(expr, scope)

    # -- entry point ---------------------------------------------------------

    def build(self) -> Tuple[str, List[str], str]:
        """(fast function name, module source lines, verdict reason);
        raises NotEligible."""
        decl = self.decl
        w = _W(depth=2)  # inside def + try
        var = self.temp()
        pattern = self.compile_struct_body(decl.items, decl.where, var,
                                           w, is_tail=True)
        name = decl.name
        rx_name = f"_fprx_{name}"
        fn_name = f"_fp_{name}"
        full = b"(?s:" + pattern + b")"
        compiled = re.compile(full)  # fail analysis, not import
        out: List[str] = []
        out.append(f"{rx_name} = __import__('re').compile({full!r})")
        out.append(f"def {fn_name}(_line, dosem):")
        out.append(f'    """Compiled fast path for {name}: one anchored regex '
                   'plus conversion."""')
        out.append(f"    _m = {rx_name}.fullmatch(_line)")
        out.append("    if _m is None:")
        out.append("        return None")
        out.append("    _gs = _m.groups()")
        out.append("    try:")
        out.extend(_index_groups(w.lines, compiled.groupindex))
        out.append(f"        return {var}")
        out.append("    except Exception:")
        out.append("        return None")
        out.extend(self.aux)
        return fn_name, out, "anchored regex over the record"

    # -- struct --------------------------------------------------------------

    def compile_struct_body(self, items, where: Optional[E.Expr], var: str,
                            w: _W, is_tail: bool,
                            outer_scope: Optional[Dict[str, str]] = None) -> bytes:
        pattern = b""
        scope: Dict[str, str] = dict(outer_scope or {})
        field_vars: List[Tuple[str, str]] = []
        last_idx = len(items) - 1
        for i, item in enumerate(items):
            tail_here = is_tail and i == last_idx
            if isinstance(item, LitItem):
                lit = item.literal
                if lit.kind == "char" or lit.kind == "string":
                    pattern += re.escape(lit.raw)
                elif lit.kind == "eor":
                    pass  # end-of-record is the fullmatch anchor
                else:
                    raise NotEligible(f"literal kind {lit.kind}")
                continue
            if isinstance(item, ComputeItem):
                fvar = self.temp()
                w.w(f"{fvar} = {self.cexpr(item.expr, scope)}")
                scope[item.name] = fvar
                field_vars.append((item.name, fvar))
                if item.constraint is not None:
                    with w.block(f"if dosem and not "
                                 f"({self.cexpr(item.constraint, scope)}):"):
                        w.w("return None")
                continue
            assert isinstance(item, DataItem)
            fvar = self.temp()
            pattern += self.compile_use(item.type, fvar, w, scope, tail_here)
            scope[item.name] = fvar
            field_vars.append((item.name, fvar))
            if item.constraint is not None:
                with w.block(f"if dosem and not "
                             f"({self.cexpr(item.constraint, scope)}):"):
                    w.w("return None")
        # Direct construction: adopt a dict literal as the instance dict,
        # skipping the kwargs-packing __init__ call (~2x faster).
        entries = ", ".join(f"{n!r}: {v}" for n, v in field_vars)
        w.w(f"{var} = Rec.__new__(Rec)")
        w.w(f"{var}.__dict__ = {{{entries}}}")
        if where is not None:
            with w.block(f"if dosem and not ({self.cexpr(where, scope)}):"):
                w.w("return None")
        return pattern

    # -- type uses -----------------------------------------------------------

    def compile_use(self, use: Use, var: str, w: _W,
                    scope: Dict[str, str], is_tail: bool) -> bytes:
        if isinstance(use, OptUse):
            return self.compile_opt(use, var, w, scope, is_tail)
        if isinstance(use, RegexUse):
            return self.compile_regex_type(use.pattern, var, w)
        if isinstance(use, RefUse):
            decl = self.plan.decls[use.name]
            if decl.params or decl.is_record:
                raise NotEligible(f"nested {use.name}")
            return self.compile_decl_use(decl, var, w, scope, is_tail)
        assert isinstance(use, BaseUse)
        if use.static is None:
            raise NotEligible(f"dynamic parameters on {use.name}")
        return self.base_fragment(use.static, var, w, capture=True)

    def compile_decl_use(self, decl, var: str, w: _W,
                         scope: Dict[str, str], is_tail: bool) -> bytes:
        if isinstance(decl, StructPlan):
            return self.compile_struct_body(decl.items, decl.where, var, w,
                                            is_tail)
        if isinstance(decl, SwitchPlan):
            raise NotEligible("switched union")
        if isinstance(decl, UnionPlan):
            return self.compile_union(decl, var, w, is_tail)
        if isinstance(decl, ArrayPlan):
            return self.compile_array(decl, var, w, is_tail)
        if isinstance(decl, EnumPlan):
            return self.compile_enum(decl, var, w)
        if isinstance(decl, TypedefPlan):
            return self.compile_typedef(decl, var, w, scope, is_tail)
        raise NotEligible(type(decl).__name__)

    # -- Popt / Punion -------------------------------------------------------

    def compile_opt(self, use: OptUse, var: str, w: _W,
                    scope: Dict[str, str], is_tail: bool) -> bytes:
        g = self.group()
        inner = self.temp()
        sub = _W(w.depth + 1)
        pattern = self.compile_use(use.inner, inner, sub, dict(scope), False)
        w.w(f"if _m.group({g!r}) is not None:")
        w.lines.extend(sub.lines)
        with _I(w):
            w.w(f"{var} = {inner}")
        with w.block("else:"):
            w.w(f"{var} = None")
        return b"(?:(?P<" + g.encode() + b">" + pattern + b"))?"

    def compile_union(self, decl: UnionPlan, var: str, w: _W,
                      is_tail: bool) -> bytes:
        alts: List[bytes] = []
        first = True
        for br in decl.branches:
            g = self.group()
            bvar = self.temp()
            sub = _W(w.depth + 1)
            substituted = False
            lit = _guard_literal(br.constraint, br.name)
            if lit is not None and isinstance(lit, str):
                # `branch == 'literal'` guard on a char/string branch:
                # bake the literal into the pattern.
                kind = _string_kind(br.type)
                if kind is not None:
                    pattern = (b"(?>" + re.escape(self.plan.encode(lit))
                               + b")")
                    sub.w(f"{bvar} = {lit!r}")
                    substituted = True
            if not substituted:
                pattern = self.compile_use(br.type, bvar, sub, {}, False)
                if br.constraint is not None:
                    # Branch guards steer *selection*; a guard failure means
                    # the general parser would pick a later branch, so the
                    # fast path must bail out.
                    bscope = {br.name: bvar}
                    sub.w(f"if not ({self.cexpr(br.constraint, bscope)}):")
                    sub.w("    return None")
            header = "if" if first else "elif"
            w.w(f"{header} _m.group({g!r}) is not None:")
            w.lines.extend(sub.lines)
            with _I(w):
                w.w(f"{var} = UnionVal({br.name!r}, {bvar})")
            alts.append(b"(?P<" + g.encode() + b">" + pattern + b")")
            first = False
        with w.block("else:"):
            w.w("return None")
        return b"(?>" + b"|".join(alts) + b")"

    # -- Parray --------------------------------------------------------------

    def compile_array(self, decl: ArrayPlan, var: str, w: _W,
                      is_tail: bool) -> bytes:
        if decl.last is not None or decl.ended is not None or decl.longest:
            raise NotEligible("predicate-terminated array")
        if decl.sep is not None and (decl.sep.kind != "char"):
            raise NotEligible("non-char array separator")
        sep = decl.sep.raw if decl.sep is not None else None

        # Tail arrays: Pterm(Peor), no size bounds, last member of the record.
        if decl.term is not None and decl.term.kind == "eor" and is_tail \
                and decl.min_size is None and decl.max_size is None:
            return self._tail_array(decl, sep, var, w)

        # Fixed-count arrays of fixed-width elements (Cobol OCCURS):
        # one .{k*n} span sliced into k-byte chunks by the converter.
        if decl.term is None and decl.sep is None \
                and decl.fixed_count is not None:
            return self._fixed_array(decl, decl.fixed_count, var, w)
        raise NotEligible("array outside the supported forms")

    def _tail_array(self, decl: ArrayPlan, sep: Optional[bytes],
                    var: str, w: _W) -> bytes:
        g = self.group()
        # Standalone anchored element regex + converter function.
        evar = "_ev"
        sub = _W(2)
        elt_pattern = self.compile_use(decl.elt, evar, sub, {}, False)
        conv_name = self.auxname("fpelt", g)
        rx_name = self.auxname("fperx", g)
        elt_full = b"(?s:" + elt_pattern + b")"
        elt_compiled = re.compile(elt_full)
        self.aux.append(f"{rx_name} = __import__('re').compile({elt_full!r})")
        self.aux.append(f"def {conv_name}(_m, dosem):")
        self.aux.append("    _gs = _m.groups()")
        self.aux.append("    try:")
        self.aux.extend(_index_groups(sub.lines, elt_compiled.groupindex))
        self.aux.append(f"        return (True, {evar})")
        self.aux.append("    except Exception:")
        self.aux.append("        return (False, None)")

        span_var = self.temp()
        w.w(f"{span_var} = _m.group({g!r})")
        w.w(f"{var} = []")
        with w.block(f"if {span_var}:"):
            w.w("_apos = 0")
            w.w(f"_alen = len({span_var})")
            with w.block("while True:"):
                w.w(f"_aem = {rx_name}.match({span_var}, _apos)")
                with w.block("if _aem is None or _aem.end() == _apos "
                             "and _alen > _apos:"):
                    w.w("return None")
                w.w(f"_aok, _aval = {conv_name}(_aem, dosem)")
                with w.block("if not _aok:"):
                    w.w("return None")
                w.w(f"{var}.append(_aval)")
                w.w("_apos = _aem.end()")
                with w.block("if _apos >= _alen:"):
                    w.w("break")
                if sep is not None:
                    with w.block(f"if not {span_var}.startswith({sep!r}, "
                                 "_apos):"):
                        w.w("return None")
                    w.w(f"_apos += {len(sep)}")
        if decl.where is not None:
            ascope = {"elts": var, "length": f"len({var})"}
            with w.block(f"if dosem and not "
                         f"({self.cexpr(decl.where, ascope)}):"):
                w.w("return None")
        # The span is everything to end-of-record.
        return b"(?P<" + g.encode() + b">.*)"

    def _fixed_array(self, decl: ArrayPlan, count: int, var: str,
                     w: _W) -> bytes:
        fixed = _static_fixed(decl.elt)
        if fixed is None:
            raise NotEligible("fixed-count array of variable-width elements")
        inst, width = fixed
        if count <= 0:
            raise NotEligible("empty fixed array")
        g = self.group()
        span = self.temp()
        w.w(f"{span} = _m.group({g!r})")
        w.w(f"{var} = []")
        raw = self.temp()
        with w.block(f"for _ai in range({count}):"):
            w.w(f"{raw} = {span}[_ai * {width}:(_ai + 1) * {width}]")
            evar = self.temp()
            sub = _W(w.depth)
            base_conv(inst, evar, raw, sub)
            w.lines.extend(sub.lines)
            w.w(f"{var}.append({evar})")
        if decl.where is not None:
            ascope = {"elts": var, "length": f"len({var})"}
            with w.block(f"if dosem and not "
                         f"({self.cexpr(decl.where, ascope)}):"):
                w.w("return None")
        return (b"(?P<" + g.encode() + b">" +
                b".{%d}" % (width * count) + b")")

    # -- Penum / Ptypedef ----------------------------------------------------

    def compile_enum(self, decl: EnumPlan, var: str, w: _W) -> bytes:
        ordered = decl.ordered
        g = self.group()
        map_name = self.auxname("fpenum", g)
        entries = ", ".join(f"{item.raw!r}: E_{item.name}"
                            for item in ordered)
        self.aux.append(f"{map_name} = {{{entries}}}")
        alternation = b"|".join(re.escape(item.raw) for item in ordered)
        w.w(f"{var} = {map_name}[_m.group({g!r})]")
        return b"(?P<" + g.encode() + b">(?>" + alternation + b"))"

    def compile_typedef(self, decl: TypedefPlan, var: str, w: _W,
                        scope: Dict[str, str], is_tail: bool) -> bytes:
        pattern = self.compile_use(decl.base, var, w, scope, is_tail)
        if decl.constraint is not None:
            cscope = {decl.var: var}
            with w.block(f"if dosem and not "
                         f"({self.cexpr(decl.constraint, cscope)}):"):
                w.w("return None")
        return pattern

    # -- regex-typed fields --------------------------------------------------

    def compile_regex_type(self, pattern: str, var: str, w: _W) -> bytes:
        raw = pattern.encode(self.plan.encoding)
        if b"(" in raw.replace(b"(?:", b"").replace(b"\\(", b""):
            raise NotEligible("regex field with groups")
        if re.compile(raw).match(b""):
            raise NotEligible("regex field matching empty")
        g = self.group()
        w.w(f"{var} = _m.group({g!r}).decode({self.plan.encoding!r})")
        return b"(?P<" + g.encode() + b">(?>" + raw + b"))"

    # -- base types ----------------------------------------------------------

    def base_fragment(self, inst, var: str, w: _W, capture: bool) -> bytes:
        g = self.group()
        ref = f"_m.group({g!r})"

        def grp(body: bytes) -> bytes:
            return b"(?P<" + g.encode() + b">" + body + b")"

        if isinstance(inst, _ints.AsciiInt):
            body = b"(?>[-+]?\\d+)" if inst.signed else b"(?>\\d+)"
            w.w(f"{var} = int({ref})")
            if inst.lo is not None:
                with w.block(f"if dosem and not "
                             f"({inst.lo} <= {var} <= {inst.hi}):"):
                    w.w("return None")
            return grp(body)

        if isinstance(inst, _ints.AsciiIntFW):
            body = b".{%d}" % inst.nchars
            raw = self.temp()
            w.w(f"{raw} = {ref}.decode('ascii', 'replace').strip()")
            w.w(f"{var} = int({raw}, 10)")
            if not inst.signed:
                with w.block(f"if {var} < 0:"):
                    w.w("return None")
            with w.block(f"if dosem and not ({inst.lo} <= {var} <= {inst.hi}):"):
                w.w("return None")
            return grp(body)

        if isinstance(inst, _ints.BinaryInt):
            body = b".{%d}" % inst.nbytes
            w.w(f"{var} = int.from_bytes({ref}, {inst.byteorder!r}, "
                f"signed={inst.signed})")
            return grp(body)

        if isinstance(inst, _ints.BinaryRaw):
            body = b".{%d}" % inst.nbytes
            w.w(f"{var} = int.from_bytes({ref}, 'big')")
            return grp(body)

        if isinstance(inst, _ints.EbcdicInt):
            digits = b"[\\xf0-\\xf9]"
            sign = b"[\\x60\\x4e]?" if inst.signed else b""
            w.w(f"{var} = int({ref}.decode('cp037'))")
            with w.block(f"if dosem and not ({inst.lo} <= {var} <= {inst.hi}):"):
                w.w("return None")
            return grp(b"(?>" + sign + digits + b"+)")

        if isinstance(inst, _ints.AsciiFloat):
            body = b"(?>[-+]?(?:\\d+(?:\\.\\d+)?|\\.\\d+)(?:[eE][-+]?\\d+)?)"
            w.w(f"{var} = FloatVal(float({ref}), {ref}.decode('ascii'))")
            return grp(body)

        if isinstance(inst, _ints.BinaryFloat):
            body = b".{%d}" % inst.nbytes
            w.w(f"{var} = __import__('struct').unpack({inst.fmt!r}, {ref})[0]")
            return grp(body)

        if isinstance(inst, _strs.AsciiChar) or isinstance(inst, _strs.EbcdicChar):
            codec = "cp037" if isinstance(inst, _strs.EbcdicChar) else "latin-1"
            w.w(f"{var} = {ref}.decode({codec!r})")
            return grp(b".")

        if isinstance(inst, _strs.TerminatedString):
            cls = b"[^" + _cls(inst.term) + b"]"
            w.w(f"{var} = {ref}.decode({inst.encoding!r})")
            return grp(b"(?>" + cls + b"*)")

        if isinstance(inst, _strs.FixedString):
            w.w(f"{var} = {ref}.decode({inst.encoding!r})")
            return grp(b".{%d}" % inst.nchars)

        if isinstance(inst, _strs.RegexMatchString):
            raw = inst.pattern.encode("latin-1")
            if b"(" in raw.replace(b"(?:", b"").replace(b"\\(", b""):
                raise NotEligible("regex base with groups")
            if re.compile(raw).match(b""):
                raise NotEligible("regex base matching empty")
            w.w(f"{var} = {ref}.decode('latin-1')")
            return grp(b"(?>" + raw + b")")

        if isinstance(inst, _strs.RestOfRecord):
            w.w(f"{var} = {ref}.decode('latin-1')")
            return grp(b"(?>.*)")

        if isinstance(inst, _tmp.AsciiDate):
            if inst.term is not None:
                body = b"(?>[^" + _cls(inst.term) + b"]*)"
            else:
                body = b"(?>.*)"
            raw = self.temp()
            w.w(f"{raw} = {ref}.decode({inst.encoding!r})")
            w.w(f"{var} = _fp_parse_date({raw})")
            with w.block(f"if {var} is None:"):
                w.w("return None")
            return grp(body)

        if isinstance(inst, _tmp.EpochSeconds):
            w.w(f"{var} = DateVal(int({ref}), {ref}.decode('ascii'))")
            return grp(b"(?>\\d+)")

        if isinstance(inst, _net.Ipv4):
            body = (b"(?>\\d{1,3}\\.\\d{1,3}\\.\\d{1,3}\\.\\d{1,3})"
                    + _HOST_GUARD)
            w.w(f"{var} = {ref}.decode('ascii')")
            with w.block(f"if any(int(_o) > 255 for _o in {var}.split('.')):"):
                w.w("return None")
            return grp(body)

        if isinstance(inst, _net.Hostname):
            body = b"(?>[A-Za-z0-9.\\-]+)" + _HOST_GUARD
            w.w(f"{var} = {ref}.decode('ascii')")
            with w.block(f"if not any(_c.isalpha() for _c in {var}) or "
                         f"{var}.startswith('.') or {var}.endswith('.'):"):
                w.w("return None")
            return grp(body)

        if isinstance(inst, _net.ZipCode):
            body = b"(?>\\d{5}(?:-\\d{4})?(?!\\d))"
            w.w(f"{var} = {ref}.decode('ascii')")
            return grp(body)

        if isinstance(inst, _net.PhoneNumber):
            w.w(f"{var} = int({ref})")
            with w.block(f"if dosem and len({ref}) not in (1, 10):"):
                w.w("return None")
            return grp(b"(?>\\d+)")

        if isinstance(inst, _cobol.PackedDecimal):
            w.w(f"{var} = _fp_packed({ref}, {inst.digits}, {inst.decimals})")
            with w.block(f"if {var} is None:"):
                w.w("return None")
            return grp(b".{%d}" % inst.nbytes)

        if isinstance(inst, _cobol.ZonedDecimal):
            w.w(f"{var} = _fp_zoned({ref}, {inst.digits}, {inst.decimals})")
            with w.block(f"if {var} is None:"):
                w.w("return None")
            return grp(b".{%d}" % inst.digits)

        if isinstance(inst, _misc.Empty):
            w.w(f"{var} = None")
            return b""

        raise NotEligible(type(inst).__name__)


class SlicePath:
    """Compiles a record the size analysis proves static to straight-line
    slicing code: a length check, literal probes and byte-slice
    conversions at constant offsets.  No regex engine in the loop."""

    def __init__(self, plan: Plan, decl: StructPlan):
        self.plan = plan
        self.decl = decl
        self.tmpid = 0
        self.auxid = 0
        self.aux: List[str] = []

    def temp(self) -> str:
        self.tmpid += 1
        return f"_t{self.tmpid}"

    def cexpr(self, expr: E.Expr, scope: Dict[str, str]) -> str:
        return self.plan.cexpr(expr, scope)

    def build(self) -> Tuple[str, List[str], str]:
        """(fast function name, module source lines, verdict reason);
        raises _NotFixed when the layout is not sliceable."""
        decl = self.decl
        total = decl.width
        if total is None or total <= 0:
            raise _NotFixed("record width not static")
        w = _W(depth=2)  # inside def + try
        var = self.temp()
        end = self.compile_struct(decl.items, decl.where, var, w, 0, None)
        if end != total:
            raise _NotFixed("layout does not cover the record")  # paranoia
        name = decl.name
        fn_name = f"_fp_{name}"
        out: List[str] = []
        out.append(f"def {fn_name}(_line, dosem):")
        out.append(f'    """Compiled fast path for {name}: fixed-width '
                   f'slicing over {total} bytes."""')
        out.append(f"    if len(_line) != {total}:")
        out.append("        return None")
        out.append("    try:")
        out.extend(w.lines)
        out.append(f"        return {var}")
        out.append("    except Exception:")
        out.append("        return None")
        out.extend(self.aux)
        return fn_name, out, f"fixed-width slicing over {total} bytes"

    # -- struct --------------------------------------------------------------

    def compile_struct(self, items, where: Optional[E.Expr], var: str,
                       w: _W, off: int,
                       outer_scope: Optional[Dict[str, str]]) -> int:
        scope: Dict[str, str] = dict(outer_scope or {})
        field_vars: List[Tuple[str, str]] = []
        for item in items:
            if isinstance(item, LitItem):
                lit = item.literal
                if lit.kind in ("char", "string"):
                    with w.block(f"if not _line.startswith({lit.raw!r}, "
                                 f"{off}):"):
                        w.w("return None")
                    off += len(lit.raw)
                elif lit.kind in ("eor", "eof"):
                    # The length check is the end-of-record anchor; a
                    # mid-record Peor would make the width non-static.
                    if lit.kind == "eof":
                        raise _NotFixed("eof literal")
                else:
                    raise _NotFixed(f"literal kind {lit.kind}")
                continue
            if isinstance(item, ComputeItem):
                fvar = self.temp()
                w.w(f"{fvar} = {self.cexpr(item.expr, scope)}")
                scope[item.name] = fvar
                field_vars.append((item.name, fvar))
                if item.constraint is not None:
                    with w.block(f"if dosem and not "
                                 f"({self.cexpr(item.constraint, scope)}):"):
                        w.w("return None")
                continue
            assert isinstance(item, DataItem)
            fvar = self.temp()
            off = self.compile_use(item.type, fvar, w, off, scope)
            scope[item.name] = fvar
            field_vars.append((item.name, fvar))
            if item.constraint is not None:
                with w.block(f"if dosem and not "
                             f"({self.cexpr(item.constraint, scope)}):"):
                    w.w("return None")
        entries = ", ".join(f"{n!r}: {v}" for n, v in field_vars)
        w.w(f"{var} = Rec.__new__(Rec)")
        w.w(f"{var}.__dict__ = {{{entries}}}")
        if where is not None:
            with w.block(f"if dosem and not ({self.cexpr(where, scope)}):"):
                w.w("return None")
        return off

    # -- type uses -----------------------------------------------------------

    def compile_use(self, use: Use, var: str, w: _W, off: int,
                    scope: Dict[str, str]) -> int:
        if isinstance(use, BaseUse):
            inst = use.static
            if inst is None:
                raise _NotFixed(f"dynamic parameters on {use.name}")
            if isinstance(inst, _misc.Empty):
                w.w(f"{var} = None")
                return off
            width = fixed_width_of(inst)
            if not width:
                raise _NotFixed(f"variable-width {type(inst).__name__}")
            ref = f"_line[{off}:{off + width}]"
            base_conv(inst, var, ref, w, exc=_NotFixed)
            return off + width
        if isinstance(use, RefUse):
            decl = self.plan.decls[use.name]
            if decl.params or decl.is_record:
                raise _NotFixed(f"nested {use.name}")
            return self.compile_decl_use(decl, var, w, off, scope)
        raise _NotFixed(type(use).__name__)

    def compile_decl_use(self, decl, var: str, w: _W, off: int,
                         scope: Dict[str, str]) -> int:
        if isinstance(decl, StructPlan):
            return self.compile_struct(decl.items, decl.where, var, w, off,
                                       None)
        if isinstance(decl, EnumPlan):
            lens = {len(item.raw) for item in decl.items}
            if len(lens) != 1:
                raise _NotFixed("enum spellings of differing widths")
            width = lens.pop()
            self.auxid += 1
            map_name = f"_fpenum_{self.decl.name}_s{self.auxid}"
            entries = ", ".join(f"{item.raw!r}: E_{item.name}"
                                for item in decl.ordered)
            self.aux.append(f"{map_name} = {{{entries}}}")
            # A miss raises KeyError -> the outer except returns None,
            # exactly like a failed alternation in the regex flavour.
            w.w(f"{var} = {map_name}[_line[{off}:{off + width}]]")
            return off + width
        if isinstance(decl, TypedefPlan):
            off = self.compile_use(decl.base, var, w, off, scope)
            if decl.constraint is not None:
                cscope = {decl.var: var}
                with w.block(f"if dosem and not "
                             f"({self.cexpr(decl.constraint, cscope)}):"):
                    w.w("return None")
            return off
        if isinstance(decl, ArrayPlan):
            return self.compile_array(decl, var, w, off)
        raise _NotFixed(type(decl).__name__)

    def compile_array(self, decl: ArrayPlan, var: str, w: _W,
                      off: int) -> int:
        if (decl.last is not None or decl.ended is not None or decl.longest
                or decl.sep is not None or decl.term is not None):
            raise _NotFixed("array termination is data-dependent")
        count = decl.fixed_count
        if count is None or count <= 0:
            raise _NotFixed("array count not static")
        fixed = _static_fixed(decl.elt)
        if fixed is None:
            raise _NotFixed("array of variable-width elements")
        inst, width = fixed
        raw = self.temp()
        evar = self.temp()
        w.w(f"{var} = []")
        with w.block(f"for _ai in range({count}):"):
            w.w(f"{raw} = _line[{off} + _ai * {width}:"
                f"{off} + (_ai + 1) * {width}]")
            base_conv(inst, evar, raw, w, exc=_NotFixed)
            w.w(f"{var}.append({evar})")
        if decl.where is not None:
            ascope = {"elts": var, "length": f"len({var})"}
            with w.block(f"if dosem and not "
                         f"({self.cexpr(decl.where, ascope)}):"):
                w.w("return None")
        return off + count * width


class BatchPath:
    """Compiles a statically-sized record to a *batch kernel*: one
    function parsing a whole grid of ``_n`` records laid out at a
    constant ``_stride`` in a buffer, instead of one record at a time.

    All fixed columns of every record are split in a single C-level
    ``struct.Struct.iter_unpack`` call; literal columns are verified for
    the whole batch at once with strided-slice compares; only the
    per-record Python work that cannot be hoisted (value conversion for
    non-native columns, semantic constraints, rep construction) runs in
    the loop.  Natively-decodable binary ints/floats come out of the
    tuple ready to use — zero per-record conversion cost.

    Contract (mirrors the record fast path, per *record* rather than per
    call): slot ``i`` of the returned list is either the rep the general
    parser would produce with a clean pd, or ``None`` — the batch driver
    re-parses ``None`` slots individually with the cursor engine, so
    error accounting stays byte-identical to reference.
    """

    #: struct codes for natively unpackable two's-complement widths.
    _INT_CODES = {1: "b", 2: "h", 4: "i", 8: "q"}

    def __init__(self, plan: Plan, decl: StructPlan, prefix: str):
        self.plan = plan
        self.decl = decl
        self.prefix = prefix          # struct byte-order prefix, '<' or '>'
        self.tmpid = 0
        self.auxid = 0
        self.aux: List[str] = []
        self.fmt: List[str] = []      # struct format parts, layout order
        self.nslots = 0               # tuple arity so far
        self.lits: List[Tuple[int, bytes]] = []  # literal columns: (off, raw)
        self.votes = {"<": 0, ">": 0}  # byte-order preferences seen

    def temp(self) -> str:
        self.tmpid += 1
        return f"_f{self.tmpid}"

    def cexpr(self, expr: E.Expr, scope: Dict[str, str]) -> str:
        return self.plan.cexpr(expr, scope)

    def slot(self, code: str) -> str:
        """Allocate one unpacked column; returns its tuple reference."""
        self.fmt.append(code)
        ref = f"_t[{self.nslots}]"
        self.nslots += 1
        return ref

    def build(self) -> Tuple[str, List[str], str]:
        """(kernel name, module source lines, verdict reason); raises
        NotEligible."""
        decl = self.decl
        total = decl.width
        if total is None or total <= 0:
            raise NotEligible("record width is not static")
        w = _W(depth=0)               # re-indented under both loop bodies
        var = self.temp()
        end = self.compile_struct(decl.items, decl.where, var, w, 0, None)
        if end != total:
            raise NotEligible("layout does not cover the record")
        fmt = self.prefix + "".join(self.fmt)
        import struct as _struct
        if _struct.calcsize(fmt) != total:      # paranoia
            raise NotEligible("column format does not cover the record")
        name = decl.name
        fn_name = f"_bt_{name}"
        body = ["            " + ln for ln in w.lines]
        tail = f"            _ap({var})"
        out: List[str] = []
        out.append("_BT_MISS = ValueError")
        out.append(f"_btfmt_{name} = {fmt!r}")
        out.append(f"_btst_{name} = {{}}")
        out.append(f"def {fn_name}(_mv, _n, _stride, dosem):")
        out.append(f'    """Batch kernel for {name}: columnar parse of _n '
                   f'{total}-byte records at _stride-byte pitch."""')
        out.append(f"    _st = _btst_{name}.get(_stride)")
        out.append("    if _st is None:")
        out.append(f"        _pad = _stride - {total}")
        out.append(f"        _st = _btst_{name}[_stride] = "
                   f"__import__('struct').Struct(_btfmt_{name}"
                   " + (str(_pad) + 'x' if _pad else ''))")
        if self.lits:
            out.append("    _bad = None")
            for off, raw in self.lits:
                for j, byte in enumerate(raw):
                    # One strided pass over the whole batch per literal
                    # byte column; the per-record membership set is built
                    # only on the (rare) mismatch path.
                    out.append(f"    _col = bytes(_mv[{off + j}::_stride])")
                    out.append(f"    if _col != {bytes([byte])!r} * _n:")
                    out.append("        if _bad is None:")
                    out.append("            _bad = set()")
                    out.append("        _bad.update(_j for _j in range(_n) "
                               f"if _col[_j] != {byte})")
        out.append("    _reps = []")
        out.append("    _ap = _reps.append")
        # _miss counts None slots so the driver's clean-window test costs
        # nothing (scanning the rep list for None would call each rep's
        # __eq__).  Bumped only on the failure paths.
        out.append("    _miss = 0")
        if self.lits:
            deep = ["    " + ln for ln in body]
            out.append("    if _bad is None:")
            out.append("        for _t in _st.iter_unpack(_mv):")
            out.append("            try:")
            out.extend(deep)
            out.append("    " + tail)
            out.append("            except Exception:")
            out.append("                _ap(None)")
            out.append("                _miss += 1")
            out.append("    else:")
            out.append("        _ui = _st.iter_unpack(_mv)")
            out.append("        for _j in range(_n):")
            out.append("            _t = next(_ui)")
            out.append("            if _j in _bad:")
            out.append("                _ap(None)")
            out.append("                _miss += 1")
            out.append("                continue")
            out.append("            try:")
            out.extend(deep)
            out.append("    " + tail)
            out.append("            except Exception:")
            out.append("                _ap(None)")
            out.append("                _miss += 1")
        else:
            out.append("    for _t in _st.iter_unpack(_mv):")
            out.append("        try:")
            out.extend(body)
            out.append(tail)
            out.append("        except Exception:")
            out.append("            _ap(None)")
            out.append("            _miss += 1")
        out.append("    return _reps, _miss")
        out.extend(self.aux)
        return fn_name, out, (f"columnar kernel over {total}-byte records"
                              f" ({self.nslots} unpacked columns)")

    # -- struct --------------------------------------------------------------

    def compile_struct(self, items, where: Optional[E.Expr], var: str,
                       w: _W, off: int,
                       outer_scope: Optional[Dict[str, str]]) -> int:
        scope: Dict[str, str] = dict(outer_scope or {})
        field_vars: List[Tuple[str, str]] = []
        for item in items:
            if isinstance(item, LitItem):
                lit = item.literal
                if lit.kind in ("char", "string"):
                    self.lits.append((off, lit.raw))
                    self.fmt.append(f"{len(lit.raw)}x")
                    off += len(lit.raw)
                elif lit.kind == "eor":
                    pass  # the grid pitch is the end-of-record anchor
                else:
                    raise NotEligible(f"literal kind {lit.kind}")
                continue
            if isinstance(item, ComputeItem):
                fvar = self.temp()
                w.w(f"{fvar} = {self.cexpr(item.expr, scope)}")
                scope[item.name] = fvar
                field_vars.append((item.name, fvar))
                if item.constraint is not None:
                    with w.block(f"if dosem and not "
                                 f"({self.cexpr(item.constraint, scope)}):"):
                        w.w("raise _BT_MISS")
                continue
            assert isinstance(item, DataItem)
            fvar = self.temp()
            off = self.compile_use(item.type, fvar, w, off, scope)
            scope[item.name] = fvar
            field_vars.append((item.name, fvar))
            if item.constraint is not None:
                with w.block(f"if dosem and not "
                             f"({self.cexpr(item.constraint, scope)}):"):
                    w.w("raise _BT_MISS")
        entries = ", ".join(f"{n!r}: {v}" for n, v in field_vars)
        w.w(f"{var} = Rec.__new__(Rec)")
        w.w(f"{var}.__dict__ = {{{entries}}}")
        if where is not None:
            with w.block(f"if dosem and not ({self.cexpr(where, scope)}):"):
                w.w("raise _BT_MISS")
        return off

    # -- type uses -----------------------------------------------------------

    def compile_use(self, use: Use, var: str, w: _W, off: int,
                    scope: Dict[str, str]) -> int:
        if isinstance(use, BaseUse):
            inst = use.static
            if inst is None:
                raise NotEligible(f"dynamic parameters on {use.name}")
            if isinstance(inst, _misc.Empty):
                w.w(f"{var} = None")
                return off
            width = fixed_width_of(inst)
            if not width:
                raise NotEligible(f"variable-width {type(inst).__name__}")
            self.compile_base(inst, width, var, w)
            return off + width
        if isinstance(use, RefUse):
            decl = self.plan.decls[use.name]
            if decl.params or decl.is_record:
                raise NotEligible(f"nested {use.name}")
            return self.compile_decl_use(decl, var, w, off, scope)
        raise NotEligible(type(use).__name__)

    def compile_base(self, inst, width: int, var: str, w: _W) -> None:
        """One fixed-width base column: a native struct code when the
        byte order matches the kernel prefix (the value comes out of the
        unpacked tuple ready to use), a raw ``{w}s`` column plus the
        shared per-record conversion otherwise."""
        if isinstance(inst, _ints.BinaryInt):
            pref = "<" if inst.byteorder == "little" else ">"
            self.votes[pref] += 1
            code = self._INT_CODES.get(inst.nbytes)
            if code is not None and pref == self.prefix:
                if not inst.signed:
                    code = code.upper()
                w.w(f"{var} = {self.slot(code)}")
                return
        elif isinstance(inst, _ints.BinaryRaw):
            self.votes[">"] += 1
            code = self._INT_CODES.get(inst.nbytes)
            if code is not None and self.prefix == ">":
                w.w(f"{var} = {self.slot(code.upper())}")
                return
        elif isinstance(inst, _ints.BinaryFloat):
            self.votes[inst.fmt[0]] += 1
            if inst.fmt[0] == self.prefix:
                w.w(f"{var} = {self.slot(inst.fmt[1])}")
                return
        ref = self.slot(f"{width}s")
        sub = _W(w.depth)
        base_conv(inst, var, ref, sub, exc=NotEligible)
        w.lines.extend(_miss_on_failure(sub.lines))

    def compile_decl_use(self, decl, var: str, w: _W, off: int,
                         scope: Dict[str, str]) -> int:
        if isinstance(decl, StructPlan):
            return self.compile_struct(decl.items, decl.where, var, w, off,
                                       None)
        if isinstance(decl, EnumPlan):
            lens = {len(item.raw) for item in decl.items}
            if len(lens) != 1:
                raise NotEligible("enum spellings of differing widths")
            width = lens.pop()
            self.auxid += 1
            map_name = f"_btenum_{self.decl.name}_s{self.auxid}"
            entries = ", ".join(f"{item.raw!r}: E_{item.name}"
                                for item in decl.ordered)
            self.aux.append(f"{map_name} = {{{entries}}}")
            # A miss raises KeyError -> the per-record except marks the
            # slot None, and the driver re-parses just that record.
            w.w(f"{var} = {map_name}[{self.slot(f'{width}s')}]")
            return off + width
        if isinstance(decl, TypedefPlan):
            off = self.compile_use(decl.base, var, w, off, scope)
            if decl.constraint is not None:
                cscope = {decl.var: var}
                with w.block(f"if dosem and not "
                             f"({self.cexpr(decl.constraint, cscope)}):"):
                    w.w("raise _BT_MISS")
            return off
        if isinstance(decl, ArrayPlan):
            return self.compile_array(decl, var, w, off)
        raise NotEligible(type(decl).__name__)

    def compile_array(self, decl: ArrayPlan, var: str, w: _W,
                      off: int) -> int:
        if (decl.last is not None or decl.ended is not None or decl.longest
                or decl.sep is not None or decl.term is not None):
            raise NotEligible("array termination is data-dependent")
        count = decl.fixed_count
        if count is None or count <= 0:
            raise NotEligible("array count not static")
        fixed = _static_fixed(decl.elt)
        if fixed is None:
            raise NotEligible("array of variable-width elements")
        inst, width = fixed
        # Each element is its own column; the elements unroll into a
        # list literal (native codes) or a short straight-line run.
        evars = []
        for _ in range(count):
            evar = self.temp()
            self.compile_base(inst, width, evar, w)
            evars.append(evar)
        w.w(f"{var} = [{', '.join(evars)}]")
        if decl.where is not None:
            ascope = {"elts": var, "length": f"len({var})"}
            with w.block(f"if dosem and not "
                         f"({self.cexpr(decl.where, ascope)}):"):
                w.w("raise _BT_MISS")
        return off + count * width


def _miss_on_failure(lines: List[str]) -> List[str]:
    """Rewrite :func:`base_conv`'s bail-out idiom (``return None``) to
    the batch kernels' per-record one (``raise _BT_MISS``), keeping one
    source of truth for conversion semantics."""
    return [ln.replace("return None", "raise _BT_MISS")
            if ln.strip() == "return None" else ln
            for ln in lines]


def compile_batch(plan: Plan, decl: StructPlan) -> Tuple[str, List[str], str]:
    """Compile the batch kernel for an unparameterised Precord struct
    plan whose width analysis proved the record fully static; raises
    :class:`NotEligible` (with the reason) otherwise.

    The kernel's struct byte-order prefix follows the majority of the
    record's binary columns, so e.g. an all-little-endian layout decodes
    natively while stray big-endian columns fall back to per-record
    ``int.from_bytes``.
    """
    first = BatchPath(plan, decl, "<")
    built = first.build()
    if first.votes[">"] > first.votes["<"]:
        built = BatchPath(plan, decl, ">").build()
    return built


_GROUP_REF = re.compile(r"_m\.group\('(g\d+)'\)")


def _index_groups(lines: List[str], groupindex: Dict[str, int]) -> List[str]:
    """Rewrite ``_m.group('gk')`` references to positional ``_gs[i]``
    tuple indexing — one C-level ``groups()`` call per record instead of a
    named lookup per field."""

    def repl(m: "re.Match") -> str:
        return f"_gs[{groupindex[m.group(1)] - 1}]"

    return [_GROUP_REF.sub(repl, line) for line in lines]


def _guard_literal(constraint: Optional[E.Expr], name: str):
    """Value of an equality-with-literal branch guard, else None."""
    if constraint is None or not isinstance(constraint, E.Binary) \
            or constraint.op != "==":
        return None
    for a, b in ((constraint.left, constraint.right),
                 (constraint.right, constraint.left)):
        if isinstance(a, E.Name) and a.ident == name and \
                isinstance(b, (E.StrLit, E.CharLit)):
            return b.value
    return None


def _string_kind(use: Use) -> Optional[str]:
    """'char'/'string' when the branch type's value is its own spelling."""
    if not isinstance(use, BaseUse) or use.static is None:
        return None
    inst = use.static
    if isinstance(inst, (_strs.AsciiChar, _strs.EbcdicChar)):
        return "char"
    if isinstance(inst, (_strs.TerminatedString, _strs.FixedString)):
        return "string"
    return None


def compile_fast(plan: Plan, decl: StructPlan) -> Tuple[str, List[str], str]:
    """Compile the fast path for an unparameterised Precord struct plan.

    Tries fixed-width slicing first (when the size analysis proved the
    record static), falling back to the anchored-regex compiler; raises
    :class:`NotEligible` (with the reason) when neither applies.
    """
    if decl.width is not None:
        try:
            return SlicePath(plan, decl).build()
        except _NotFixed:
            pass
    return FastPath(plan, decl).build()
