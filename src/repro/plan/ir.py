"""The plan IR: a typed middle layer between the DSL AST and the engines.

:func:`repro.plan.analyze` lowers a type-checked description once into
these nodes; the interpreter binder (:mod:`repro.core.binding`), the
codegen backends (:mod:`repro.codegen.backends`), the record fast path
(:mod:`repro.plan.fastpath`) and the AST-walking tools all consume the
same analyzed facts instead of re-deriving them:

* the ambient coding and its character encoding,
* base-type uses with their statically resolved instances,
* literal byte forms, struct resync literal sets, array terminators,
* static-size / fixed-width analysis results,
* fused literal runs (adjacent literals matched as one),
* a per-record fastpath-eligibility verdict with a human-readable
  reason, plus the compiled fast function when eligible.

``Pbitfields`` declarations are lowered to their struct form during
analysis, so plan consumers never see them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..dsl import ast as D
from ..expr import ast as E
from ..expr.eval import BUILTINS
from ..expr.pycompile import compile_expr
from .encodings import encoding_for


@dataclass
class Verdict:
    """Fastpath eligibility for one declaration, with the reason."""

    eligible: bool
    reason: str

    def __str__(self) -> str:
        return ("eligible: " if self.eligible else "not eligible: ") + self.reason


# -- literals -----------------------------------------------------------------


@dataclass
class LitPlan:
    """An analyzed literal: kind, source value and encoded byte form."""

    kind: str                   # 'char' | 'string' | 'regex' | 'eor' | 'eof' | 'expr'
    value: Any
    raw: Optional[bytes]        # encoded bytes (char/string/regex), else None
    width: Optional[int]        # static byte width, None when dynamic

    @property
    def scannable(self) -> bool:
        """True when resynchronisation can scan for this literal."""
        return self.kind in ("char", "string")

    def describe(self) -> str:
        if self.kind in ("char", "string"):
            return repr(self.value)
        if self.kind == "regex":
            return f"Pre {self.value!r}"
        return self.kind.upper()


# -- type uses ----------------------------------------------------------------


class Use:
    """Base class for analyzed type uses (the plan twin of D.TypeExpr)."""

    width: Optional[int] = None
    ast: Optional[D.TypeExpr] = None


@dataclass
class BaseUse(Use):
    """A base-type use, with the instance pre-resolved when arguments are
    literals (the common case)."""

    name: str
    args: Tuple[E.Expr, ...]
    static: Optional[Any]           # resolved BaseType instance, or None
    static_args: Optional[Tuple[Any, ...]]  # literal arg values when static
    width: Optional[int] = None
    ast: Optional[D.TypeExpr] = None


@dataclass
class RegexUse(Use):
    """An inline ``Pre "pattern"`` use."""

    pattern: str
    width: Optional[int] = None
    ast: Optional[D.TypeExpr] = None


@dataclass
class OptUse(Use):
    """``Popt inner``."""

    inner: Use
    width: Optional[int] = None
    ast: Optional[D.TypeExpr] = None


@dataclass
class RefUse(Use):
    """A reference to a declared type (possibly parameterised)."""

    name: str
    args: Tuple[E.Expr, ...]
    width: Optional[int] = None
    ast: Optional[D.TypeExpr] = None


# -- struct items -------------------------------------------------------------


@dataclass
class LitItem:
    kind = "literal"
    literal: LitPlan


@dataclass
class ComputeItem:
    kind = "compute"
    name: str
    type_name: str
    expr: E.Expr
    constraint: Optional[E.Expr]


@dataclass
class DataItem:
    kind = "data"
    name: str
    type: Use
    constraint: Optional[E.Expr]


Item = Any  # LitItem | ComputeItem | DataItem


@dataclass
class BranchPlan:
    """One ordered-union branch."""

    name: str
    type: Use
    constraint: Optional[E.Expr]


@dataclass
class CasePlan:
    """One ``Pswitch`` case (``value is None`` for the default case)."""

    value: Optional[E.Expr]
    name: str
    type: Use
    constraint: Optional[E.Expr]


@dataclass
class EnumItemPlan:
    """A normalized enum member: code defaulted by position, physical
    spelling defaulted to the name, plus its encoded byte form."""

    name: str
    code: int
    physical: str
    raw: bytes


# -- declarations -------------------------------------------------------------


@dataclass
class DeclPlan:
    """Common head of every analyzed declaration."""

    name: str
    params: List[Tuple[Optional[str], str]]
    is_record: bool
    is_source: bool
    where: Optional[E.Expr]
    ast: D.Decl
    width: Optional[int] = None
    verdict: Verdict = field(
        default_factory=lambda: Verdict(False, "not analyzed"))
    fast_fn: Optional[Tuple[str, List[str]]] = None
    #: Batch-engine eligibility (columnar kernel over whole record grids);
    #: stricter than ``verdict`` — requires a fully static record width.
    batch_verdict: Verdict = field(
        default_factory=lambda: Verdict(False, "not analyzed"))
    batch_fn: Optional[Tuple[str, List[str]]] = None
    #: Codegen-backend choice for this declaration: eligible means the
    #: AST-specializing backend (:mod:`repro.codegen.backends.astspec`)
    #: has straight-line fast/batch code worth specializing; otherwise
    #: the plain source backend is the plan-driven pick.
    codegen_verdict: Verdict = field(
        default_factory=lambda: Verdict(False, "not analyzed"))

    @property
    def param_names(self) -> List[str]:
        return [p for _, p in self.params]


@dataclass
class StructPlan(DeclPlan):
    kind = "struct"
    items: List[Item] = field(default_factory=list)
    #: Encoded char/string literal members, in order — the resync scan set.
    scan_literals: List[bytes] = field(default_factory=list)
    #: Adjacent-literal runs fused into one match: (start, end, raw bytes),
    #: indices inclusive over ``items``.
    fused_runs: List[Tuple[int, int, bytes]] = field(default_factory=list)


@dataclass
class UnionPlan(DeclPlan):
    kind = "union"
    branches: List[BranchPlan] = field(default_factory=list)


@dataclass
class SwitchPlan(DeclPlan):
    kind = "switch"
    selector: Optional[E.Expr] = None
    cases: List[CasePlan] = field(default_factory=list)


@dataclass
class ArrayPlan(DeclPlan):
    kind = "array"
    elt: Use = field(default_factory=Use)
    elt_name: Optional[str] = None
    sep: Optional[LitPlan] = None
    term: Optional[LitPlan] = None
    min_size: Optional[E.Expr] = None
    max_size: Optional[E.Expr] = None
    last: Optional[E.Expr] = None
    ended: Optional[E.Expr] = None
    longest: bool = False

    @property
    def fixed_count(self) -> Optional[int]:
        """The element count when statically fixed (min == max, literal)."""
        if (isinstance(self.min_size, E.IntLit)
                and isinstance(self.max_size, E.IntLit)
                and self.min_size.value == self.max_size.value):
            return int(self.min_size.value)
        return None


@dataclass
class EnumPlan(DeclPlan):
    kind = "enum"
    items: List[EnumItemPlan] = field(default_factory=list)

    @property
    def ordered(self) -> List[EnumItemPlan]:
        """Members by descending spelling length (longest match wins)."""
        return sorted(self.items, key=lambda it: -len(it.physical))


@dataclass
class TypedefPlan(DeclPlan):
    kind = "typedef"
    base: Use = field(default_factory=Use)
    var: str = ""
    constraint: Optional[E.Expr] = None


# -- the plan -----------------------------------------------------------------


class Plan:
    """The analyzed description: every fact the engines and tools need,
    derived once from the type-checked AST."""

    def __init__(self, desc: D.Description, ambient: str):
        self.desc = desc
        self.ambient = ambient
        self.encoding = encoding_for(ambient)
        self.decls: Dict[str, DeclPlan] = {}
        #: ('type', DeclPlan) / ('func', D.FuncDecl) in declaration order.
        self.order: List[Tuple[str, Any]] = []
        self.functions: Dict[str, E.FuncDef] = {}
        #: enum literal name -> (name, code, physical spelling)
        self.enum_literals: Dict[str, Tuple[str, int, str]] = {}
        self.source_name: Optional[str] = None

    # -- lookups ------------------------------------------------------------

    def decl(self, name: str) -> DeclPlan:
        return self.decls[name]

    def is_declared(self, name: str) -> bool:
        return name in self.decls

    # -- base types ---------------------------------------------------------

    def resolve(self, name: str, args: Tuple[Any, ...] = ()) -> Any:
        """Resolve a base-type use under this plan's ambient coding.

        The one place outside :mod:`repro.core.basetypes` that calls
        ``resolve_base_type``; every consumer routes through the plan.
        """
        from ..core.basetypes.base import resolve_base_type
        return resolve_base_type(name, args, self.ambient)

    def encode(self, text: str) -> bytes:
        return text.encode(self.encoding)

    # -- constraint compilation --------------------------------------------

    def resolver(self, scope: Dict[str, str]) -> Callable[[str], str]:
        """Free-identifier resolution for compiled constraint expressions,
        shared by the emitter and the fast path: local scope, then enum
        literals (``E_<name>``), helper functions (``fn_<name>``),
        builtins (``_B[...]``), else the bare name."""
        def r(name: str) -> str:
            if name in scope:
                return scope[name]
            if name in self.enum_literals:
                return f"E_{name}"
            if name in self.functions:
                return f"fn_{name}"
            if name in BUILTINS:
                return f"_B[{name!r}]"
            return name
        return r

    def cexpr(self, expr: E.Expr, scope: Dict[str, str]) -> str:
        return compile_expr(expr, self.resolver(scope))
