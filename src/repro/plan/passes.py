"""Analysis and optimization passes over the plan IR.

Three passes run after lowering, in order:

* :func:`compute_widths` — static-size analysis: annotates every
  declaration and type use with its byte width when the physical form
  is provably fixed (binary words, packed/zoned decimals, fixed-width
  strings and integers, structs/arrays/enums built only from those).
* :func:`fuse_literal_runs` — literal-prefix fusion: adjacent scannable
  literal members of a struct are fused into one byte string so both
  engines match them with a single comparison.
* :func:`attach_fastpaths` — record the fastpath-eligibility verdict
  (with its reason) for every declaration, and compile the fast
  function for eligible ``Precord`` structs.  Both engines read the
  verdict instead of re-deriving eligibility structurally.
"""

from __future__ import annotations

from typing import Any, Optional

from .ir import (
    ArrayPlan,
    BaseUse,
    ComputeItem,
    DataItem,
    EnumPlan,
    LitItem,
    OptUse,
    Plan,
    RefUse,
    StructPlan,
    SwitchPlan,
    TypedefPlan,
    UnionPlan,
    Use,
    Verdict,
)


def fixed_width_of(inst: Any) -> Optional[int]:
    """Byte width of a base-type instance when statically fixed, else None."""
    from ..core.basetypes import cobol as _cobol
    from ..core.basetypes import integers as _ints
    from ..core.basetypes import misc as _misc
    from ..core.basetypes import strings as _strs
    if isinstance(inst, (_ints.BinaryInt, _ints.BinaryFloat, _ints.BinaryRaw,
                         _cobol.PackedDecimal)):
        return inst.nbytes
    if isinstance(inst, _cobol.ZonedDecimal):
        return inst.digits
    if isinstance(inst, _strs.FixedString):
        return inst.nchars
    if isinstance(inst, (_strs.AsciiChar, _strs.EbcdicChar)):
        return 1
    if isinstance(inst, _ints.AsciiIntFW):
        return inst.nchars
    if isinstance(inst, _misc.Empty):
        return 0
    return None


# -- static-size analysis ----------------------------------------------------


def compute_widths(plan: Plan) -> None:
    # Types are declared before use, so one in-order pass suffices.
    for dp in plan.decls.values():
        dp.width = _decl_width(plan, dp)


def _use_width(plan: Plan, use: Use) -> Optional[int]:
    if isinstance(use, BaseUse):
        use.width = (fixed_width_of(use.static)
                     if use.static is not None else None)
    elif isinstance(use, RefUse):
        target = plan.decls.get(use.name)
        use.width = target.width if target is not None else None
    elif isinstance(use, OptUse):
        _use_width(plan, use.inner)
        use.width = None  # presence is data-dependent
    else:
        use.width = None
    return use.width


def _decl_width(plan: Plan, dp) -> Optional[int]:
    if isinstance(dp, StructPlan):
        total: Optional[int] = 0
        for item in dp.items:
            if isinstance(item, LitItem):
                w = item.literal.width
            elif isinstance(item, ComputeItem):
                w = 0
            else:
                assert isinstance(item, DataItem)
                w = _use_width(plan, item.type)
            if w is None:
                total = None  # keep annotating uses for the pretty-printer
            elif total is not None:
                total += w
        return total

    if isinstance(dp, UnionPlan):
        widths = [_use_width(plan, br.type) for br in dp.branches]
        if widths and None not in widths and len(set(widths)) == 1:
            return widths[0]
        return None

    if isinstance(dp, SwitchPlan):
        widths = [_use_width(plan, c.type) for c in dp.cases]
        if widths and None not in widths and len(set(widths)) == 1:
            return widths[0]
        return None

    if isinstance(dp, ArrayPlan):
        ew = _use_width(plan, dp.elt)
        n = dp.fixed_count
        if (n is None or ew is None or dp.term is not None
                or dp.last is not None or dp.ended is not None or dp.longest):
            return None
        if dp.sep is None:
            sw = 0
        elif dp.sep.width is not None:
            sw = dp.sep.width
        else:
            return None
        if n == 0:
            return 0
        return n * ew + (n - 1) * sw

    if isinstance(dp, EnumPlan):
        lens = {len(item.raw) for item in dp.items}
        return lens.pop() if len(lens) == 1 else None

    if isinstance(dp, TypedefPlan):
        return _use_width(plan, dp.base)

    return None


# -- literal-prefix fusion ---------------------------------------------------


def fuse_literal_runs(plan: Plan) -> None:
    """Fuse runs of two or more adjacent char/string literal members.

    ``Source.match_bytes`` consumes only on success, so matching the
    concatenation is observationally identical to matching each literal
    in turn on the clean path; a fused miss falls back to the original
    per-literal code (with its resync behavior) at an unchanged cursor.
    """
    for dp in plan.decls.values():
        if not isinstance(dp, StructPlan):
            continue
        items = dp.items
        i = 0
        while i < len(items):
            if not (isinstance(items[i], LitItem)
                    and items[i].literal.scannable):
                i += 1
                continue
            j = i
            while (j + 1 < len(items) and isinstance(items[j + 1], LitItem)
                   and items[j + 1].literal.scannable):
                j += 1
            if j > i:
                raw = b"".join(items[k].literal.raw for k in range(i, j + 1))
                dp.fused_runs.append((i, j, raw))
            i = j + 1


# -- fastpath verdicts -------------------------------------------------------


def attach_fastpaths(plan: Plan) -> None:
    import re
    from .fastpath import NotEligible, compile_fast
    for dp in plan.decls.values():
        if dp.params:
            dp.verdict = Verdict(False, "parameterised type")
            continue
        if not dp.is_record:
            dp.verdict = Verdict(False, "not a Precord type")
            continue
        if not isinstance(dp, StructPlan):
            dp.verdict = Verdict(
                False, f"Precord {dp.kind} (the fast path covers Pstruct "
                "records)")
            continue
        try:
            fn_name, lines, reason = compile_fast(plan, dp)
        except NotEligible as exc:
            dp.verdict = Verdict(False, str(exc) or "not eligible")
        except re.error as exc:
            dp.verdict = Verdict(False, f"regex error: {exc}")
        else:
            dp.verdict = Verdict(True, reason)
            dp.fast_fn = (fn_name, lines)


# -- batch-engine verdicts ----------------------------------------------------


def attach_batchpaths(plan: Plan) -> None:
    """Record the batch-engine verdict for every declaration and compile
    the columnar kernel for eligible records.

    Stricter than the record fast path: the whole record layout must be
    provably static (fixed columns at fixed offsets), because the batch
    engine strides a ``memoryview`` across thousands of records at a
    constant pitch.  The geometry fit against the record discipline
    (pitch = width, or width + terminator) is decided at run time by
    :mod:`repro.batch` — this verdict is the data-layout half.
    """
    from .fastpath import NotEligible, compile_batch
    for dp in plan.decls.values():
        if dp.params:
            dp.batch_verdict = Verdict(False, "parameterised type")
            continue
        if not dp.is_record:
            dp.batch_verdict = Verdict(False, "not a Precord type")
            continue
        if not isinstance(dp, StructPlan):
            dp.batch_verdict = Verdict(
                False, f"Precord {dp.kind} (the batch engine covers Pstruct "
                "records)")
            continue
        if dp.width is None:
            dp.batch_verdict = Verdict(False, "record width is not static")
            continue
        if dp.width <= 0:
            dp.batch_verdict = Verdict(False, "record has zero static width")
            continue
        try:
            fn_name, lines, reason = compile_batch(plan, dp)
        except NotEligible as exc:
            dp.batch_verdict = Verdict(False, str(exc) or "not eligible")
        else:
            dp.batch_verdict = Verdict(True, reason)
            dp.batch_fn = (fn_name, lines)


# -- codegen-backend verdicts -------------------------------------------------


def attach_codegen_verdicts(plan: Plan) -> None:
    """Record, per declaration, which codegen backend the plan would pick.

    The AST-specializing backend (``repro.codegen.backends.astspec``)
    pays when a record type carries materialized straight-line code to
    specialize — a fast function or a batch kernel.  For everything else
    the source backend is already optimal, so ``auto`` selection keeps
    it.  Runs after :func:`attach_fastpaths` / :func:`attach_batchpaths`
    because it is a pure function of those verdicts.
    """
    for dp in plan.decls.values():
        if dp.verdict.eligible and dp.batch_verdict.eligible:
            dp.codegen_verdict = Verdict(
                True, "ast: fast function and batch kernel to specialize")
        elif dp.verdict.eligible:
            dp.codegen_verdict = Verdict(
                True, "ast: record fast function to specialize")
        elif dp.batch_verdict.eligible:
            dp.codegen_verdict = Verdict(
                True, "ast: batch kernel to specialize")
        else:
            dp.codegen_verdict = Verdict(
                False, f"source (no fast path: {dp.verdict.reason})")
