"""Lower a type-checked description AST into the plan IR.

One call to :func:`analyze` produces the :class:`~repro.plan.ir.Plan`
every engine consumes: declarations are lowered in order (legal because
PADS types are declared before use), ``Pbitfields`` are expanded to
their struct form, enum members are normalized (positional codes,
name-defaulted spellings), literals are encoded under the ambient
coding, and the optimization passes (static-width analysis, literal
fusion, fastpath compilation) are run.
"""

from __future__ import annotations

from typing import Optional

from ..dsl import ast as D
from ..expr import ast as E
from .ir import (
    ArrayPlan,
    BaseUse,
    BranchPlan,
    CasePlan,
    ComputeItem,
    DataItem,
    DeclPlan,
    EnumItemPlan,
    EnumPlan,
    LitItem,
    LitPlan,
    OptUse,
    Plan,
    RefUse,
    RegexUse,
    StructPlan,
    SwitchPlan,
    TypedefPlan,
    UnionPlan,
    Use,
)

_STATIC_ARG_TYPES = (E.IntLit, E.StrLit, E.CharLit, E.FloatLit, E.BoolLit)


def analyze(desc: D.Description, ambient: str = "ascii") -> Plan:
    """Analyze ``desc`` under ``ambient`` and return the plan IR."""
    plan = Plan(desc, ambient)

    # Pass 0: names visible everywhere (helper functions, enum literals).
    for decl in desc.decls:
        if isinstance(decl, D.FuncDecl):
            plan.functions[decl.name] = decl.func
        elif isinstance(decl, D.EnumDecl):
            for pos, item in enumerate(decl.items):
                code = item.value if item.value is not None else pos
                phys = item.physical if item.physical is not None else item.name
                plan.enum_literals[item.name] = (item.name, code, phys)

    # Pass 1: lower declarations in order.
    for decl in desc.decls:
        if isinstance(decl, D.FuncDecl):
            plan.order.append(("func", decl))
            continue
        dplan = _lower_decl(plan, decl)
        plan.decls[decl.name] = dplan
        plan.order.append(("type", dplan))
    src = desc.source
    if src is not None:
        plan.source_name = src.name

    # Passes 2..5: analysis and optimization over the IR.
    from .passes import (
        attach_batchpaths,
        attach_codegen_verdicts,
        attach_fastpaths,
        compute_widths,
        fuse_literal_runs,
    )
    compute_widths(plan)
    fuse_literal_runs(plan)
    attach_fastpaths(plan)
    attach_batchpaths(plan)
    attach_codegen_verdicts(plan)
    return plan


# -- literals -----------------------------------------------------------------


def _lit(plan: Plan, spec: D.LiteralSpec) -> LitPlan:
    raw: Optional[bytes] = None
    width: Optional[int] = None
    if spec.kind in ("char", "string"):
        raw = plan.encode(spec.value)
        width = len(raw)
    elif spec.kind == "regex":
        raw = plan.encode(spec.value)
    elif spec.kind in ("eor", "eof"):
        width = 0
    return LitPlan(spec.kind, spec.value, raw, width)


# -- type uses ----------------------------------------------------------------


def _use(plan: Plan, texpr: D.TypeExpr) -> Use:
    if isinstance(texpr, D.OptType):
        return OptUse(_use(plan, texpr.inner), ast=texpr)
    if isinstance(texpr, D.RegexType):
        return RegexUse(texpr.pattern, ast=texpr)
    assert isinstance(texpr, D.TypeRef)
    name, args = texpr.name, tuple(texpr.args)
    if plan.is_declared(name):
        return RefUse(name, args, ast=texpr)
    static = None
    static_args = None
    if all(isinstance(a, _STATIC_ARG_TYPES) for a in args):
        static_args = tuple(a.value for a in args)
        # Resolve eagerly: analysis fails fast on bad descriptions, and
        # every consumer shares the one resolved instance.
        static = plan.resolve(name, static_args)
    return BaseUse(name, args, static, static_args, ast=texpr)


# -- declarations -------------------------------------------------------------


def _head(decl: D.Decl) -> dict:
    return dict(name=decl.name, params=list(decl.params),
                is_record=decl.is_record, is_source=decl.is_source,
                where=decl.where, ast=decl)


def _lower_decl(plan: Plan, decl: D.Decl) -> DeclPlan:
    if isinstance(decl, D.BitfieldsDecl):
        decl = D.lower_bitfields(decl)

    if isinstance(decl, D.StructDecl):
        sp = StructPlan(**_head(decl))
        for item in decl.items:
            if isinstance(item, D.LiteralField):
                lp = _lit(plan, item.literal)
                sp.items.append(LitItem(lp))
                if lp.scannable and lp.raw is not None:
                    sp.scan_literals.append(lp.raw)
            elif isinstance(item, D.ComputeField):
                sp.items.append(ComputeItem(item.name, item.type_name,
                                            item.expr, item.constraint))
            else:
                sp.items.append(DataItem(item.name, _use(plan, item.type),
                                         item.constraint))
        return sp

    if isinstance(decl, D.UnionDecl):
        if decl.is_switched:
            up = SwitchPlan(**_head(decl))
            up.selector = decl.switch
            up.cases = [CasePlan(c.value, c.field.name,
                                 _use(plan, c.field.type), c.field.constraint)
                        for c in decl.cases]
            return up
        op = UnionPlan(**_head(decl))
        op.branches = [BranchPlan(b.name, _use(plan, b.type), b.constraint)
                       for b in decl.branches]
        return op

    if isinstance(decl, D.ArrayDecl):
        ap = ArrayPlan(**_head(decl))
        ap.elt = _use(plan, decl.elt_type)
        ap.elt_name = decl.elt_name
        ap.sep = _lit(plan, decl.sep) if decl.sep is not None else None
        ap.term = _lit(plan, decl.term) if decl.term is not None else None
        ap.min_size = decl.min_size
        ap.max_size = decl.max_size
        ap.last = decl.last
        ap.ended = decl.ended
        ap.longest = decl.longest
        return ap

    if isinstance(decl, D.EnumDecl):
        ep = EnumPlan(**_head(decl))
        for pos, item in enumerate(decl.items):
            code = item.value if item.value is not None else pos
            phys = item.physical if item.physical is not None else item.name
            ep.items.append(EnumItemPlan(item.name, code, phys,
                                         plan.encode(phys)))
        return ep

    if isinstance(decl, D.TypedefDecl):
        tp = TypedefPlan(**_head(decl))
        tp.base = _use(plan, decl.base)
        tp.var = decl.var
        tp.constraint = decl.constraint
        return tp

    raise TypeError(f"cannot analyze declaration {decl!r}")
