"""Mergeable parse metrics: counters, gauges, fixed-bucket histograms.

The registry follows the same algebra as the accumulators and error
tallies from :mod:`repro.tools.accum` / :mod:`repro.core.errors`: each
process-pool worker folds its chunk into a private registry, and the
parent :meth:`MetricsRegistry.merge`\\ s the per-chunk registries in the
reduce.  Merging registries built over any split of a record stream
yields the same counters as metering the whole stream — the property the
parallel engine's byte-identical-output guarantee extends to metrics
(property-tested in ``tests/test_observe.py``).

Metrics are identified by a name plus an ordered label tuple, e.g.
``("errors.by_field", "entry_t.response", "RANGE_ERR")``.  Everything is
plain Python data (dicts, lists, ints, floats), so registries pickle
cheaply across process boundaries.

Histogram buckets are *fixed* per metric family: merging two histograms
is element-wise addition of bucket counts, with no re-binning.  Timing
histograms are flagged ``timing=True`` so reports can separate the
deterministic projection (observation counts, which are identical across
serial/parallel runs) from wall-clock-dependent values (sums and bucket
spreads, which are not).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry",
           "LATENCY_BUCKETS", "SIZE_BUCKETS"]

#: Log-spaced latency buckets (seconds): 1us .. 1s, then +Inf.
LATENCY_BUCKETS: Tuple[float, ...] = (
    1e-6, 2e-6, 5e-6, 1e-5, 2e-5, 5e-5, 1e-4, 2e-4, 5e-4,
    1e-3, 2e-3, 5e-3, 1e-2, 2e-2, 5e-2, 1e-1, 2e-1, 5e-1, 1.0,
)

#: Power-of-two byte-size buckets: 16B .. 64KiB, then +Inf.
SIZE_BUCKETS: Tuple[float, ...] = tuple(float(1 << p) for p in range(4, 17))

MetricKey = Tuple[str, Tuple[str, ...]]


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)
    kind = "counter"

    def __init__(self, value: int = 0):
        self.value = value

    def inc(self, n: int = 1) -> None:
        self.value += n

    def merge(self, other: "Counter") -> None:
        self.value += other.value

    def snapshot(self):
        return self.value


class Gauge:
    """A point-in-time value.  Merge takes the max (workers race; the
    only gauges the runtime emits are high-water marks)."""

    __slots__ = ("value",)
    kind = "gauge"

    def __init__(self, value: float = 0.0):
        self.value = value

    def set(self, value: float) -> None:
        self.value = value

    def merge(self, other: "Gauge") -> None:
        self.value = max(self.value, other.value)

    def snapshot(self):
        return self.value


class Histogram:
    """A fixed-bucket histogram: counts per upper bound plus an overflow
    bucket, a running sum, and the observation count.

    ``timing=True`` marks histograms of wall-clock durations, whose sums
    and bucket spreads vary run to run; their observation *counts* are
    still deterministic and are what the differential tests compare.
    """

    __slots__ = ("bounds", "counts", "sum", "count", "timing")
    kind = "histogram"

    def __init__(self, bounds: Sequence[float] = LATENCY_BUCKETS,
                 timing: bool = False):
        self.bounds: Tuple[float, ...] = tuple(bounds)
        self.counts: List[int] = [0] * (len(self.bounds) + 1)
        self.sum = 0.0
        self.count = 0
        self.timing = timing

    def observe(self, value: float) -> None:
        self.sum += value
        self.count += 1
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.counts[i] += 1
                return
        self.counts[-1] += 1

    def merge(self, other: "Histogram") -> None:
        if self.bounds != other.bounds:
            raise ValueError("cannot merge histograms with different buckets")
        for i, c in enumerate(other.counts):
            self.counts[i] += c
        self.sum += other.sum
        self.count += other.count

    def snapshot(self, deterministic: bool = False):
        if deterministic and self.timing:
            return {"count": self.count}
        out = {"count": self.count, "sum": self.sum, "buckets": {}}
        for bound, c in zip(self.bounds, self.counts):
            out["buckets"][f"{bound:g}"] = c
        out["buckets"]["+Inf"] = self.counts[-1]
        return out


class MetricsRegistry:
    """A flat registry of named, labelled metrics.

    Access is create-on-first-use::

        reg.counter("records.total").inc()
        reg.counter("errors.by_code", "MISSING_LITERAL").inc()
        reg.histogram("latency", "entry_t", timing=True).observe(dt)

    The registry is the unit of transport: workers return theirs to the
    parent, which folds them together with :meth:`merge`.
    """

    __slots__ = ("_metrics",)

    def __init__(self):
        self._metrics: Dict[MetricKey, object] = {}

    # -- access -----------------------------------------------------------

    def counter(self, name: str, *labels: str) -> Counter:
        key = (name, labels)
        metric = self._metrics.get(key)
        if metric is None:
            metric = self._metrics[key] = Counter()
        return metric

    def gauge(self, name: str, *labels: str) -> Gauge:
        key = (name, labels)
        metric = self._metrics.get(key)
        if metric is None:
            metric = self._metrics[key] = Gauge()
        return metric

    def histogram(self, name: str, *labels: str,
                  bounds: Sequence[float] = LATENCY_BUCKETS,
                  timing: bool = False) -> Histogram:
        key = (name, labels)
        metric = self._metrics.get(key)
        if metric is None:
            metric = self._metrics[key] = Histogram(bounds, timing=timing)
        return metric

    def get(self, name: str, *labels: str):
        return self._metrics.get((name, labels))

    def value(self, name: str, *labels: str, default=0):
        metric = self._metrics.get((name, labels))
        return default if metric is None else metric.snapshot()

    def items(self) -> Iterable[Tuple[MetricKey, object]]:
        return self._metrics.items()

    def __len__(self) -> int:
        return len(self._metrics)

    # -- algebra ----------------------------------------------------------

    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Fold ``other`` into this registry (the parallel reduce)."""
        for key, metric in other._metrics.items():
            mine = self._metrics.get(key)
            if mine is None:
                # Copy via merge into a fresh metric so the two registries
                # never share mutable state.
                if metric.kind == "histogram":
                    mine = Histogram(metric.bounds, timing=metric.timing)
                elif metric.kind == "gauge":
                    mine = Gauge()
                else:
                    mine = Counter()
                self._metrics[key] = mine
            mine.merge(metric)
        return self

    # -- reporting ---------------------------------------------------------

    def snapshot(self, deterministic: bool = False) -> Dict[str, dict]:
        """Nested ``{name: {label-path: value}}`` view of the registry.

        With ``deterministic=True``, timing histograms are reduced to
        their observation counts — the projection that is identical
        whether produced serially or by a worker pool.
        """
        out: Dict[str, dict] = {}
        for (name, labels), metric in sorted(self._metrics.items(),
                                             key=lambda kv: kv[0]):
            if metric.kind == "histogram":
                value = metric.snapshot(deterministic)
            else:
                value = metric.snapshot()
            slot = out.setdefault(name, {})
            if not labels:
                out[name] = value
            else:
                for label in labels[:-1]:
                    slot = slot.setdefault(label, {})
                slot[labels[-1]] = value
        return out
