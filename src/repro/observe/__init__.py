"""``repro.observe`` — observability for the PADS runtime.

The paper's generated libraries exist to *characterize* messy data —
accumulators, error tallies, per-field parse descriptors — yet the
runtime itself was a black box about its own behaviour.  This package
adds the three facilities any serving stack grows:

* a **metrics registry** (:mod:`.metrics`): counters, gauges and
  fixed-bucket histograms that merge across process-pool workers with
  the same homomorphism the accumulators use, so the parallel engine
  reports byte-identical counts to the serial one;
* a **parse tracer** (:mod:`.trace`): structured per-field enter/exit
  events with byte spans, outcomes and error codes, rendered as JSONL;
* **profiling hooks**: records/sec and bytes/sec, per-type latency
  histograms, and resynchronisation/recovery counters wired into both
  the interpreted combinators and the generated-parser runtime.

Observability is *off* by default and the disabled path is near-free:
the hot loops check one module global (``CURRENT is None``) per record,
and the per-field trace hooks hoist that check to one local-variable
test per field.  Enabling observation never changes parse results —
the differential test sweep (``tests/test_differential.py``) asserts
identical values, parse descriptors and accumulator output with and
without it, across both engines and the parallel path.

Usage::

    from repro import observe

    with observe.observed() as obs:
        for rep, pd in description.records(data, "entry_t"):
            ...
    print(obs.stats())             # nested dict: records, errors, latency...

    with observe.observed(trace=True) as obs:
        description.parse(data)
    print(obs.tracer.to_jsonl())   # per-field enter/exit events

The observer is installed process-globally (parallel workers install
their own and ship their registries back to the parent's reduce); it is
not thread-local, matching the process-based execution model of
:mod:`repro.parallel`.
"""

from __future__ import annotations

from contextlib import contextmanager
from time import perf_counter
from typing import IO, Optional

from .metrics import (
    Counter,
    Gauge,
    Histogram,
    LATENCY_BUCKETS,
    MetricsRegistry,
    SIZE_BUCKETS,
)
from .exposition import to_prometheus
from .trace import TraceEvent, Tracer

__all__ = [
    "CURRENT", "ParseObserver", "observed", "current_tracer", "count",
    "MetricsRegistry", "Counter", "Gauge", "Histogram", "Tracer",
    "TraceEvent", "LATENCY_BUCKETS", "SIZE_BUCKETS", "to_prometheus",
]

#: The process-global observer, or None when observability is disabled.
#: Hot paths read this exactly once per record (or hoist it to a local),
#: so the disabled cost is one global load + ``is None`` test.
CURRENT: Optional["ParseObserver"] = None


class ParseObserver:
    """Bundles a metrics registry, an optional tracer, and the fold
    helpers the engines call.  One observer is active at a time
    (:func:`observed`); workers build their own and return only the
    registry, which the parent merges."""

    __slots__ = ("metrics", "tracer", "wall_seconds", "_started")

    def __init__(self, metrics: Optional[MetricsRegistry] = None,
                 tracer: Optional[Tracer] = None):
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer = tracer
        self.wall_seconds = 0.0
        self._started: Optional[float] = None

    # -- lifecycle ---------------------------------------------------------

    def _start_clock(self) -> None:
        self._started = perf_counter()

    def _stop_clock(self) -> None:
        if self._started is not None:
            self.wall_seconds += perf_counter() - self._started
            self._started = None

    def elapsed(self) -> float:
        running = (perf_counter() - self._started) if self._started is not None else 0.0
        return self.wall_seconds + running

    # -- folds (called by the engines) -------------------------------------

    def record_parsed(self, type_name: str, pd, nbytes: int, dt: float,
                      *, start: int = 0, record: int = -1) -> None:
        """Fold one parsed value (usually one record) into the metrics
        and, when tracing, emit the whole-record trace event."""
        if self.tracer is not None:
            if pd.nerr == 0:
                outcome, code = "ok", ""
            elif int(pd.pstate) & 2:
                outcome, code = "panic", pd.err_code.name
            else:
                outcome, code = "err", pd.err_code.name
            self.tracer.record_event(type_name, start, start + nbytes,
                                     record, outcome, code)
        m = self.metrics
        m.counter("records.total").inc()
        m.counter("bytes.total").inc(nbytes)
        m.histogram("latency", type_name, timing=True).observe(dt)
        m.histogram("record_bytes", type_name, bounds=SIZE_BUCKETS).observe(nbytes)
        if pd.nerr:
            m.counter("records.bad").inc()
            m.counter("errors.total").inc(pd.nerr)
            if int(pd.pstate) & 2:  # Pstate.PANIC
                m.counter("records.panic").inc()
            elif int(pd.pstate) & 1:  # Pstate.PARTIAL
                m.counter("records.partial").inc()
            for path, code, n in pd.iter_errors(type_name):
                m.counter("errors.by_code", code.name).inc(n)
                m.counter("errors.by_field", path, code.name).inc(n)

    # -- reporting ---------------------------------------------------------

    def stats(self, deterministic: bool = False) -> dict:
        """The ``padsc --stats=json`` document.

        ``deterministic=True`` drops wall-clock-dependent values
        (throughput, latency sums/buckets), leaving the projection that
        is identical whether produced serially or by a worker pool.
        """
        snap = self.metrics.snapshot(deterministic)
        total = self.metrics.value("records.total")
        nbytes = self.metrics.value("bytes.total")
        doc = {
            "records": {
                "total": total,
                "bad": self.metrics.value("records.bad"),
                "partial": self.metrics.value("records.partial"),
                "panic": self.metrics.value("records.panic"),
            },
            "bytes": {"total": nbytes},
            "errors": {
                "total": self.metrics.value("errors.total"),
                "by_code": snap.get("errors.by_code", {}),
                "by_field": snap.get("errors.by_field", {}),
            },
            "latency": snap.get("latency", {}),
            "record_bytes": snap.get("record_bytes", {}),
            "resync": {
                "literal": self.metrics.value("resync.literal"),
                "field_skip": self.metrics.value("resync.field_skip"),
                "array": self.metrics.value("resync.array"),
            },
            # Limit hits (ParseLimits budgets) and parallel-engine
            # recovery actions.  Zero-valued keys are always present so
            # the deterministic document is identical whether a limit or
            # recovery path was merely *available* or never configured.
            "limits": {
                "record_bytes": self.metrics.value("limit.record_bytes"),
                "array_elems": self.metrics.value("limit.array_elems"),
                "depth": self.metrics.value("limit.depth"),
                "scan": self.metrics.value("limit.scan"),
                "deadline": self.metrics.value("limit.deadline"),
                "errors": self.metrics.value("limit.errors"),
            },
            "recovery": {
                "chunk_retry": self.metrics.value("parallel.chunk_retry"),
                "chunk_timeout": self.metrics.value("parallel.chunk_timeout"),
                "pool_rebuild": self.metrics.value("parallel.pool_rebuild"),
                "degraded": self.metrics.value("parallel.degraded"),
            },
            # Sliding-window streaming (repro.stream).  ``high_water`` is
            # the peak bytes buffered across every StreamSource that ran
            # under this observer — the number the bounded-memory
            # acceptance tests assert against.
            "stream": {
                "refills": self.metrics.value("stream.refills"),
                "stalls": self.metrics.value("stream.stalls"),
                "bytes_buffered": self.metrics.value("stream.bytes_buffered"),
                "high_water": self.metrics.value("stream.high_water"),
            },
            # Vectorized batch engine (repro.batch).  ``records`` counts
            # records the columnar kernels parsed clean;
            # ``fallback_records`` the ones re-parsed by the cursor
            # engine (failed constraints, torn grids).
            "batch": {
                "records": self.metrics.value("batch.records"),
                "batches": self.metrics.value("batch.batches"),
                "fallback_records": self.metrics.value("batch.fallback_records"),
                "bytes": self.metrics.value("batch.bytes"),
            },
            # Durable runs (repro.durable).  Rejections are the load-
            # bearing numbers: a stale/torn index or checkpoint must show
            # up here rather than skew a result.
            "durable": {
                "checkpoint_writes": self.metrics.value("checkpoint.writes"),
                "checkpoint_resumes": self.metrics.value("checkpoint.resumes"),
                "checkpoint_rejected": self.metrics.value("checkpoint.rejected"),
                "records_skipped": self.metrics.value("checkpoint.records_skipped"),
                "index_built": self.metrics.value("index.built"),
                "index_hits": self.metrics.value("index.hits"),
                "index_rejected": self.metrics.value("index.rejected"),
            },
        }
        if not deterministic:
            wall = self.elapsed()
            doc["throughput"] = {
                "wall_seconds": wall,
                "records_per_sec": (total / wall) if wall > 0 else 0.0,
                "bytes_per_sec": (nbytes / wall) if wall > 0 else 0.0,
            }
        if self.tracer is not None:
            doc["trace"] = {"events": len(self.tracer.events),
                            "dropped": self.tracer.dropped}
        return doc

    def summary(self) -> str:
        """Human-readable one-screen stats (the ``--stats`` text mode)."""
        s = self.stats()
        rec, err = s["records"], s["errors"]
        tp = s["throughput"]
        lines = [
            f"records: {rec['total']} ({rec['bad']} bad, "
            f"{rec['partial']} partial, {rec['panic']} panicked)",
            f"bytes:   {s['bytes']['total']}",
            f"errors:  {err['total']}"
            + (f" — {', '.join(f'{k}: {v}' for k, v in sorted(err['by_code'].items()))}"
               if err["by_code"] else ""),
            f"resync:  literal: {s['resync']['literal']} "
            f"field-skip: {s['resync']['field_skip']} "
            f"array: {s['resync']['array']}",
            f"wall:    {tp['wall_seconds']:.3f}s "
            f"({tp['records_per_sec']:.0f} records/sec, "
            f"{tp['bytes_per_sec']:.0f} bytes/sec)",
        ]
        if any(s["limits"].values()):
            lines.append("limits:  " + " ".join(
                f"{k}: {v}" for k, v in s["limits"].items() if v))
        if any(s["recovery"].values()):
            lines.append("recover: " + " ".join(
                f"{k}: {v}" for k, v in s["recovery"].items() if v))
        if s["stream"]["refills"] or s["stream"]["stalls"]:
            lines.append(f"stream:  refills: {s['stream']['refills']} "
                         f"stalls: {s['stream']['stalls']} "
                         f"high-water: {s['stream']['high_water']}")
        if s["batch"]["batches"] or s["batch"]["fallback_records"]:
            lines.append(f"batch:   records: {s['batch']['records']} "
                         f"batches: {s['batch']['batches']} "
                         f"fallbacks: {s['batch']['fallback_records']} "
                         f"bytes: {s['batch']['bytes']}")
        if any(s["durable"].values()):
            d = s["durable"]
            lines.append(f"durable: ckpt-writes: {d['checkpoint_writes']} "
                         f"resumes: {d['checkpoint_resumes']} "
                         f"skipped: {d['records_skipped']} "
                         f"ckpt-rejected: {d['checkpoint_rejected']} "
                         f"index-built: {d['index_built']} "
                         f"index-hits: {d['index_hits']} "
                         f"index-rejected: {d['index_rejected']}")
        for type_name, hist in sorted(s["latency"].items()):
            count_ = hist["count"] if isinstance(hist, dict) else hist
            mean = (hist["sum"] / count_ * 1e6) if isinstance(hist, dict) and count_ else 0.0
            lines.append(f"latency: {type_name}: {count_} parses, "
                         f"mean {mean:.1f}us")
        return "\n".join(lines)


# -- module-level helpers (the engines' entry points) -------------------------


@contextmanager
def observed(metrics: Optional[MetricsRegistry] = None, *,
             trace: bool = False, trace_sink: Optional[IO[str]] = None,
             max_events: int = 100_000):
    """Install a :class:`ParseObserver` for the duration of the block.

    Nests by stacking: the previous observer (if any) is restored on
    exit.  ``trace=True`` (or a ``trace_sink``) attaches a tracer; note
    that an active tracer pins the parallel entry points to their serial
    fallback so the event stream stays complete and ordered.
    """
    global CURRENT
    tracer = Tracer(max_events=max_events, sink=trace_sink) \
        if (trace or trace_sink is not None) else None
    observer = ParseObserver(metrics, tracer)
    previous = CURRENT
    CURRENT = observer
    observer._start_clock()
    try:
        yield observer
    finally:
        observer._stop_clock()
        CURRENT = previous


def current_tracer() -> Optional[Tracer]:
    """The active tracer, or None.  Structural combinators hoist this to
    a local once per compound parse, so the disabled per-field cost is a
    single ``is None`` test."""
    obs = CURRENT
    return obs.tracer if obs is not None else None


def count(name: str, *labels: str, n: int = 1) -> None:
    """Bump a counter iff observability is enabled.  Used on *cold*
    paths only (error recovery, resynchronisation) where a function call
    per event costs nothing measurable."""
    obs = CURRENT
    if obs is not None:
        obs.metrics.counter(name, *labels).inc(n)
