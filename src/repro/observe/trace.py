"""Structured parse tracing: per-field enter/exit events.

The interpreter's structural combinators (:mod:`repro.core.types`) emit
one ``enter`` event when they begin parsing a named position (a struct
field, an array element, a union's taken branch) and one ``exit`` event
when they finish, carrying the byte span consumed, the outcome
(``ok`` / ``err`` / ``panic``) and the first error code.  Both engines
additionally emit ``record`` events from their record loops.

Events are plain tuples rendered to JSONL on demand, so a trace can be
post-processed with nothing but ``json.loads``.  The tracer keeps a path
stack (``entry_t.client.ip``-style dotted paths) and bounds its buffer:
once ``max_events`` is reached, further events are counted but dropped
(``dropped`` reports how many), keeping worst-case memory flat on
multi-gigabyte inputs.
"""

from __future__ import annotations

import json
from typing import IO, List, NamedTuple, Optional

__all__ = ["TraceEvent", "Tracer"]


class TraceEvent(NamedTuple):
    """One trace record.  ``kind`` is ``enter`` / ``exit`` / ``record``."""

    kind: str
    path: str          # dotted field path, e.g. "entry_t.client.ip"
    type_name: str     # PADS type name at this position
    start: int         # absolute byte offset where the parse began
    end: int           # absolute byte offset where it finished (enter: == start)
    record: int        # 0-based record index (-1 outside records)
    outcome: str       # "" on enter; "ok" | "err" | "panic" on exit
    err_code: str      # first error code name ("" when clean)

    def to_json(self) -> str:
        return json.dumps({
            "kind": self.kind, "path": self.path, "type": self.type_name,
            "start": self.start, "end": self.end, "record": self.record,
            "outcome": self.outcome, "err": self.err_code,
        }, separators=(",", ":"))


class Tracer:
    """Collects :class:`TraceEvent`\\ s with a bounded buffer.

    ``sink`` may be a writable text file object; events are then streamed
    as JSONL as they happen (and still buffered up to ``max_events`` for
    programmatic access).
    """

    __slots__ = ("events", "max_events", "dropped", "sink", "_stack")

    def __init__(self, max_events: int = 100_000,
                 sink: Optional[IO[str]] = None):
        self.events: List[TraceEvent] = []
        self.max_events = max_events
        self.dropped = 0
        self.sink = sink
        self._stack: List[str] = []

    # -- event emission ----------------------------------------------------

    def _emit(self, event: TraceEvent) -> None:
        if len(self.events) < self.max_events:
            self.events.append(event)
        else:
            self.dropped += 1
        if self.sink is not None:
            self.sink.write(event.to_json() + "\n")

    def enter(self, name: str, type_name: str, pos: int, record: int) -> None:
        """Begin a named position; pushes onto the path stack."""
        self._stack.append(name)
        self._emit(TraceEvent("enter", ".".join(self._stack), type_name,
                              pos, pos, record, "", ""))

    def exit(self, type_name: str, start: int, end: int, record: int,
             outcome: str, err_code: str = "") -> None:
        """Finish the position opened by the matching :meth:`enter`."""
        path = ".".join(self._stack)
        self._emit(TraceEvent("exit", path, type_name, start, end, record,
                              outcome, err_code))
        if self._stack:
            self._stack.pop()

    def record_event(self, type_name: str, start: int, end: int,
                     record: int, outcome: str, err_code: str = "") -> None:
        """A whole-record event (emitted by the record loops of both
        engines, outside the field path stack)."""
        self._emit(TraceEvent("record", type_name, type_name, start, end,
                              record, outcome, err_code))

    # -- rendering -----------------------------------------------------------

    def to_jsonl(self) -> str:
        return "\n".join(e.to_json() for e in self.events) + \
            ("\n" if self.events else "")

    def __len__(self) -> int:
        return len(self.events)
