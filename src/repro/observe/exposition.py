"""Prometheus text exposition of a :class:`MetricsRegistry`.

The serving stack's scrape endpoint (``GET /metrics`` on
:mod:`repro.serve`) renders the server-lifetime registry in the
Prometheus text format (version 0.0.4): one ``# TYPE`` header per metric
family, counters suffixed ``_total``, histograms expanded to cumulative
``_bucket{le=...}`` series plus ``_sum``/``_count``.

Registry metrics are identified by a dotted name plus an ordered label
tuple; the exposition maps dots to underscores and positional labels to
``l1``..``ln``::

    ("errors.by_code", ("MISSING_LITERAL",))
        -> pads_errors_by_code_total{l1="MISSING_LITERAL"} 3

The rendering is deterministic (sorted by metric key), so scrapes of a
quiescent server are byte-identical — the property the serve tests pin.
"""

from __future__ import annotations

from typing import Optional

from .metrics import MetricsRegistry

__all__ = ["to_prometheus"]

_NAME_OK = set("abcdefghijklmnopqrstuvwxyz"
               "ABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_:")


def _metric_name(name: str, namespace: str) -> str:
    flat = "".join(ch if ch in _NAME_OK else "_" for ch in name)
    if flat and flat[0].isdigit():
        flat = "_" + flat
    return f"{namespace}_{flat}" if namespace else flat


def _escape_label(value: str) -> str:
    return (value.replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _labels(labels, extra: Optional[str] = None) -> str:
    parts = [f'l{i + 1}="{_escape_label(str(v))}"'
             for i, v in enumerate(labels)]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _fmt(value) -> str:
    if isinstance(value, float):
        if value == float("inf"):
            return "+Inf"
        return repr(value)
    return str(value)


def to_prometheus(registry: MetricsRegistry, namespace: str = "pads") -> str:
    """Render ``registry`` in the Prometheus text exposition format.

    Counters gain the conventional ``_total`` suffix; histogram bucket
    counts are cumulative (each ``le`` bucket includes everything below
    it) ending in ``le="+Inf"`` equal to ``_count``.
    """
    lines = []
    seen_types = set()
    for (name, labels), metric in sorted(registry.items(),
                                         key=lambda kv: kv[0]):
        kind = metric.kind
        base = _metric_name(name, namespace)
        if kind == "counter" and not base.endswith("_total"):
            base += "_total"
        if base not in seen_types:
            seen_types.add(base)
            lines.append(f"# TYPE {base} {kind}")
        if kind == "counter":
            lines.append(f"{base}{_labels(labels)} {_fmt(metric.value)}")
        elif kind == "gauge":
            lines.append(f"{base}{_labels(labels)} {_fmt(metric.value)}")
        else:  # histogram: cumulative buckets, then sum and count
            running = 0
            for bound, count in zip(metric.bounds, metric.counts):
                running += count
                le = 'le="%s"' % _fmt(bound)
                lines.append(f"{base}_bucket{_labels(labels, le)} {running}")
            running += metric.counts[-1]
            le = 'le="+Inf"'
            lines.append(f"{base}_bucket{_labels(labels, le)} {running}")
            lines.append(f"{base}_sum{_labels(labels)} {_fmt(metric.sum)}")
            lines.append(f"{base}_count{_labels(labels)} {metric.count}")
    return "\n".join(lines) + ("\n" if lines else "")
