"""Chunked map-reduce execution over record boundaries.

The paper's multiple-entry-point design (Section 4) makes records
independent units of work, and its headline benchmark (Figure 10) is
throughput over an 11.7M-record file — an embarrassingly parallel
workload that the serial runtime drives through one core.  This module
adds the missing execution engine:

1. **Plan** — split the input at record boundaries using the record
   discipline's ``align`` logic (:func:`repro.core.io.plan_chunks`), so
   every chunk starts exactly where a record starts.
2. **Map** — fan the chunks out to a process pool.  Each worker process
   compiles the description once (or, under ``fork``, inherits the
   parent's already-compiled description) and parses its chunk through
   the ordinary serial machinery over a windowed :class:`Source`.
3. **Reduce** — combine per-chunk results in chunk order: record streams
   concatenate, accumulators :meth:`~repro.tools.accum.Accumulator.merge`,
   error tallies :meth:`~repro.core.errors.ErrorTally.merge`, counts sum.

Every entry point is observationally equivalent to its serial twin and
falls back to the serial path whenever splitting is impossible or not
worthwhile: ``jobs <= 1``, a non-chunkable record discipline
(:class:`~repro.core.io.NoRecords`, length-prefixed records), inputs
smaller than one chunk, an already-open :class:`Source`, or a
description whose source text is unavailable.  The parallel path is an
optimisation, never a semantic fork.

Inputs may be ``bytes``/``str`` (in-memory, chunks are sliced and shipped
to workers) or an :class:`os.PathLike` (each worker opens its own windowed
file handle — the cheap path for large files).  Byte offsets in error
locations are absolute by construction (windowed Sources preserve them);
record *indices* come out of workers chunk-local and are rebased to
global during the reduce, so error locations match the serial run
exactly.  Known caveat: user base types registered with
``load_base_type_files`` reach workers only via ``fork``.
"""

from __future__ import annotations

import io as _stdio
import os
import threading
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from concurrent.futures import TimeoutError as _FutTimeout
from dataclasses import dataclass, replace
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from . import observe
from .core.errors import ErrorTally, PadsError
from .core.io import RecordDiscipline, Source, plan_chunks
from .core.limits import ParseLimits
from .tools.accum import DEFAULT_TRACKED, Accumulator

__all__ = [
    "DescSpec", "parallel_records", "parallel_accumulate", "parallel_count",
    "parallel_tally", "tally_records", "shutdown",
    "parallel_records_stream", "parallel_count_stream",
    "parallel_accumulate_stream", "STREAM_CHUNK_BYTES",
]

#: Test/fault-injection hook: when set (before the worker pool is
#: created, so fork-started workers inherit it), every map function calls
#: it with its task before parsing.  Lets the robustness tests crash or
#: stall a worker process deterministically; never set in production.
_WORKER_FAULT: Optional[Callable] = None

#: Test hook: overrides the wedge-detection cap :func:`_chunk_timeout`
#: derives from the data deadline.  Decoupling the two matters under
#: load: a data deadline tight enough to make wedge detection fast is
#: also tight enough for *healthy* workers to trip while parsing real
#: data, which silently truncates their chunks.  Tests set this instead
#: of a deadline, so wedge detection gets a clock of its own.
_WEDGE_TIMEOUT: Optional[float] = None


# -- description specs ---------------------------------------------------------


@dataclass(frozen=True)
class DescSpec:
    """A picklable recipe for rebuilding a compiled description inside a
    worker process: the description source text, the ambient coding, which
    engine to use ('generated' or 'interp') and the record discipline."""

    text: str
    ambient: str
    engine: str
    discipline: RecordDiscipline
    #: Resource budget each worker attaches to its window's Source.  Not
    #: part of ``key()``: compiled descriptions are limits-independent, so
    #: changing limits never forces a worker recompile.
    limits: Optional[ParseLimits] = None
    #: Codegen backend for the generated engine ('auto'/'source'/'ast'),
    #: so workers rebuild with the same specialization as the parent.
    backend: str = "auto"
    #: Whether the plan-compiled record fast functions are enabled.  Part
    #: of ``key()``: a parent running in reference mode (``fastpath=False``)
    #: must not share a worker-cache slot with a fastpath parent — same
    #: source, different compiled artifact (the cache-keying bug family).
    fastpath: bool = True

    def key(self) -> tuple:
        from .core.api import discipline_key
        return (self.text, self.ambient, self.engine, self.backend,
                self.fastpath) + discipline_key(self.discipline)


def _spec_for(description) -> Optional[DescSpec]:
    """Build a spec for a description, or None when it cannot be shipped
    to workers (no source text — e.g. a hand-constructed binding)."""
    limits = getattr(description, "limits", None)
    module = getattr(description, "module", None)
    if module is not None and hasattr(module, "SOURCE"):
        return DescSpec(module.SOURCE, module.AMBIENT, "generated",
                        description.discipline, limits,
                        getattr(description, "backend", "auto"))
    text = getattr(description, "source_text", None)
    ambient = getattr(description, "ambient", None)
    if text is None or ambient is None:
        return None
    fastpath = getattr(getattr(description, "bound", None), "fastpath", True)
    return DescSpec(text, ambient, "interp", description.discipline, limits,
                    fastpath=fastpath)


#: Per-process cache of compiled descriptions.  The parent seeds it with
#: its own description before creating a pool, so fork-started workers
#: never recompile; spawn-started workers compile once per process.
_COMPILED: Dict[tuple, object] = {}


def _materialise(spec: DescSpec):
    key = spec.key()
    desc = _COMPILED.get(key)
    if desc is None:
        if spec.engine == "generated":
            from .codegen import compile_generated
            desc = compile_generated(spec.text, ambient=spec.ambient,
                                     discipline=spec.discipline, check=False,
                                     backend=spec.backend,
                                     fastpath=spec.fastpath)
        else:
            from .core.api import compile_description
            desc = compile_description(spec.text, ambient=spec.ambient,
                                       discipline=spec.discipline, check=False,
                                       fastpath=spec.fastpath)
        _COMPILED[key] = desc
    return desc


# -- worker pool ---------------------------------------------------------------
#
# Pools persist across calls keyed by their size, so a long-running
# process (the parse service) pays pool start-up once and every
# subsequent request reuses the warm workers.  Creation, discard and
# shutdown are lock-guarded: concurrent server requests arriving on
# executor threads must not race a half-built pool or double-discard a
# broken one.  ``ProcessPoolExecutor.submit`` itself is thread-safe, so
# the lock covers only the registry, not the mapping.

_POOLS: Dict[int, ProcessPoolExecutor] = {}
_POOLS_LOCK = threading.Lock()


def _pool(jobs: int) -> ProcessPoolExecutor:
    with _POOLS_LOCK:
        pool = _POOLS.get(jobs)
        if pool is None:
            pool = ProcessPoolExecutor(max_workers=jobs)
            _POOLS[jobs] = pool
        return pool


def _discard_pool(jobs: int) -> None:
    """Drop a broken pool without waiting on its (possibly dead or
    wedged) workers; the next ``_pool(jobs)`` call builds a fresh one."""
    with _POOLS_LOCK:
        pool = _POOLS.pop(jobs, None)
    if pool is not None:
        pool.shutdown(wait=False, cancel_futures=True)


def shutdown() -> None:
    """Shut down any worker pools this module created (optional; pools
    are also reaped at interpreter exit)."""
    with _POOLS_LOCK:
        pools = list(_POOLS.values())
        _POOLS.clear()
    for pool in pools:
        pool.shutdown(wait=True, cancel_futures=True)


# -- self-healing execution ----------------------------------------------------


def _chunk_timeout(spec: Optional[DescSpec]) -> Optional[float]:
    """Per-chunk wall-clock cap, derived from the data deadline.

    A chunk is at most the whole input, so a worker healthy enough to
    enforce its own deadline finishes within ``deadline`` plus slack; one
    that does not answer within 4x (+1s scheduling slack) is wedged and
    treated like a crashed worker.  Without a deadline there is no cap —
    hang detection needs a clock to compare against — unless the
    :data:`_WEDGE_TIMEOUT` hook supplies one directly.
    """
    if _WEDGE_TIMEOUT is not None:
        return _WEDGE_TIMEOUT
    if spec is not None and spec.limits is not None \
            and spec.limits.deadline is not None:
        return spec.limits.deadline * 4 + 1.0
    return None


def _healing_map(fn: Callable, tasks: Sequence[tuple], jobs: int,
                 *, timeout: Optional[float] = None) -> Iterator:
    """``pool.map`` with per-chunk fault recovery, yielding in task order.

    The recovery ladder, each rung counted in the active metrics
    registry:

    1. a task that *raises* inside a healthy worker is retried serially
       in-process (``parallel.chunk_retry``) — same map function, same
       inputs, so results stay byte-identical;
    2. a *broken* pool (worker killed, unpicklable crash, chunk timeout)
       is discarded, the failed chunk retried in-process, and the pool
       rebuilt once (``parallel.pool_rebuild``) for the remaining chunks;
    3. a second break degrades the whole run to in-process serial
       execution (``parallel.degraded``).

    Chunks are independent by construction (record-aligned windows), so
    re-running one in the parent is always equivalent to the worker run.
    """
    pending = list(tasks)
    rebuilds = 0
    while pending:
        try:
            futures = [_pool(jobs).submit(fn, t) for t in pending]
        except Exception:
            futures, broken_at = [], 0
        else:
            broken_at = None
            for k, fut in enumerate(futures):
                try:
                    yield fut.result(timeout=timeout)
                    continue
                except _FutTimeout:
                    observe.count("parallel.chunk_timeout")
                    broken_at = k
                except BrokenExecutor:
                    broken_at = k
                except Exception:
                    # The worker survived; only this task failed.
                    observe.count("parallel.chunk_retry")
                    yield fn(pending[k])
                    continue
                break
            if broken_at is None:
                return
        for fut in futures[broken_at:]:
            fut.cancel()
        _discard_pool(jobs)
        observe.count("parallel.chunk_retry")
        yield fn(pending[broken_at])
        pending = pending[broken_at + 1:]
        if pending and rebuilds >= 1:
            observe.count("parallel.degraded")
            for task in pending:
                yield fn(task)
            return
        rebuilds += 1
        if pending:
            observe.count("parallel.pool_rebuild")


# -- planning ------------------------------------------------------------------


def _plan_windows(description, data, jobs: Optional[int],
                  start: int = 0) -> Optional[Tuple[List[tuple], int]]:
    """Record-aligned windows for ``data`` (from offset ``start``), or
    None when the serial path should be used instead."""
    if jobs is None:
        jobs = os.cpu_count() or 1
    if jobs <= 1:
        return None
    obs = observe.CURRENT
    if obs is not None and obs.tracer is not None:
        # An active tracer pins execution to the serial path so the event
        # stream stays complete and ordered (metrics alone parallelise).
        return None
    discipline = description.discipline
    if _spec_for(description) is None:
        return None
    limits = getattr(description, "limits", None)
    if limits is not None and limits.max_errors is not None:
        # The error budget is run-global: chunked workers each counting
        # from zero would diverge from the serial run.  Serial only.
        return None
    if isinstance(data, os.PathLike):
        path = os.fspath(data)
        size = os.path.getsize(path)
        # A persistent boundary index (repro.durable) plans without
        # re-discovering boundaries — and is the only way to split
        # disciplines with no scannable boundaries (length-prefixed).
        from .durable import indexed_file_chunks
        chunks = indexed_file_chunks(path, discipline, jobs, start=start)
        if chunks is None:
            if not discipline.chunkable:
                return None
            with open(path, "rb") as handle:
                chunks = plan_chunks(handle, size, discipline, jobs,
                                     start=start)
        if not chunks:
            return None
        return [("file", path, s, e) for s, e in chunks], jobs
    if not discipline.chunkable:
        return None
    if isinstance(data, (bytes, bytearray, str)):
        raw = data.encode("latin-1") if isinstance(data, str) else bytes(data)
        chunks = plan_chunks(_stdio.BytesIO(raw), len(raw), discipline, jobs,
                             start=start)
        if not chunks:
            return None
        # Each worker receives only its slice; ``start`` keeps reported
        # byte offsets absolute.
        return [("bytes", raw[s:e], s) for s, e in chunks], jobs
    return None  # an open Source (or anything else): serial only


def _open_window(window: tuple, discipline: RecordDiscipline,
                 limits: Optional[ParseLimits] = None) -> Source:
    # A fresh Source per window means per-chunk limit state: each chunk
    # gets its own deadline clock (documented per-chunk semantics).
    if window[0] == "file":
        _, path, start, end = window
        return Source.from_file(path, discipline, start=start, end=end,
                                limits=limits)
    _, chunk, offset = window
    return Source(chunk, discipline=discipline, start=offset, limits=limits)


def _serial_input(description, data):
    if isinstance(data, os.PathLike):
        return description.open_file(os.fspath(data))
    return data


# -- map functions (run inside workers) ----------------------------------------


def _window_iter(desc, window, type_name, mask, limits) -> tuple:
    """One worker window's record stream: the batch engine when the
    window is grid-eligible (:func:`repro.batch.window_records`), the
    ordinary cursor walk otherwise.  Both produce chunk-local record
    indices.  Returns ``(iterator, source-to-close-or-None)``."""
    from .batch import window_records
    batched = window_records(desc, window, type_name, mask)
    if batched is not None:
        return batched, None
    src = _open_window(window, desc.discipline, limits)
    return desc.records(src, type_name, mask), src


def _window_records(desc, window, type_name, mask, limits) -> list:
    it, src = _window_iter(desc, window, type_name, mask, limits)
    try:
        return list(it)
    finally:
        if src is not None:
            src.close()


def _map_records(task) -> tuple:
    spec, window, type_name, mask, meter = task
    if _WORKER_FAULT is not None:
        _WORKER_FAULT(task)
    desc = _materialise(spec)
    if not meter:
        return _window_records(desc, window, type_name, mask,
                               spec.limits), None
    with observe.observed() as obs:
        out = _window_records(desc, window, type_name, mask, spec.limits)
    return out, obs.metrics


def _map_count(task) -> int:
    spec, window = task
    if _WORKER_FAULT is not None:
        _WORKER_FAULT(task)
    desc = _materialise(spec)
    from .batch import window_count
    batched = window_count(desc, window)
    if batched is not None:
        return batched
    src = _open_window(window, desc.discipline, spec.limits)
    with src:
        count = 0
        while src.begin_record():
            src.end_record()
            count += 1
        return count


def _map_tally(task) -> tuple:
    spec, window, type_name, mask, meter = task
    if _WORKER_FAULT is not None:
        _WORKER_FAULT(task)
    desc = _materialise(spec)

    def run():
        tally = ErrorTally()
        it, src = _window_iter(desc, window, type_name, mask, spec.limits)
        try:
            for _rep, pd in it:
                tally.add(pd)
        finally:
            if src is not None:
                src.close()
        return tally

    if not meter:
        return run(), None
    with observe.observed() as obs:
        tally = run()
    return tally, obs.metrics


def _map_accum(task) -> tuple:
    spec, window, record_type, mask, tracked, summaries, meter = task
    if _WORKER_FAULT is not None:
        _WORKER_FAULT(task)
    desc = _materialise(spec)
    acc = Accumulator(desc.node(record_type), "<top>", tracked)
    if summaries:
        from .tools.summaries import attach_summaries
        attach_summaries(acc)

    def run():
        tally = ErrorTally()
        it, src = _window_iter(desc, window, record_type, mask, spec.limits)
        try:
            for rep, pd in it:
                acc.add(rep, pd)
                tally.add(pd)
        finally:
            if src is not None:
                src.close()
        return tally

    if not meter:
        return acc, run(), None
    with observe.observed() as obs:
        tally = run()
    return acc, tally, obs.metrics


def _seed(description, spec: DescSpec) -> None:
    # Let fork-started workers inherit the already-compiled description.
    _COMPILED.setdefault(spec.key(), description)


# -- reduce helpers ------------------------------------------------------------


def _rebase_pd(pd, offset: int, cache: dict) -> None:
    """Rebase chunk-local record indices in an error pd tree to global.

    Locations are only attached where errors were reported, so clean
    subtrees (``nerr == 0``) are skipped and the walk costs nothing for
    the common case.  ``Loc`` is frozen; rebased copies are cached by
    identity so locations shared between pd nodes stay shared.
    """
    if pd is None or pd.nerr == 0 or offset == 0:
        return
    loc = pd.loc
    if loc is not None and loc.record >= 0:
        new = cache.get(id(loc))
        if new is None:
            new = replace(loc, record=loc.record + offset)
            cache[id(loc)] = new
        pd.loc = new
    if pd._fields:
        for child in pd._fields.values():
            _rebase_pd(child, offset, cache)
    if pd._elts:
        for child in pd._elts:
            _rebase_pd(child, offset, cache)
    _rebase_pd(pd.branch, offset, cache)


def _rebase_tally(tally: ErrorTally, offset: int) -> None:
    loc = tally.first_error_loc
    if loc is not None and loc.record >= 0 and offset:
        tally.first_error_loc = replace(loc, record=loc.record + offset)


# -- public entry points -------------------------------------------------------


def parallel_records(description, data, type_name: str, mask=None,
                     *, jobs: Optional[int] = None) -> Iterator[tuple]:
    """Parallel twin of ``description.records``: yields ``(rep, pd)``
    pairs in input order.  Workers parse whole chunks, the parent yields
    chunk results in chunk order."""
    plan = _plan_windows(description, data, jobs)
    if plan is None:
        yield from description.records(_serial_input(description, data),
                                       type_name, mask)
        return
    windows, jobs = plan
    spec = _spec_for(description)
    _seed(description, spec)
    cur = observe.CURRENT
    tasks = [(spec, w, type_name, mask, cur is not None) for w in windows]
    base = 0
    for chunk, registry in _healing_map(_map_records, tasks, jobs,
                                        timeout=_chunk_timeout(spec)):
        if registry is not None and cur is not None:
            cur.metrics.merge(registry)
        cache: dict = {}
        for rep, pd in chunk:
            _rebase_pd(pd, base, cache)
            yield rep, pd
        base += len(chunk)


def parallel_count(description, data, *, jobs: Optional[int] = None) -> int:
    """Parallel twin of ``description.count_records``."""
    plan = _plan_windows(description, data, jobs)
    if plan is None:
        return description.count_records(_serial_input(description, data))
    windows, jobs = plan
    spec = _spec_for(description)
    _seed(description, spec)
    tasks = [(spec, w) for w in windows]
    return sum(_healing_map(_map_count, tasks, jobs,
                            timeout=_chunk_timeout(spec)))


def tally_records(description, data, type_name: str, mask=None) -> ErrorTally:
    """Serial vetting reducer: fold every record's pd into one tally."""
    tally = ErrorTally()
    for _rep, pd in description.records(_serial_input(description, data),
                                        type_name, mask):
        tally.add(pd)
    return tally


def parallel_tally(description, data, type_name: str, mask=None,
                   *, jobs: Optional[int] = None) -> ErrorTally:
    """Parallel vetting: parse every record, reduce the parse descriptors
    to an :class:`ErrorTally` inside the workers, merge in chunk order.
    Identical totals to :func:`tally_records` by construction."""
    plan = _plan_windows(description, data, jobs)
    if plan is None:
        return tally_records(description, data, type_name, mask)
    windows, jobs = plan
    spec = _spec_for(description)
    _seed(description, spec)
    cur = observe.CURRENT
    tasks = [(spec, w, type_name, mask, cur is not None) for w in windows]
    tally = ErrorTally()
    base = 0
    for part, registry in _healing_map(_map_tally, tasks, jobs,
                                       timeout=_chunk_timeout(spec)):
        if registry is not None and cur is not None:
            cur.metrics.merge(registry)
        _rebase_tally(part, base)
        base += part.records
        tally.merge(part)
    return tally


def parallel_accumulate(description, data, record_type: str, mask=None,
                        *, jobs: Optional[int] = None,
                        tracked: int = DEFAULT_TRACKED,
                        header_type: Optional[str] = None,
                        summaries: bool = False):
    """Parallel twin of :func:`repro.tools.accum.accumulate_records`.

    Returns ``(record_accumulator, header_accumulator_or_None, tally)``
    where ``tally.records`` is the record count.  When a ``header_type``
    is given, the header is parsed serially in the parent and chunk
    planning starts after it.
    """
    header_acc = None
    start = 0
    base = 0  # records consumed before the chunked region (the header)
    if header_type is not None:
        header_acc = Accumulator(description.node(header_type), "<header>",
                                 tracked)
        src = description.open(_serial_input(description, data)) \
            if not isinstance(data, os.PathLike) \
            else description.open_file(os.fspath(data))
        rep, pd = description.parse(src, header_type)
        header_acc.add(rep, pd)
        start = src.pos
        base = src.record_idx + 1
        if isinstance(data, os.PathLike):
            src.close()

    plan = _plan_windows(description, data, jobs, start=start)
    acc = Accumulator(description.node(record_type), "<top>", tracked)
    if summaries:
        from .tools.summaries import attach_summaries
        attach_summaries(acc)
    tally = ErrorTally()

    if plan is None:
        if header_type is not None and not isinstance(data, os.PathLike):
            records_input = src  # continue from where the header ended
        elif header_type is not None:
            records_input = Source.from_file(os.fspath(data),
                                             description.discipline,
                                             start=start)
        else:
            records_input = _serial_input(description, data)
        for rep, pd in description.records(records_input, record_type, mask):
            acc.add(rep, pd)
            tally.add(pd)
        return acc, header_acc, tally

    windows, jobs = plan
    spec = _spec_for(description)
    _seed(description, spec)
    cur = observe.CURRENT
    tasks = [(spec, w, record_type, mask, tracked, summaries, cur is not None)
             for w in windows]
    for part_acc, part_tally, registry in _healing_map(
            _map_accum, tasks, jobs, timeout=_chunk_timeout(spec)):
        if registry is not None and cur is not None:
            cur.metrics.merge(registry)
        acc.merge(part_acc)
        _rebase_tally(part_tally, base)
        base += part_tally.records
        tally.merge(part_tally)
    return acc, header_acc, tally


# -- pipelined streaming --------------------------------------------------------
#
# The streaming twins of the entry points above.  ``plan_chunks`` needs a
# seekable file of known size; a live stream (pipe, socket, growing file)
# has neither, so the feeder below carves record-aligned chunks *as the
# bytes arrive* using the discipline's ``cut`` and ships each batch to
# the pool without waiting for EOF.  Unlike the seekable entry points
# these do NOT silently degrade to serial when the stream cannot be
# chunked — a caller who asked for jobs on a stream gets a
# :class:`PadsError` diagnostic instead (the CLI turns it into exit 2).
# The serial path is used only where it is exact policy: ``jobs <= 1``,
# an active tracer, or an already-open :class:`Source`.

#: Target bytes per shipped chunk.  Large enough to amortise pickling
#: and per-chunk pool overhead, small enough that a batch of
#: ``jobs`` chunks stays a modest working set in the parent.
STREAM_CHUNK_BYTES = 1 << 20


def _require_streamable(description, spec: Optional[DescSpec]) -> None:
    """Raise the explicit never-silently-degrade diagnostics."""
    discipline = description.discipline
    if not discipline.chunkable or discipline.cut(b"") is None:
        raise PadsError(
            f"cannot split a {type(discipline).__name__} stream at record "
            "boundaries; run with jobs=1 or use a seekable file")
    if spec is None:
        raise PadsError("description has no source text to ship to "
                        "workers; run with jobs=1")
    limits = getattr(description, "limits", None)
    if limits is not None and limits.max_errors is not None:
        raise PadsError("a global max_errors budget requires serial "
                        "parsing; run with jobs=1")


def _binary_stream(data) -> Tuple[object, bool]:
    """Normalise feeder input to a readable binary object.  Returns
    ``(stream, owns)``; ``owns`` means the feeder should close it."""
    if hasattr(data, "read"):
        return data, False
    if isinstance(data, (str, os.PathLike)):
        return open(os.fspath(data), "rb"), True
    if isinstance(data, int) and not isinstance(data, bool):
        return os.fdopen(data, "rb"), True
    if hasattr(data, "makefile"):  # socket.socket
        return data.makefile("rb"), True
    raise PadsError(f"cannot stream from {type(data).__name__!r}: need a "
                    "path, fd, socket, or a readable binary object")


def _stream_chunks(stream, discipline: RecordDiscipline,
                   chunk_bytes: int = STREAM_CHUNK_BYTES) -> Iterator[tuple]:
    """Carve a live stream into record-aligned ``(chunk, offset)`` pieces.

    Accumulates at least ``chunk_bytes`` and cuts at the last record
    boundary (``discipline.cut``); the tail past the boundary seeds the
    next chunk, so no record is ever split between workers.  The final
    piece may end mid-record (truncated input) — workers report that the
    same way the serial parse would.
    """
    read = getattr(stream, "read1", None) or stream.read
    buf = bytearray()
    offset = 0
    while True:
        data = read(max(chunk_bytes - len(buf), 1))
        if not data:
            break
        buf += data
        if len(buf) < chunk_bytes:
            continue
        cut = discipline.cut(buf)
        if cut:
            yield bytes(buf[:cut]), offset
            offset += cut
            del buf[:cut]
    if buf:
        yield bytes(buf), offset


def _batches(iterable, size: int) -> Iterator[list]:
    batch: list = []
    for item in iterable:
        batch.append(item)
        if len(batch) == size:
            yield batch
            batch = []
    if batch:
        yield batch


def parallel_records_stream(description, data, type_name: str, mask=None,
                            *, jobs: Optional[int] = None,
                            chunk_bytes: int = STREAM_CHUNK_BYTES
                            ) -> Iterator[tuple]:
    """Pipelined parallel twin of ``records_stream``: batches of ``jobs``
    record-aligned chunks flow through :func:`_healing_map` as the stream
    delivers them, yielding ``(rep, pd)`` pairs in input order."""
    if isinstance(data, Source):
        yield from description.records(data, type_name, mask)
        return
    if jobs is None:
        jobs = os.cpu_count() or 1
    cur = observe.CURRENT
    if jobs <= 1 or (cur is not None and cur.tracer is not None):
        from .stream import records_stream
        yield from records_stream(description, data, type_name, mask)
        return
    spec = _spec_for(description)
    _require_streamable(description, spec)
    _seed(description, spec)
    stream, owns = _binary_stream(data)
    base = 0
    try:
        for batch in _batches(
                _stream_chunks(stream, description.discipline, chunk_bytes),
                jobs):
            tasks = [(spec, ("bytes", chunk, off), type_name, mask,
                      cur is not None) for chunk, off in batch]
            for chunk_out, registry in _healing_map(
                    _map_records, tasks, jobs, timeout=_chunk_timeout(spec)):
                if registry is not None and cur is not None:
                    cur.metrics.merge(registry)
                cache: dict = {}
                for rep, pd in chunk_out:
                    _rebase_pd(pd, base, cache)
                    yield rep, pd
                base += len(chunk_out)
    finally:
        if owns:
            stream.close()


def parallel_count_stream(description, data, *, jobs: Optional[int] = None,
                          chunk_bytes: int = STREAM_CHUNK_BYTES) -> int:
    """Pipelined parallel twin of ``count_records_stream``."""
    if isinstance(data, Source):
        return description.count_records(data)
    if jobs is None:
        jobs = os.cpu_count() or 1
    cur = observe.CURRENT
    if jobs <= 1 or (cur is not None and cur.tracer is not None):
        from .stream import count_records_stream
        return count_records_stream(description, data)
    spec = _spec_for(description)
    _require_streamable(description, spec)
    _seed(description, spec)
    stream, owns = _binary_stream(data)
    total = 0
    try:
        for batch in _batches(
                _stream_chunks(stream, description.discipline, chunk_bytes),
                jobs):
            tasks = [(spec, ("bytes", chunk, off)) for chunk, off in batch]
            total += sum(_healing_map(_map_count, tasks, jobs,
                                      timeout=_chunk_timeout(spec)))
    finally:
        if owns:
            stream.close()
    return total


def parallel_accumulate_stream(description, data, record_type: str,
                               mask=None, *, jobs: Optional[int] = None,
                               tracked: int = DEFAULT_TRACKED,
                               summaries: bool = False,
                               chunk_bytes: int = STREAM_CHUNK_BYTES):
    """Pipelined parallel twin of ``accumulate_stream``: returns
    ``(acc, tally)`` where ``tally.records`` is the record count.
    Streams have no random access, so header types (which need a serial
    prefix parse plus seekable chunk planning) are not supported here."""
    if jobs is None:
        jobs = os.cpu_count() or 1
    cur = observe.CURRENT
    if isinstance(data, Source):
        acc = Accumulator(description.node(record_type), "<top>", tracked)
        if summaries:
            from .tools.summaries import attach_summaries
            attach_summaries(acc)
        tally = ErrorTally()
        for rep, pd in description.records(data, record_type, mask):
            acc.add(rep, pd)
            tally.add(pd)
        return acc, tally
    if jobs <= 1 or (cur is not None and cur.tracer is not None):
        from .stream import accumulate_stream
        return accumulate_stream(description, data, record_type, mask,
                                 tracked=tracked, summaries=summaries)
    spec = _spec_for(description)
    _require_streamable(description, spec)
    _seed(description, spec)
    acc = Accumulator(description.node(record_type), "<top>", tracked)
    if summaries:
        from .tools.summaries import attach_summaries
        attach_summaries(acc)
    tally = ErrorTally()
    stream, owns = _binary_stream(data)
    base = 0
    try:
        for batch in _batches(
                _stream_chunks(stream, description.discipline, chunk_bytes),
                jobs):
            tasks = [(spec, ("bytes", chunk, off), record_type, mask,
                      tracked, summaries, cur is not None)
                     for chunk, off in batch]
            for part_acc, part_tally, registry in _healing_map(
                    _map_accum, tasks, jobs, timeout=_chunk_timeout(spec)):
                if registry is not None and cur is not None:
                    cur.metrics.merge(registry)
                acc.merge(part_acc)
                _rebase_tally(part_tally, base)
                base += part_tally.records
                tally.merge(part_tally)
    finally:
        if owns:
            stream.close()
    return acc, tally
