"""repro — a Python reproduction of PADS (Fisher & Gruber, PLDI 2005).

PADS is a declarative data-description language for ad hoc data.  This
package reimplements the full system: the description language, a parsing
runtime with masks and parse descriptors, a Python code generator, and
the generated-tool suite (accumulators, formatting, XML conversion, an
XQuery-subset engine over the generated data API, a Cobol copybook
translator and a conforming-data generator).

Quickstart::

    import repro

    clf = repro.compile_description(repro.gallery.CLF)
    for rep, pd in clf.records(data, "entry_t"):
        if pd.nerr == 0:
            print(rep.client.value)
"""

from .core import (
    CompiledDescription,
    DescriptionError,
    ErrCode,
    ErrorTally,
    FixedWidthRecords,
    LengthPrefixedRecords,
    Loc,
    Mask,
    MaskFlag,
    NewlineRecords,
    NoRecords,
    P_Check,
    P_CheckAndSet,
    P_Ignore,
    P_SemCheck,
    P_Set,
    P_SynCheck,
    PadsError,
    Pd,
    Pstate,
    Rec,
    Source,
    UnionVal,
    DateVal,
    EnumVal,
    compile_description,
    compile_file,
    mask_init,
)

from . import gallery  # noqa: E402  (the paper's descriptions, ready to use)
from . import parallel  # noqa: E402  (chunked map-reduce over records)

__version__ = "1.0.0"

__all__ = [
    "CompiledDescription", "DescriptionError", "ErrCode", "ErrorTally",
    "FixedWidthRecords", "LengthPrefixedRecords", "Loc", "Mask", "MaskFlag",
    "NewlineRecords", "NoRecords", "P_Check", "P_CheckAndSet", "P_Ignore",
    "P_SemCheck", "P_Set", "P_SynCheck", "PadsError", "Pd", "Pstate",
    "Rec", "Source", "UnionVal", "DateVal", "EnumVal",
    "compile_description", "compile_file", "mask_init", "parallel",
    "__version__",
]
