"""Differential sweep for the bounded-memory streaming subsystem.

``records_stream`` must be observationally identical to the slurped
``records`` path — same reps, same parse-descriptor summaries — across
the gallery, both engines, serial and parallel, every window size
(including windows smaller than one record, which force a record to
span refill boundaries), and a truncated final record.  On top of the
equivalence, the memory bound itself is asserted: streaming an input
many times the window keeps peak buffered bytes within 2x the window
(via the ``stream.high_water`` metric).
"""

import io
import os
import random
import threading
import time

import pytest

try:
    from hypothesis import given, settings, strategies as st
    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - baked-in image has hypothesis
    HAVE_HYPOTHESIS = False

from repro import gallery, observe
from repro.core.errors import PadsError
from repro.core.io import NewlineRecords, StreamSource
from repro.parallel import (
    parallel_accumulate_stream,
    parallel_count_stream,
    parallel_records_stream,
)
from repro.stream import open_stream, records_stream
from repro.tools.accum import Accumulator
from repro.tools.datagen import clf_workload

from .test_codegen import pd_summary
from .test_differential import CASES

WINDOWS = [64, 256, 4096, 1 << 20]


@pytest.fixture(scope="module")
def cases():
    return {name: build() for name, build in CASES.items()}


def slurped(engine, data, rtype):
    return [(r, pd_summary(p)) for r, p in engine.records(data, rtype)]


def streamed(engine, data, rtype, **opts):
    return [(r, pd_summary(p))
            for r, p in engine.records_stream(io.BytesIO(data), rtype,
                                              **opts)]


@pytest.mark.parametrize("name", list(CASES))
class TestStreamMatchesSlurp:
    def test_every_window_both_engines(self, cases, name):
        interp, gen, data, rtype = cases[name]
        base = slurped(interp, data, rtype)
        assert base, "empty case would vacuously pass"
        for engine in (interp, gen):
            for window in WINDOWS:
                assert streamed(engine, data, rtype, window=window) == base, \
                    f"window={window}"

    def test_truncated_final_record(self, cases, name):
        interp, _gen, data, rtype = cases[name]
        cut = data[:len(data) - len(data) % 64 - 31]  # mid-record, mid-window
        base = slurped(interp, cut, rtype)
        for window in (64, 4096):
            assert streamed(interp, cut, rtype, window=window) == base

    def test_stats_match_slurped(self, cases, name):
        # Deterministic stats projection: identical whether the bytes
        # arrived all at once or through a sliding window.
        interp, _gen, data, rtype = cases[name]
        with observe.observed() as obs:
            list(interp.records(data, rtype))
        base = obs.stats(deterministic=True)
        with observe.observed() as obs:
            list(interp.records_stream(io.BytesIO(data), rtype, window=256))
        doc = obs.stats(deterministic=True)
        assert doc["records"] == base["records"]
        assert doc["errors"] == base["errors"]
        if doc["batch"]["batches"]:
            # Batch-eligible description: the stream handed record-aligned
            # chunks to the grid driver instead of the sliding window.
            assert doc["batch"]["records"] + doc["batch"]["fallback_records"] \
                == doc["records"]["total"]
        else:
            assert doc["stream"]["refills"] > 0
            assert doc["stream"]["high_water"] > 0


if HAVE_HYPOTHESIS:
    _HYPO_CASE = {}

    def _hypo_case():
        # Build lazily (and once): hypothesis re-invokes the test body.
        if not _HYPO_CASE:
            interp = gallery.load_clf()
            data = clf_workload(40, random.Random(5))
            _HYPO_CASE["case"] = (interp, data,
                                  slurped(interp, data, "entry_t"))
        return _HYPO_CASE["case"]

    class TestRandomWindows:
        @settings(max_examples=40, deadline=None)
        @given(window=st.integers(min_value=1, max_value=4097))
        def test_any_window_agrees(self, window):
            # Every window size puts the refill boundary somewhere new
            # inside some record; none of them may change the parse.
            interp, data, base = _hypo_case()
            assert streamed(interp, data, "entry_t", window=window) == base


class TestBoundedMemory:
    def test_high_water_stays_within_twice_the_window(self):
        window = 1 << 14
        data = clf_workload(2500, random.Random(6))  # ~20x the window
        assert len(data) >= 10 * window
        interp = gallery.load_clf()
        with observe.observed() as obs:
            out = list(interp.records_stream(io.BytesIO(data), "entry_t",
                                             window=window))
        stream = obs.stats(deterministic=True)["stream"]
        assert stream["high_water"] <= 2 * window, stream
        assert stream["refills"] >= len(data) // window
        # ...and the bounded run still parsed everything, identically.
        assert [r for r, _ in out] == \
            [r for r, _ in interp.records(data, "entry_t")]

    def test_source_counters_mirror_metrics(self):
        data = b"a,1\nb,2\nc,3\n" * 50
        src = StreamSource(io.BytesIO(data), NewlineRecords(), window=16)
        with src:
            n = 0
            while src.begin_record():
                src.end_record()
                n += 1
        assert n == 150
        assert src.refills > 0
        assert 0 < src.high_water <= 2 * 16


class TestParallelStream:
    @pytest.fixture(autouse=True)
    def _clean_pools(self):
        from repro import parallel
        parallel.shutdown()
        yield
        parallel.shutdown()

    def test_records_match_serial(self, cases):
        interp, gen, data, rtype = cases["clf"]
        base = slurped(interp, data, rtype)
        for engine in (interp, gen):
            got = [(r, pd_summary(p)) for r, p in parallel_records_stream(
                engine, io.BytesIO(data), rtype, jobs=3, chunk_bytes=2048)]
            assert got == base

    def test_count_and_accumulate_match(self, cases):
        interp, _gen, data, rtype = cases["clf"]
        expected = interp.count_records(data)
        assert parallel_count_stream(interp, io.BytesIO(data), jobs=3,
                                     chunk_bytes=2048) == expected
        acc = Accumulator(interp.node(rtype), "<top>", 1000)
        for rep, pd in interp.records(data, rtype):
            acc.add(rep, pd)
        par_acc, tally = parallel_accumulate_stream(
            interp, io.BytesIO(data), rtype, jobs=3, chunk_bytes=2048)
        assert tally.records == expected
        assert par_acc.full_report() == acc.full_report()

    def test_unchunkable_stream_is_an_explicit_error(self, cases):
        interp, _gen, data, rtype = cases["call_detail"]
        sirius_like = gallery.load_sirius()
        from repro.core.io import LengthPrefixedRecords
        sirius_like.discipline = LengthPrefixedRecords(4)
        with pytest.raises(PadsError, match="cannot split"):
            list(parallel_records_stream(sirius_like, io.BytesIO(b""),
                                         "entry_t", jobs=3))


class TestLiveSources:
    def test_pipe(self):
        interp = gallery.load_clf()
        data = clf_workload(50, random.Random(7))
        base = slurped(interp, data, "entry_t")
        r_fd, w_fd = os.pipe()

        def feed():
            with os.fdopen(w_fd, "wb") as w:
                for i in range(0, len(data), 777):
                    w.write(data[i:i + 777])
                    w.flush()

        t = threading.Thread(target=feed)
        t.start()
        try:
            got = [(r, pd_summary(p)) for r, p in
                   records_stream(interp, r_fd, "entry_t", window=4096)]
        finally:
            t.join()
        assert got == base

    def test_follow_growing_file(self, tmp_path):
        interp = gallery.load_clf()
        data = clf_workload(60, random.Random(8))
        lines = data.splitlines(keepends=True)
        path = tmp_path / "grow.log"
        with open(path, "wb") as w:
            w.writelines(lines[:20])

        def grow():
            time.sleep(0.15)
            with open(path, "ab") as w:
                w.writelines(lines[20:])

        t = threading.Thread(target=grow)
        t.start()
        try:
            with observe.observed() as obs:
                got = [(r, pd_summary(p)) for r, p in
                       records_stream(interp, str(path), "entry_t",
                                      follow=True, idle_timeout=1.0,
                                      poll_interval=0.02)]
        finally:
            t.join()
        assert got == slurped(interp, data, "entry_t")
        # the reader must actually have waited on the growing file
        assert obs.stats(deterministic=True)["stream"]["stalls"] > 0

    def test_open_stream_rejects_unreadable(self):
        with pytest.raises(PadsError, match="cannot stream"):
            open_stream(3.14, NewlineRecords())

    def test_open_stream_passthrough(self):
        src = StreamSource(io.BytesIO(b"x\n"), NewlineRecords())
        assert open_stream(src, NewlineRecords()) is src
