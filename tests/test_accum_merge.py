"""Property tests: merging accumulators built over any split of a record
stream equals accumulating the whole stream.

This is the algebraic property the parallel engine rests on — reduce by
:meth:`merge` must be a homomorphism from record streams to accumulator
state.  Counts, numeric stats and error histograms are exact under any
split; the top-K value table is exact while distinct values fit in the
tracked limit, and a documented lower bound under overflow.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro import gallery
from repro.core.errors import ErrCode, ErrorTally, Pd
from repro.tools.accum import Accumulator, ScalarAccum
from repro.tools.datagen import clf_workload
from repro.tools.summaries import NumericSummaries


def bad_pd(code=ErrCode.INVALID_INT):
    pd = Pd()
    pd.nerr = 1
    pd.err_code = code
    return pd


# An event is (value, pd-or-None); None means a clean parse.
events = st.lists(
    st.tuples(
        st.one_of(st.integers(-50, 50), st.sampled_from("abcde")),
        st.sampled_from([None, "syntax", "semantic"]),
    ),
    max_size=60,
)


def feed(acc: ScalarAccum, part) -> None:
    for value, err in part:
        if err is None:
            acc.add(value, None)
        else:
            code = ErrCode.INVALID_INT if err == "syntax" else ErrCode.USER_CONSTRAINT_VIOLATION
            acc.add(value, bad_pd(code))


def scalar_state(acc: ScalarAccum):
    return (acc.good, acc.bad, acc.min, acc.max,
            pytest.approx(acc.total), acc.err_codes,
            acc.values, acc.tracked_count)


class TestScalarMerge:
    @given(events, st.data())
    def test_any_split_equals_whole(self, evts, data):
        cut = data.draw(st.integers(0, len(evts)))
        whole = ScalarAccum("string")
        feed(whole, evts)
        left, right = ScalarAccum("string"), ScalarAccum("string")
        feed(left, evts[:cut])
        feed(right, evts[cut:])
        left.merge(right)
        assert scalar_state(left) == scalar_state(whole)

    @given(events, st.integers(2, 5))
    def test_many_way_split_equals_whole(self, evts, k):
        whole = ScalarAccum("string")
        feed(whole, evts)
        merged = ScalarAccum("string")
        for i in range(k):
            part = ScalarAccum("string")
            feed(part, evts[i::k])
            merged.merge(part)
        # Interleaved parts change first-seen order, so compare the value
        # table as a multiset rather than an ordered dict.
        assert (merged.good, merged.bad, merged.min, merged.max) == \
            (whole.good, whole.bad, whole.min, whole.max)
        assert merged.total == pytest.approx(whole.total)
        assert merged.err_codes == whole.err_codes
        assert dict(merged.values) == dict(whole.values)

    @given(events, st.data())
    def test_overflow_is_a_lower_bound(self, evts, data):
        cut = data.draw(st.integers(0, len(evts)))
        whole = ScalarAccum("string", tracked=3)
        feed(whole, evts)
        left, right = ScalarAccum("string", tracked=3), \
            ScalarAccum("string", tracked=3)
        feed(left, evts[:cut])
        feed(right, evts[cut:])
        left.merge(right)
        # Counts stay exact even when the table overflows.
        assert (left.good, left.bad) == (whole.good, whole.bad)
        assert len(left.values) <= 3
        # Every tracked count is a lower bound on the true occurrence count.
        true_counts = {}
        for value, err in evts:
            if err is None:
                true_counts[value] = true_counts.get(value, 0) + 1
        for key, count in left.values.items():
            assert count <= true_counts[key]

    def test_merge_returns_self(self):
        a, b = ScalarAccum("int"), ScalarAccum("int")
        a.add(1, None)
        b.add(2, None)
        assert a.merge(b) is a
        assert a.good == 2 and a.min == 1 and a.max == 2


class TestErrorTallyMerge:
    @given(st.lists(st.sampled_from([None, ErrCode.INVALID_INT,
                                     ErrCode.USER_CONSTRAINT_VIOLATION]), max_size=40),
           st.data())
    def test_any_split_equals_whole(self, codes, data):
        cut = data.draw(st.integers(0, len(codes)))
        pds = [Pd() if c is None else bad_pd(c) for c in codes]
        whole = ErrorTally()
        for pd in pds:
            whole.add(pd)
        left, right = ErrorTally(), ErrorTally()
        for pd in pds[:cut]:
            left.add(pd)
        for pd in pds[cut:]:
            right.add(pd)
        left.merge(right)
        assert left.records == whole.records
        assert left.bad_records == whole.bad_records
        assert left.good_records == whole.good_records
        assert left.total_errors == whole.total_errors
        assert left.by_code == whole.by_code
        assert left.first_error_code == whole.first_error_code


# -- whole-tree merges over real parsed records --------------------------------


@pytest.fixture(scope="module")
def clf_parsed():
    desc = gallery.load_clf()
    data = clf_workload(250, random.Random(20050612))
    node = desc.node("entry_t")
    return node, list(desc.records(data, "entry_t"))


class TestAccumulatorTreeMerge:
    @settings(max_examples=25, deadline=None)
    @given(st.data())
    def test_any_split_report_identical(self, clf_parsed, data):
        node, pairs = clf_parsed
        cut = data.draw(st.integers(0, len(pairs)))
        whole = Accumulator(node, "<top>")
        for rep, pd in pairs:
            whole.add(rep, pd)
        left = Accumulator(node, "<top>")
        right = Accumulator(node, "<top>")
        for rep, pd in pairs[:cut]:
            left.add(rep, pd)
        for rep, pd in pairs[cut:]:
            right.add(rep, pd)
        left.merge(right)
        assert left.full_report() == whole.full_report()

    def test_three_way_chunk_merge(self, clf_parsed):
        node, pairs = clf_parsed
        whole = Accumulator(node, "<top>")
        for rep, pd in pairs:
            whole.add(rep, pd)
        merged = Accumulator(node, "<top>")
        third = len(pairs) // 3
        for lo, hi in ((0, third), (third, 2 * third), (2 * third, len(pairs))):
            part = Accumulator(node, "<top>")
            for rep, pd in pairs[lo:hi]:
                part.add(rep, pd)
            merged.merge(part)
        assert merged.full_report() == whole.full_report()


class TestNumericSummariesMerge:
    @given(st.lists(st.floats(-1e6, 1e6), max_size=80), st.data())
    def test_split_merge_counts(self, xs, data):
        cut = data.draw(st.integers(0, len(xs)))
        whole = NumericSummaries()
        for x in xs:
            whole.add(x)
        left, right = NumericSummaries(), NumericSummaries()
        for x in xs[:cut]:
            left.add(x)
        for x in xs[cut:]:
            right.add(x)
        left.merge(right)
        assert left.quantiles.n == whole.quantiles.n
        assert left.histogram.n == whole.histogram.n
        assert left.sample.n == whole.sample.n
        assert len(left.sample.sample) == len(whole.sample.sample)
        if xs:
            lo, hi = min(xs), max(xs)
            for q in (0.25, 0.5, 0.75):
                assert lo <= left.quantiles.query(q) <= hi
            assert all(lo <= v <= hi for v in left.sample.sample)
