"""Tests for accumulators (paper Section 5.2)."""

import random

import pytest

from repro import compile_description, gallery
from repro.tools.accum import Accumulator, ScalarAccum, accumulate_records
from repro.tools.datagen import clf_workload


class TestScalarAccum:
    def test_good_bad_counts(self):
        acc = ScalarAccum("int")
        from repro.core.errors import ErrCode, Loc, Pd
        acc.add(5, None)
        acc.add(7, None)
        bad = Pd()
        bad.record_error(ErrCode.INVALID_INT, Loc())
        acc.add(None, bad)
        assert acc.good == 2 and acc.bad == 1
        assert acc.total_count == 3
        assert acc.pcnt_bad() == pytest.approx(100.0 / 3)

    def test_numeric_stats(self):
        acc = ScalarAccum("int")
        for v in (35, 100, 248591):
            acc.add(v, None)
        assert acc.min == 35 and acc.max == 248591
        assert acc.total == 35 + 100 + 248591

    def test_top_k(self):
        acc = ScalarAccum("int")
        for v in [1] * 5 + [2] * 3 + [3]:
            acc.add(v, None)
        assert acc.top(2) == [(1, 5), (2, 3)]

    def test_tracking_limit(self):
        acc = ScalarAccum("int", tracked=10)
        for v in range(50):
            acc.add(v, None)
        assert len(acc.values) == 10
        assert acc.tracked_count == 10  # only first 10 distinct tracked

    def test_tracked_percentage_counts_repeats(self):
        acc = ScalarAccum("int", tracked=1)
        for v in (7, 7, 8, 7):
            acc.add(v, None)
        # 3 of 4 adds hit the tracked value 7.
        assert acc.tracked_count == 3

    def test_error_code_histogram(self):
        from repro.core.errors import ErrCode, Loc, Pd
        acc = ScalarAccum("int")
        for code in (ErrCode.INVALID_INT, ErrCode.INVALID_INT, ErrCode.RANGE_ERR):
            pd = Pd()
            pd.record_error(code, Loc())
            acc.add(None, pd)
        assert acc.err_codes == {"INVALID_INT": 2, "RANGE_ERR": 1}

    def test_report_layout_matches_paper(self):
        acc = ScalarAccum("int")
        for v in (30, 941):
            acc.add(v, None)
        report = acc.report("<top>.length", "uint32")
        lines = report.splitlines()
        assert lines[0] == "<top>.length : uint32"
        assert set(lines[1]) == {"+"}
        assert lines[2].startswith("good: 2 bad: 0 pcnt-bad:")
        assert "min: 30 max: 941 avg: 485.500" in report
        assert "SUMMING count:" in report


class TestStructuredAccum:
    def test_struct_children(self, clf):
        acc, _, n = accumulate_records(clf, gallery.CLF_SAMPLE, "entry_t")
        assert n == 2
        assert acc.field("length").self_acc.good == 2
        assert acc.field("response").self_acc.good == 2

    def test_union_tag_distribution(self, clf):
        acc, _, _ = accumulate_records(clf, gallery.CLF_SAMPLE, "entry_t")
        client = acc.field("client")
        assert client.self_acc.values == {"ip": 1, "host": 1}

    def test_opt_presence(self, sirius):
        body = gallery.SIRIUS_SAMPLE.split("\n", 1)[1]
        acc, _, _ = accumulate_records(sirius, body, "entry_t")
        zips = acc.field("header.zip_code")
        assert zips.self_acc.values == {"SOME": 1, "NONE": 1}

    def test_array_lengths_and_elements(self, sirius):
        body = gallery.SIRIUS_SAMPLE.split("\n", 1)[1]
        acc, _, _ = accumulate_records(sirius, body, "entry_t")
        events = acc.field("events")
        assert events.lengths.values == {1: 1, 2: 1}
        states = acc.field("events[].state")
        assert states.self_acc.good == 3

    def test_header_type(self, sirius):
        acc, header_acc, n = accumulate_records(
            sirius, gallery.SIRIUS_SAMPLE, "entry_t",
            header_type="summary_header_t")
        assert n == 2
        assert header_acc.field("tstamp").self_acc.values == {1005022800: 1}

    def test_full_report_covers_nested_fields(self, clf):
        acc, _, _ = accumulate_records(clf, gallery.CLF_SAMPLE, "entry_t")
        report = acc.full_report()
        for path in ("<top>.client", "<top>.request.meth", "<top>.length"):
            assert path in report


class TestPaperDiscoveries:
    def test_dash_length_discovery(self, clf, rng):
        """Section 5.2's punchline: ~6.666% of CLF length fields hold '-'."""
        data = clf_workload(3000, rng, dash_rate=0.06666)
        acc, _, n = accumulate_records(clf, data, "entry_t")
        length = acc.field("length")
        assert n == 3000
        assert 4.0 < length.self_acc.pcnt_bad() < 10.0
        assert length.self_acc.err_codes.get("INVALID_INT", 0) == length.self_acc.bad

    def test_missing_value_representations_surface(self, sirius, rng):
        """Section 5.2: accumulators revealed the two representations of
        missing phone numbers (NONE and 0)."""
        from repro.tools.datagen import sirius_workload
        data = sirius_workload(500, rng, syntax_errors=0, sort_violations=0)
        body = data.split(b"\n", 1)[1]
        acc, _, _ = accumulate_records(sirius, body, "entry_t")
        billing = acc.field("header.billing_tn")
        assert "NONE" in billing.self_acc.values
        numbers = billing.children["some"].self_acc.values
        assert 0 in numbers  # the zero representation shows up among values
