"""Tests for the record-level fast path (plan.fastpath).

The fast path must be *transparent*: over any input, a generated module
with the fast path produces byte-identical reps and pd summaries to the
general parser and the interpreter.  These tests target the tricky
equivalence corners — maximal munch, ordered-choice commitment, guard
steering, constraint fallback — plus eligibility boundaries.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro import Mask, P_Check, P_CheckAndSet, P_Set, compile_description, gallery
from repro.codegen import compile_generated, generate_source
from repro.core.masks import MaskFlag

from .test_codegen import pd_summary  # reuse the structural fingerprint


def pair(desc_text, **kw):
    return compile_description(desc_text, **kw), compile_generated(desc_text, **kw)


def assert_equiv(interp, gen, data, type_name, mask=None):
    ri, pi = interp.parse(data, type_name, mask)
    rg, pg = gen.parse(data, type_name, mask)
    assert pd_summary(pi) == pd_summary(pg), (data, pi, pg)
    assert ri == rg, data
    return ri, pi


class TestEligibility:
    def test_fastpath_generated_for_paper_records(self):
        assert "_fp_entry_t" in generate_source(gallery.CLF)
        assert "_fp_entry_t" in generate_source(gallery.SIRIUS)
        assert "_fp_summary_header_t" in generate_source(gallery.SIRIUS)
        assert "_fp_call_t" in generate_source(gallery.CALL_DETAIL,
                                               ambient="binary")

    def test_parameterised_records_not_eligible(self):
        src = generate_source("""
            Precord Pstruct row_t(:int n:) {
                Pstring_FW(:n:) s;
            };
        """)
        assert "_fp_row_t" not in src

    def test_switched_union_not_eligible(self):
        src = generate_source("""
            Punion u(:int t:) {
                Pswitch (t) { Pcase 0: Puint8 a; Pdefault: Pchar b; }
            };
            Precord Pstruct row_t { Puint8 tag; ':'; u(:tag:) v; };
        """)
        assert "_fp_row_t" not in src

    def test_mid_record_array_not_eligible(self):
        src = generate_source("""
            Parray xs_t { Puint8[] : Psep(',') && Pterm(';'); };
            Precord Pstruct row_t { xs_t xs; ';'; Puint8 z; };
        """)
        assert "_fp_row_t" not in src

    def test_tail_eor_array_is_eligible(self):
        src = generate_source("""
            Parray xs_t { Puint8[] : Psep(',') && Pterm(Peor); };
            Precord Pstruct row_t { Puint8 z; ':'; xs_t xs; };
        """)
        assert "_fp_row_t" in src

    def test_dynamic_size_not_eligible(self):
        src = generate_source("""
            Parray xs_t(:int n:) { Puint8[n] : Psep(','); };
            Precord Pstruct row_t { Puint8 n; ':'; xs_t(:n:) xs; };
        """)
        assert "_fp_row_t" not in src


class TestMaximalMunch:
    """The regex must never accept by backtracking where the real parser
    commits."""

    def test_digit_run_commitment(self):
        # General: Puint32 eats ALL digits, then the FW field fails.
        desc = """
            Precord Pstruct row_t {
                Puint32 a; Puint16_FW(:4:) b;
            };
        """
        interp, gen = pair(desc)
        # 9 digits: general parse consumes all 9 into `a`, leaving nothing
        # for the fixed-width field -> error.  A backtracking regex would
        # split 5/4 and report clean.
        assert_equiv(interp, gen, b"123456789\n", "row_t")
        _, pd = gen.parse(b"123456789\n", "row_t")
        assert pd.nerr > 0

    def test_string_run_commitment(self):
        desc = """
            Precord Pstruct row_t {
                Pzip z; Pstring_any rest;
            };
        """
        interp, gen = pair(desc)
        # 6 digits: general Pzip rejects (not exactly 5); regex must not
        # quietly split 5+1.
        ri, pi = assert_equiv(interp, gen, b"123456\n", "row_t")
        assert pi.nerr > 0

    def test_enum_longest_commitment(self):
        desc = """
            Penum m { POSTER, POST };
            Precord Pstruct row_t { m x; "ER"; };
        """
        interp, gen = pair(desc)
        # "POSTER" then "ER" missing: the general parser commits to POSTER
        # and errors; the regex must not re-split as POST + "ER".
        ri, pi = assert_equiv(interp, gen, b"POSTER\n", "row_t")
        assert pi.nerr > 0
        assert_equiv(interp, gen, b"POSTERER\n", "row_t")

    def test_union_ordered_commitment(self):
        desc = """
            Punion u { Puint32 num; Pstring(:'!':) word; };
            Precord Pstruct row_t { u v; "!x"; };
        """
        interp, gen = pair(desc)
        # "12!x": num matches "12" and the union commits; the literal
        # matches -> clean, via the SAME branch on both engines.
        ri, _ = assert_equiv(interp, gen, b"12!x\n", "row_t")
        assert ri.v.tag == "num"
        # "12y!x": num matches "12", commits, then literal fails -> the
        # general parser resynchronises; regex must not fall through to
        # the word branch and call it clean.
        ri, pi = assert_equiv(interp, gen, b"12y!x\n", "row_t")
        assert pi.nerr > 0


class TestGuardsAndConstraints:
    def test_char_guard_baked_into_pattern(self, clf):
        gen = compile_generated(gallery.CLF)
        # auth '-' guard: both dash and named ids take the fast path and
        # agree with the interpreter.
        for line in (b'1.2.3.4 - - [15/Oct/1997:18:46:51 -0700] "GET /x HTTP/1.0" 200 5\n',
                     b'1.2.3.4 bob alice [15/Oct/1997:18:46:51 -0700] "GET /x HTTP/1.0" 200 5\n'):
            ri, pi = clf.parse(line, "entry_t")
            rg, pg = gen.parse(line, "entry_t")
            assert pd_summary(pi) == pd_summary(pg)
            assert ri == rg

    def test_semantic_violation_falls_back_to_full_pd(self):
        desc = """
            Precord Pstruct row_t { Puint32 a : a < 100; };
        """
        interp, gen = pair(desc)
        _, pd = gen.parse(b"500\n", "row_t")
        assert pd.nerr == 1
        assert pd.fields["a"].err_code.name == "USER_CONSTRAINT_VIOLATION"
        assert_equiv(interp, gen, b"500\n", "row_t")

    def test_dosem_gating(self):
        desc = "Precord Pstruct row_t { Puint32 a : a < 100; };"
        interp, gen = pair(desc)
        mask = Mask(P_Set | MaskFlag.SYN_CHECK)
        _, pg = gen.parse(b"500\n", "row_t", mask)
        assert pg.nerr == 0  # semantic check masked off, fast path accepts
        assert_equiv(interp, gen, b"500\n", "row_t", mask)

    def test_where_clause_on_tail_array(self, sirius):
        gen = compile_generated(gallery.SIRIUS)
        bad = gallery.SIRIUS_SAMPLE.replace(
            "LOC_CRTE|1001476800|LOC_OS_10|1001649601",
            "LOC_CRTE|1001649601|LOC_OS_10|1001476800")
        for data in (gallery.SIRIUS_SAMPLE, bad):
            ri, pi = sirius.parse(data)
            rg, pg = gen.parse(data)
            assert pd_summary(pi) == pd_summary(pg)
            assert ri == rg

    def test_per_field_masks_bypass_fastpath(self, sirius):
        gen = compile_generated(gallery.SIRIUS)
        mask = Mask(P_CheckAndSet)
        events_mask = Mask(P_CheckAndSet)
        events_mask.compound_level = P_Set
        mask.fields["events"] = events_mask
        bad = gallery.SIRIUS_SAMPLE.split("\n", 1)[1].replace(
            "LOC_CRTE|1001476800|LOC_OS_10|1001649601",
            "LOC_CRTE|1001649601|LOC_OS_10|1001476800")
        out_i = list(sirius.records(bad, "entry_t", mask))
        out_g = list(gen.records(bad, "entry_t", mask))
        assert [pd.nerr for _, pd in out_i] == [pd.nerr for _, pd in out_g]
        assert all(pd.nerr == 0 for _, pd in out_g)


class TestCobolFastPath:
    def test_billing_copybook_fastpath_equivalence(self, rng):
        """Fixed-count OCCURS arrays of fixed-width elements take the fast
        path; the full Cobol billing record compiles end to end."""
        import importlib.resources as res
        from repro import FixedWidthRecords
        from repro.tools.cobol import translate
        text = (res.files("repro.gallery") / "billing.cpy").read_text()
        tr = translate(text, "billing.cpy")
        interp = tr.compile()
        gen = compile_generated(tr.pads_source, ambient="ebcdic",
                                discipline=FixedWidthRecords(tr.record_width))
        assert "_fp_billing_record_t" in gen.py_source
        reps = [interp.generate(tr.record_type, rng) for _ in range(20)]
        data = b"".join(interp.write(r, tr.record_type) for r in reps)
        out_g = list(gen.records(data, tr.record_type))
        assert [r for r, _ in out_g] == reps
        # Corrupt a packed-decimal byte: engines agree on the error.
        bad = bytearray(data[:tr.record_width])
        bad[33] = 0xFF  # inside BILL-AMOUNT
        ri, pi = interp.parse(bytes(bad), tr.record_type)
        rg, pg = gen.parse(bytes(bad), tr.record_type)
        assert pd_summary(pi) == pd_summary(pg)
        assert ri == rg


class TestBinaryFastPath:
    def test_call_detail_fast(self, call_detail, rng):
        from repro import FixedWidthRecords
        gen = compile_generated(gallery.CALL_DETAIL, ambient="binary",
                                discipline=FixedWidthRecords(24))
        reps = [call_detail.generate("call_t", rng) for _ in range(30)]
        data = call_detail.write(reps, "calls_t")
        out = list(gen.records(data, "call_t"))
        assert [r for r, _ in out] == reps
        assert all(pd.nerr == 0 for _, pd in out)

    def test_binary_corruption_equivalence(self, call_detail, rng):
        from repro import FixedWidthRecords
        gen = compile_generated(gallery.CALL_DETAIL, ambient="binary",
                                discipline=FixedWidthRecords(24))
        rep = call_detail.generate("call_t", rng)
        data = bytearray(call_detail.write([rep], "calls_t"))
        data[20] = 0xFF  # corrupt the call_type byte (constraint t <= 4)
        ri, pi = call_detail.parse(bytes(data), "calls_t")
        rg, pg = gen.parse(bytes(data), "calls_t")
        assert pd_summary(pi) == pd_summary(pg)
        assert ri == rg


# ---------------------------------------------------------------------------
# Property: fast-path-enabled modules == interpreter over adversarial bytes
# ---------------------------------------------------------------------------

FP_DESC = """
    Penum kind_t { ALPHA, BETA, BE };
    Punion id_t {
        Pchar dash : dash == '-';
        Puint32 num;
        Pstring(:'|':) label;
    };
    Parray tail_t {
        Puint16[] : Psep(',') && Pterm(Peor);
    } Pwhere { Pforall (i Pin [0..length-2] : elts[i] <= elts[i+1]) };
    Precord Pstruct row_t {
        kind_t kind; '|';
        id_t who; '|';
        Popt Pzip zip; '|';
        Puint8 n : n < 200; '|';
        tail_t tail;
    };
"""


@pytest.fixture(scope="module")
def fp_pair():
    interp = compile_description(FP_DESC)
    gen = compile_generated(FP_DESC)
    assert "_fp_row_t" in gen.py_source
    return interp, gen


@settings(max_examples=150, deadline=None)
@given(st.binary(min_size=0, max_size=48).filter(lambda b: b"\n" not in b))
def test_fastpath_equals_interpreter_on_random_bytes(fp_pair, payload):
    interp, gen = fp_pair
    data = payload + b"\n"
    ri, pi = interp.parse(data, "row_t")
    rg, pg = gen.parse(data, "row_t")
    assert pd_summary(pi) == pd_summary(pg), data
    assert ri == rg


@settings(max_examples=80, deadline=None)
@given(st.integers(0, 2**32 - 1), st.data())
def test_fastpath_equals_interpreter_on_mutated_rows(fp_pair, seed, data):
    interp, gen = fp_pair
    rng = random.Random(seed)
    rep = interp.generate("row_t", rng)
    raw = bytearray(interp.write(rep, "row_t"))
    for _ in range(data.draw(st.integers(0, 2))):
        if len(raw) > 1:
            idx = data.draw(st.integers(0, len(raw) - 2))
            raw[idx] = data.draw(st.integers(32, 126))
    blob = bytes(raw)
    ri, pi = interp.parse(blob, "row_t")
    rg, pg = gen.parse(blob, "row_t")
    assert pd_summary(pi) == pd_summary(pg), blob
    assert ri == rg
