"""Smoke tests: every shipped example runs to completion and prints the
landmarks it promises."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True, text=True, timeout=300)
    assert result.returncode == 0, result.stderr
    return result.stdout


def test_quickstart():
    out = run_example("quickstart.py")
    assert "TYPEDEF_CONSTRAINT_VIOLATION" in out
    assert "WHERE_CLAUSE_VIOLATION" in out
    assert "verify after bad edit: False" in out
    assert "round-trip bytes" in out


def test_weblog_analysis():
    out = run_example("weblog_analysis.py")
    assert "<top>.length : uint32" in out
    assert "pcnt-bad:" in out
    # Figure 8's first formatted record must appear verbatim.
    assert "207.136.97.49|-|-|10/16/97:01:46:51|GET|/tk/p.txt|1|0|200|30" in out


def test_sirius_provisioning():
    out = run_example("sirius_provisioning.py")
    assert "54 errors" in out
    assert "normalised" in out
    assert "orders starting within the window" in out


def test_cobol_billing():
    out = run_example("cobol_billing.py")
    assert "Precord Pstruct billing_record_t" in out
    assert "file error rate" in out
    assert "ALERT" in out  # 3% injection > 2% threshold


def test_netflow_stream():
    out = run_example("netflow_stream.py")
    assert "corrupted" in out
    assert "top talkers" in out
