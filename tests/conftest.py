"""Shared fixtures: compiled paper descriptions and tiny helpers.

Also enforces a per-test hang cap: the robustness suite's contract is
"no hangs", so a test that stalls must fail rather than wedge the run.
When the ``pytest-timeout`` plugin is installed (CI passes
``--timeout``), it owns the cap; otherwise a SIGALRM fallback applies
``TEST_TIMEOUT`` seconds to every test on platforms that support it.
"""

import random
import signal

import pytest

from repro import gallery

TEST_TIMEOUT = 180

try:
    import pytest_timeout  # noqa: F401
    _HAVE_TIMEOUT_PLUGIN = True
except ImportError:
    _HAVE_TIMEOUT_PLUGIN = False

if not _HAVE_TIMEOUT_PLUGIN and hasattr(signal, "SIGALRM"):

    @pytest.hookimpl(hookwrapper=True)
    def pytest_runtest_call(item):
        def _expired(signum, frame):
            raise TimeoutError(
                f"test exceeded the {TEST_TIMEOUT}s hang cap")

        previous = signal.signal(signal.SIGALRM, _expired)
        signal.alarm(TEST_TIMEOUT)
        try:
            yield
        finally:
            signal.alarm(0)
            signal.signal(signal.SIGALRM, previous)


@pytest.fixture(scope="session")
def clf():
    return gallery.load_clf()


@pytest.fixture(scope="session")
def sirius():
    return gallery.load_sirius()


@pytest.fixture(scope="session")
def call_detail():
    return gallery.load_call_detail()


@pytest.fixture(scope="session")
def netflow():
    return gallery.load_netflow()


@pytest.fixture
def rng():
    return random.Random(20050612)  # PLDI 2005 week
