"""Shared fixtures: compiled paper descriptions and tiny helpers."""

import random

import pytest

from repro import gallery


@pytest.fixture(scope="session")
def clf():
    return gallery.load_clf()


@pytest.fixture(scope="session")
def sirius():
    return gallery.load_sirius()


@pytest.fixture(scope="session")
def call_detail():
    return gallery.load_call_detail()


@pytest.fixture(scope="session")
def netflow():
    return gallery.load_netflow()


@pytest.fixture
def rng():
    return random.Random(20050612)  # PLDI 2005 week
