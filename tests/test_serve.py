"""The multi-tenant parse service (:mod:`repro.serve`) and the
concurrency fixes that make the library safe to serve from.

Four regression suites ride along with the service tests, one per
bugfix:

* compiled-description cache keying — the key must cover backend,
  ambient, record discipline and fastpath mode, not just source text
  (``TestCacheKeying``);
* registry merge-after-request — sharing one ``MetricsRegistry`` across
  threads loses counts; per-request registries merged at completion are
  exact (``TestRegistryMerge``);
* byte transparency — raw response bodies must round-trip latin-1
  convention bytes through ``transparent_encode``, not re-encode them as
  UTF-8 (``TestByteTransparency``);
* tenant budgets — ``LIMIT_EXCEEDED`` outcomes map to structured
  4xx/5xx responses, never tracebacks (``TestLimits``).

Plus the concurrent-client differential: N simultaneous clients must
produce byte-identical reports and exact metric totals versus N serial
library runs.
"""

import base64
import json
import sys
import threading
import urllib.error
import urllib.request

import pytest

from repro.core.api import (DescriptionCache, compile_cached,
                            compile_description, description_cache_key)
from repro.core.errors import ErrorTally
from repro.core.io import FixedWidthRecords, transparent_encode
from repro.core.limits import ParseLimits
from repro.gallery import CLF, CLF_SAMPLE, SIRIUS, SIRIUS_SAMPLE
from repro.observe import MetricsRegistry, to_prometheus
from repro.serve import LIMIT_STATUS, ServeConfig, ServerThread
from repro.tools.accum import Accumulator

PIPE = """\
Psource Pstruct row_t {
  Pstring(:'|':) name;
  '|';
  Puint32 n;
};
"""

PIPE_DATA = "caf\xe9|1\nna\xefve|2\nplain|3\n"


# -- a tiny HTTP client over urllib ---------------------------------------------


def _request(port, method, path, doc=None, headers=None, raw=False):
    body = None if doc is None else json.dumps(doc).encode("utf-8")
    req = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}", data=body, method=method,
        headers={"Content-Type": "application/json", **(headers or {})})
    try:
        with urllib.request.urlopen(req, timeout=30) as resp:
            payload = resp.read()
            status = resp.status
    except urllib.error.HTTPError as exc:
        payload = exc.read()
        status = exc.code
    if raw:
        return status, payload
    return status, json.loads(payload)


def post(port, path, doc, tenant=None, raw=False):
    headers = {"X-Tenant": tenant} if tenant else {}
    return _request(port, "POST", path, doc, headers, raw=raw)


def get(port, path, raw=True):
    return _request(port, "GET", path, raw=raw)


# -- service basics ---------------------------------------------------------------


class TestService:
    def test_health_register_and_modes(self):
        with ServerThread() as st:
            status, doc = get(st.port, "/healthz", raw=False)
            assert (status, doc) == (200, {"status": "ok"})

            status, reg = post(st.port, "/v1/descriptions", {"source": CLF})
            assert status == 200 and not reg["cached"]
            assert reg["source_type"] == "clt_t"
            assert "entry_t" in reg["types"]

            base = {"id": reg["id"], "data": CLF_SAMPLE, "type": "entry_t"}
            status, doc = post(st.port, "/v1/parse",
                               dict(base, mode="count"))
            assert status == 200 and doc["count"] == 2

            status, doc = post(st.port, "/v1/parse",
                               dict(base, mode="records"))
            assert status == 200 and len(doc["records"]) == 2
            assert doc["stats"]["records"] == 2
            assert doc["stats"]["bad"] == 0

            status, doc = post(st.port, "/v1/parse", dict(base, mode="accum"))
            assert status == 200 and "entry_t" not in doc.get("error", "")
            assert doc["count"] == 2 and doc["report"]

    def test_inline_source_and_data_b64(self):
        data64 = base64.b64encode(
            transparent_encode(CLF_SAMPLE)).decode("ascii")
        with ServerThread() as st:
            status, doc = post(st.port, "/v1/parse",
                               {"source": CLF, "data_b64": data64,
                                "mode": "count"})
            assert status == 200 and doc["count"] == 2

    def test_structured_errors_not_tracebacks(self):
        with ServerThread() as st:
            cases = [
                ("/v1/parse", {"id": "nope", "data": "x"}, 404,
                 "UNKNOWN_DESCRIPTION"),
                ("/v1/parse", {"data": "x"}, 400, "MISSING_SOURCE"),
                ("/v1/parse", {"source": CLF}, 400, "BAD_DATA"),
                ("/v1/parse", {"source": CLF, "data": "x",
                               "mode": "weird"}, 400, "BAD_MODE"),
                ("/v1/parse", {"source": CLF, "data": "x",
                               "type": "zzz_t"}, 400, "UNKNOWN_TYPE"),
                ("/v1/parse", {"source": CLF, "data": "x",
                               "format": "yaml"}, 400, "BAD_FORMAT"),
                ("/v1/parse", {"source": "Pstruct {", "data": "x"}, 400,
                 "PADS_ERROR"),
                ("/v1/parse", {"source": CLF, "data": "x",
                               "records": "fixed:abc"}, 400, "PADS_ERROR"),
                ("/v1/descriptions", {"source": CLF, "backend": "zig"},
                 400, "BAD_BACKEND"),
                ("/v1/nope", {}, 404, "NOT_FOUND"),
            ]
            for path, doc, want_status, want_error in cases:
                status, body = post(st.port, path, doc)
                assert status == want_status, (doc, body)
                assert body["error"] == want_error, (doc, body)

    def test_bad_json_and_oversized_body(self):
        with ServerThread(max_body=64) as st:
            status, body = _request(st.port, "POST", "/v1/parse",
                                    headers={})
            # no body at all -> BAD_JSON, not a crash
            assert status == 400 and body["error"] == "BAD_JSON"
            status, body = post(
                st.port, "/v1/parse",
                {"source": CLF, "data": "x" * 200, "mode": "count"})
            assert status == 413 and body["error"] == "REQUEST_TOO_LARGE"

    def test_method_not_allowed(self):
        with ServerThread() as st:
            status, body = post(st.port, "/metrics", {})
            assert status == 405
            status, body = get(st.port, "/v1/parse", raw=False)
            assert status == 405

    def test_text_format_bodies(self):
        with ServerThread() as st:
            status, body = post(st.port, "/v1/parse",
                                {"source": CLF, "data": CLF_SAMPLE,
                                 "mode": "count", "format": "text"},
                                raw=True)
            assert (status, body) == (200, b"2\n")


# -- bugfix 1: cache keying -------------------------------------------------------


class TestCacheKeying:
    """The compiled-description cache key must cover every input that
    changes compilation, not just the source text.  Under source-only
    keying one tenant's ``backend: source`` registration would be served
    to another tenant who asked for the interpreter (cross-tenant cache
    poisoning); each of these asserts fails in that world."""

    def test_key_covers_backend(self):
        d_interp = compile_cached(PIPE)
        d_source = compile_cached(PIPE, backend="source")
        assert d_interp is not d_source
        assert getattr(d_interp, "backend", "interp") == "interp"
        assert getattr(d_source, "backend", None) == "source"
        # and the same request comes back from the cache
        assert compile_cached(PIPE) is d_interp
        assert compile_cached(PIPE, backend="source") is d_source

    def test_key_covers_discipline_ambient_fastpath(self):
        base = description_cache_key(PIPE)
        assert description_cache_key(PIPE) == base
        assert description_cache_key(
            PIPE, discipline=FixedWidthRecords(8)) != base
        assert description_cache_key(PIPE, ambient="binary") != base
        assert description_cache_key(PIPE, fastpath=False) != base
        assert description_cache_key(PIPE, backend="source") != base
        assert description_cache_key(PIPE + " ") != base

    def test_cache_stats_and_eviction(self):
        cache = DescriptionCache(maxsize=2)
        _, k1, hit1 = cache.get_or_compile(PIPE)
        _, _, hit2 = cache.get_or_compile(PIPE)
        assert not hit1 and hit2
        cache.get_or_compile(CLF)
        cache.get_or_compile(SIRIUS)  # evicts PIPE (LRU)
        assert len(cache) == 2
        _, _, hit3 = cache.get_or_compile(PIPE)
        assert not hit3
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 4

    def test_concurrent_first_requests_compile_once(self):
        """Cold-cache stampede: N threads asking for the same key must
        produce exactly one compile (single-flight), not N."""
        cache = DescriptionCache()
        results = []
        barrier = threading.Barrier(8)

        def racer():
            barrier.wait()
            desc, _key, hit = cache.get_or_compile(SIRIUS)
            results.append((id(desc), hit))

        threads = [threading.Thread(target=racer) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert cache.stats()["misses"] == 1
        assert len({ident for ident, _hit in results}) == 1
        assert sum(1 for _i, hit in results if not hit) == 1

    def test_serve_registers_distinct_backends(self):
        with ServerThread() as st:
            _, a = post(st.port, "/v1/descriptions", {"source": PIPE})
            _, b = post(st.port, "/v1/descriptions",
                        {"source": PIPE, "backend": "source"})
            assert a["id"] != b["id"]
            assert a["backend"] == "interp" and b["backend"] == "source"
            for reg in (a, b):
                status, doc = post(st.port, "/v1/parse",
                                   {"id": reg["id"], "data": PIPE_DATA,
                                    "mode": "count"})
                assert status == 200 and doc["count"] == 3

    def test_compile_once_across_requests(self):
        """Acceptance: N requests with the same inline source compile
        exactly once, visible in the scrape-able cache metrics."""
        with ServerThread() as st:
            for _ in range(5):
                status, doc = post(st.port, "/v1/parse",
                                   {"source": PIPE, "data": PIPE_DATA,
                                    "mode": "count"})
                assert status == 200 and doc["count"] == 3
            assert st.metrics.value("serve.compile") == 1
            assert st.metrics.value("serve.cache.misses") == 1
            assert st.metrics.value("serve.cache.hits") == 4
            _, text = get(st.port, "/metrics")
            lines = text.decode().splitlines()
            assert "pads_serve_compile_total 1" in lines
            assert "pads_serve_cache_hits_total 4" in lines


# -- bugfix 2: registry merge-after-request ---------------------------------------


class TestRegistryMerge:
    THREADS = 4
    PER_THREAD = 25_000

    def _hammer(self, fn):
        threads = [threading.Thread(target=fn) for _ in range(self.THREADS)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

    def test_shared_registry_loses_counts(self):
        """The bug this PR's serving path avoids by construction: handler
        threads folding totals into a shared registry in place.  Any
        update of the form ``metric.set(metric.value + n)`` — read, then
        store through a method call — has a preemption point between the
        read and the write, so concurrent handlers overwrite each other
        and updates vanish.  (This is exactly the shape of serve's
        high-water gauge; the fix routes all server-registry mutation
        through the event loop and gives each request its own registry.)
        """
        lost = 0
        switch = sys.getswitchinterval()
        sys.setswitchinterval(1e-6)  # force frequent preemption
        try:
            for _attempt in range(3):
                shared = MetricsRegistry()
                gauge = shared.gauge("records.seen")

                def hammer():
                    for _ in range(self.PER_THREAD):
                        gauge.set(gauge.value + 1)

                self._hammer(hammer)
                lost = (self.THREADS * self.PER_THREAD
                        - shared.value("records.seen"))
                if lost:
                    break
        finally:
            sys.setswitchinterval(switch)
        if not lost:
            pytest.skip("interpreter never preempted inside the "
                        "read-modify-write; the race did not fire this run")
        assert lost > 0

    def test_merged_registries_are_exact(self):
        """The fix: per-request registries, merged at completion."""
        server_lifetime = MetricsRegistry()
        merge_lock = threading.Lock()

        def handle_requests():
            request = MetricsRegistry()  # private to this "request"
            for _ in range(self.PER_THREAD):
                request.counter("hits").inc()
            with merge_lock:  # in serve, the event loop serializes this
                server_lifetime.merge(request)

        switch = sys.getswitchinterval()
        sys.setswitchinterval(1e-6)
        try:
            self._hammer(handle_requests)
        finally:
            sys.setswitchinterval(switch)
        assert server_lifetime.value("hits") == \
            self.THREADS * self.PER_THREAD

    def test_serve_metric_totals_exact_under_concurrency(self):
        """End to end: concurrent clients' record counts land in the
        server registry without a single lost increment."""
        clients, repeats = 8, 5
        with ServerThread() as st:
            errors = []

            def client():
                try:
                    for _ in range(repeats):
                        status, doc = post(st.port, "/v1/parse",
                                           {"source": CLF,
                                            "data": CLF_SAMPLE,
                                            "mode": "records",
                                            "type": "entry_t"})
                        assert status == 200 and doc["count"] == 2
                except Exception as exc:  # surface in the main thread
                    errors.append(exc)

            threads = [threading.Thread(target=client)
                       for _ in range(clients)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert not errors
            assert st.metrics.value("records.total") == \
                clients * repeats * 2
            total = sum(
                st.metrics.value("serve.requests", "/v1/parse", code)
                for code in ("200", "400", "500"))
            assert total == clients * repeats


# -- bugfix 3: byte transparency --------------------------------------------------


class TestByteTransparency:
    def test_raw_body_round_trips_latin1_bytes(self):
        """A text-format response must carry the parsed bytes verbatim.
        The broken path (``body.encode("utf-8")``) turns byte 0xE9 into
        0xC3 0xA9 — this test fails against it."""
        with ServerThread() as st:
            status, body = post(st.port, "/v1/parse",
                                {"source": PIPE, "data": PIPE_DATA,
                                 "mode": "records", "type": "row_t",
                                 "format": "text"}, raw=True)
            assert status == 200
            assert body == b"caf\xe9|1\nna\xefve|2\nplain|3\n"
            assert b"\xc3\xa9" not in body  # the utf-8 mojibake signature

    def test_json_body_round_trips_via_escapes(self):
        """JSON responses stay pure ASCII on the wire; latin-1 convention
        strings come back code-point-exact."""
        with ServerThread() as st:
            status, raw = post(st.port, "/v1/parse",
                               {"source": PIPE, "data": PIPE_DATA,
                                "mode": "records", "type": "row_t"},
                               raw=True)
            assert status == 200
            assert max(raw) < 0x80  # ASCII-only wire format
            doc = json.loads(raw)
            assert doc["records"][0] == "caf\xe9|1"
            assert transparent_encode(doc["records"][0]) == b"caf\xe9|1"

    def test_accum_report_preserves_bytes(self):
        with ServerThread() as st:
            status, body = post(st.port, "/v1/parse",
                                {"source": PIPE, "data": PIPE_DATA,
                                 "mode": "accum", "type": "row_t",
                                 "format": "text"}, raw=True)
            assert status == 200
            assert b"caf\xe9" in body
            assert b"caf\xc3\xa9" not in body


# -- bugfix 4 (serving side): tenant budgets map to structured responses ----------


class TestLimits:
    def test_record_limit_maps_to_413(self):
        config = ServeConfig(
            tenant_limits={"free": ParseLimits(max_record_bytes=8)})
        data = "a|1\n" + "x" * 64 + "|2\n"
        with ServerThread(config) as st:
            status, doc = post(st.port, "/v1/parse",
                               {"source": PIPE, "data": data,
                                "mode": "records", "type": "row_t"},
                               tenant="free")
            assert status == 413
            assert doc["error"] == "LIMIT_EXCEEDED"
            assert doc["code"] == "RECORD_LIMIT"
            assert doc["tenant"] == "free"
            assert st.metrics.value("serve.limited", "free",
                                    "RECORD_LIMIT") == 1

    def test_error_budget_maps_to_422(self):
        config = ServeConfig(
            tenant_limits={"strict": ParseLimits(max_errors=1)})
        bad = "no-pipe-here\nok|1\nok|2\n"
        with ServerThread(config) as st:
            status, doc = post(st.port, "/v1/parse",
                               {"source": PIPE, "data": bad,
                                "mode": "accum", "type": "row_t"},
                               tenant="strict")
            assert status == 422
            assert doc["code"] == "ERROR_BUDGET_EXCEEDED"

    def test_deadline_maps_to_503(self):
        config = ServeConfig(default_limits=ParseLimits(deadline=1e-9))
        with ServerThread(config) as st:
            status, doc = post(st.port, "/v1/parse",
                               {"source": PIPE, "data": PIPE_DATA,
                                "mode": "records", "type": "row_t"})
            assert status == 503
            assert doc["code"] == "DEADLINE_EXCEEDED"

    def test_tenant_isolation_shares_the_cached_description(self):
        """One tenant's budget failing a request must not evict or taint
        the description other tenants keep using."""
        config = ServeConfig(
            tenant_limits={"free": ParseLimits(max_record_bytes=8)})
        data = "a|1\n" + "x" * 64 + "|2\n"
        with ServerThread(config) as st:
            status, _ = post(st.port, "/v1/parse",
                             {"source": PIPE, "data": data,
                              "mode": "records", "type": "row_t"},
                             tenant="free")
            assert status == 413
            status, doc = post(st.port, "/v1/parse",
                               {"source": PIPE, "data": data,
                                "mode": "records", "type": "row_t"},
                               tenant="gold")
            assert status == 200 and doc["count"] == 2
            # one compile served both tenants
            assert st.metrics.value("serve.compile") == 1

    def test_limit_status_map_is_total(self):
        from repro.core.errors import ErrCode
        limit_codes = [c.name for c in ErrCode if 500 <= c.value < 510]
        assert set(limit_codes) == set(LIMIT_STATUS)

    def test_count_mode_applies_limits(self):
        config = ServeConfig(default_limits=ParseLimits(deadline=1e-9))
        with ServerThread(config) as st:
            status, doc = post(st.port, "/v1/parse",
                               {"source": PIPE, "data": PIPE_DATA,
                                "mode": "count"})
            # record counting never opens fields, but the deadline budget
            # still applies at record boundaries
            assert status in (200, 503)


# -- the concurrent-client differential -------------------------------------------


def _serial_reference(source, data, type_name):
    d = compile_description(source)
    acc = Accumulator(d.node(type_name), "<top>", 1000)
    tally = ErrorTally()
    for rep, pd in d.records(data, type_name):
        acc.add(rep, pd)
        tally.add(pd)
    return acc.full_report(10), tally


class TestConcurrentDifferential:
    def test_n_clients_match_n_serial_runs(self):
        jobs = [("clf", CLF, CLF_SAMPLE, "entry_t"),
                ("sirius", SIRIUS, SIRIUS_SAMPLE, "entry_t")]
        clients_per_job = 4
        references = {name: _serial_reference(src, data, t)
                      for name, src, data, t in jobs}
        results = {}
        errors = []
        with ServerThread() as st:
            def client(name, source, data, type_name, idx):
                try:
                    status, doc = post(st.port, "/v1/parse",
                                       {"source": source, "data": data,
                                        "mode": "accum",
                                        "type": type_name})
                    assert status == 200, doc
                    results[(name, idx)] = doc
                except Exception as exc:
                    errors.append(exc)

            threads = [
                threading.Thread(target=client, args=(n, s, d, t, i))
                for n, s, d, t in jobs for i in range(clients_per_job)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert not errors

            # byte-identical reports, every client, both descriptions
            for (name, _idx), doc in results.items():
                want_report, want_tally = references[name]
                assert doc["report"] == want_report
                assert doc["count"] == want_tally.records
                assert doc["stats"]["errors"] == want_tally.total_errors

            # and the server's metric totals are the exact serial sums
            want_records = clients_per_job * sum(
                references[name][1].records for name, *_ in jobs)
            want_errors = clients_per_job * sum(
                references[name][1].total_errors for name, *_ in jobs)
            assert st.metrics.value("records.total") == want_records
            assert st.metrics.value("errors.total") == want_errors
            # two distinct descriptions -> exactly two compiles
            assert st.metrics.value("serve.compile") == 2


# -- parallel delegation ----------------------------------------------------------


class TestParallelDelegation:
    def test_large_payload_routes_through_the_pool(self):
        data = CLF_SAMPLE * 200
        config = ServeConfig(jobs=2, parallel_threshold=1)
        with ServerThread(config) as st:
            status, doc = post(st.port, "/v1/parse",
                               {"source": CLF, "data": data,
                                "mode": "count"})
            assert status == 200 and doc["count"] == 400
            status, doc = post(st.port, "/v1/parse",
                               {"source": CLF, "data": data,
                                "mode": "accum", "type": "entry_t"})
            assert status == 200 and doc["count"] == 400
            assert st.metrics.value("serve.parallel_runs") >= 1

    def test_parallel_and_serial_accum_agree(self):
        data = CLF_SAMPLE * 50
        serial_report, serial_tally = _serial_reference(CLF, data, "entry_t")
        config = ServeConfig(jobs=2, parallel_threshold=1)
        with ServerThread(config) as st:
            status, doc = post(st.port, "/v1/parse",
                               {"source": CLF, "data": data,
                                "mode": "accum", "type": "entry_t"})
            assert status == 200
            assert doc["report"] == serial_report
            assert doc["count"] == serial_tally.records


# -- /metrics exposition ----------------------------------------------------------


class TestMetricsEndpoint:
    def test_prometheus_format(self):
        reg = MetricsRegistry()
        reg.counter("records.total").inc(3)
        reg.counter("errors.by_code", "MISSING_LITERAL").inc(2)
        reg.gauge("serve.descriptions").set(1)
        h = reg.histogram("latency", bounds=(0.1, 1.0))
        for v in (0.05, 0.5, 5.0):
            h.observe(v)
        text = to_prometheus(reg)
        lines = text.splitlines()
        assert "# TYPE pads_records_total counter" in lines
        assert "pads_records_total 3" in lines
        assert ('pads_errors_by_code_total{l1="MISSING_LITERAL"} 2'
                in lines)
        assert "pads_serve_descriptions 1" in lines
        # cumulative buckets: 1, 2, then +Inf == count
        assert 'pads_latency_bucket{le="0.1"} 1' in lines
        assert 'pads_latency_bucket{le="1.0"} 2' in lines
        assert 'pads_latency_bucket{le="+Inf"} 3' in lines
        assert "pads_latency_count 3" in lines

    def test_scrape_is_deterministic(self):
        reg = MetricsRegistry()
        reg.counter("b").inc()
        reg.counter("a", "x").inc()
        assert to_prometheus(reg) == to_prometheus(reg)

    def test_live_scrape_has_serve_families(self):
        with ServerThread() as st:
            post(st.port, "/v1/parse", {"source": PIPE, "data": PIPE_DATA,
                                        "mode": "count"})
            _, text = get(st.port, "/metrics")
            text = text.decode()
            for family in ("pads_serve_requests_total",
                           "pads_serve_cache_misses_total",
                           "pads_serve_latency_bucket",
                           "pads_records_total"):
                assert family in text
