"""Tests for the Galax-style data API (paper Section 5.4 / Figure 6)."""

import pytest

from repro import compile_description, gallery
from repro.tools.dataapi import PNode, node_new


@pytest.fixture(scope="module")
def sirius_root(sirius):
    rep, pd = sirius.parse(gallery.SIRIUS_SAMPLE)
    return node_new(sirius, rep, pd, None, name="sirius")


class TestNavigation:
    def test_root_children(self, sirius_root):
        names = [c.name for c in sirius_root.children]
        assert names == ["h", "es"]

    def test_kth_child(self, sirius_root):
        assert sirius_root.kth_child(0).name == "h"
        assert sirius_root.kth_child(1).name == "es"
        assert sirius_root.kth_child(5) is None

    def test_array_children_use_element_type_name(self, sirius_root):
        es = sirius_root.kth_child_named("es")
        labels = {c.name for c in es.children}
        assert labels == {"entry"}
        assert all(c.type_name == "entry_t" for c in es.children)

    def test_matches_by_field_type_or_stripped_name(self, sirius_root):
        entry = sirius_root.kth_child_named("es").kth_child(0)
        assert entry.matches("entry")
        assert entry.matches("entry_t")

    def test_leaf_values_are_typed(self, sirius_root):
        header = (sirius_root.kth_child_named("es").kth_child(0)
                  .kth_child_named("header"))
        assert header.kth_child_named("order_num").value() == 9152
        assert header.kth_child_named("zip_code").value() == "07988"

    def test_union_projects_single_child(self, sirius_root):
        header = (sirius_root.kth_child_named("es").kth_child(0)
                  .kth_child_named("header"))
        ramp = header.kth_child_named("ramp")
        kids = ramp.children
        assert len(kids) == 1 and kids[0].name == "genRamp"

    def test_parent_links(self, sirius_root):
        es = sirius_root.kth_child_named("es")
        assert es.parent is sirius_root
        assert es.kth_child(0).parent is es

    def test_text_concatenates(self, sirius_root):
        h = sirius_root.kth_child_named("h")
        assert h.text() == "1005022800"

    def test_descendants(self, sirius_root):
        names = [n.name for n in sirius_root.descendants()]
        assert "order_num" in names and "state" in names

    def test_laziness(self, sirius):
        rep, pd = sirius.parse(gallery.SIRIUS_SAMPLE)
        root = node_new(sirius, rep, pd, None, name="sirius")
        assert root._children is None
        root.children
        assert root._children is not None
        # Grandchildren still unmaterialised.
        assert root._children[1]._children is None


class TestPdChildren:
    def test_buggy_nodes_grow_pd_child(self, sirius):
        bad = gallery.SIRIUS_SAMPLE.replace("|10|1000295291", "|10|xx95291")
        rep, pd = sirius.parse(bad)
        root = node_new(sirius, rep, pd, None, name="sirius")
        entry = root.kth_child_named("es").kth_child(0)
        pd_nodes = entry.named("pd")
        assert pd_nodes, "errors must surface a pd child"
        kids = {c.name: c.value() for c in pd_nodes[0].children}
        assert kids["nerr"] >= 1

    def test_clean_nodes_have_no_pd_child(self, sirius_root):
        entry = sirius_root.kth_child_named("es").kth_child(0)
        assert not entry.named("pd")
